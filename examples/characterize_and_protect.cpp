// Characterize any of the three paper CPUs at full 1 mV resolution, save
// the safe-state map to CSV (the artifact a deployed kernel module would
// consume), and demonstrate all three deployment levels against a raw
// unsafe write.
//
//   $ ./characterize_and_protect [skylake|kabylake|cometlake] [out.csv]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "plugvolt/parallel_characterizer.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sim/ocm.hpp"
#include "util/thread_pool.hpp"

using namespace pv;

int main(int argc, char** argv) {
    sim::CpuProfile profile = sim::cometlake_i7_10510u();
    if (argc > 1) {
        if (std::strcmp(argv[1], "skylake") == 0) profile = sim::skylake_i5_6500();
        else if (std::strcmp(argv[1], "kabylake") == 0) profile = sim::kabylake_r_i5_8250u();
        else if (std::strcmp(argv[1], "cometlake") == 0) profile = sim::cometlake_i7_10510u();
        else {
            std::fprintf(stderr, "usage: %s [skylake|kabylake|cometlake] [out.csv]\n",
                         argv[0]);
            return 2;
        }
    }
    const std::string out_path = argc > 2 ? argv[2] : "safe_state_map.csv";

    // The sharded sweep engine: frequency rows fan out across a worker
    // pool and each row bisects its onset/crash boundaries — same map as
    // the serial exhaustive sweep, a fraction of the wall-clock.
    plugvolt::ParallelCharacterizerConfig sweep;  // paper defaults: 1 mV, 10^6 imul
    sweep.seed = 0xC0DE;
    std::printf("characterizing %s (%s) at 1 mV / 0.1 GHz resolution "
                "(%s mode, %u workers)...\n",
                profile.name.c_str(), profile.codename.c_str(),
                plugvolt::to_string(sweep.mode),
                sweep.workers ? sweep.workers : ThreadPool::default_worker_count());
    plugvolt::ParallelCharacterizer characterizer(profile, sweep);
    unsigned columns = 0;
    const plugvolt::SafeStateMap map =
        characterizer.characterize([&](const plugvolt::FreqCharacterization& row) {
            ++columns;
            if (!row.fault_free)
                std::printf("  %4.1f GHz: onset %.0f mV, crash %s\n", row.freq.gigahertz(),
                            row.onset.value(),
                            row.crash >= sweep.cell.sweep_floor ? "reached" : "beyond sweep");
        });
    std::printf("%u columns characterized, %llu cells probed, %llu crash-reboots\n",
                columns,
                static_cast<unsigned long long>(characterizer.stats().cells_evaluated),
                static_cast<unsigned long long>(characterizer.stats().crash_probes));
    std::printf("maximal safe state: %.0f mV\n\n", map.maximal_safe_offset().value());

    std::ofstream(out_path) << map.to_csv();
    std::printf("map saved to %s (%zu rows)\n\n", out_path.c_str(), map.rows().size());

    // Demonstrate each deployment level against the same unsafe write.
    for (const auto level :
         {plugvolt::DeploymentLevel::KernelModule, plugvolt::DeploymentLevel::Microcode,
          plugvolt::DeploymentLevel::HardwareMsr}) {
        sim::Machine victim(profile, 0xD00D);
        os::Kernel victim_kernel(victim);
        plugvolt::Protector protector(victim_kernel, map);
        protector.deploy(level);

        victim.set_all_frequencies(profile.freq_max);
        victim.advance_to(victim.rail_settle_time());
        victim_kernel.msr().ioctl_wrmsr(
            0, 0, sim::kMsrOcMailbox,
            sim::encode_offset(Millivolts{-250.0}, sim::VoltagePlane::Core));
        victim.advance(milliseconds(1.0));
        const sim::BatchResult probe = victim.run_batch(1, sim::InstrClass::Imul, 1'000'000);

        std::printf("deployment %-13s: -250 mV write at %.1f GHz -> applied %.1f mV, "
                    "%llu faults, %s\n",
                    plugvolt::to_string(level), profile.freq_max.gigahertz(),
                    victim.applied_offset(sim::VoltagePlane::Core).value(),
                    static_cast<unsigned long long>(probe.faults),
                    victim.crashed() ? "CRASHED" : "alive");
    }
    return 0;
}
