// The flagship DVFS weaponization, end to end: undervolt an RSA-CRT
// signer, catch one faulty signature, factor the modulus with a single
// gcd (Boneh-DeMillo-Lipton / "Bellcore" attack) — then show the same
// campaign failing against a PlugVolt-protected machine.
//
//   $ ./rsa_fault_attack
#include <cstdio>

#include "os/cpupower.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sim/ocm.hpp"
#include "workload/crypto/rsa_crt.hpp"

using namespace pv;

namespace {

// Run the attack loop against a signer on `machine`; returns true if the
// key was factored.
bool attack_signer(sim::Machine& machine, os::Kernel& kernel, const crypto::RsaKey& key,
                   Millivolts offset) {
    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(machine.profile().freq_max);
    machine.advance_to(machine.rail_settle_time());

    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(offset, sim::VoltagePlane::Core));
    machine.advance_to(machine.rail_settle_time() + microseconds(20.0));

    crypto::FaultableRsaSigner signer(machine, /*core=*/1, key);
    const crypto::u64 message = 0x6D65737361676531ULL % key.n;

    for (int i = 0; i < 400 && !machine.crashed(); ++i) {
        const crypto::u64 s = signer.sign(message);
        if (crypto::rsa_verify(key, message, s)) continue;

        std::printf("  signature #%d is FAULTY: s = %llu\n", i,
                    static_cast<unsigned long long>(s));
        const auto factor = crypto::bellcore_factor(key.n, key.e, message, s);
        if (factor) {
            const crypto::u64 other = key.n / *factor;
            std::printf("  gcd(s^e - m, n) = %llu  ->  n = %llu * %llu  KEY RECOVERED\n",
                        static_cast<unsigned long long>(*factor),
                        static_cast<unsigned long long>(*factor),
                        static_cast<unsigned long long>(other));
            return true;
        }
    }
    std::printf("  no usable faulty signature after 400 attempts%s\n",
                machine.crashed() ? " (machine crashed)" : "");
    return false;
}

}  // namespace

int main() {
    Rng rng(0xBE11C0FE);
    const crypto::RsaKey key = crypto::rsa_generate(rng);
    std::printf("victim RSA key: n = %llu (p = %llu, q = %llu), e = %llu\n\n",
                static_cast<unsigned long long>(key.n),
                static_cast<unsigned long long>(key.p),
                static_cast<unsigned long long>(key.q),
                static_cast<unsigned long long>(key.e));

    // Pick the attack offset from the physics: a bit past the fault onset
    // at max frequency (a real attacker finds this by scanning; see the
    // Plundervolt class for the full campaign).
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();

    std::printf("[1] unprotected machine, undervolting during CRT signing:\n");
    {
        sim::Machine machine(profile, 7);
        os::Kernel kernel(machine);
        const Millivolts offset =
            machine.fault_model().onset_offset(profile.freq_max, sim::InstrClass::Imul) -
            Millivolts{8.0};
        std::printf("  attacking at %.0f mV offset, %.1f GHz\n", offset.value(),
                    profile.freq_max.gigahertz());
        const bool broken = attack_signer(machine, kernel, key, offset);
        std::printf("  => %s\n\n", broken ? "PRIVATE KEY EXTRACTED" : "attack failed");
    }

    std::printf("[2] same campaign against a PlugVolt-protected machine:\n");
    {
        sim::Machine machine(profile, 7);
        os::Kernel kernel(machine);
        plugvolt::CharacterizerConfig sweep;
        sweep.offset_step = Millivolts{2.0};
        plugvolt::Characterizer characterizer(kernel, sweep);
        plugvolt::Protector protector(kernel, characterizer.characterize());
        protector.deploy(plugvolt::DeploymentLevel::KernelModule);

        const Millivolts offset =
            machine.fault_model().onset_offset(profile.freq_max, sim::InstrClass::Imul) -
            Millivolts{8.0};
        const bool broken = attack_signer(machine, kernel, key, offset);
        std::printf("  => %s (module detections: %llu)\n",
                    broken ? "PRIVATE KEY EXTRACTED" : "key is safe",
                    static_cast<unsigned long long>(
                        protector.polling_module()->metrics().detections));
        return broken ? 1 : 0;
    }
}
