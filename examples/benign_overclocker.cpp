// The paper's differentiator, from a power user's point of view: with
// PlugVolt deployed, DVFS stays fully usable — frequency scaling AND
// safe undervolting — even while an SGX enclave is loaded; under Intel's
// SA-00289 access control the same user is locked out entirely.
//
//   $ ./benign_overclocker
#include <cstdio>

#include "defenses/access_control.hpp"
#include "os/cpupower.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sgx/runtime.hpp"
#include "sim/ocm.hpp"

using namespace pv;

namespace {

// A day in the life of a laptop power user: battery-saver undervolt at
// low frequency, then a gaming session at max turbo with a modest
// undervolt for thermals.  Returns how many of the requests landed.
int power_user_session(sim::Machine& machine, os::Kernel& kernel) {
    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    int granted = 0;

    // Battery saver: 1.2 GHz, -150 mV (safe: onset there is ~-296 mV).
    cpupower.frequency_set(from_ghz(1.2));
    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(Millivolts{-150.0},
                                                sim::VoltagePlane::Core));
    machine.advance(milliseconds(3.0));
    const double saver = machine.applied_offset(sim::VoltagePlane::Core).value();
    std::printf("  battery saver:  1.2 GHz @ %+.0f mV  %s\n", saver,
                saver < -140.0 ? "(granted)" : "(blocked)");
    granted += saver < -140.0;

    // Gaming: max turbo with a -40 mV thermal undervolt (safe everywhere).
    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(Millivolts{-40.0},
                                                sim::VoltagePlane::Core));
    machine.advance(milliseconds(2.0));
    cpupower.frequency_set(machine.profile().freq_max);
    machine.advance(milliseconds(2.0));
    cpupower.frequency_set(machine.profile().freq_max);  // governor re-request
    machine.advance(milliseconds(3.0));
    const double gaming = machine.applied_offset(sim::VoltagePlane::Core).value();
    const double freq = machine.core(0).frequency().value();
    const bool turbo_ok = freq == machine.profile().freq_max.value() && gaming < -35.0;
    std::printf("  gaming session: %.1f GHz @ %+.0f mV  %s\n", freq / 1000.0, gaming,
                turbo_ok ? "(granted)" : "(blocked)");
    granted += turbo_ok;
    return granted;
}

}  // namespace

int main() {
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();

    // Characterize once (any of the machines below share the silicon).
    plugvolt::SafeStateMap map = [&] {
        sim::Machine m(profile, 1);
        os::Kernel k(m);
        plugvolt::CharacterizerConfig sweep;
        sweep.offset_step = Millivolts{2.0};
        return plugvolt::Characterizer(k, sweep).characterize();
    }();

    std::printf("scenario: an SGX enclave is loaded on the platform the whole time.\n\n");

    std::printf("[PlugVolt polling module deployed]\n");
    {
        sim::Machine machine(profile, 2);
        os::Kernel kernel(machine);
        sgx::SgxRuntime runtime(kernel);
        auto enclave = runtime.create_enclave("payment-service", 3);
        plugvolt::Protector protector(kernel, map);
        protector.deploy(plugvolt::DeploymentLevel::KernelModule);
        const int granted = power_user_session(machine, kernel);
        std::printf("  => %d/2 requests granted; detections=%llu (nothing benign "
                    "triggered the module)\n\n",
                    granted,
                    static_cast<unsigned long long>(
                        protector.polling_module()->metrics().detections));
    }

    std::printf("[Intel SA-00289 access control active]\n");
    {
        sim::Machine machine(profile, 3);
        os::Kernel kernel(machine);
        sgx::SgxRuntime runtime(kernel);
        auto enclave = runtime.create_enclave("payment-service", 3);
        defense::AccessControl patch(machine, runtime);
        patch.install();
        const int granted = power_user_session(machine, kernel);
        std::printf("  => %d/2 requests granted; %llu OCM writes blocked outright\n",
                    granted, static_cast<unsigned long long>(patch.blocked_writes()));
    }
    return 0;
}
