// Thermal-aware deployment: why the safe-state map must be taken HOT.
//
// Timing margins shrink as the die heats, so a map characterized on an
// idle (cool) machine under-reports the fault onset.  This example
// characterizes the same part cold and preheated to 85 C, shows the gap,
// then demonstrates the operational consequence: a machine running hot
// under a cold map can be faulted inside the map's blind spot, while the
// hot map stays conservative at every temperature.
//
//   $ ./hot_characterization
#include <cstdio>

#include "os/cpupower.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sim/ocm.hpp"

using namespace pv;

namespace {

plugvolt::SafeStateMap characterize(const sim::CpuProfile& profile, double preheat_c) {
    sim::Machine machine(profile, 0x7E47);
    os::Kernel kernel(machine);
    plugvolt::CharacterizerConfig config;
    config.offset_step = Millivolts{2.0};
    config.die_preheat_c = preheat_c;
    plugvolt::Characterizer chr(kernel, config);
    return chr.characterize();
}

// Attack a machine pinned hot at fmax with an offset chosen inside the
// cold map's blind spot: safe per the cold map, unsafe on hot silicon.
std::uint64_t faults_in_blind_spot(const sim::CpuProfile& profile,
                                   const plugvolt::SafeStateMap& deployed_map,
                                   Millivolts park) {
    sim::Machine machine(profile, 0xB007);
    os::Kernel kernel(machine);
    plugvolt::Protector protector(kernel, deployed_map);
    protector.deploy(plugvolt::DeploymentLevel::KernelModule);

    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(profile.freq_max);
    machine.advance_to(machine.rail_settle_time());
    machine.set_die_temperature(85.0);  // a loaded laptop on a warm desk

    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(park, sim::VoltagePlane::Core));
    machine.advance(milliseconds(1.0));
    if (machine.crashed()) return 999999;
    machine.set_die_temperature(85.0);  // hold the temperature for the probe
    return machine.run_batch(1, sim::InstrClass::Imul, 2'000'000).faults;
}

}  // namespace

int main() {
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();
    std::printf("characterizing %s cold (ambient) and hot (85 C)...\n\n",
                profile.codename.c_str());
    const plugvolt::SafeStateMap cold = characterize(profile, 0.0);
    const plugvolt::SafeStateMap hot = characterize(profile, 85.0);

    const Megahertz fmax = profile.freq_max;
    std::printf("onset at %.1f GHz:  cold map %.0f mV   hot map %.0f mV   (gap %.0f mV)\n",
                fmax.gigahertz(), cold.safe_limit(fmax, Millivolts{0.0}).value(),
                hot.safe_limit(fmax, Millivolts{0.0}).value(),
                (hot.safe_limit(fmax, Millivolts{0.0}) -
                 cold.safe_limit(fmax, Millivolts{0.0}))
                    .value());
    std::printf("maximal safe state: cold map %.0f mV   hot map %.0f mV\n\n",
                cold.maximal_safe_offset().value(), hot.maximal_safe_offset().value());

    // The blind spot: tolerated by the cold map's module (outside its
    // guard band), but already inside the hot silicon's fault band.
    const Millivolts park = cold.safe_limit(fmax, Millivolts{16.0});
    std::printf("attacker parks at %.0f mV on an 85 C machine:\n", park.value());
    const std::uint64_t cold_faults = faults_in_blind_spot(profile, cold, park);
    const std::uint64_t hot_faults = faults_in_blind_spot(profile, hot, park);
    std::printf("  deployed COLD map: %llu faults leaked %s\n",
                static_cast<unsigned long long>(cold_faults),
                cold_faults > 0 ? "(blind spot confirmed)" : "");
    std::printf("  deployed HOT map:  %llu faults (the hot map restores the command "
                "before the band)\n",
                static_cast<unsigned long long>(hot_faults));
    std::printf("\nrule: characterize at the highest die temperature the deployment "
                "will see,\nor budget the thermal shift (~%.2f mV/K here) into the "
                "guard band.\n",
                profile.thermal.delay_per_c * 1000.0 * 0.22);  // dD/dV ~ 0.22 ps/mV
    return hot_faults == 0 ? 0 : 1;
}
