// Differential fault analysis on AES-128 under undervolting, end to end
// (Plundervolt's second weaponization, Piret-Quisquater 2003 analysis):
// park the rail just above the crash boundary, farm faulty ciphertexts,
// filter by the round-8 four-byte difference shape, recover the last
// round key per diagonal, invert the key schedule — then show the same
// campaign starving under PlugVolt.
//
//   $ ./aes_dfa_attack
#include <cstdio>

#include "os/cpupower.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sim/ocm.hpp"
#include "workload/crypto/aes_dfa.hpp"

using namespace pv;

namespace {

struct CampaignResult {
    int encryptions = 0;
    int faulty = 0;
    int usable = 0;
    std::optional<crypto::AesKey> key;
};

CampaignResult campaign(sim::Machine& machine, os::Kernel& kernel,
                        const crypto::AesKey& key, int budget) {
    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(machine.profile().freq_max);
    machine.advance_to(machine.rail_settle_time());
    const Millivolts park =
        machine.fault_model().crash_offset(machine.profile().freq_max) + Millivolts{1.5};
    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(park, sim::VoltagePlane::Core));
    machine.advance_to(machine.rail_settle_time() + microseconds(20.0));

    crypto::FaultableAes aes(machine, 1, key);
    crypto::AesDfa dfa;
    Rng rng(0xDFA);
    CampaignResult r;
    for (; r.encryptions < budget && !dfa.ready(3) && !machine.crashed(); ++r.encryptions) {
        crypto::AesBlock pt{};
        for (auto& b : pt) b = static_cast<std::uint8_t>(rng.uniform_below(256));
        const auto enc = aes.encrypt(pt);
        if (!enc.faulted) continue;
        ++r.faulty;
        // The attacker compares against a clean encryption of the same
        // plaintext (chosen-plaintext, as in the Plundervolt PoC) and
        // keeps pairs whose difference matches a round-8 fault shape.
        if (dfa.add_pair({crypto::aes128_encrypt(key, pt), enc.ciphertext})) ++r.usable;
    }
    if (dfa.ready(2)) r.key = dfa.recover_key();
    return r;
}

void print_key(const char* tag, const crypto::AesKey& key) {
    std::printf("%s", tag);
    for (const auto b : key) std::printf("%02x", b);
    std::printf("\n");
}

}  // namespace

int main() {
    const crypto::AesKey secret = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                   0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    print_key("victim AES-128 key: ", secret);
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();

    std::printf("\n[1] unprotected machine:\n");
    {
        sim::Machine machine(profile, 31337);
        os::Kernel kernel(machine);
        const CampaignResult r = campaign(machine, kernel, secret, 300'000);
        std::printf("  %d encryptions, %d faulty ciphertexts, %d matched the round-8 "
                    "diagonal shape\n",
                    r.encryptions, r.faulty, r.usable);
        if (r.key) {
            print_key("  recovered key:      ", *r.key);
            std::printf("  => %s\n", *r.key == secret ? "KEY RECOVERED" : "wrong key?!");
        } else {
            std::printf("  => not enough usable faults\n");
        }
    }

    std::printf("\n[2] PlugVolt-protected machine, same campaign:\n");
    {
        sim::Machine machine(profile, 31337);
        os::Kernel kernel(machine);
        plugvolt::CharacterizerConfig sweep;
        sweep.offset_step = Millivolts{2.0};
        plugvolt::Characterizer characterizer(kernel, sweep);
        plugvolt::Protector protector(kernel, characterizer.characterize());
        protector.deploy(plugvolt::DeploymentLevel::KernelModule);

        const CampaignResult r = campaign(machine, kernel, secret, 300'000);
        std::printf("  %d encryptions, %d faulty ciphertexts, %d usable\n", r.encryptions,
                    r.faulty, r.usable);
        std::printf("  => %s\n", r.key ? "KEY RECOVERED (?!)" : "key is safe");
        return r.key ? 1 : 0;
    }
}
