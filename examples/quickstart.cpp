// PlugVolt quickstart: protect a machine against DVFS fault attacks in
// four steps.
//
//   $ ./quickstart
//
// 1. Boot a simulated Comet Lake package.
// 2. Characterize its safe/unsafe (frequency, voltage-offset) states
//    (the paper's Algorithm 2).
// 3. Deploy the polling countermeasure kernel module (Algorithm 3).
// 4. Launch Plundervolt against it and watch it fail.
#include <cstdio>

#include "attacks/plundervolt.hpp"
#include "plugvolt/plugvolt.hpp"

int main() {
    using namespace pv;

    // 1. A 4-core Comet Lake i7-10510U with deterministic seed.
    sim::Machine machine(sim::cometlake_i7_10510u(), /*seed=*/2024);
    os::Kernel kernel(machine);
    std::printf("booted %s (%s, microcode %s)\n", machine.profile().name.c_str(),
                machine.profile().codename.c_str(), machine.profile().microcode.c_str());

    // 2. Characterize: sweep frequency x undervolt-offset, 10^6 imul per
    //    cell, record fault onset and crash boundary per frequency.
    plugvolt::CharacterizerConfig sweep;
    sweep.offset_step = Millivolts{2.0};  // 2 mV resolution keeps this instant
    plugvolt::Characterizer characterizer(kernel, sweep);
    const plugvolt::SafeStateMap map = characterizer.characterize();
    std::printf("characterized %zu frequency points (%u crash-reboots during the sweep)\n",
                map.rows().size(), characterizer.crash_count());
    std::printf("maximal safe state: %.0f mV undervolt is safe at EVERY frequency\n",
                map.maximal_safe_offset().value());

    // 3. Protect.  DeploymentLevel::Microcode / HardwareMsr model the
    //    vendor-level variants from Sec. 5 of the paper.
    plugvolt::Protector protector(kernel, map);
    protector.deploy(plugvolt::DeploymentLevel::KernelModule);
    std::printf("countermeasure deployed: %s\n", plugvolt::to_string(*protector.level()));

    // 4. Attack.  Plundervolt scans for a faulting offset, then tries to
    //    fault an RSA-CRT signature and factor the key (Bellcore).
    attack::Plundervolt attack;
    const attack::AttackResult result = attack.run(kernel);
    std::printf("\nplundervolt result: faults=%llu weaponized=%s crashes=%u\n",
                static_cast<unsigned long long>(result.faults_observed),
                result.weaponized ? "YES" : "no", result.crashes);
    std::printf("module stats: %llu polls, %llu detections, %llu restores\n",
                static_cast<unsigned long long>(protector.polling_module()->metrics().polls),
                static_cast<unsigned long long>(
                    protector.polling_module()->metrics().detections),
                static_cast<unsigned long long>(
                    protector.polling_module()->metrics().restore_writes));
    std::printf("%s\n", result.weaponized ? "!! machine compromised"
                                          : "machine protected: every unsafe state was "
                                            "detected and repaired before faults landed");
    return result.weaponized ? 1 : 0;
}
