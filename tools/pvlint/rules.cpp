// pv-lint — token rules and the run() driver.
#include "pvlint.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace pvlint {

namespace detail {
// layers.cpp
void check_layering(const std::map<std::string, SourceFile>& files,
                    std::vector<Finding>& findings);
}  // namespace detail

namespace {

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.substr(0, prefix.size()) == prefix;
}

/// Positions (1-based column irrelevant; we only need the line) where
/// `ident` appears as a whole identifier in `line`.
std::vector<std::size_t> ident_occurrences(std::string_view line, std::string_view ident) {
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = line.find(ident, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        const std::size_t end = pos + ident.size();
        const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
        if (left_ok && right_ok) hits.push_back(pos);
        pos += ident.size();
    }
    return hits;
}

/// The last non-space character before `pos`, or '\0'.
char prev_nonspace(std::string_view line, std::size_t pos) {
    while (pos > 0) {
        --pos;
        if (!std::isspace(static_cast<unsigned char>(line[pos]))) return line[pos];
    }
    return '\0';
}

/// True when the identifier at `pos` is reached via `.` or `->` (a member
/// call).  A lone '>' (template bracket) does not count.
bool is_member_access(std::string_view line, std::size_t pos) {
    std::size_t p = pos;
    while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1]))) --p;
    if (p == 0) return false;
    if (line[p - 1] == '.') return true;
    return p >= 2 && line[p - 1] == '>' && line[p - 2] == '-';
}

/// True when the identifier at `pos` is qualified as std:: (handles
/// "std::rand" and "::std::rand").
bool is_std_qualified(std::string_view line, std::size_t pos) {
    std::size_t p = pos;
    while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1]))) --p;
    if (p < 2 || line[p - 1] != ':' || line[p - 2] != ':') return false;
    p -= 2;
    return p >= 3 && line.substr(p - 3, 3) == "std";
}

/// Next non-space character at/after `pos`, or '\0'.
char next_nonspace(std::string_view line, std::size_t pos) {
    while (pos < line.size()) {
        if (!std::isspace(static_cast<unsigned char>(line[pos]))) return line[pos];
        ++pos;
    }
    return '\0';
}

struct RuleContext {
    const Config& config;
    std::vector<Finding>& findings;
};

void emit(RuleContext& ctx, const SourceFile& file, std::size_t line_idx, Rule rule,
          std::string message) {
    ctx.findings.push_back(
        {file.rel, static_cast<int>(line_idx + 1), rule, std::move(message)});
}

// ---- rule 1: determinism ------------------------------------------------

void rule_determinism_rng(RuleContext& ctx, const SourceFile& file) {
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        if (!ident_occurrences(line, "random_device").empty())
            emit(ctx, file, i, Rule::DeterminismRng,
                 "std::random_device is nondeterministic; seed pv::Rng via mix_seed instead");
        for (const char* fn : {"rand", "srand"}) {
            for (const std::size_t pos : ident_occurrences(line, fn)) {
                if (next_nonspace(line, pos + std::string_view(fn).size()) != '(') continue;
                if (is_member_access(line, pos)) continue;  // e.g. obj.rand()
                const char before = prev_nonspace(line, pos);
                if (before == ':' && !is_std_qualified(line, pos)) continue;  // Foo::rand()
                emit(ctx, file, i, Rule::DeterminismRng,
                     std::string(fn) +
                         "() draws from hidden global state; every random draw must come "
                         "from a seeded pv::Rng so runs replay bit-exactly");
            }
        }
    }
}

void rule_determinism_clock(RuleContext& ctx, const SourceFile& file) {
    for (const std::string& allowed : ctx.config.clock_allowlist)
        if (file.rel == allowed) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        for (const char* clock : {"system_clock", "steady_clock", "high_resolution_clock",
                                  "clock_gettime", "gettimeofday"}) {
            if (!ident_occurrences(file.code[i], clock).empty())
                emit(ctx, file, i, Rule::DeterminismClock,
                     std::string(clock) +
                         " reads wall/host time; simulated time comes from the event queue "
                         "(Machine::now), and bench timing belongs in bench_common.hpp's "
                         "sanctioned Stopwatch");
        }
    }
}

void rule_determinism_unordered(RuleContext& ctx, const SourceFile& file) {
    const bool fingerprint_path =
        starts_with(file.rel, "src/sim/") || starts_with(file.rel, "src/plugvolt/") ||
        starts_with(file.rel, "src/campaign/") || starts_with(file.rel, "src/trace/") ||
        starts_with(file.rel, "src/fleet/") || starts_with(file.rel, "src/infer/") ||
        starts_with(file.rel, "src/serve/");
    if (!fingerprint_path) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        for (const char* name : {"unordered_map", "unordered_set", "unordered_multimap",
                                 "unordered_multiset"}) {
            if (!ident_occurrences(file.code[i], name).empty())
                emit(ctx, file, i, Rule::DeterminismUnordered,
                     std::string("std::") + name +
                         " iterates in hash order, which is ABI/seed dependent — in a "
                         "fingerprint-bearing subsystem use pv::FlatMap (canonical sorted "
                         "iteration) or std::map");
        }
    }
}

// ---- rule 3: MSR safety -------------------------------------------------

// Builtin register numbers guarded even before the registry header is
// parsed; run() extends this with every value found in os/msr_regs.hpp.
constexpr std::uint64_t kBuiltinMsrValues[] = {0x150, 0x198, 0x199, 0x19C, 0x1A2, 0x1F0};

void rule_msr_constant(RuleContext& ctx, const SourceFile& file,
                       const std::set<std::uint64_t>& msr_values) {
    if (!starts_with(file.rel, "src/")) return;
    if (file.rel == "src/os/msr_regs.hpp") return;  // the one sanctioned home
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (std::size_t pos = 0; pos + 2 < line.size() + 1; ++pos) {
            if (line[pos] != '0' || pos + 1 >= line.size() ||
                (line[pos + 1] != 'x' && line[pos + 1] != 'X'))
                continue;
            if (pos > 0 && is_ident_char(line[pos - 1])) continue;
            std::size_t end = pos + 2;
            while (end < line.size() && std::isxdigit(static_cast<unsigned char>(line[end])))
                ++end;
            if (end == pos + 2 || (end < line.size() && is_ident_char(line[end]))) {
                pos = end - 1;
                continue;
            }
            const std::uint64_t value = std::stoull(line.substr(pos + 2, end - pos - 2),
                                                    nullptr, 16);
            if (msr_values.count(value) != 0) {
                char buf[16];
                std::snprintf(buf, sizeof buf, "0x%llX",
                              static_cast<unsigned long long>(value));
                emit(ctx, file, i, Rule::MsrConstant,
                     std::string("raw MSR register number ") + buf +
                         ": name it through the central registry src/os/msr_regs.hpp so "
                         "every MSR the tree touches is enumerable in one place");
            }
            pos = end - 1;
        }
    }
}

void rule_msr_raw_access(RuleContext& ctx, const SourceFile& file) {
    if (!starts_with(file.rel, "src/")) return;
    if (starts_with(file.rel, "src/sim/") || starts_with(file.rel, "src/os/")) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (const char* fn : {"write_msr", "read_msr"}) {
            for (const std::size_t pos : ident_occurrences(line, fn)) {
                if (!is_member_access(line, pos)) continue;
                emit(ctx, file, i, Rule::MsrRawAccess,
                     std::string(".") + fn +
                         "() is machine-level MSR access that bypasses the audited "
                         "MsrDriver (no observer, no fault injection, no cycle "
                         "accounting); go through Kernel::msr() try_* instead");
            }
        }
    }
}

// ---- rule 4: concurrency annotations -----------------------------------

void rule_concurrency_primitive(RuleContext& ctx, const SourceFile& file) {
    if (!starts_with(file.rel, "src/")) return;
    constexpr const char* kPrimitives[] = {
        "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
        "condition_variable", "condition_variable_any", "lock_guard",
        "unique_lock", "scoped_lock", "shared_lock",
    };
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (const char* name : kPrimitives) {
            for (const std::size_t pos : ident_occurrences(line, name)) {
                if (!is_std_qualified(line, pos)) continue;
                emit(ctx, file, i, Rule::ConcurrencyPrimitive,
                     std::string("std::") + name +
                         " is invisible to the thread-safety analysis; use the annotated "
                         "pv::Mutex / pv::MutexLock / pv::CondVar (util/mutex.hpp)");
            }
        }
    }
}

void rule_concurrency_guard(RuleContext& ctx, const SourceFile& file) {
    if (!starts_with(file.rel, "src/")) return;
    if (file.rel == "src/util/mutex.hpp" || file.rel == "src/util/thread_annotations.hpp")
        return;  // the wrapper and the macro definitions themselves
    static const std::regex decl(
        R"(^\s*(?:mutable\s+)?(?:::)?(?:pv::)?Mutex\s+[A-Za-z_]\w*\s*;)");
    bool has_guarded_by = false;
    for (const std::string& line : file.code)
        if (line.find("PV_GUARDED_BY") != std::string::npos) has_guarded_by = true;
    if (has_guarded_by) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        if (std::regex_search(file.code[i], decl))
            emit(ctx, file, i, Rule::ConcurrencyGuard,
                 "this Mutex guards no PV_GUARDED_BY field, so the thread-safety "
                 "analysis cannot connect any data to it; annotate what it protects "
                 "(or waive with the reason it guards external state)");
    }
}

// ---- rule 5: error paths ------------------------------------------------

void rule_error_path_throw(RuleContext& ctx, const SourceFile& file) {
    const bool in_scope = starts_with(file.rel, "src/resilience/") ||
                          starts_with(file.rel, "src/plugvolt/polling_module");
    if (!in_scope) return;
    for (std::size_t i = 0; i < file.code.size(); ++i) {
        const std::string& line = file.code[i];
        for (const char* fn : {"rdmsr", "wrmsr", "ioctl_rdmsr", "ioctl_wrmsr"}) {
            for (const std::size_t pos : ident_occurrences(line, fn)) {
                if (!is_member_access(line, pos)) continue;
                emit(ctx, file, i, Rule::ErrorPathThrow,
                     std::string(".") + fn +
                         "() is the throwing legacy driver API; on the resilience/"
                         "degradation paths environment faults are domain values — use "
                         "try_" + (starts_with(fn, "ioctl_") ? std::string(fn).substr(6)
                                                             : std::string(fn)) +
                         "() and branch on MsrStatus");
            }
        }
    }
}

// ---- driver -------------------------------------------------------------

bool scannable_extension(const std::filesystem::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".hh" ||
           ext == ".ipp";
}

/// Every `= 0x...;` value in the registry header joins the guarded set.
std::set<std::uint64_t> msr_registry_values(const std::map<std::string, SourceFile>& files) {
    std::set<std::uint64_t> values(std::begin(kBuiltinMsrValues), std::end(kBuiltinMsrValues));
    const auto it = files.find("src/os/msr_regs.hpp");
    if (it == files.end()) return values;
    static const std::regex assign(R"(=\s*0[xX]([0-9A-Fa-f]+)\s*;)");
    for (const std::string& line : it->second.code) {
        std::smatch m;
        if (std::regex_search(line, m, assign))
            values.insert(std::stoull(m[1].str(), nullptr, 16));
    }
    return values;
}

}  // namespace

Report run(const Config& config) {
    namespace fs = std::filesystem;
    Report report;

    std::map<std::string, SourceFile> files;
    for (const std::string& dir : config.scan_dirs) {
        const fs::path base = config.root / dir;
        if (!fs::exists(base)) continue;
        for (const auto& entry : fs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file() || !scannable_extension(entry.path())) continue;
            std::string rel = fs::relative(entry.path(), config.root).generic_string();
            const bool excluded =
                std::any_of(config.excludes.begin(), config.excludes.end(),
                            [&](const std::string& prefix) {
                                return rel.size() >= prefix.size() &&
                                       rel.compare(0, prefix.size(), prefix) == 0;
                            });
            if (excluded) continue;
            SourceFile file = load_source(entry.path(), rel);
            files.emplace(std::move(rel), std::move(file));
        }
    }
    report.files_scanned = static_cast<int>(files.size());

    const std::set<std::uint64_t> msr_values = msr_registry_values(files);
    RuleContext ctx{config, report.findings};
    for (const auto& [rel, file] : files) {
        rule_determinism_rng(ctx, file);
        rule_determinism_clock(ctx, file);
        rule_determinism_unordered(ctx, file);
        rule_msr_constant(ctx, file, msr_values);
        rule_msr_raw_access(ctx, file);
        rule_concurrency_primitive(ctx, file);
        rule_concurrency_guard(ctx, file);
        rule_error_path_throw(ctx, file);
        for (const Finding& f : file.waiver_findings) report.findings.push_back(f);
    }
    detail::check_layering(files, report.findings);

    // Inline waivers: a well-formed waiver targeting the finding's line
    // and naming its rule suppresses it.
    for (Finding& f : report.findings) {
        if (f.rule == Rule::Waiver) continue;
        const auto it = files.find(f.file);
        if (it == files.end()) continue;
        const auto w = it->second.waivers.find(f.line);
        if (w != it->second.waivers.end() && w->second.has_reason &&
            w->second.rules.count(f.rule) != 0)
            f.waived = true;
    }

    std::sort(report.findings.begin(), report.findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return static_cast<int>(a.rule) < static_cast<int>(b.rule);
              });
    return report;
}

}  // namespace pvlint
