// pv-lint — source loading, comment/string blanking, waiver parsing.
#include "pvlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace pvlint {

namespace {

const char* kRuleNames[] = {
    "determinism-rng",  "determinism-clock",     "determinism-unordered",
    "layering",         "layering-cycle",        "msr-constant",
    "msr-raw-access",   "concurrency-primitive", "concurrency-guard",
    "error-path-throw", "waiver",
};

}  // namespace

const char* rule_name(Rule rule) { return kRuleNames[static_cast<int>(rule)]; }

std::optional<Rule> rule_from_name(std::string_view name) {
    for (const Rule rule : all_rules())
        if (name == rule_name(rule)) return rule;
    return std::nullopt;
}

const std::vector<Rule>& all_rules() {
    static const std::vector<Rule> rules = {
        Rule::DeterminismRng,  Rule::DeterminismClock,     Rule::DeterminismUnordered,
        Rule::Layering,        Rule::LayeringCycle,        Rule::MsrConstant,
        Rule::MsrRawAccess,    Rule::ConcurrencyPrimitive, Rule::ConcurrencyGuard,
        Rule::ErrorPathThrow,  Rule::Waiver,
    };
    return rules;
}

int Report::unwaived() const {
    return static_cast<int>(std::count_if(
        findings.begin(), findings.end(),
        [](const Finding& f) { return !f.waived && !f.baselined; }));
}

// Blank comments and string/char literals with spaces so token rules see
// only code, while every byte keeps its (line, column).  Handles //,
// /* */, "..." with escapes, '...' with escapes, and R"delim(...)delim".
std::string strip_comments_and_strings(std::string_view text) {
    std::string out(text);
    enum class State { Code, LineComment, BlockComment, String, Char, RawString };
    State state = State::Code;
    std::string raw_delim;  // the ")delim" closer for raw strings
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::Code:
                if (c == '/' && next == '/') {
                    state = State::LineComment;
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                                       text[i - 1] != '_'))) {
                    // R"delim( ... opens a raw string
                    std::size_t p = i + 2;
                    while (p < text.size() && text[p] != '(') ++p;
                    raw_delim = ")" + std::string(text.substr(i + 2, p - (i + 2))) + "\"";
                    for (std::size_t k = i; k <= p && k < text.size(); ++k)
                        if (out[k] != '\n') out[k] = ' ';
                    i = p;
                    state = State::RawString;
                } else if (c == '"') {
                    state = State::String;
                    out[i] = ' ';
                } else if (c == '\'') {
                    state = State::Char;
                    out[i] = ' ';
                }
                break;
            case State::LineComment:
                if (c == '\n')
                    state = State::Code;
                else
                    out[i] = ' ';
                break;
            case State::BlockComment:
                if (c == '*' && next == '/') {
                    out[i] = out[i + 1] = ' ';
                    ++i;
                    state = State::Code;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::String:
                if (c == '\\' && next != '\0') {
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c == '"') {
                    out[i] = ' ';
                    state = State::Code;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::Char:
                if (c == '\\' && next != '\0') {
                    out[i] = out[i + 1] = ' ';
                    ++i;
                } else if (c == '\'') {
                    out[i] = ' ';
                    state = State::Code;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::RawString:
                if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                    for (std::size_t k = i; k < i + raw_delim.size(); ++k) out[k] = ' ';
                    i += raw_delim.size() - 1;
                    state = State::Code;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

namespace {

std::vector<std::string> split_lines(std::string_view text) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) {
            lines.emplace_back(text.substr(start));
            break;
        }
        lines.emplace_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

bool is_blank(std::string_view s) {
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return std::isspace(static_cast<unsigned char>(c)); });
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

// Parse one "pv-lint:" comment on raw line `lineno` (1-based).  The
// waiver targets its own line, or — when the line holds nothing but
// comment — the next line that carries code (so a waiver may sit atop a
// multi-line comment block).  Malformed waivers become Rule::Waiver
// findings and suppress nothing.
void parse_waiver(SourceFile& file, int lineno, std::size_t marker_pos) {
    const std::string& raw = file.raw[static_cast<std::size_t>(lineno - 1)];
    const std::string& code = file.code[static_cast<std::size_t>(lineno - 1)];
    int target = lineno;
    if (is_blank(code)) {
        target = lineno + 1;
        while (target <= static_cast<int>(file.code.size()) &&
               is_blank(file.code[static_cast<std::size_t>(target - 1)]))
            ++target;
    }

    auto malformed = [&](const std::string& why) {
        file.waiver_findings.push_back(
            {file.rel, lineno, Rule::Waiver, "malformed pv-lint waiver: " + why});
    };

    std::string_view rest = std::string_view(raw).substr(marker_pos);
    rest.remove_prefix(std::string_view("pv-lint:").size());
    rest = trim(rest);
    if (rest.substr(0, 6) != "allow(") {
        malformed("expected 'allow(<rule>[,<rule>...]) <reason>'");
        return;
    }
    rest.remove_prefix(6);
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
        malformed("unterminated allow(");
        return;
    }

    Waiver waiver;
    waiver.comment_line = lineno;
    std::string_view list = rest.substr(0, close);
    while (!list.empty()) {
        const std::size_t comma = list.find(',');
        const std::string_view name = trim(list.substr(0, comma));
        const std::optional<Rule> rule = rule_from_name(name);
        if (!rule || *rule == Rule::Waiver) {
            malformed("unknown rule '" + std::string(name) + "'");
            return;
        }
        waiver.rules.insert(*rule);
        if (comma == std::string_view::npos) break;
        list.remove_prefix(comma + 1);
    }
    if (waiver.rules.empty()) {
        malformed("empty rule list");
        return;
    }
    const std::string_view reason = trim(rest.substr(close + 1));
    waiver.has_reason = !reason.empty();
    if (!waiver.has_reason)
        malformed("reason is mandatory after allow(...)");
    file.waivers.emplace(target, waiver);
}

}  // namespace

SourceFile load_source(const std::filesystem::path& path, std::string rel) {
    SourceFile file;
    file.rel = std::move(rel);
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    file.raw = split_lines(text);
    file.code = split_lines(strip_comments_and_strings(text));
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
        const std::size_t pos = file.raw[i].find("pv-lint:");
        if (pos != std::string::npos) parse_waiver(file, static_cast<int>(i + 1), pos);
    }
    return file;
}

std::string baseline_key(const Finding& finding) {
    return finding.file + ":" + std::to_string(finding.line) + ":" + rule_name(finding.rule);
}

std::set<std::string> load_baseline(const std::filesystem::path& path) {
    std::set<std::string> keys;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const std::string_view t = trim(line);
        if (t.empty() || t.front() == '#') continue;
        keys.insert(std::string(t));
    }
    return keys;
}

void apply_baseline(Report& report, const std::set<std::string>& baseline) {
    for (Finding& f : report.findings) {
        if (f.rule == Rule::Waiver) continue;  // waiver hygiene is never baselined
        if (!f.waived && baseline.count(baseline_key(f)) != 0) f.baselined = true;
    }
}

}  // namespace pvlint
