// pv-lint — domain-contract static analyzer for the PlugVolt tree.
//
// Generic tooling (clang-tidy, -Wthread-safety, sanitizers) cannot see
// the contracts this repo's guarantees rest on: bit-exact replay
// fingerprints, the subsystem layering DAG, the audited-MSR-driver
// story, the annotated concurrency wrappers, and the no-throw error
// paths of the resilience layer.  pv-lint enforces those five contract
// families with a token-level scanner and an include-graph walker — no
// libclang, no compiler, so it runs anywhere the repo checks out
// (including the clang-free 1-CPU container the PR 2 sanitizer matrix
// cannot cover).
//
// Rule families (ids are what waivers and the baseline reference):
//   determinism-rng        std::random_device / rand() / srand() anywhere
//   determinism-clock      wall/monotonic clocks outside the sanctioned
//                          bench-timer allowlist (bench/bench_common.hpp)
//   determinism-unordered  unordered containers in fingerprint-bearing
//                          subsystems (src/sim, src/plugvolt,
//                          src/campaign, src/trace)
//   layering               cross-subsystem #include that climbs or ties
//                          the subsystem DAG; internal trace headers
//                          included from outside src/trace
//   layering-cycle         a cycle in the file-level include graph
//   msr-constant           a raw MSR register number (0x150, 0x198, ...)
//                          outside the central registry src/os/msr_regs.hpp
//   msr-raw-access         .write_msr()/.read_msr() machine-level access
//                          outside src/sim + src/os (must go through the
//                          audited MsrDriver)
//   concurrency-primitive  std::mutex / std::condition_variable & friends
//                          instead of the annotated pv::Mutex/CondVar
//   concurrency-guard      a Mutex declaration in a file with no
//                          PV_GUARDED_BY field (a lock that guards
//                          nothing the analysis can see)
//   error-path-throw       the throwing legacy driver API (.rdmsr(),
//                          .wrmsr(), .ioctl_*()) in src/resilience or the
//                          polling/degradation paths, where domain
//                          outcomes must be values (try_*), not exceptions
//   waiver                 a malformed pv-lint waiver comment (missing
//                          reason, unknown rule); never waivable itself
//
// Waiver syntax, reason mandatory:
//   code();  // pv-lint: allow(rule-id[,rule-id...]) why this is sound
// A waiver on a comment-only line applies to the next line instead.
//
// Baseline: a committed file of "file:line:rule" keys (see
// tools/pvlint/baseline.txt) accepted without inline waivers — the
// escape hatch for adopting the linter on a tree with legacy findings.
// This tree ships lint-clean, so the committed baseline is empty.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace pvlint {

enum class Rule {
    DeterminismRng,
    DeterminismClock,
    DeterminismUnordered,
    Layering,
    LayeringCycle,
    MsrConstant,
    MsrRawAccess,
    ConcurrencyPrimitive,
    ConcurrencyGuard,
    ErrorPathThrow,
    Waiver,
};

/// Kebab-case rule id, e.g. "determinism-rng".
[[nodiscard]] const char* rule_name(Rule rule);
[[nodiscard]] std::optional<Rule> rule_from_name(std::string_view name);
/// Every real rule id (excludes nothing; includes "waiver").
[[nodiscard]] const std::vector<Rule>& all_rules();

struct Finding {
    std::string file;  ///< root-relative, '/'-separated
    int line = 0;      ///< 1-based
    Rule rule = Rule::Waiver;
    std::string message;
    bool waived = false;     ///< suppressed by a well-formed inline waiver
    bool baselined = false;  ///< suppressed by the committed baseline
};

/// One inline waiver comment, keyed by the line it targets.
struct Waiver {
    std::set<Rule> rules;
    bool has_reason = false;
    int comment_line = 0;  ///< where the comment itself sits
};

/// A loaded source file: raw lines for waiver parsing, code lines with
/// comments and string/char literals blanked (spaces, line structure
/// preserved) for token rules.
struct SourceFile {
    std::string rel;
    std::vector<std::string> raw;
    std::vector<std::string> code;
    std::map<int, Waiver> waivers;          ///< target line -> waiver
    std::vector<Finding> waiver_findings;   ///< malformed waiver comments
};

struct Config {
    std::filesystem::path root;
    /// Directories under root to scan (first path component, e.g. "src").
    std::vector<std::string> scan_dirs = {"src", "bench", "tests", "examples"};
    /// Root-relative path prefixes never scanned (fixtures, build trees).
    std::vector<std::string> excludes = {"tests/lint_fixtures", "build"};
    /// Files where monotonic-clock use is sanctioned (the bench timer).
    std::vector<std::string> clock_allowlist = {"bench/bench_common.hpp"};
};

struct Report {
    std::vector<Finding> findings;  ///< sorted by (file, line, rule)
    int files_scanned = 0;
    [[nodiscard]] int unwaived() const;
};

/// Load + blank + waiver-parse one file (exposed for tests).
[[nodiscard]] SourceFile load_source(const std::filesystem::path& path, std::string rel);
/// Blank comments and string/char literals, preserving line structure.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view text);

/// Run every rule over the tree under config.root.
[[nodiscard]] Report run(const Config& config);

/// Baseline keys are "file:line:rule".
[[nodiscard]] std::string baseline_key(const Finding& finding);
[[nodiscard]] std::set<std::string> load_baseline(const std::filesystem::path& path);
/// Mark findings whose key appears in the baseline ("waiver" findings are
/// never baselinable).
void apply_baseline(Report& report, const std::set<std::string>& baseline);

void write_text(const Report& report, std::ostream& out, bool show_suppressed = false);
void write_json(const Report& report, std::ostream& out);
void write_baseline(const Report& report, std::ostream& out);

}  // namespace pvlint
