// pv-lint CLI.
//
//   pvlint --root <repo> [options]
//
// Exit codes: 0 clean, 1 blocking findings, 2 usage/environment error.
#include <cstring>
#include <fstream>
#include <iostream>

#include "pvlint.hpp"

namespace {

int usage(std::ostream& out, int code) {
    out << "usage: pvlint --root DIR [options]\n"
           "  --root DIR             repository root to scan (required)\n"
           "  --baseline FILE        baseline file (default: ROOT/tools/pvlint/baseline.txt)\n"
           "  --no-baseline          ignore any baseline file\n"
           "  --json FILE            write the machine-readable report\n"
           "  --write-baseline FILE  accept every current finding into FILE and exit 0\n"
           "  --show-suppressed      also print waived/baselined findings\n"
           "  --list-rules           print every rule id and exit\n";
    return code;
}

}  // namespace

int main(int argc, char** argv) {
    pvlint::Config config;
    std::filesystem::path baseline_path;
    std::filesystem::path json_path;
    std::filesystem::path write_baseline_path;
    bool no_baseline = false;
    bool show_suppressed = false;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "pvlint: " << arg << " needs a value\n";
                std::exit(usage(std::cerr, 2));
            }
            return argv[++i];
        };
        if (arg == "--root") {
            config.root = value();
        } else if (arg == "--baseline") {
            baseline_path = value();
        } else if (arg == "--no-baseline") {
            no_baseline = true;
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--write-baseline") {
            write_baseline_path = value();
        } else if (arg == "--show-suppressed") {
            show_suppressed = true;
        } else if (arg == "--list-rules") {
            for (const pvlint::Rule rule : pvlint::all_rules())
                std::cout << pvlint::rule_name(rule) << '\n';
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "pvlint: unknown option '" << arg << "'\n";
            return usage(std::cerr, 2);
        }
    }
    if (config.root.empty()) {
        std::cerr << "pvlint: --root is required\n";
        return usage(std::cerr, 2);
    }
    if (!std::filesystem::exists(config.root / "src")) {
        std::cerr << "pvlint: no src/ under " << config.root << " — wrong --root?\n";
        return 2;
    }

    pvlint::Report report = pvlint::run(config);

    if (!no_baseline) {
        if (baseline_path.empty()) {
            const auto candidate = config.root / "tools" / "pvlint" / "baseline.txt";
            if (std::filesystem::exists(candidate)) baseline_path = candidate;
        }
        if (!baseline_path.empty())
            pvlint::apply_baseline(report, pvlint::load_baseline(baseline_path));
    }

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path);
        if (!out) {
            std::cerr << "pvlint: cannot write " << write_baseline_path << '\n';
            return 2;
        }
        pvlint::write_baseline(report, out);
        std::cout << "pvlint: baseline written to " << write_baseline_path << '\n';
        return 0;
    }
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "pvlint: cannot write " << json_path << '\n';
            return 2;
        }
        pvlint::write_json(report, out);
    }

    pvlint::write_text(report, std::cout, show_suppressed);
    return report.unwaived() == 0 ? 0 : 1;
}
