// pv-lint — text, JSON, and baseline report writers.
#include "pvlint.hpp"

#include <ostream>

namespace pvlint {

namespace {

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

void write_text(const Report& report, std::ostream& out, bool show_suppressed) {
    int waived = 0;
    int baselined = 0;
    for (const Finding& f : report.findings) {
        if (f.waived) {
            ++waived;
            if (!show_suppressed) continue;
        } else if (f.baselined) {
            ++baselined;
            if (!show_suppressed) continue;
        }
        out << f.file << ':' << f.line << ": [" << rule_name(f.rule) << "] " << f.message;
        if (f.waived) out << " (waived)";
        if (f.baselined) out << " (baselined)";
        out << '\n';
    }
    out << "pv-lint: " << report.files_scanned << " files, " << report.findings.size()
        << " findings (" << waived << " waived, " << baselined << " baselined, "
        << report.unwaived() << " blocking)\n";
}

void write_json(const Report& report, std::ostream& out) {
    out << "{\n  \"files_scanned\": " << report.files_scanned
        << ",\n  \"blocking\": " << report.unwaived() << ",\n  \"findings\": [";
    bool first = true;
    for (const Finding& f : report.findings) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
            << ", \"rule\": \"" << rule_name(f.rule) << "\", \"waived\": "
            << (f.waived ? "true" : "false") << ", \"baselined\": "
            << (f.baselined ? "true" : "false") << ", \"message\": \""
            << json_escape(f.message) << "\"}";
    }
    out << (first ? "]" : "\n  ]") << "\n}\n";
}

void write_baseline(const Report& report, std::ostream& out) {
    out << "# pv-lint baseline: findings accepted without inline waivers.\n"
           "# One \"file:line:rule\" key per line; regenerate with\n"
           "#   pvlint --root . --write-baseline tools/pvlint/baseline.txt\n"
           "# Prefer inline waivers (searchable, reasoned, move with the code);\n"
           "# the baseline exists for bulk adoption and should trend to empty.\n";
    for (const Finding& f : report.findings) {
        if (f.rule == Rule::Waiver || f.waived) continue;
        out << baseline_key(f) << '\n';
    }
}

}  // namespace pvlint
