// pv-lint — subsystem layering DAG and include-cycle detection.
//
// The layer model mirrors the CMake link graph (src/*/CMakeLists.txt):
// each subsystem has a rank, and a cross-subsystem include is legal only
// when it points at a STRICTLY lower rank.  Two virtual subsystems carve
// files out of their directories, exactly as the build already does:
//   - "check" is split: assert/state_hasher/invariant_registry (pv_check,
//     rank 1, util-only) vs msr_auditor (pv_check_audit, rank 5, needs
//     os + plugvolt);
//   - "msr-regs" is the single registry header os/msr_regs.hpp at rank 0,
//     includable from anywhere (it is how rule msr-constant stays
//     satisfiable).
// The trace subsystem is additionally reachable only through its tap
// headers (trace.hpp, metrics.hpp, event.hpp); recorder/bridge/export
// internals stay private — the util layer below trace is bridged through
// function-pointer taps (trace/bridge.cpp), never an include.
#include "pvlint.hpp"

#include <map>
#include <string>
#include <vector>

namespace pvlint {

namespace {

struct Layer {
    const char* name;
    int rank;
};

// Subsystem directory -> rank.  Keep in sync with DESIGN §5g when a new
// subsystem is added; pvlint flags includes of unknown subsystems so a
// new directory cannot silently bypass the DAG.
const std::map<std::string, Layer, std::less<>> kLayers = {
    {"util", {"util", 0}},           {"trace", {"trace", 1}},
    {"check", {"check", 1}},         {"resilience", {"resilience", 2}},
    {"sim", {"sim", 2}},             {"os", {"os", 3}},
    {"sgx", {"sgx", 4}},             {"plugvolt", {"plugvolt", 4}},
    {"workload", {"workload", 5}},   {"defenses", {"defenses", 5}},
    {"infer", {"infer", 5}},         {"attacks", {"attacks", 6}},
    {"fleet", {"fleet", 6}},         {"campaign", {"campaign", 7}},
    {"serve", {"serve", 8}},
};

const Layer kMsrRegs = {"msr-regs", 0};
const Layer kCheckAudit = {"check-audit", 5};

// Trace headers outsiders may include (the taps); everything else in
// src/trace is internal.
bool is_trace_tap(std::string_view inc) {
    return inc == "trace/trace.hpp" || inc == "trace/metrics.hpp" || inc == "trace/event.hpp";
}

// Classify a src-relative path like "sim/machine.hpp" (no "src/" prefix).
const Layer* classify(std::string_view src_rel) {
    if (src_rel == "os/msr_regs.hpp") return &kMsrRegs;
    if (src_rel.substr(0, 6) == "check/") {
        if (src_rel.find("msr_auditor") != std::string_view::npos) return &kCheckAudit;
        return &kLayers.find("check")->second;
    }
    const std::size_t slash = src_rel.find('/');
    if (slash == std::string_view::npos) return nullptr;
    const auto it = kLayers.find(src_rel.substr(0, slash));
    return it == kLayers.end() ? nullptr : &it->second;
}

// Project includes of the form #include "sub/path.hpp", with line numbers.
struct IncludeEdge {
    std::string target;  // as written, src-relative
    int line;
};

std::vector<IncludeEdge> project_includes(const SourceFile& file) {
    std::vector<IncludeEdge> edges;
    for (std::size_t i = 0; i < file.raw.size(); ++i) {
        // Includes survive blanking except the quoted path itself, so
        // parse the raw line but only when the code line confirms a
        // preprocessor directive (not a comment mentioning #include).
        const std::string& code = file.code[i];
        const std::size_t hash = code.find('#');
        if (hash == std::string::npos ||
            code.find("include", hash) == std::string::npos)
            continue;
        const std::string& raw = file.raw[i];
        const std::size_t open = raw.find('"');
        if (open == std::string::npos) continue;
        const std::size_t close = raw.find('"', open + 1);
        if (close == std::string::npos) continue;
        edges.push_back({raw.substr(open + 1, close - open - 1), static_cast<int>(i + 1)});
    }
    return edges;
}

}  // namespace

namespace detail {

// Both layering rules; files is the full scanned set (rel -> SourceFile).
void check_layering(const std::map<std::string, SourceFile>& files,
                    std::vector<Finding>& findings) {
    // --- DAG rule over src/ files -------------------------------------
    for (const auto& [rel, file] : files) {
        if (rel.substr(0, 4) != "src/") continue;
        const std::string src_rel = rel.substr(4);
        const Layer* from = classify(src_rel);
        if (from == nullptr) continue;  // loose file directly under src/
        for (const IncludeEdge& edge : project_includes(file)) {
            const Layer* to = classify(edge.target);
            if (to == nullptr) {
                findings.push_back(
                    {rel, edge.line, Rule::Layering,
                     "include \"" + edge.target +
                         "\" targets a subsystem unknown to the layer table "
                         "(register it in tools/pvlint/layers.cpp and DESIGN §5g)"});
                continue;
            }
            if (std::string_view(to->name) == "trace" &&
                std::string_view(from->name) != "trace" && !is_trace_tap(edge.target)) {
                findings.push_back(
                    {rel, edge.line, Rule::Layering,
                     "internal trace header \"" + edge.target +
                         "\": outside src/trace only the taps "
                         "(trace/trace.hpp, trace/metrics.hpp, trace/event.hpp) are includable"});
                continue;
            }
            if (std::string_view(from->name) == std::string_view(to->name)) continue;
            if (to->rank >= from->rank) {
                findings.push_back(
                    {rel, edge.line, Rule::Layering,
                     std::string("layering violation: ") + from->name + " (rank " +
                         std::to_string(from->rank) + ") must not include " + to->name +
                         " (rank " + std::to_string(to->rank) +
                         "); includes must point strictly down the subsystem DAG"});
            }
        }
    }

    // --- file-level include-cycle detection ---------------------------
    // Edges resolve "sub/file.hpp" -> "src/sub/file.hpp" when that file
    // is in the scanned set; DFS colors detect back edges.
    std::map<std::string, std::vector<IncludeEdge>> graph;
    for (const auto& [rel, file] : files) {
        if (rel.substr(0, 4) != "src/") continue;
        for (const IncludeEdge& edge : project_includes(file)) {
            const std::string resolved = "src/" + edge.target;
            if (files.count(resolved) != 0) graph[rel].push_back({resolved, edge.line});
        }
    }
    enum class Color { White, Grey, Black };
    std::map<std::string, Color> color;
    std::vector<std::string> stack;

    // Iterative DFS; on a grey target, report the back edge once.
    struct Frame {
        std::string node;
        std::size_t next = 0;
    };
    for (const auto& [start, _] : graph) {
        if (color[start] != Color::White) continue;
        std::vector<Frame> frames{{start}};
        color[start] = Color::Grey;
        stack.push_back(start);
        while (!frames.empty()) {
            Frame& frame = frames.back();
            const auto it = graph.find(frame.node);
            if (it == graph.end() || frame.next >= it->second.size()) {
                color[frame.node] = Color::Black;
                stack.pop_back();
                frames.pop_back();
                continue;
            }
            const IncludeEdge& edge = it->second[frame.next++];
            if (color[edge.target] == Color::Grey) {
                std::string path;
                bool in_cycle = false;
                for (const std::string& node : stack) {
                    if (node == edge.target) in_cycle = true;
                    if (in_cycle) path += node + " -> ";
                }
                findings.push_back({frame.node, edge.line, Rule::LayeringCycle,
                                    "include cycle: " + path + edge.target});
            } else if (color[edge.target] == Color::White) {
                color[edge.target] = Color::Grey;
                stack.push_back(edge.target);
                frames.push_back({edge.target});
            }
        }
    }
}

}  // namespace detail

}  // namespace pvlint
