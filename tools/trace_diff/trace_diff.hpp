// trace-diff — first-divergence finder for exported trace files.
//
// The simulator's determinism story is only as strong as its witnesses.
// The ctest suites assert equality of state hashes and fingerprints,
// which tells you THAT two runs diverged but not WHERE.  trace-diff
// closes that gap for exported TraceSession files (the CSV schema
// `track_id,track_name,seq,ts_ps,kind,name,a,b` and, byte-compared, any
// other line-oriented export): it walks two exports in lockstep and
// reports the FIRST line where they disagree — the first event whose
// track, timestamp, payload or ordering differs — which is almost
// always the event right after the real bug.
//
// The comparison is deliberately line-exact (after stripping a trailing
// '\r' so exports that crossed a CRLF filesystem still compare clean):
// the repo's trace exports are byte-deterministic across worker counts,
// so ANY difference is a finding, including a truncated tail.
#pragma once

#include <cstddef>
#include <string>

namespace pv::tracediff {

/// Outcome of diffing two exported trace files.
struct DiffResult {
    bool identical = false;
    /// 1-based line number of the first divergence (0 when identical).
    std::size_t line = 0;
    /// The diverging lines ("<end of file>" for the shorter side).
    std::string left;
    std::string right;
    /// Total lines in each file.
    std::size_t left_lines = 0;
    std::size_t right_lines = 0;
};

/// Diff two in-memory exports line by line.
[[nodiscard]] DiffResult diff_text(const std::string& left, const std::string& right);

/// Diff two exported trace files.  Throws IoError (via read_file) when
/// either path cannot be read.
[[nodiscard]] DiffResult diff_files(const std::string& left_path,
                                    const std::string& right_path);

/// Human-readable verdict: "identical (N lines)" or a three-line
/// first-divergence report.
[[nodiscard]] std::string format(const DiffResult& result);

}  // namespace pv::tracediff
