#include "trace_diff/trace_diff.hpp"

#include <string_view>

#include "util/fsio.hpp"

namespace pv::tracediff {
namespace {

constexpr std::string_view kEndOfFile = "<end of file>";

/// Pull the next line out of `text` starting at `pos`; strips the
/// newline and a trailing '\r'.  Returns false at end of input.
bool next_line(const std::string& text, std::size_t& pos, std::string& line) {
    if (pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', pos);
    const std::size_t end = (nl == std::string::npos) ? text.size() : nl;
    line.assign(text, pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = (nl == std::string::npos) ? text.size() : nl + 1;
    return true;
}

}  // namespace

DiffResult diff_text(const std::string& left, const std::string& right) {
    DiffResult result;
    std::size_t lpos = 0;
    std::size_t rpos = 0;
    std::string lline;
    std::string rline;
    std::size_t line_no = 0;
    while (true) {
        const bool lhas = next_line(left, lpos, lline);
        const bool rhas = next_line(right, rpos, rline);
        if (lhas) ++result.left_lines;
        if (rhas) ++result.right_lines;
        ++line_no;
        if (!lhas && !rhas) {
            result.identical = true;
            return result;
        }
        if (!lhas || !rhas || lline != rline) {
            result.identical = false;
            result.line = line_no;
            result.left = lhas ? lline : std::string(kEndOfFile);
            result.right = rhas ? rline : std::string(kEndOfFile);
            // Count the remaining lines so the report can show sizes.
            while (next_line(left, lpos, lline)) ++result.left_lines;
            while (next_line(right, rpos, rline)) ++result.right_lines;
            return result;
        }
    }
}

DiffResult diff_files(const std::string& left_path, const std::string& right_path) {
    return diff_text(read_file(left_path), read_file(right_path));
}

std::string format(const DiffResult& result) {
    if (result.identical)
        return "identical (" + std::to_string(result.left_lines) + " lines)";
    return "first divergence at line " + std::to_string(result.line) + "\n  left:  " +
           result.left + "\n  right: " + result.right + "\n(left " +
           std::to_string(result.left_lines) + " lines, right " +
           std::to_string(result.right_lines) + " lines)";
}

}  // namespace pv::tracediff
