// trace-diff CLI: compare two exported trace files, print either
// "identical (N lines)" or the first divergent event.
//
//   trace-diff <left.csv> <right.csv>
//
// Exit codes: 0 identical, 1 divergent, 2 usage / IO error — so CI
// scripts can assert determinism with a single invocation.
#include <cstdio>
#include <exception>

#include "trace_diff/trace_diff.hpp"

int main(int argc, char** argv) {
    if (argc != 3) {
        std::fprintf(stderr, "usage: trace-diff <left> <right>\n");
        return 2;
    }
    try {
        const pv::tracediff::DiffResult result =
            pv::tracediff::diff_files(argv[1], argv[2]);
        std::printf("%s\n", pv::tracediff::format(result).c_str());
        return result.identical ? 0 : 1;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "trace-diff: %s\n", error.what());
        return 2;
    }
}
