file(REMOVE_RECURSE
  "CMakeFiles/bench_poll_interval.dir/bench_poll_interval.cpp.o"
  "CMakeFiles/bench_poll_interval.dir/bench_poll_interval.cpp.o.d"
  "bench_poll_interval"
  "bench_poll_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poll_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
