# Empty dependencies file for bench_poll_interval.
# This may be replaced when dependencies are built.
