# Empty dependencies file for bench_table1_msr0x150.
# This may be replaced when dependencies are built.
