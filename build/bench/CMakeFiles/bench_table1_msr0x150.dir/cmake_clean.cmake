file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_msr0x150.dir/bench_table1_msr0x150.cpp.o"
  "CMakeFiles/bench_table1_msr0x150.dir/bench_table1_msr0x150.cpp.o.d"
  "bench_table1_msr0x150"
  "bench_table1_msr0x150.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_msr0x150.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
