file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cometlake.dir/bench_fig4_cometlake.cpp.o"
  "CMakeFiles/bench_fig4_cometlake.dir/bench_fig4_cometlake.cpp.o.d"
  "bench_fig4_cometlake"
  "bench_fig4_cometlake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cometlake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
