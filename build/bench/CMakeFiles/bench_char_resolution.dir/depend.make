# Empty dependencies file for bench_char_resolution.
# This may be replaced when dependencies are built.
