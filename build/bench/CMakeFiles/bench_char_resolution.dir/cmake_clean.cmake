file(REMOVE_RECURSE
  "CMakeFiles/bench_char_resolution.dir/bench_char_resolution.cpp.o"
  "CMakeFiles/bench_char_resolution.dir/bench_char_resolution.cpp.o.d"
  "bench_char_resolution"
  "bench_char_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_char_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
