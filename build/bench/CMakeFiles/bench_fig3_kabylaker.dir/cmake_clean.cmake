file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_kabylaker.dir/bench_fig3_kabylaker.cpp.o"
  "CMakeFiles/bench_fig3_kabylaker.dir/bench_fig3_kabylaker.cpp.o.d"
  "bench_fig3_kabylaker"
  "bench_fig3_kabylaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_kabylaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
