file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_skylake.dir/bench_fig2_skylake.cpp.o"
  "CMakeFiles/bench_fig2_skylake.dir/bench_fig2_skylake.cpp.o.d"
  "bench_fig2_skylake"
  "bench_fig2_skylake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_skylake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
