file(REMOVE_RECURSE
  "CMakeFiles/bench_guard_band.dir/bench_guard_band.cpp.o"
  "CMakeFiles/bench_guard_band.dir/bench_guard_band.cpp.o.d"
  "bench_guard_band"
  "bench_guard_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guard_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
