# Empty dependencies file for bench_guard_band.
# This may be replaced when dependencies are built.
