file(REMOVE_RECURSE
  "CMakeFiles/benign_overclocker.dir/benign_overclocker.cpp.o"
  "CMakeFiles/benign_overclocker.dir/benign_overclocker.cpp.o.d"
  "benign_overclocker"
  "benign_overclocker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benign_overclocker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
