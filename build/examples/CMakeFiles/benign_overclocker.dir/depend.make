# Empty dependencies file for benign_overclocker.
# This may be replaced when dependencies are built.
