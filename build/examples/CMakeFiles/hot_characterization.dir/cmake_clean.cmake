file(REMOVE_RECURSE
  "CMakeFiles/hot_characterization.dir/hot_characterization.cpp.o"
  "CMakeFiles/hot_characterization.dir/hot_characterization.cpp.o.d"
  "hot_characterization"
  "hot_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
