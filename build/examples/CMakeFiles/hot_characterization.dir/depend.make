# Empty dependencies file for hot_characterization.
# This may be replaced when dependencies are built.
