file(REMOVE_RECURSE
  "CMakeFiles/characterize_and_protect.dir/characterize_and_protect.cpp.o"
  "CMakeFiles/characterize_and_protect.dir/characterize_and_protect.cpp.o.d"
  "characterize_and_protect"
  "characterize_and_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_and_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
