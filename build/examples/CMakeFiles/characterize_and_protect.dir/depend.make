# Empty dependencies file for characterize_and_protect.
# This may be replaced when dependencies are built.
