file(REMOVE_RECURSE
  "CMakeFiles/rsa_fault_attack.dir/rsa_fault_attack.cpp.o"
  "CMakeFiles/rsa_fault_attack.dir/rsa_fault_attack.cpp.o.d"
  "rsa_fault_attack"
  "rsa_fault_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsa_fault_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
