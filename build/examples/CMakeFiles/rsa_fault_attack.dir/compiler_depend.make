# Empty compiler generated dependencies file for rsa_fault_attack.
# This may be replaced when dependencies are built.
