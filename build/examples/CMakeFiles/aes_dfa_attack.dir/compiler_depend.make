# Empty compiler generated dependencies file for aes_dfa_attack.
# This may be replaced when dependencies are built.
