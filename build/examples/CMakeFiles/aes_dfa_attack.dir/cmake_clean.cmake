file(REMOVE_RECURSE
  "CMakeFiles/aes_dfa_attack.dir/aes_dfa_attack.cpp.o"
  "CMakeFiles/aes_dfa_attack.dir/aes_dfa_attack.cpp.o.d"
  "aes_dfa_attack"
  "aes_dfa_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_dfa_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
