
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/pv_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/defenses/CMakeFiles/pv_defenses.dir/DependInfo.cmake"
  "/root/repo/build/src/plugvolt/CMakeFiles/pv_plugvolt.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/pv_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
