
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aes_dfa.cpp" "tests/CMakeFiles/pv_tests.dir/test_aes_dfa.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_aes_dfa.cpp.o.d"
  "/root/repo/tests/test_attacks.cpp" "tests/CMakeFiles/pv_tests.dir/test_attacks.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_attacks.cpp.o.d"
  "/root/repo/tests/test_cache_plane.cpp" "tests/CMakeFiles/pv_tests.dir/test_cache_plane.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_cache_plane.cpp.o.d"
  "/root/repo/tests/test_characterizer.cpp" "tests/CMakeFiles/pv_tests.dir/test_characterizer.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_characterizer.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "tests/CMakeFiles/pv_tests.dir/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_crypto.cpp.o.d"
  "/root/repo/tests/test_cstates.cpp" "tests/CMakeFiles/pv_tests.dir/test_cstates.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_cstates.cpp.o.d"
  "/root/repo/tests/test_csv_table.cpp" "tests/CMakeFiles/pv_tests.dir/test_csv_table.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_csv_table.cpp.o.d"
  "/root/repo/tests/test_defenses.cpp" "tests/CMakeFiles/pv_tests.dir/test_defenses.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_defenses.cpp.o.d"
  "/root/repo/tests/test_deployments.cpp" "tests/CMakeFiles/pv_tests.dir/test_deployments.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_deployments.cpp.o.d"
  "/root/repo/tests/test_event_queue.cpp" "tests/CMakeFiles/pv_tests.dir/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_event_queue.cpp.o.d"
  "/root/repo/tests/test_fault_model.cpp" "tests/CMakeFiles/pv_tests.dir/test_fault_model.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_fault_model.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/pv_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/pv_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_ocm.cpp" "tests/CMakeFiles/pv_tests.dir/test_ocm.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_ocm.cpp.o.d"
  "/root/repo/tests/test_os_kernel.cpp" "tests/CMakeFiles/pv_tests.dir/test_os_kernel.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_os_kernel.cpp.o.d"
  "/root/repo/tests/test_polling_module.cpp" "tests/CMakeFiles/pv_tests.dir/test_polling_module.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_polling_module.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/pv_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_profiles.cpp" "tests/CMakeFiles/pv_tests.dir/test_profiles.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_profiles.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/pv_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_safe_state.cpp" "tests/CMakeFiles/pv_tests.dir/test_safe_state.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_safe_state.cpp.o.d"
  "/root/repo/tests/test_sgx.cpp" "tests/CMakeFiles/pv_tests.dir/test_sgx.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_sgx.cpp.o.d"
  "/root/repo/tests/test_soak.cpp" "tests/CMakeFiles/pv_tests.dir/test_soak.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_soak.cpp.o.d"
  "/root/repo/tests/test_spec_suite.cpp" "tests/CMakeFiles/pv_tests.dir/test_spec_suite.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_spec_suite.cpp.o.d"
  "/root/repo/tests/test_spec_workloads.cpp" "tests/CMakeFiles/pv_tests.dir/test_spec_workloads.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_spec_workloads.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/pv_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/pv_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_timing_model.cpp" "tests/CMakeFiles/pv_tests.dir/test_timing_model.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_timing_model.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/pv_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_voltage_regulator.cpp" "tests/CMakeFiles/pv_tests.dir/test_voltage_regulator.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_voltage_regulator.cpp.o.d"
  "/root/repo/tests/test_voltpillager.cpp" "tests/CMakeFiles/pv_tests.dir/test_voltpillager.cpp.o" "gcc" "tests/CMakeFiles/pv_tests.dir/test_voltpillager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attacks/CMakeFiles/pv_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/defenses/CMakeFiles/pv_defenses.dir/DependInfo.cmake"
  "/root/repo/build/src/plugvolt/CMakeFiles/pv_plugvolt.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/pv_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pv_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
