# Empty compiler generated dependencies file for pv_defenses.
# This may be replaced when dependencies are built.
