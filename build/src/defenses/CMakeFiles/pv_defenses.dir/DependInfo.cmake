
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defenses/access_control.cpp" "src/defenses/CMakeFiles/pv_defenses.dir/access_control.cpp.o" "gcc" "src/defenses/CMakeFiles/pv_defenses.dir/access_control.cpp.o.d"
  "/root/repo/src/defenses/minefield.cpp" "src/defenses/CMakeFiles/pv_defenses.dir/minefield.cpp.o" "gcc" "src/defenses/CMakeFiles/pv_defenses.dir/minefield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sgx/CMakeFiles/pv_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
