file(REMOVE_RECURSE
  "libpv_defenses.a"
)
