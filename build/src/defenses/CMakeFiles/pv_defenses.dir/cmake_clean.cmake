file(REMOVE_RECURSE
  "CMakeFiles/pv_defenses.dir/access_control.cpp.o"
  "CMakeFiles/pv_defenses.dir/access_control.cpp.o.d"
  "CMakeFiles/pv_defenses.dir/minefield.cpp.o"
  "CMakeFiles/pv_defenses.dir/minefield.cpp.o.d"
  "libpv_defenses.a"
  "libpv_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
