file(REMOVE_RECURSE
  "CMakeFiles/pv_plugvolt.dir/characterizer.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/characterizer.cpp.o.d"
  "CMakeFiles/pv_plugvolt.dir/microcode_guard.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/microcode_guard.cpp.o.d"
  "CMakeFiles/pv_plugvolt.dir/msr_clamp.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/msr_clamp.cpp.o.d"
  "CMakeFiles/pv_plugvolt.dir/plugvolt.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/plugvolt.cpp.o.d"
  "CMakeFiles/pv_plugvolt.dir/polling_module.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/polling_module.cpp.o.d"
  "CMakeFiles/pv_plugvolt.dir/safe_state.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/safe_state.cpp.o.d"
  "CMakeFiles/pv_plugvolt.dir/turnaround.cpp.o"
  "CMakeFiles/pv_plugvolt.dir/turnaround.cpp.o.d"
  "libpv_plugvolt.a"
  "libpv_plugvolt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_plugvolt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
