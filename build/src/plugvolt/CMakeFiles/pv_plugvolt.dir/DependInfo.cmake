
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plugvolt/characterizer.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/characterizer.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/characterizer.cpp.o.d"
  "/root/repo/src/plugvolt/microcode_guard.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/microcode_guard.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/microcode_guard.cpp.o.d"
  "/root/repo/src/plugvolt/msr_clamp.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/msr_clamp.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/msr_clamp.cpp.o.d"
  "/root/repo/src/plugvolt/plugvolt.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/plugvolt.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/plugvolt.cpp.o.d"
  "/root/repo/src/plugvolt/polling_module.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/polling_module.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/polling_module.cpp.o.d"
  "/root/repo/src/plugvolt/safe_state.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/safe_state.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/safe_state.cpp.o.d"
  "/root/repo/src/plugvolt/turnaround.cpp" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/turnaround.cpp.o" "gcc" "src/plugvolt/CMakeFiles/pv_plugvolt.dir/turnaround.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/pv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
