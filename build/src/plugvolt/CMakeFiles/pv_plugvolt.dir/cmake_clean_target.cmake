file(REMOVE_RECURSE
  "libpv_plugvolt.a"
)
