# Empty dependencies file for pv_plugvolt.
# This may be replaced when dependencies are built.
