file(REMOVE_RECURSE
  "libpv_util.a"
)
