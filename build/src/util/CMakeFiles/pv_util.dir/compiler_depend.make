# Empty compiler generated dependencies file for pv_util.
# This may be replaced when dependencies are built.
