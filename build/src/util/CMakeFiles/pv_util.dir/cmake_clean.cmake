file(REMOVE_RECURSE
  "CMakeFiles/pv_util.dir/csv.cpp.o"
  "CMakeFiles/pv_util.dir/csv.cpp.o.d"
  "CMakeFiles/pv_util.dir/log.cpp.o"
  "CMakeFiles/pv_util.dir/log.cpp.o.d"
  "CMakeFiles/pv_util.dir/rng.cpp.o"
  "CMakeFiles/pv_util.dir/rng.cpp.o.d"
  "CMakeFiles/pv_util.dir/stats.cpp.o"
  "CMakeFiles/pv_util.dir/stats.cpp.o.d"
  "CMakeFiles/pv_util.dir/table.cpp.o"
  "CMakeFiles/pv_util.dir/table.cpp.o.d"
  "CMakeFiles/pv_util.dir/units.cpp.o"
  "CMakeFiles/pv_util.dir/units.cpp.o.d"
  "libpv_util.a"
  "libpv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
