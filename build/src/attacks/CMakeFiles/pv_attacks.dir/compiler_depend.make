# Empty compiler generated dependencies file for pv_attacks.
# This may be replaced when dependencies are built.
