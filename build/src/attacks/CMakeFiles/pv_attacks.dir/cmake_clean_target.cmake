file(REMOVE_RECURSE
  "libpv_attacks.a"
)
