file(REMOVE_RECURSE
  "CMakeFiles/pv_attacks.dir/plundervolt.cpp.o"
  "CMakeFiles/pv_attacks.dir/plundervolt.cpp.o.d"
  "CMakeFiles/pv_attacks.dir/v0ltpwn.cpp.o"
  "CMakeFiles/pv_attacks.dir/v0ltpwn.cpp.o.d"
  "CMakeFiles/pv_attacks.dir/voltjockey.cpp.o"
  "CMakeFiles/pv_attacks.dir/voltjockey.cpp.o.d"
  "CMakeFiles/pv_attacks.dir/voltpillager.cpp.o"
  "CMakeFiles/pv_attacks.dir/voltpillager.cpp.o.d"
  "libpv_attacks.a"
  "libpv_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
