# Empty dependencies file for pv_workload.
# This may be replaced when dependencies are built.
