file(REMOVE_RECURSE
  "CMakeFiles/pv_workload.dir/crypto/aes.cpp.o"
  "CMakeFiles/pv_workload.dir/crypto/aes.cpp.o.d"
  "CMakeFiles/pv_workload.dir/crypto/aes_dfa.cpp.o"
  "CMakeFiles/pv_workload.dir/crypto/aes_dfa.cpp.o.d"
  "CMakeFiles/pv_workload.dir/crypto/bignum.cpp.o"
  "CMakeFiles/pv_workload.dir/crypto/bignum.cpp.o.d"
  "CMakeFiles/pv_workload.dir/crypto/rsa_crt.cpp.o"
  "CMakeFiles/pv_workload.dir/crypto/rsa_crt.cpp.o.d"
  "CMakeFiles/pv_workload.dir/spec_fp.cpp.o"
  "CMakeFiles/pv_workload.dir/spec_fp.cpp.o.d"
  "CMakeFiles/pv_workload.dir/spec_int.cpp.o"
  "CMakeFiles/pv_workload.dir/spec_int.cpp.o.d"
  "CMakeFiles/pv_workload.dir/spec_suite.cpp.o"
  "CMakeFiles/pv_workload.dir/spec_suite.cpp.o.d"
  "libpv_workload.a"
  "libpv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
