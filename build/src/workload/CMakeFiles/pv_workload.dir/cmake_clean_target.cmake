file(REMOVE_RECURSE
  "libpv_workload.a"
)
