
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/crypto/aes.cpp" "src/workload/CMakeFiles/pv_workload.dir/crypto/aes.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/workload/crypto/aes_dfa.cpp" "src/workload/CMakeFiles/pv_workload.dir/crypto/aes_dfa.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/crypto/aes_dfa.cpp.o.d"
  "/root/repo/src/workload/crypto/bignum.cpp" "src/workload/CMakeFiles/pv_workload.dir/crypto/bignum.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/crypto/bignum.cpp.o.d"
  "/root/repo/src/workload/crypto/rsa_crt.cpp" "src/workload/CMakeFiles/pv_workload.dir/crypto/rsa_crt.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/crypto/rsa_crt.cpp.o.d"
  "/root/repo/src/workload/spec_fp.cpp" "src/workload/CMakeFiles/pv_workload.dir/spec_fp.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/spec_fp.cpp.o.d"
  "/root/repo/src/workload/spec_int.cpp" "src/workload/CMakeFiles/pv_workload.dir/spec_int.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/spec_int.cpp.o.d"
  "/root/repo/src/workload/spec_suite.cpp" "src/workload/CMakeFiles/pv_workload.dir/spec_suite.cpp.o" "gcc" "src/workload/CMakeFiles/pv_workload.dir/spec_suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/plugvolt/CMakeFiles/pv_plugvolt.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/pv_os.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
