file(REMOVE_RECURSE
  "CMakeFiles/pv_os.dir/cpufreq.cpp.o"
  "CMakeFiles/pv_os.dir/cpufreq.cpp.o.d"
  "CMakeFiles/pv_os.dir/cpupower.cpp.o"
  "CMakeFiles/pv_os.dir/cpupower.cpp.o.d"
  "CMakeFiles/pv_os.dir/kernel.cpp.o"
  "CMakeFiles/pv_os.dir/kernel.cpp.o.d"
  "CMakeFiles/pv_os.dir/msr_driver.cpp.o"
  "CMakeFiles/pv_os.dir/msr_driver.cpp.o.d"
  "libpv_os.a"
  "libpv_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
