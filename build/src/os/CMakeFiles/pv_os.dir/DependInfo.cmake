
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cpufreq.cpp" "src/os/CMakeFiles/pv_os.dir/cpufreq.cpp.o" "gcc" "src/os/CMakeFiles/pv_os.dir/cpufreq.cpp.o.d"
  "/root/repo/src/os/cpupower.cpp" "src/os/CMakeFiles/pv_os.dir/cpupower.cpp.o" "gcc" "src/os/CMakeFiles/pv_os.dir/cpupower.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/os/CMakeFiles/pv_os.dir/kernel.cpp.o" "gcc" "src/os/CMakeFiles/pv_os.dir/kernel.cpp.o.d"
  "/root/repo/src/os/msr_driver.cpp" "src/os/CMakeFiles/pv_os.dir/msr_driver.cpp.o" "gcc" "src/os/CMakeFiles/pv_os.dir/msr_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
