# Empty dependencies file for pv_os.
# This may be replaced when dependencies are built.
