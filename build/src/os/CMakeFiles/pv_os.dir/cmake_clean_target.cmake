file(REMOVE_RECURSE
  "libpv_os.a"
)
