
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core.cpp" "src/sim/CMakeFiles/pv_sim.dir/core.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/core.cpp.o.d"
  "/root/repo/src/sim/cpu_profile.cpp" "src/sim/CMakeFiles/pv_sim.dir/cpu_profile.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/cpu_profile.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/pv_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/fault_model.cpp" "src/sim/CMakeFiles/pv_sim.dir/fault_model.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/fault_model.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/pv_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/ocm.cpp" "src/sim/CMakeFiles/pv_sim.dir/ocm.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/ocm.cpp.o.d"
  "/root/repo/src/sim/power.cpp" "src/sim/CMakeFiles/pv_sim.dir/power.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/power.cpp.o.d"
  "/root/repo/src/sim/thermal.cpp" "src/sim/CMakeFiles/pv_sim.dir/thermal.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/thermal.cpp.o.d"
  "/root/repo/src/sim/timing_model.cpp" "src/sim/CMakeFiles/pv_sim.dir/timing_model.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/timing_model.cpp.o.d"
  "/root/repo/src/sim/vf_curve.cpp" "src/sim/CMakeFiles/pv_sim.dir/vf_curve.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/vf_curve.cpp.o.d"
  "/root/repo/src/sim/voltage_regulator.cpp" "src/sim/CMakeFiles/pv_sim.dir/voltage_regulator.cpp.o" "gcc" "src/sim/CMakeFiles/pv_sim.dir/voltage_regulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
