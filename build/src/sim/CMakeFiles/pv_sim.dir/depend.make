# Empty dependencies file for pv_sim.
# This may be replaced when dependencies are built.
