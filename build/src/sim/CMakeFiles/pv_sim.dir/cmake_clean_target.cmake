file(REMOVE_RECURSE
  "libpv_sim.a"
)
