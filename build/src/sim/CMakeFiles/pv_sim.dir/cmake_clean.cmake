file(REMOVE_RECURSE
  "CMakeFiles/pv_sim.dir/core.cpp.o"
  "CMakeFiles/pv_sim.dir/core.cpp.o.d"
  "CMakeFiles/pv_sim.dir/cpu_profile.cpp.o"
  "CMakeFiles/pv_sim.dir/cpu_profile.cpp.o.d"
  "CMakeFiles/pv_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pv_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pv_sim.dir/fault_model.cpp.o"
  "CMakeFiles/pv_sim.dir/fault_model.cpp.o.d"
  "CMakeFiles/pv_sim.dir/machine.cpp.o"
  "CMakeFiles/pv_sim.dir/machine.cpp.o.d"
  "CMakeFiles/pv_sim.dir/ocm.cpp.o"
  "CMakeFiles/pv_sim.dir/ocm.cpp.o.d"
  "CMakeFiles/pv_sim.dir/power.cpp.o"
  "CMakeFiles/pv_sim.dir/power.cpp.o.d"
  "CMakeFiles/pv_sim.dir/thermal.cpp.o"
  "CMakeFiles/pv_sim.dir/thermal.cpp.o.d"
  "CMakeFiles/pv_sim.dir/timing_model.cpp.o"
  "CMakeFiles/pv_sim.dir/timing_model.cpp.o.d"
  "CMakeFiles/pv_sim.dir/vf_curve.cpp.o"
  "CMakeFiles/pv_sim.dir/vf_curve.cpp.o.d"
  "CMakeFiles/pv_sim.dir/voltage_regulator.cpp.o"
  "CMakeFiles/pv_sim.dir/voltage_regulator.cpp.o.d"
  "libpv_sim.a"
  "libpv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
