# Empty dependencies file for pv_sgx.
# This may be replaced when dependencies are built.
