file(REMOVE_RECURSE
  "CMakeFiles/pv_sgx.dir/attestation.cpp.o"
  "CMakeFiles/pv_sgx.dir/attestation.cpp.o.d"
  "CMakeFiles/pv_sgx.dir/enclave.cpp.o"
  "CMakeFiles/pv_sgx.dir/enclave.cpp.o.d"
  "CMakeFiles/pv_sgx.dir/program.cpp.o"
  "CMakeFiles/pv_sgx.dir/program.cpp.o.d"
  "CMakeFiles/pv_sgx.dir/runtime.cpp.o"
  "CMakeFiles/pv_sgx.dir/runtime.cpp.o.d"
  "libpv_sgx.a"
  "libpv_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pv_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
