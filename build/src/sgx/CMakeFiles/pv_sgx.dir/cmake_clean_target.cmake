file(REMOVE_RECURSE
  "libpv_sgx.a"
)
