#include "defenses/access_control.hpp"

#include "sim/ocm.hpp"

namespace pv::defense {

AccessControl::AccessControl(sim::Machine& machine, sgx::SgxRuntime& runtime)
    : machine_(machine), runtime_(runtime) {}

AccessControl::~AccessControl() { uninstall(); }

void AccessControl::install() {
    if (token_) return;
    token_ = machine_.add_write_hook(
        [this](unsigned, std::uint32_t addr, std::uint64_t&) {
            if (addr != sim::kMsrOcMailbox) return sim::MsrWriteAction::Allow;
            if (runtime_.any_enclave_loaded()) {
                ++blocked_;
                return sim::MsrWriteAction::Ignore;
            }
            return sim::MsrWriteAction::Allow;
        });
    runtime_.set_ocm_disabled_bit(true);
}

void AccessControl::uninstall() {
    if (!token_) return;
    machine_.remove_write_hook(*token_);
    token_.reset();
    runtime_.set_ocm_disabled_bit(false);
}

}  // namespace pv::defense
