#include "defenses/minefield.hpp"

namespace pv::defense {

sgx::Program Minefield::instrument(const sgx::Program& program) {
    stats_ = MinefieldStats{};
    stats_.original_instructions = program.size();

    sgx::Program out;
    out.reserve(program.size() * 2);
    for (std::size_t i = 0; i < program.size(); ++i) {
        const auto& instr = program[i];
        out.push_back(instr);
        if (instr.is_trap || !instr.mul_ops) continue;
        const auto& ops = *instr.mul_ops;
        if (ops.dst == ops.a || ops.dst == ops.b) continue;  // inputs clobbered
        // Idempotence: don't mine an already-mined multiply.
        if (i + 1 < program.size() && program[i + 1].is_trap) continue;
        out.push_back(sgx::make_mul_trap(ops.dst, ops.a, ops.b));
        ++stats_.traps_inserted;
    }
    return out;
}

}  // namespace pv::defense
