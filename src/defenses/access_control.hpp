// PlugVolt — Intel SA-00289-style access-control baseline.
//
// Intel's microcode response to Plundervolt: while an SGX context exists
// on the platform, the overclocking mailbox is disabled, and the
// disabled status is included in attestation so clients can refuse
// unpatched platforms.  Effective — but it denies DVFS to *every* benign
// non-SGX process whenever any enclave is loaded, which is the
// restrictiveness the paper's countermeasure removes.
#pragma once

#include <cstdint>
#include <optional>

#include "sgx/runtime.hpp"
#include "sim/machine.hpp"

namespace pv::defense {

/// The access-control patch: OCM writes are write-ignored while any
/// enclave is loaded; the attestation OCM-disabled bit is set.
class AccessControl {
public:
    AccessControl(sim::Machine& machine, sgx::SgxRuntime& runtime);
    ~AccessControl();

    AccessControl(const AccessControl&) = delete;
    AccessControl& operator=(const AccessControl&) = delete;

    void install();
    void uninstall();
    [[nodiscard]] bool installed() const { return token_.has_value(); }

    /// OCM writes the patch blocked (benign and malicious alike).
    [[nodiscard]] std::uint64_t blocked_writes() const { return blocked_; }

private:
    sim::Machine& machine_;
    sgx::SgxRuntime& runtime_;
    std::optional<std::size_t> token_;
    std::uint64_t blocked_ = 0;
};

}  // namespace pv::defense
