// PlugVolt — Minefield-style trap-deflection baseline (Kogler et al.,
// USENIX Security 2022).
//
// A compiler pass that plants consistency checks ("mines") behind
// faultable instructions inside the enclave: a faulted multiply trips
// the recomputation check and the enclave aborts before the attacker
// can use anything.  The paper's critique (Sec. 4.1): the trap executes
// *after* the target instruction, so an SGX-Step adversary that
// single-steps to the multiply and then zero-steps never lets the trap
// run — Minefield is only sound if stepping is prevented by third-party
// means.  Both the pass and its overhead accounting live here.
#pragma once

#include <cstddef>

#include "sgx/program.hpp"

namespace pv::defense {

/// Instrumentation statistics of one pass run.
struct MinefieldStats {
    std::size_t original_instructions = 0;
    std::size_t traps_inserted = 0;
    /// Static size overhead = traps / original.
    [[nodiscard]] double overhead() const {
        return original_instructions == 0
                   ? 0.0
                   : static_cast<double>(traps_inserted) /
                         static_cast<double>(original_instructions);
    }
};

/// The Minefield compiler pass.
class Minefield {
public:
    /// Instrument `program`: after every non-trap multiply, insert a
    /// recomputation trap over the same operands.  Multiplies whose
    /// destination aliases an input cannot be re-checked and are left
    /// uninstrumented (same limitation as register-pressure cases in the
    /// real pass).
    [[nodiscard]] sgx::Program instrument(const sgx::Program& program);

    [[nodiscard]] const MinefieldStats& stats() const { return stats_; }

private:
    MinefieldStats stats_;
};

}  // namespace pv::defense
