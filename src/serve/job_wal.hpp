// PlugVolt — the daemon's job-queue write-ahead log.
//
// Same CRC-framed format as every journal in src/resilience (FrameLog):
// a header frame pins the daemon's config hash, then one frame per queue
// transition, appended BEFORE the in-memory state changes.  kill -9 at
// any byte boundary leaves at worst a torn tail, which resume() drops
// and scrubs; everything before it replays into the exact queue the
// killed daemon had made durable.
//
// Frame kinds:
//   1 header         version, daemon config hash
//   2 submitted      id + the full JobSpec
//   3 started        id              (an execution began)
//   4 attempt_failed id, attempts    (cumulative failed executions)
//   5 finished       id, terminal state, fingerprint, attempts, units, detail
//   6 rejected       id              (admission control said no)
//
// Replay semantics: a `started` frame without a matching `finished`
// means the daemon died mid-execution — the job replays as Queued and is
// re-run on resume, where its own engine journal (cell/row granularity)
// fast-forwards the work already made durable.  `attempt_failed` frames
// replay max-wins, so a resumed job re-enters its retry loop at the same
// execution index an uninterrupted run would be at.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/frames.hpp"
#include "serve/job.hpp"
#include "util/flat_map.hpp"

namespace pv::serve {

struct JobWalHeader {
    std::uint32_t version = 1;
    std::uint64_t config_hash = 0;
};

/// Submit-frame payload codec, exposed for the WAL tests.
[[nodiscard]] std::string encode_spec_payload(std::uint64_t id, const JobSpec& spec);
[[nodiscard]] bool decode_spec_payload(std::string_view payload, std::uint64_t& id,
                                       JobSpec& spec);

/// The queue WAL.  NOT thread-safe: the daemon serializes every append
/// under its own mutex.  Throws JournalError / IoError like the other
/// journals (see resilience/frames.hpp).
class JobWal {
public:
    /// Start a fresh WAL at `path` (created atomically with the header
    /// frame; an existing file is replaced).
    JobWal(std::string path, JobWalHeader header,
           resilience::JournalOptions options = {});

    /// Recover a WAL off disk: CRC-validate every frame, drop and scrub
    /// a torn tail, replay the queue.
    [[nodiscard]] static JobWal resume(const std::string& path,
                                       resilience::JournalOptions options = {});

    void submitted(std::uint64_t id, const JobSpec& spec);
    void rejected(std::uint64_t id);
    void started(std::uint64_t id);
    void attempt_failed(std::uint64_t id, std::uint32_t attempts);
    void finished(const JobRecord& record);

    [[nodiscard]] const JobWalHeader& header() const { return header_; }

    /// The replayed queue, in job-id order.  Only meaningful on a WAL
    /// opened via resume(); terminal jobs carry their journaled
    /// fingerprint, unfinished ones replay as Queued.
    [[nodiscard]] const std::vector<JobRecord>& records() const { return records_; }

    /// One past the highest journaled job id (1 on an empty WAL).
    [[nodiscard]] std::uint64_t next_id() const { return next_id_; }

    [[nodiscard]] bool tail_dropped() const { return log_.tail_dropped(); }
    [[nodiscard]] const std::string& path() const { return log_.path(); }
    [[nodiscard]] std::uint64_t commits() const { return log_.commits(); }
    [[nodiscard]] std::uint64_t bytes_written() const { return log_.bytes_written(); }

private:
    explicit JobWal(resilience::FrameLog&& log);

    resilience::FrameLog log_;
    JobWalHeader header_;
    std::vector<JobRecord> records_;
    std::uint64_t next_id_ = 1;
};

}  // namespace pv::serve
