// PlugVolt — uncertainty-aware serving guard bands.
//
// An Adaptive sweep certifies two kinds of rows (see
// plugvolt/parallel_characterizer.hpp): ANCHOR rows, whose boundaries
// were probed down to a one-step bracket, and INTERPOLATED rows, which
// were never probed and carry only the planner's 1-cell accuracy
// certificate — their true onset may sit one offset step to either side
// of the reported value.  A map that feeds the daemon's benign-DVFS
// endpoint must not grant an undervolt the true boundary would fault on,
// so before a map is committed for serving, every uncertain row's fault
// onset is moved to the CONSERVATIVE edge of its certified bracket: one
// offset step shallower (toward 0 mV).  safe_limit() on a widened row is
// therefore one step shallower than the raw map's — the price of not
// probing the row, paid in guard band instead of safety.
//
// Anchored rows, fault-free columns and the crash boundary are kept
// verbatim: anchors hold the exact bisection bracket invariant, a
// fault-free certificate already serves from the sweep floor, and the
// crash boundary never enters safe_limit().  Widening is a pure function
// of (map, planned rows), and planned_rows() is identical between a
// fresh sweep and a journal resume, so the widened map — and with it
// every DVFS verdict — is bit-identical across kill/resume cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "plugvolt/parallel_characterizer.hpp"
#include "plugvolt/safe_state.hpp"
#include "util/units.hpp"

namespace pv::serve {

/// A serving-ready map plus the number of rows that paid the
/// uncertainty widening.
struct WidenedMap {
    plugvolt::SafeStateMap map;
    std::uint64_t widened_rows = 0;
};

/// Shallow every non-anchored, faulting row's onset by one
/// `offset_step` (capped at 0 mV).  An empty `planned` table (the sweep
/// was not Adaptive — every row was directly probed) returns the map
/// unchanged; a table whose size does not match the map throws
/// ConfigError.
[[nodiscard]] WidenedMap widen_uncertain_rows(
    const plugvolt::SafeStateMap& map,
    const std::vector<plugvolt::PlannedRow>& planned, Millivolts offset_step);

}  // namespace pv::serve
