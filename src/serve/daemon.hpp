// PlugVolt — the campaign daemon: every engine behind one crash-tolerant
// job queue (campaign-as-a-service).
//
// The repo's engines — ParallelCharacterizer (+ the src/infer adaptive
// planner), CampaignEngine, FleetOrchestrator — are libraries a caller
// drives to completion.  Production serving needs a different shape: a
// long-lived daemon that accepts characterization / campaign / fleet
// jobs, survives kill -9 at any byte boundary, keeps answering benign
// DVFS requests while re-characterization is mid-flight, and never lets
// one wedged job take the queue down.  CampaignDaemon is that layer.
//
// Durability (two tiers, both CRC-framed WALs from src/resilience):
//   - the QUEUE WAL (job_wal.hpp) records every submit / start / failed
//     attempt / terminal verdict write-ahead;
//   - each job owns an ENGINE journal in the state directory
//     (job-<id>.pvj row/cell journals), committed write-ahead by the
//     engines themselves at row / cell granularity.
// A daemon constructed on a state directory that already holds a WAL
// resumes it: terminal jobs are adopted verbatim, a job killed
// mid-execution re-runs against its engine journal (adopting every
// durable row/cell and fast-forwarding journaled retry attempts), and
// the queue fingerprint, every result fingerprint and the committed
// serving state end up bit-identical to a never-killed daemon — the
// serve kill/resume soak's contract.
//
// Fail-closed serving: request_undervolt() (the `cpupower`-shaped
// benign-DVFS endpoint) answers ONLY from the last *committed* map — a
// map whose job completed and whose hash was journaled.  While a
// re-characterization is mid-flight, requests keep serving from the
// previous committed map; with no committed map at all they are DENIED.
// A request deeper than the committed safe limit is clamped to it, never
// granted: the daemon fails toward safety, exactly like the polling
// module it feeds (DESIGN §5j).  Maps from Adaptive sweeps are widened
// first (guard_band.hpp) so interpolated rows serve from the
// conservative edge of their certified bracket.
//
// Watchdog: jobs carry a cooperative work-unit deadline
// (JobSpec::deadline_units, checked at every progress boundary — the
// repo bans wall clocks outside bench timing, so budgets are counted in
// delivered work units, not seconds).  A job over budget is cancelled,
// journaled as Quarantined, and the queue moves on.
//
// Admission control: the queue holds at most max_queue_depth Queued
// jobs; a submit beyond that is journaled and answered Rejected —
// deterministically, so a replayed submit stream reproduces the same
// rejections.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fleet/population_envelope.hpp"
#include "plugvolt/safe_state.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/frames.hpp"
#include "resilience/retry.hpp"
#include "serve/job.hpp"
#include "serve/job_wal.hpp"
#include "trace/metrics.hpp"
#include "util/flat_map.hpp"
#include "util/mutex.hpp"
#include "util/units.hpp"

namespace pv::serve {

struct DaemonConfig {
    /// Directory holding the queue WAL and every job's engine journal.
    /// Created if missing; a WAL already present there is resumed.
    std::string state_dir;
    /// Admission control: Queued jobs beyond this are Rejected.
    std::size_t max_queue_depth = 8;
    /// Job-level retry (engine-level retries are the jobs' own):
    /// max_attempts executions per job, virtual backoff in between.
    resilience::RetryPolicy job_retry{};
    /// Serving guard band handed to SafeStateMap::safe_limit.
    Millivolts guard{15.0};
    /// Worker threads forwarded to the engines (result-neutral).
    unsigned workers = 1;
    /// Environment fault plan forwarded to every job's engine (MSR-level
    /// faults; reseeded per cell/attempt by the engines, so injected
    /// faults replay bit-exactly across kill/resume cycles).
    std::optional<resilience::FaultPlan> fault_plan;
    /// Durability options for the WAL and the per-job engine journals.
    resilience::JournalOptions journal{};
};

enum class DvfsDecision : std::uint8_t {
    Granted,  ///< request within the committed safe limit
    Clamped,  ///< deeper than the limit: clamped to it (fail closed)
    Denied,   ///< no committed map to serve from
};

[[nodiscard]] const char* to_string(DvfsDecision decision);

struct DvfsVerdict {
    DvfsDecision decision = DvfsDecision::Denied;
    /// Offset actually applied (0 when denied).
    Millivolts applied{0.0};
    /// The completed job whose committed map answered (0 when denied).
    std::uint64_t source_job = 0;

    friend bool operator==(const DvfsVerdict&, const DvfsVerdict&) = default;
};

/// The envelope query endpoint's answer (from the last completed fleet
/// job's committed PopulationEnvelope).
struct EnvelopeView {
    std::uint64_t source_job = 0;
    std::uint64_t units = 0;
    /// fleet::state_hash of the committed envelope (the soak's equality
    /// witness).
    std::uint64_t state_hash = 0;
    /// The protect-every-unit clamp (clamp_at_yield(1.0)).
    Millivolts clamp{};
};

struct DaemonStats {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_rejected = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_failed = 0;
    std::uint64_t jobs_quarantined = 0;
    /// Terminal jobs adopted from the WAL at construction.
    std::uint64_t jobs_resumed = 0;
    /// Failed executions observed (journaled + fresh).
    std::uint64_t job_attempts_failed = 0;
    /// Committed serving state dropped at resume because its journal
    /// could not reproduce the journaled fingerprint (served Denied
    /// until the next completed job).
    std::uint64_t rehydration_drops = 0;
    std::uint64_t dvfs_granted = 0;
    std::uint64_t dvfs_clamped = 0;
    std::uint64_t dvfs_denied = 0;

    friend bool operator==(const DaemonStats&, const DaemonStats&) = default;
};

class CampaignDaemon {
public:
    /// Open (or create) the state directory.  Fresh directory: write a
    /// new WAL.  Existing WAL: resume it — adopt terminal jobs, re-queue
    /// interrupted ones, rehydrate the committed serving state from the
    /// finished jobs' engine journals and verify it against the
    /// journaled fingerprints (mismatch: drop and serve fail-closed).
    /// Throws ConfigError when an existing WAL belongs to a different
    /// daemon configuration.
    explicit CampaignDaemon(DaemonConfig config);

    CampaignDaemon(const CampaignDaemon&) = delete;
    CampaignDaemon& operator=(const CampaignDaemon&) = delete;

    /// Observation hook, fired after every durable work unit of a
    /// running job (row / cell / unit committed to its engine journal).
    /// The kill/resume tests throw from it; the mid-flight serving tests
    /// issue request_undervolt() from it.  Called with no daemon lock
    /// held.  Set before step().
    using ProgressHook =
        std::function<void(const JobRecord& job, std::uint64_t units_done)>;
    void set_progress(ProgressHook hook) { hook_ = std::move(hook); }

    /// Validate and enqueue a job; the submit frame is durable before
    /// the queue changes.  Returns the job id; a submit over
    /// max_queue_depth is journaled and recorded Rejected (check
    /// job(id).state).  Throws ConfigError on an invalid spec.
    std::uint64_t submit(const JobSpec& spec);

    /// Run the oldest queued job to a terminal state (Completed /
    /// Failed / Quarantined), retrying per job_retry.  Returns false
    /// when the queue is empty.
    bool step();

    /// step() until the queue drains.
    void run_until_idle();

    /// The benign-DVFS endpoint (see the fail-closed contract above).
    [[nodiscard]] DvfsVerdict request_undervolt(Megahertz f, Millivolts requested);

    /// The committed population envelope, if a fleet job has completed.
    [[nodiscard]] std::optional<EnvelopeView> query_envelope() const;

    [[nodiscard]] std::optional<JobRecord> job(std::uint64_t id) const;
    [[nodiscard]] std::vector<JobRecord> jobs() const;
    /// Jobs currently waiting (excludes the running one).
    [[nodiscard]] std::size_t queue_depth() const;

    [[nodiscard]] DaemonStats stats() const;
    /// Daemon-level counters as a snapshot (stats() plus queue gauges).
    [[nodiscard]] trace::MetricsSnapshot metrics() const;

    /// Fingerprint of the config fields that determine job results and
    /// queue behaviour (NOT workers or journal IO options) — the WAL's
    /// header identity.
    [[nodiscard]] std::uint64_t config_hash() const { return config_hash_; }

    /// Fingerprint over every job's journaled identity (id, spec, state,
    /// result fingerprint, attempts, units, detail) in id order.  The
    /// kill/resume soak's queue-equality witness.
    [[nodiscard]] std::uint64_t queue_fingerprint() const;

    [[nodiscard]] const DaemonConfig& config() const { return config_; }

private:
    struct CommittedMap {
        std::uint64_t source_job = 0;
        std::uint64_t raw_hash = 0;  ///< state_hash of the unwidened map
        plugvolt::SafeStateMap map;  ///< widened, serving-ready
    };
    struct CommittedEnvelope {
        std::uint64_t source_job = 0;
        fleet::PopulationEnvelope envelope;
    };
    /// What one successful execution hands back to the retry loop.
    struct ExecOutcome {
        std::uint64_t fingerprint = 0;
        std::uint64_t units = 0;
        std::string detail;
        trace::MetricsSnapshot metrics;
        std::optional<CommittedMap> commit_map;
        std::optional<CommittedEnvelope> commit_envelope;
    };

    [[nodiscard]] std::string job_journal_path(std::uint64_t id, const char* ext) const;
    void resume_queue(const std::vector<JobRecord>& records);
    void rehydrate_serving_state();

    /// Deliver one durable work unit of job `id`: bump the record,
    /// enforce the deadline, fire the hook.
    void unit_delivered(std::uint64_t id, std::uint64_t units_done,
                        std::uint64_t deadline);

    [[nodiscard]] ExecOutcome execute(const JobRecord& job);
    [[nodiscard]] ExecOutcome execute_characterize(const JobRecord& job);
    [[nodiscard]] ExecOutcome execute_campaign(const JobRecord& job);
    [[nodiscard]] ExecOutcome execute_fleet(const JobRecord& job);

    DaemonConfig config_;
    std::uint64_t config_hash_ = 0;
    ProgressHook hook_;

    mutable Mutex mutex_;
    JobWal wal_ PV_GUARDED_BY(mutex_);
    FlatMap<std::uint64_t, JobRecord> jobs_ PV_GUARDED_BY(mutex_);
    std::vector<std::uint64_t> queue_ PV_GUARDED_BY(mutex_);
    std::optional<CommittedMap> committed_map_ PV_GUARDED_BY(mutex_);
    std::optional<CommittedEnvelope> committed_envelope_ PV_GUARDED_BY(mutex_);
    DaemonStats stats_ PV_GUARDED_BY(mutex_);
};

}  // namespace pv::serve
