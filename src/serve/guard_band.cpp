#include "serve/guard_band.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace pv::serve {

WidenedMap widen_uncertain_rows(const plugvolt::SafeStateMap& map,
                                const std::vector<plugvolt::PlannedRow>& planned,
                                Millivolts offset_step) {
    if (planned.empty()) return WidenedMap{map, 0};
    if (planned.size() != map.rows().size())
        throw ConfigError("planned-row table (" + std::to_string(planned.size()) +
                          " rows) does not match the map (" +
                          std::to_string(map.rows().size()) + " rows)");
    if (offset_step.value() <= 0.0)
        throw ConfigError("guard-band widening needs a positive offset step");

    WidenedMap out{plugvolt::SafeStateMap(map.system_name(), map.sweep_floor()), 0};
    for (std::size_t i = 0; i < map.rows().size(); ++i) {
        plugvolt::FreqCharacterization row = map.rows()[i];
        if (!planned[i].anchored && !row.fault_free) {
            row.onset = std::min(Millivolts{0.0}, row.onset + offset_step);
            ++out.widened_rows;
        }
        out.map.add(row);
    }
    return out;
}

}  // namespace pv::serve
