#include "serve/job_wal.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace pv::serve {
namespace {

constexpr std::uint8_t kHeaderKind = 1;
constexpr std::uint8_t kSubmittedKind = 2;
constexpr std::uint8_t kStartedKind = 3;
constexpr std::uint8_t kAttemptFailedKind = 4;
constexpr std::uint8_t kFinishedKind = 5;
constexpr std::uint8_t kRejectedKind = 6;

using resilience::FrameLog;
using resilience::PayloadReader;
using resilience::put_f64;
using resilience::put_str;
using resilience::put_u32;
using resilience::put_u64;
using resilience::put_u8;

std::string encode_header_payload(const JobWalHeader& header) {
    std::string payload;
    put_u32(payload, header.version);
    put_u64(payload, header.config_hash);
    return payload;
}

JobWalHeader decode_header_payload(std::string_view payload) {
    PayloadReader r(payload);
    JobWalHeader header;
    header.version = r.u32();
    header.config_hash = r.u64();
    if (!r.ok() || !r.exhausted())
        throw JournalError("malformed job WAL header payload");
    if (header.version != 1)
        throw JournalError("unsupported job WAL version " +
                           std::to_string(header.version));
    return header;
}

std::string encode_id_payload(std::uint64_t id) {
    std::string payload;
    put_u64(payload, id);
    return payload;
}

bool decode_id_payload(std::string_view payload, std::uint64_t& id) {
    PayloadReader r(payload);
    id = r.u64();
    return r.ok() && r.exhausted();
}

std::string encode_attempt_payload(std::uint64_t id, std::uint32_t attempts) {
    std::string payload;
    put_u64(payload, id);
    put_u32(payload, attempts);
    return payload;
}

bool decode_attempt_payload(std::string_view payload, std::uint64_t& id,
                            std::uint32_t& attempts) {
    PayloadReader r(payload);
    id = r.u64();
    attempts = r.u32();
    return r.ok() && r.exhausted();
}

std::string encode_finished_payload(const JobRecord& record) {
    std::string payload;
    put_u64(payload, record.id);
    put_u8(payload, static_cast<std::uint8_t>(record.state));
    put_u64(payload, record.result_fingerprint);
    put_u32(payload, record.attempts);
    put_u64(payload, record.progress_units);
    put_str(payload, record.detail);
    return payload;
}

bool decode_finished_payload(std::string_view payload, JobRecord& record) {
    PayloadReader r(payload);
    record.id = r.u64();
    record.state = static_cast<JobState>(r.u8());
    record.result_fingerprint = r.u64();
    record.attempts = r.u32();
    record.progress_units = r.u64();
    record.detail = r.str_lp();
    return r.ok() && r.exhausted();
}

FrameLog::Kinds wal_kinds() {
    return FrameLog::Kinds{kHeaderKind,
                           {kSubmittedKind, kStartedKind, kAttemptFailedKind,
                            kFinishedKind, kRejectedKind}};
}

bool validate_frame(std::uint8_t kind, std::string_view payload) {
    std::uint64_t id = 0;
    std::uint32_t attempts = 0;
    JobSpec spec;
    JobRecord record;
    switch (kind) {
        case kHeaderKind: return true;  // header decode errors throw in resume
        case kSubmittedKind: return decode_spec_payload(payload, id, spec);
        case kStartedKind:
        case kRejectedKind: return decode_id_payload(payload, id);
        case kAttemptFailedKind: return decode_attempt_payload(payload, id, attempts);
        case kFinishedKind: return decode_finished_payload(payload, record);
        default: return false;
    }
}

}  // namespace

std::string encode_spec_payload(std::uint64_t id, const JobSpec& spec) {
    std::string payload;
    put_u64(payload, id);
    put_u8(payload, static_cast<std::uint8_t>(spec.kind));
    put_u64(payload, spec.seed);
    put_u64(payload, spec.profile_index);
    put_f64(payload, spec.char_step_mv);
    put_u8(payload, spec.sweep_mode);
    put_u64(payload, spec.units);
    put_u64(payload, spec.deadline_units);
    put_u64(payload, spec.campaign_attacks);
    put_u64(payload, spec.campaign_defenses);
    put_u32(payload, spec.inject_fail_attempts);
    return payload;
}

bool decode_spec_payload(std::string_view payload, std::uint64_t& id, JobSpec& spec) {
    PayloadReader r(payload);
    spec = JobSpec{};
    id = r.u64();
    spec.kind = static_cast<JobKind>(r.u8());
    spec.seed = r.u64();
    spec.profile_index = r.u64();
    spec.char_step_mv = r.f64();
    spec.sweep_mode = r.u8();
    spec.units = r.u64();
    spec.deadline_units = r.u64();
    spec.campaign_attacks = r.u64();
    spec.campaign_defenses = r.u64();
    spec.inject_fail_attempts = r.u32();
    return r.ok() && r.exhausted();
}

JobWal::JobWal(std::string path, JobWalHeader header,
               resilience::JournalOptions options)
    : log_(std::move(path), wal_kinds(), encode_header_payload(header), options),
      header_(header) {}

JobWal::JobWal(resilience::FrameLog&& log) : log_(std::move(log)) {
    header_ = decode_header_payload(log_.header_payload());
    // Replay keyed by id; the sorted FlatMap yields id-ordered records.
    FlatMap<std::uint64_t, JobRecord> replay;
    for (const FrameLog::Frame& f : log_.frames()) {
        std::uint64_t id = 0;
        std::uint32_t attempts = 0;
        switch (f.kind) {
            case kSubmittedKind: {
                JobSpec spec;
                (void)decode_spec_payload(f.payload, id, spec);  // validated in replay
                JobRecord& record = replay[id];
                record.id = id;
                record.spec = spec;
                record.state = JobState::Queued;
                next_id_ = std::max(next_id_, id + 1);
                break;
            }
            case kRejectedKind: {
                (void)decode_id_payload(f.payload, id);
                replay[id].state = JobState::Rejected;
                break;
            }
            case kStartedKind:
                // An execution began; without a finished frame the job
                // replays as Queued and is re-run on resume.
                break;
            case kAttemptFailedKind: {
                (void)decode_attempt_payload(f.payload, id, attempts);
                JobRecord& record = replay[id];
                record.attempts = std::max(record.attempts, attempts);
                break;
            }
            case kFinishedKind: {
                JobRecord record;
                (void)decode_finished_payload(f.payload, record);
                JobSpec spec = replay[record.id].spec;
                replay[record.id] = record;
                replay[record.id].spec = spec;
                break;
            }
            default: break;
        }
    }
    records_.reserve(replay.size());
    for (auto& [id, record] : replay) records_.push_back(std::move(record));
}

JobWal JobWal::resume(const std::string& path, resilience::JournalOptions options) {
    return JobWal(FrameLog::resume(path, wal_kinds(), options, validate_frame));
}

void JobWal::submitted(std::uint64_t id, const JobSpec& spec) {
    log_.append(kSubmittedKind, encode_spec_payload(id, spec));
    next_id_ = std::max(next_id_, id + 1);
}

void JobWal::rejected(std::uint64_t id) {
    log_.append(kRejectedKind, encode_id_payload(id));
}

void JobWal::started(std::uint64_t id) {
    log_.append(kStartedKind, encode_id_payload(id));
}

void JobWal::attempt_failed(std::uint64_t id, std::uint32_t attempts) {
    log_.append(kAttemptFailedKind, encode_attempt_payload(id, attempts));
}

void JobWal::finished(const JobRecord& record) {
    log_.append(kFinishedKind, encode_finished_payload(record));
}

}  // namespace pv::serve
