#include "serve/job.hpp"

namespace pv::serve {

const char* to_string(JobKind kind) {
    switch (kind) {
        case JobKind::Characterize: return "characterize";
        case JobKind::Campaign: return "campaign";
        case JobKind::Fleet: return "fleet";
    }
    return "?";
}

const char* to_string(JobState state) {
    switch (state) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Completed: return "completed";
        case JobState::Failed: return "failed";
        case JobState::Quarantined: return "quarantined";
        case JobState::Rejected: return "rejected";
    }
    return "?";
}

}  // namespace pv::serve
