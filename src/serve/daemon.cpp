#include "serve/daemon.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "check/state_hasher.hpp"
#include "fleet/fleet_orchestrator.hpp"
#include "fleet/silicon_lot.hpp"
#include "infer/adaptive_planner.hpp"
#include "plugvolt/parallel_characterizer.hpp"
#include "resilience/journal.hpp"
#include "serve/guard_band.hpp"
#include "sim/cpu_profile.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace pv::serve {
namespace {

/// Seed tags (disjoint from the campaign engine's 0xC0DE'0001..4).
constexpr std::uint64_t kJobBackoffTag = 0xC0DE'0005;
constexpr std::uint64_t kLotSeedTag = 0xC0DE'0006;

/// The watchdog's cancellation signal.  Deliberately NOT a
/// std::exception: the job retry loop must not swallow it, and the
/// kill signals the soak tests throw from the progress hook pass
/// through the same way.
struct QuarantineSignal {
    std::uint64_t units = 0;
    std::uint64_t deadline = 0;
};

void validate_spec(const JobSpec& spec) {
    if (spec.profile_index >= sim::paper_profiles().size())
        throw ConfigError("job profile_index " + std::to_string(spec.profile_index) +
                          " outside sim::paper_profiles()");
    if (!(spec.char_step_mv > 0.0))
        throw ConfigError("job char_step_mv must be positive");
    if (spec.sweep_mode > static_cast<std::uint8_t>(plugvolt::SweepMode::Adaptive))
        throw ConfigError("unknown sweep mode " + std::to_string(spec.sweep_mode));
    if (spec.kind == JobKind::Fleet && spec.units == 0)
        throw ConfigError("fleet job needs at least one unit");
}

std::uint64_t daemon_config_hash(const DaemonConfig& config) {
    check::StateHasher h;
    h.mix(static_cast<std::uint64_t>(1));  // serve config-hash version
    h.mix(static_cast<std::uint64_t>(config.max_queue_depth));
    h.mix(static_cast<std::uint64_t>(config.job_retry.max_attempts));
    h.mix(config.job_retry.base_delay.value());
    h.mix(config.job_retry.multiplier);
    h.mix(config.job_retry.max_delay.value());
    h.mix(config.job_retry.jitter);
    h.mix(config.guard.value());
    h.mix(config.fault_plan.has_value());
    if (config.fault_plan) {
        h.mix(config.fault_plan->seed);
        for (const double rate : config.fault_plan->rates) h.mix(rate);
    }
    return h.digest();
}

JobWal open_wal(const DaemonConfig& config, std::uint64_t config_hash) {
    std::filesystem::create_directories(config.state_dir);
    const std::string path = config.state_dir + "/daemon.wal";
    if (!file_exists(path))
        return JobWal(path, JobWalHeader{1, config_hash}, config.journal);
    JobWal wal = JobWal::resume(path, config.journal);
    if (wal.header().config_hash != config_hash)
        throw ConfigError("daemon state at " + config.state_dir +
                          " belongs to a different configuration");
    return wal;
}

sim::CpuProfile profile_for(const JobSpec& spec) {
    return sim::paper_profiles()[spec.profile_index];
}

/// Serving-tier campaign tuning: jobs are queue units, not the
/// publication-scale run (campaign_demo keeps that role).
campaign::AttackTuning job_tuning() {
    campaign::AttackTuning tuning;
    tuning.scan_step = Millivolts{8.0};
    tuning.probe_ops = 20'000;
    tuning.runs_per_offset = 8;
    return tuning;
}

std::string format_mv(Millivolts mv) { return std::to_string(mv.value()) + " mV"; }

}  // namespace

const char* to_string(DvfsDecision decision) {
    switch (decision) {
        case DvfsDecision::Granted: return "granted";
        case DvfsDecision::Clamped: return "clamped";
        case DvfsDecision::Denied: return "DENIED";
    }
    return "?";
}

CampaignDaemon::CampaignDaemon(DaemonConfig config)
    : config_(std::move(config)),
      config_hash_((config_.job_retry.validate(),
                    config_.fault_plan ? config_.fault_plan->validate() : void(),
                    daemon_config_hash(config_))),
      wal_(open_wal(config_, config_hash_)) {
    if (config_.max_queue_depth == 0)
        throw ConfigError("daemon queue depth must be at least 1");
    resume_queue(wal_.records());
    rehydrate_serving_state();
}

std::string CampaignDaemon::job_journal_path(std::uint64_t id, const char* ext) const {
    return config_.state_dir + "/job-" + std::to_string(id) + ext;
}

void CampaignDaemon::resume_queue(const std::vector<JobRecord>& records) {
    // Ctor-only: no concurrent access yet (constructors are exempt from
    // the thread-safety analysis for the same reason).
    for (const JobRecord& record : records) {
        jobs_[record.id] = record;
        switch (record.state) {
            case JobState::Queued:
                // Includes jobs killed mid-execution (started frame with
                // no finished frame): re-run, adopting the engine journal.
                queue_.push_back(record.id);
                break;
            case JobState::Rejected:
                jobs_[record.id].detail = "queue full";
                ++stats_.jobs_resumed;
                break;
            default:
                ++stats_.jobs_resumed;
                break;
        }
    }
}

void CampaignDaemon::rehydrate_serving_state() {
    // Serving state is not journaled separately — it is re-derived from
    // the LAST completed characterize/fleet job's engine journal (all
    // rows adopted: zero probes) and cross-checked against the WAL's
    // fingerprint.  Any mismatch or unreadable journal drops the state:
    // the daemon then serves Denied until a fresh job completes — fail
    // closed, never from unverified data.
    const JobRecord* last_map = nullptr;
    const JobRecord* last_fleet = nullptr;
    for (const auto& [id, record] : jobs_) {
        if (record.state != JobState::Completed) continue;
        if (record.spec.kind == JobKind::Characterize) last_map = &record;
        if (record.spec.kind == JobKind::Fleet) last_fleet = &record;
    }
    if (last_map != nullptr) {
        try {
            ExecOutcome out = execute_characterize(*last_map);
            if (out.fingerprint == last_map->result_fingerprint && out.commit_map)
                committed_map_ = std::move(out.commit_map);
            else
                ++stats_.rehydration_drops;
        } catch (const std::exception&) {
            ++stats_.rehydration_drops;
        }
    }
    if (last_fleet != nullptr) {
        try {
            ExecOutcome out = execute_fleet(*last_fleet);
            if (out.fingerprint == last_fleet->result_fingerprint && out.commit_envelope)
                committed_envelope_ = std::move(out.commit_envelope);
            else
                ++stats_.rehydration_drops;
        } catch (const std::exception&) {
            ++stats_.rehydration_drops;
        }
    }
}

std::uint64_t CampaignDaemon::submit(const JobSpec& spec) {
    validate_spec(spec);
    MutexLock lock(mutex_);
    const std::uint64_t id = wal_.next_id();
    // Write-ahead: the submit (and a rejection) is durable before any
    // in-memory state changes, so a replayed submit stream reproduces
    // the same ids, the same queue, and the same rejections.
    wal_.submitted(id, spec);
    JobRecord record;
    record.id = id;
    record.spec = spec;
    ++stats_.jobs_submitted;
    if (queue_.size() >= config_.max_queue_depth) {
        wal_.rejected(id);
        record.state = JobState::Rejected;
        record.detail = "queue full";
        ++stats_.jobs_rejected;
        jobs_[id] = std::move(record);
        return id;
    }
    jobs_[id] = std::move(record);
    queue_.push_back(id);
    return id;
}

bool CampaignDaemon::step() {
    JobRecord job;
    {
        MutexLock lock(mutex_);
        if (queue_.empty()) return false;
        const std::uint64_t id = queue_.front();
        queue_.erase(queue_.begin());
        JobRecord& record = jobs_.at(id);
        record.state = JobState::Running;
        job = record;  // snapshot carries WAL-fast-forwarded attempts
    }

    std::uint64_t backoff_ps = 0;
    while (true) {
        {
            MutexLock lock(mutex_);
            wal_.started(job.id);
        }
        try {
            if (job.attempts < job.spec.inject_fail_attempts)
                throw std::runtime_error("injected job failure (execution " +
                                         std::to_string(job.attempts) + ")");
            ExecOutcome out = execute(job);
            MutexLock lock(mutex_);
            JobRecord& record = jobs_.at(job.id);
            record.state = JobState::Completed;
            record.attempts = job.attempts + 1;
            record.result_fingerprint = out.fingerprint;
            record.progress_units = out.units;
            record.detail = std::move(out.detail);
            record.metrics = std::move(out.metrics);
            record.metrics.set_counter("job.units", out.units);
            record.metrics.set_counter("job.attempts_failed", job.attempts);
            record.metrics.set_counter("job.backoff_ps", backoff_ps);
            wal_.finished(record);
            if (out.commit_map) committed_map_ = std::move(out.commit_map);
            if (out.commit_envelope) committed_envelope_ = std::move(out.commit_envelope);
            ++stats_.jobs_completed;
            return true;
        } catch (const QuarantineSignal& signal) {
            MutexLock lock(mutex_);
            JobRecord& record = jobs_.at(job.id);
            record.state = JobState::Quarantined;
            record.attempts = job.attempts + 1;
            record.detail = "work-unit deadline exceeded (" +
                            std::to_string(signal.units) + " units > budget " +
                            std::to_string(signal.deadline) + ")";
            wal_.finished(record);
            ++stats_.jobs_quarantined;
            return true;
        } catch (const std::exception& error) {
            // One failed execution.  Journal it (so a resumed daemon
            // re-enters the loop at the same execution index), then
            // either retry with deterministic virtual backoff or give
            // the job its terminal Failed verdict.  Anything that is
            // not a std::exception (kill signals in the soak tests)
            // deliberately propagates.
            ++job.attempts;
            MutexLock lock(mutex_);
            JobRecord& record = jobs_.at(job.id);
            record.attempts = job.attempts;
            wal_.attempt_failed(job.id, job.attempts);
            ++stats_.job_attempts_failed;
            if (job.attempts >= config_.job_retry.max_attempts) {
                record.state = JobState::Failed;
                record.detail = error.what();
                wal_.finished(record);
                ++stats_.jobs_failed;
                return true;
            }
            backoff_ps += static_cast<std::uint64_t>(
                config_.job_retry
                    .backoff(job.attempts - 1, mix_seed(job.spec.seed, kJobBackoffTag))
                    .value());
        }
    }
}

void CampaignDaemon::run_until_idle() {
    while (step()) {
    }
}

void CampaignDaemon::unit_delivered(std::uint64_t id, std::uint64_t units_done,
                                    std::uint64_t deadline) {
    JobRecord snapshot;
    {
        MutexLock lock(mutex_);
        JobRecord& record = jobs_.at(id);
        record.progress_units = units_done;
        snapshot = record;
    }
    // Cooperative watchdog: the unit just delivered is already durable
    // in the job's engine journal; over-budget jobs are cancelled here,
    // at the unit boundary, never mid-probe.
    if (deadline != 0 && units_done > deadline)
        throw QuarantineSignal{units_done, deadline};
    if (hook_) hook_(snapshot, units_done);
}

CampaignDaemon::ExecOutcome CampaignDaemon::execute(const JobRecord& job) {
    switch (job.spec.kind) {
        case JobKind::Characterize: return execute_characterize(job);
        case JobKind::Campaign: return execute_campaign(job);
        case JobKind::Fleet: return execute_fleet(job);
    }
    throw ConfigError("unknown job kind");
}

CampaignDaemon::ExecOutcome CampaignDaemon::execute_characterize(const JobRecord& job) {
    const JobSpec& spec = job.spec;
    plugvolt::ParallelCharacterizerConfig cfg;
    cfg.cell.offset_step = Millivolts{spec.char_step_mv};
    cfg.workers = config_.workers;
    cfg.mode = static_cast<plugvolt::SweepMode>(spec.sweep_mode);
    cfg.seed = spec.seed;
    cfg.fault_plan = config_.fault_plan;
    // An injected-fault environment needs more mailbox retry headroom,
    // exactly like the fleet soak's configuration.
    if (config_.fault_plan) cfg.cell.retry.max_attempts = 8;
    if (cfg.mode == plugvolt::SweepMode::Adaptive)
        cfg.planner = infer::adaptive_planner();

    plugvolt::ParallelCharacterizer characterizer(profile_for(spec), cfg);
    const std::string path = job_journal_path(job.id, ".pvj");
    std::uint64_t units = 0;
    const auto progress = [&](const plugvolt::FreqCharacterization&) {
        unit_delivered(job.id, ++units, spec.deadline_units);
    };

    ExecOutcome out;
    const auto finish = [&](const plugvolt::SafeStateMap& map) {
        out.fingerprint = plugvolt::state_hash(map);
        WidenedMap served =
            widen_uncertain_rows(map, characterizer.planned_rows(), cfg.cell.offset_step);
        out.units = units;
        out.detail = std::to_string(map.rows().size()) + " rows, maximal safe " +
                     format_mv(map.maximal_safe_offset(config_.guard));
        const plugvolt::SweepStats& stats = characterizer.stats();
        out.metrics.set_counter("sweep.cells_evaluated", stats.cells_evaluated);
        out.metrics.set_counter("sweep.crash_probes", stats.crash_probes);
        out.metrics.set_counter("sweep.rows_resumed", stats.rows_resumed);
        out.metrics.set_counter("sweep.rows_interpolated", stats.rows_interpolated);
        out.metrics.set_counter("sweep.msr_retries", stats.msr_retries);
        out.metrics.set_counter("sweep.env_faults", stats.env_faults);
        out.metrics.set_counter("map.widened_rows", served.widened_rows);
        out.commit_map =
            CommittedMap{job.id, out.fingerprint, std::move(served.map)};
    };
    if (file_exists(path)) {
        resilience::SweepJournal journal =
            resilience::SweepJournal::resume(path, config_.journal);
        finish(characterizer.resume(journal, progress));
    } else {
        resilience::SweepJournal journal(path, characterizer.journal_header(),
                                         config_.journal);
        finish(characterizer.characterize(journal, progress));
    }
    return out;
}

CampaignDaemon::ExecOutcome CampaignDaemon::execute_campaign(const JobRecord& job) {
    const JobSpec& spec = job.spec;
    campaign::CampaignConfig cfg;
    const auto& attack_axis = campaign::all_attacks();
    const auto& defense_axis = campaign::all_defenses();
    const std::size_t n_attacks =
        spec.campaign_attacks == 0
            ? attack_axis.size()
            : std::min<std::size_t>(spec.campaign_attacks, attack_axis.size());
    const std::size_t n_defenses =
        spec.campaign_defenses == 0
            ? defense_axis.size()
            : std::min<std::size_t>(spec.campaign_defenses, defense_axis.size());
    cfg.attacks.assign(attack_axis.begin(),
                       attack_axis.begin() + static_cast<std::ptrdiff_t>(n_attacks));
    cfg.defenses.assign(defense_axis.begin(),
                        defense_axis.begin() + static_cast<std::ptrdiff_t>(n_defenses));
    cfg.profiles = {profile_for(spec)};
    cfg.seed = spec.seed;
    cfg.workers = config_.workers;
    cfg.char_step = Millivolts{spec.char_step_mv};
    cfg.tuning = job_tuning();
    cfg.fault_plan = config_.fault_plan;

    campaign::CampaignEngine engine(cfg);
    const std::string path = job_journal_path(job.id, ".pvcj");
    std::uint64_t units = 0;
    const auto progress = [&](const campaign::CampaignCellResult&) {
        unit_delivered(job.id, ++units, spec.deadline_units);
    };

    ExecOutcome out;
    const auto finish = [&](const campaign::CampaignReport& report) {
        out.fingerprint = report.fingerprint();
        out.units = units;
        out.detail = std::to_string(report.cells.size()) + " cells, " +
                     std::to_string(report.weaponized_count()) + " weaponized";
        const campaign::CampaignRunStats& stats = engine.run_stats();
        out.metrics.set_counter("campaign.cells_executed", stats.cells_executed);
        out.metrics.set_counter("campaign.cells_adopted", stats.cells_adopted);
        out.metrics.set_counter("campaign.attempts_fast_forwarded",
                                stats.attempts_fast_forwarded);
    };
    if (file_exists(path)) {
        campaign::CampaignJournal journal =
            campaign::CampaignJournal::resume(path, config_.journal);
        finish(engine.run(journal, progress));
    } else {
        campaign::CampaignJournal journal(
            path,
            campaign::CampaignJournalHeader{1, engine.config_hash(), cfg.seed,
                                            engine.cells().size()},
            config_.journal);
        finish(engine.run(journal, progress));
    }
    return out;
}

CampaignDaemon::ExecOutcome CampaignDaemon::execute_fleet(const JobRecord& job) {
    const JobSpec& spec = job.spec;
    fleet::LotConfig lot_config;
    lot_config.lot_seed = mix_seed(spec.seed, kLotSeedTag);
    const fleet::SiliconLot lot(profile_for(spec), lot_config);

    fleet::FleetConfig cfg;
    cfg.units = spec.units;
    cfg.sweep.cell.offset_step = Millivolts{spec.char_step_mv};
    cfg.sweep.mode = static_cast<plugvolt::SweepMode>(spec.sweep_mode);
    cfg.sweep.seed = spec.seed;
    cfg.sweep.fault_plan = config_.fault_plan;
    if (config_.fault_plan) cfg.sweep.cell.retry.max_attempts = 8;
    cfg.workers = config_.workers;

    fleet::FleetOrchestrator orchestrator(lot, cfg);
    const std::string path = job_journal_path(job.id, ".pvj");
    std::uint64_t units = 0;
    const auto progress = [&](std::uint64_t, const plugvolt::SafeStateMap&) {
        unit_delivered(job.id, ++units, spec.deadline_units);
    };

    ExecOutcome out;
    const auto finish = [&](fleet::PopulationEnvelope&& envelope) {
        out.fingerprint = fleet::state_hash(envelope);
        out.units = units;
        out.detail = std::to_string(envelope.units()) + " units, clamp " +
                     format_mv(envelope.clamp_at_yield(1.0));
        const fleet::FleetStats& stats = orchestrator.stats();
        out.metrics.set_counter("fleet.units_resumed", stats.units_resumed);
        out.metrics.set_counter("fleet.rows_resumed", stats.rows_resumed);
        out.metrics.set_counter("fleet.cells_evaluated", stats.cells_evaluated);
        out.metrics.set_counter("fleet.env_faults", stats.env_faults);
        out.commit_envelope = CommittedEnvelope{job.id, std::move(envelope)};
    };
    if (file_exists(path)) {
        resilience::SweepJournal journal =
            resilience::SweepJournal::resume(path, config_.journal);
        finish(orchestrator.resume(journal, progress));
    } else {
        resilience::SweepJournal journal(path, orchestrator.journal_header(),
                                         config_.journal);
        finish(orchestrator.characterize(journal, progress));
    }
    return out;
}

DvfsVerdict CampaignDaemon::request_undervolt(Megahertz f, Millivolts requested) {
    MutexLock lock(mutex_);
    DvfsVerdict verdict;
    if (!committed_map_) {
        // Fail closed: no committed, hash-verified map — no undervolt.
        verdict.decision = DvfsDecision::Denied;
        ++stats_.dvfs_denied;
        return verdict;
    }
    verdict.source_job = committed_map_->source_job;
    const Millivolts limit = committed_map_->map.safe_limit(f, config_.guard);
    if (requested >= limit) {
        verdict.decision = DvfsDecision::Granted;
        verdict.applied = requested;
        ++stats_.dvfs_granted;
    } else {
        verdict.decision = DvfsDecision::Clamped;
        verdict.applied = limit;
        ++stats_.dvfs_clamped;
    }
    return verdict;
}

std::optional<EnvelopeView> CampaignDaemon::query_envelope() const {
    MutexLock lock(mutex_);
    if (!committed_envelope_) return std::nullopt;
    EnvelopeView view;
    view.source_job = committed_envelope_->source_job;
    view.units = committed_envelope_->envelope.units();
    view.state_hash = fleet::state_hash(committed_envelope_->envelope);
    view.clamp = committed_envelope_->envelope.clamp_at_yield(1.0);
    return view;
}

std::optional<JobRecord> CampaignDaemon::job(std::uint64_t id) const {
    MutexLock lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    return it->second;
}

std::vector<JobRecord> CampaignDaemon::jobs() const {
    MutexLock lock(mutex_);
    std::vector<JobRecord> out;
    out.reserve(jobs_.size());
    for (const auto& [id, record] : jobs_) out.push_back(record);
    return out;
}

std::size_t CampaignDaemon::queue_depth() const {
    MutexLock lock(mutex_);
    return queue_.size();
}

DaemonStats CampaignDaemon::stats() const {
    MutexLock lock(mutex_);
    return stats_;
}

trace::MetricsSnapshot CampaignDaemon::metrics() const {
    MutexLock lock(mutex_);
    trace::MetricsSnapshot snapshot;
    snapshot.set_counter("daemon.jobs_submitted", stats_.jobs_submitted);
    snapshot.set_counter("daemon.jobs_rejected", stats_.jobs_rejected);
    snapshot.set_counter("daemon.jobs_completed", stats_.jobs_completed);
    snapshot.set_counter("daemon.jobs_failed", stats_.jobs_failed);
    snapshot.set_counter("daemon.jobs_quarantined", stats_.jobs_quarantined);
    snapshot.set_counter("daemon.jobs_resumed", stats_.jobs_resumed);
    snapshot.set_counter("daemon.job_attempts_failed", stats_.job_attempts_failed);
    snapshot.set_counter("daemon.rehydration_drops", stats_.rehydration_drops);
    snapshot.set_counter("daemon.dvfs_granted", stats_.dvfs_granted);
    snapshot.set_counter("daemon.dvfs_clamped", stats_.dvfs_clamped);
    snapshot.set_counter("daemon.dvfs_denied", stats_.dvfs_denied);
    snapshot.set_gauge("daemon.queue_depth", static_cast<double>(queue_.size()));
    snapshot.set_gauge("daemon.jobs_total", static_cast<double>(jobs_.size()));
    return snapshot;
}

std::uint64_t CampaignDaemon::queue_fingerprint() const {
    MutexLock lock(mutex_);
    check::StateHasher h;
    h.mix(static_cast<std::uint64_t>(jobs_.size()));
    for (const auto& [id, record] : jobs_) {
        h.mix(id);
        h.mix(static_cast<std::uint64_t>(record.spec.kind));
        h.mix(record.spec.seed);
        h.mix(record.spec.profile_index);
        h.mix(record.spec.char_step_mv);
        h.mix(static_cast<std::uint64_t>(record.spec.sweep_mode));
        h.mix(record.spec.units);
        h.mix(record.spec.deadline_units);
        h.mix(record.spec.campaign_attacks);
        h.mix(record.spec.campaign_defenses);
        h.mix(static_cast<std::uint64_t>(record.spec.inject_fail_attempts));
        h.mix(static_cast<std::uint64_t>(record.state));
        h.mix(record.result_fingerprint);
        h.mix(static_cast<std::uint64_t>(record.attempts));
        h.mix(record.progress_units);
        h.mix(std::string_view(record.detail));
    }
    return h.digest();
}

}  // namespace pv::serve
