// PlugVolt — campaign-as-a-service job model.
//
// The daemon (serve/daemon.hpp) runs every long workload in the repo —
// single-part characterizations, adversarial campaign cubes, fleet
// sweeps — behind one deterministic job queue.  A JobSpec is the entire
// input of a job: a handful of scalar knobs from which the daemon
// derives the engine configuration purely, so a job's result (and its
// 64-bit fingerprint) is a function of (daemon config, spec) alone —
// never of submission time, queue contention, or how often the daemon
// process was killed and resumed in between.
//
// Lifecycle:
//
//   Queued ──▶ Running ──▶ Completed            (fingerprint published)
//                  │   └──▶ Quarantined         (work-unit deadline hit)
//                  └──────▶ Failed              (job retry budget spent)
//   Queued ──▶ Rejected                         (queue full at submit)
//
// Quarantine is the watchdog verdict: a job that exceeds its cooperative
// work-unit budget is cancelled at the next unit boundary, journaled,
// and parked — it never blocks the queue, and its partial engine journal
// stays on disk for postmortem replay.
#pragma once

#include <cstdint>
#include <string>

#include "trace/metrics.hpp"

namespace pv::serve {

/// Which engine a job drives.
enum class JobKind : std::uint8_t {
    Characterize,  ///< one part's safe-state map (ParallelCharacterizer)
    Campaign,      ///< an {attack} x {defense} cube slice (CampaignEngine)
    Fleet,         ///< a silicon lot -> PopulationEnvelope (FleetOrchestrator)
};

enum class JobState : std::uint8_t {
    Queued,
    Running,
    Completed,
    Failed,       ///< job-level retry budget exhausted
    Quarantined,  ///< watchdog: work-unit deadline exceeded
    Rejected,     ///< admission control: queue full at submit time
};

[[nodiscard]] const char* to_string(JobKind kind);
[[nodiscard]] const char* to_string(JobState state);

/// The full input of one job.  Every field is journaled in the submit
/// frame, so a resumed daemon re-derives the identical engine
/// configuration.  Fields not meaningful for a kind are ignored by it.
struct JobSpec {
    JobKind kind = JobKind::Characterize;
    /// Root seed of the job's engine (sweep seed / campaign seed / fleet
    /// sweep seed; the fleet's lot seed is derived from it).
    std::uint64_t seed = 0xDAC2024;
    /// Index into sim::paper_profiles() (validated at submit).
    std::uint64_t profile_index = 0;
    /// Characterization offset resolution, mV (> 0).
    double char_step_mv = 10.0;
    /// plugvolt::SweepMode as u8 (0 exhaustive, 1 bisection, 2 adaptive);
    /// adaptive jobs get the src/infer planner attached and feed their
    /// bracket uncertainty into the serving guard band (guard_band.hpp).
    std::uint8_t sweep_mode = 1;
    /// Fleet jobs: units in the lot (>= 1).
    std::uint64_t units = 3;
    /// Cooperative watchdog budget: a job still unfinished after this
    /// many delivered work units (rows / cells / units) is quarantined at
    /// the next unit boundary.  0 = unlimited.
    std::uint64_t deadline_units = 0;
    /// Campaign jobs: prefix of the attack / defense axes to run
    /// (0 = the full axis).
    std::uint64_t campaign_attacks = 0;
    std::uint64_t campaign_defenses = 0;
    /// Deterministic failure knob for the retry tests: the first N
    /// executions of this job throw before reaching the engine.
    std::uint32_t inject_fail_attempts = 0;

    friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// One job's queue record.  Everything except `metrics` is journaled and
/// enters queue_fingerprint(); metrics are an in-process observability
/// surface (empty for jobs adopted already-finished from the WAL).
struct JobRecord {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    /// Result identity: state_hash of the map (Characterize), the report
    /// fingerprint (Campaign), or state_hash of the envelope (Fleet).
    std::uint64_t result_fingerprint = 0;
    /// Executions begun (failed attempts + the successful one, if any).
    std::uint32_t attempts = 0;
    /// Work units delivered by the last execution.
    std::uint64_t progress_units = 0;
    /// Human verdict / failure reason.
    std::string detail;
    /// Per-job counters (units, retries, backoff, engine stats).
    trace::MetricsSnapshot metrics;
};

}  // namespace pv::serve
