// PlugVolt — safe/unsafe system-state characterization data (Sec. 3-4).
//
// The countermeasure's whole knowledge is this map: per frequency, the
// undervolt offset where faults begin (onset) and where the machine
// crashes.  A (frequency, offset) pair classifies as Safe, Unsafe or
// Crash; the "maximal safe state" of Sec. 5 is the deepest offset that is
// safe at *every* frequency, which is what the microcode and hardware
// deployments enforce.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace pv::plugvolt {

/// Classification of one (frequency, offset) system state.
enum class StateClass {
    Safe,    ///< no observable faults at this point
    Unsafe,  ///< faults manifest (the paper's "unsafe state")
    Crash,   ///< deep enough that the machine crashes
};

[[nodiscard]] const char* to_string(StateClass c);

/// Characterization result for one frequency column of the sweep.
struct FreqCharacterization {
    Megahertz freq;
    /// Shallowest offset with observable faults; 0 when `fault_free`.
    Millivolts onset;
    /// Offset at which the machine crashed; equals the sweep floor when
    /// no crash was reached.
    Millivolts crash;
    /// True if the whole sweep depth showed no faults at this frequency.
    bool fault_free = false;
};

/// The per-system safe/unsafe state map (Figs. 2-4 in data form).
class SafeStateMap {
public:
    /// `sweep_floor` is the deepest offset the characterization visited
    /// (the paper sweeps to -300 mV); classifications below it are
    /// conservative (never Safe).
    SafeStateMap(std::string system_name, Millivolts sweep_floor);

    /// Append one frequency column; columns must be added in strictly
    /// increasing frequency order.
    void add(FreqCharacterization row);

    [[nodiscard]] const std::vector<FreqCharacterization>& rows() const { return rows_; }
    [[nodiscard]] const std::string& system_name() const { return system_name_; }
    [[nodiscard]] Millivolts sweep_floor() const { return sweep_floor_; }

    /// Classify a (frequency, offset) state using the nearest
    /// characterized frequency column.  Throws ConfigError on an empty map.
    [[nodiscard]] StateClass classify(Megahertz f, Millivolts offset) const;

    /// Convenience: Unsafe or Crash (what the polling module reacts to).
    [[nodiscard]] bool is_unsafe(Megahertz f, Millivolts offset) const;

    /// Deepest offset still safe at frequency `f`, with `guard` of margin
    /// (the value the polling module writes back on detection, keeping as
    /// much benign undervolt as possible).
    [[nodiscard]] Millivolts safe_limit(Megahertz f, Millivolts guard = Millivolts{15.0}) const;

    /// Sec. 5 maximal safe state: the deepest offset safe at EVERY
    /// characterized frequency, with `guard` of margin.  Never deeper
    /// than the sweep floor.
    [[nodiscard]] Millivolts maximal_safe_offset(Millivolts guard = Millivolts{15.0}) const;

    /// Highest characterized frequency at which `offset` (deepened by
    /// `guard`) is still safe; falls back to the lowest characterized
    /// frequency when none qualifies.  This is the instant lever the
    /// polling module pulls on detection: dropping frequency is always
    /// the safe direction and takes effect immediately, unlike the slow
    /// voltage restore.
    [[nodiscard]] Megahertz max_safe_frequency(Millivolts offset,
                                               Millivolts guard = Millivolts{15.0}) const;

    /// CSV round trip (header: freq_mhz,onset_mv,crash_mv,fault_free).
    [[nodiscard]] std::string to_csv() const;
    [[nodiscard]] static SafeStateMap from_csv(const std::string& text,
                                               std::string system_name,
                                               Millivolts sweep_floor);

    /// File round trip: save_csv writes atomically (temp-file + rename,
    /// util/fsio), so a crash mid-save can never leave a torn map for a
    /// later PollingModule to arm.  load_csv throws IoError when the
    /// file is unreadable and ConfigError when its contents are not a
    /// map; the round trip is bit-exact (doubles print with max_digits10).
    void save_csv(const std::string& path) const;
    [[nodiscard]] static SafeStateMap load_csv(const std::string& path,
                                               std::string system_name,
                                               Millivolts sweep_floor);

private:
    [[nodiscard]] const FreqCharacterization& nearest_row(Megahertz f) const;

    std::string system_name_;
    Millivolts sweep_floor_;
    std::vector<FreqCharacterization> rows_;
};

/// 64-bit fingerprint of a map (check::StateHasher over every field).
/// Two maps hash equal iff they are bit-identical cell-for-cell — the
/// single definition of "same map" shared by the determinism tests and
/// bench_parallel_sweep's self-check.
[[nodiscard]] std::uint64_t state_hash(const SafeStateMap& map);

}  // namespace pv::plugvolt
