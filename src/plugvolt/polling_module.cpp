#include "plugvolt/polling_module.hpp"


#include <algorithm>
#include <cmath>
#include "sim/ocm.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace pv::plugvolt {

PollingModule::PollingModule(SafeStateMap map, PollingConfig config)
    : map_(std::move(map)),
      config_(std::move(config)),
      poll_gap_us_({1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0}),
      unsafe_dwell_us_({0.1, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 500.0}) {
    if (config_.interval <= Picoseconds{0})
        throw ConfigError("polling interval must be positive");
    if (map_.rows().empty()) throw ConfigError("polling module needs a characterized map");
    if (config_.watch_measured_rail && !config_.nominal_rail)
        throw ConfigError("rail watchdog needs the fused VF table");
    config_.driver_retry.validate();
    maximal_safe_ = map_.maximal_safe_offset(config_.guard_band);
}

void PollingModule::stall(os::Kernel& kernel, unsigned cpu, Picoseconds delay) {
    const double f_mhz = kernel.machine().profile().freq_base.value();
    kernel.machine().add_steal(
        cpu, Cycles{static_cast<std::uint64_t>(
                 static_cast<double>(delay.value()) * f_mhz * 1e-6)});
}

std::optional<std::uint64_t> PollingModule::read_msr(os::Kernel& kernel,
                                                     unsigned poller_cpu,
                                                     unsigned target_cpu,
                                                     std::uint32_t addr) {
    os::MsrDriver& msr = kernel.msr();
    resilience::RetrySchedule sched(
        config_.driver_retry, mix_seed(mix_seed(config_.retry_seed, metrics_.polls), addr));
    while (sched.next_attempt()) {
        if (sched.backoff() > Picoseconds{0}) {
            stall(kernel, poller_cpu, sched.backoff());
            PV_TRACE_EVENT(trace::EventKind::RetryBackoff, "poll-read-retry",
                           kernel.machine().now().value(), addr, sched.attempts());
        }
        const os::MsrReadResult r = msr.try_rdmsr(poller_cpu, target_cpu, addr);
        if (r.status == os::MsrStatus::Ok) {
            if (r.stale) ++metrics_.stale_reads;
            return r.value;
        }
        ++metrics_.read_retries;
    }
    return std::nullopt;
}

bool PollingModule::write_msr(os::Kernel& kernel, unsigned poller_cpu,
                              unsigned target_cpu, std::uint32_t addr,
                              std::uint64_t value, bool* applied) {
    os::MsrDriver& msr = kernel.msr();
    resilience::RetrySchedule sched(
        config_.driver_retry,
        mix_seed(mix_seed(config_.retry_seed, ~metrics_.polls), addr));
    while (sched.next_attempt()) {
        if (sched.backoff() > Picoseconds{0}) {
            stall(kernel, poller_cpu, sched.backoff());
            PV_TRACE_EVENT(trace::EventKind::RetryBackoff, "poll-write-retry",
                           kernel.machine().now().value(), addr, sched.attempts());
        }
        const os::MsrWriteResult r = msr.try_wrmsr(poller_cpu, target_cpu, addr, value);
        if (r.status == os::MsrStatus::Ok) {
            if (applied != nullptr) *applied = r.applied;
            return true;
        }
        ++metrics_.write_retries;
    }
    return false;
}

void PollingModule::fail_closed(os::Kernel& kernel, unsigned poller_cpu,
                                unsigned target_cpu) {
    ++metrics_.missed_polls;
    // Unknown state is treated as hostile state: with the status MSRs
    // unreadable the module clamps the commanded offset to the maximal
    // safe state (safe at EVERY frequency) instead of skipping the poll
    // — the defense never dwells blind and unclamped beyond the read
    // retry budget.
    const std::uint64_t raw = sim::encode_offset(maximal_safe_, sim::VoltagePlane::Core);
    bool applied = false;
    if (write_msr(kernel, poller_cpu, target_cpu, sim::kMsrOcMailbox, raw, &applied) &&
        applied) {
        ++metrics_.fail_closed_clamps;
        PV_TRACE_EVENT(trace::EventKind::SafeStateRewrite, "fail-closed-clamp",
                       kernel.machine().now().value(), raw, target_cpu);
    }
    log_debug("plugvolt: poll of cpu ", target_cpu,
              " lost its status reads; fail-closed clamp to ", maximal_safe_.value(),
              " mV");
}

void PollingModule::clamp_frequencies(os::Kernel& kernel, unsigned poller_cpu,
                                      Megahertz f_safe) {
    const auto ratio = static_cast<std::uint64_t>(f_safe.value() / 100.0 + 0.5) & 0xFF;
    const unsigned cores = kernel.machine().core_count();
    for (unsigned cpu = 0; cpu < cores; ++cpu) {
        // The read only exists to skip cores already at or below the
        // limit; if it cannot be had, clamp unconditionally (writing a
        // redundant safe ratio is harmless, skipping a hot core is not).
        const std::optional<std::uint64_t> cur =
            read_msr(kernel, poller_cpu, cpu, sim::kMsrPerfCtl);
        if (cur && static_cast<double>((*cur >> 8) & 0xFF) * 100.0 <= f_safe.value())
            continue;
        bool applied = false;
        if (write_msr(kernel, poller_cpu, cpu, sim::kMsrPerfCtl, ratio << 8, &applied) &&
            applied) {
            ++metrics_.freq_drops;
            PV_TRACE_EVENT(trace::EventKind::FreqClamp, "freq-clamp",
                           kernel.machine().now().value(), cpu, ratio);
        }
    }
}

void PollingModule::poll_cpu(os::Kernel& kernel, unsigned poller_cpu, unsigned target_cpu) {
    ++metrics_.polls;
    const Picoseconds poll_time = kernel.machine().now();
    PV_TRACE_EVENT_FINE(trace::EventKind::PollIteration, "poll", poll_time.value(),
                        poller_cpu, target_cpu);
    if (target_cpu < last_poll_.size()) {
        if (last_poll_[target_cpu] > Picoseconds{0})
            poll_gap_us_.observe((poll_time - last_poll_[target_cpu]).microseconds());
        last_poll_[target_cpu] = poll_time;
    }
    // Algo. 3 lines 4-5: read frequency from 0x198 and offset from 0x150.
    // We additionally read the *requested* ratio from 0x199: a pending
    // P-state raise onto a deep offset is already an attack in flight
    // (VoltJockey direction) and must be caught before the PCU finishes
    // ramping the rail up.  Each read retries per driver_retry; any read
    // that exhausts its budget abandons the poll and fails closed.
    const std::optional<std::uint64_t> perf_read =
        read_msr(kernel, poller_cpu, target_cpu, sim::kMsrPerfStatus);
    const std::optional<std::uint64_t> ctl_read =
        perf_read ? read_msr(kernel, poller_cpu, target_cpu, sim::kMsrPerfCtl)
                  : std::nullopt;
    const std::optional<std::uint64_t> ocm_read =
        ctl_read ? read_msr(kernel, poller_cpu, target_cpu, sim::kMsrOcMailbox)
                 : std::nullopt;
    if (!ocm_read) {
        fail_closed(kernel, poller_cpu, target_cpu);
        return;
    }
    const std::uint64_t perf = *perf_read;
    const Megahertz effective{static_cast<double>((perf >> 8) & 0xFF) * 100.0};
    const std::uint64_t ctl = *ctl_read;
    const Megahertz requested{static_cast<double>((ctl >> 8) & 0xFF) * 100.0};
    const Megahertz freq = std::max(effective, requested);
    const std::uint64_t ocm = *ocm_read;
    const auto req = sim::decode_offset(ocm);
    const Millivolts commanded = req ? req->offset : Millivolts{0.0};
    // The mailbox reports the deepest commanded plane; restores must
    // target THAT plane (a cache-plane undervolt faults the load path —
    // rewriting the core plane would leave it armed).
    const sim::VoltagePlane plane = req ? req->plane : sim::VoltagePlane::Core;

    // Defense-in-depth rail watchdog: a rail pulled down WITHOUT a
    // matching mailbox command means hardware injection on the SVID bus.
    if (config_.watch_measured_rail) {
        // Blank the residual check while a legitimate command is still
        // settling (the module knows the regulator's latency/slew specs).
        if (commanded != last_commanded_) {
            const auto& reg = kernel.machine().profile().regulator;
            const double delta_mv = std::abs((commanded - last_commanded_).value());
            blank_until_ = kernel.machine().now() + reg.write_latency +
                           microseconds(delta_mv / reg.slew_mv_per_us + 20.0);
            last_commanded_ = commanded;
        }
        if (kernel.machine().now() >= blank_until_) {
            const double measured_v =
                static_cast<double>((perf >> 32) & 0xFFFF) / 8192.0 * 1000.0;
            const Millivolts measured_offset =
                Millivolts{measured_v} - config_.nominal_rail->nominal(effective);
            const Millivolts residual = measured_offset - commanded;
            if (residual < -config_.rail_watch_margin) {
                ++metrics_.rail_watch_detections;
                metrics_.last_detection = kernel.machine().now();
                PV_TRACE_EVENT(trace::EventKind::Instant, "rail-watch-detection",
                               kernel.machine().now().value(),
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(measured_offset.value())),
                               target_cpu);
                // The mailbox cannot out-write a bus interposer; the
                // frequency lever is the one the attacker cannot reach.
                clamp_frequencies(
                    kernel, poller_cpu,
                    map_.max_safe_frequency(measured_offset, config_.guard_band));
            }
        }
    }

    // Algo. 3 line 6: membership test against the unsafe state set.
    // The guard band is applied at DETECTION time: states within guard of
    // the measured onset still carry residual (sub-characterization-
    // sensitivity) fault probability that a patient attacker could farm,
    // so they count as unsafe too.  The maximal-safe policy tightens the
    // test to a frequency-independent bound.
    // (1 mV of hysteresis keeps the module's own restore target — exactly
    // guard_band above the onset — from re-triggering detection forever.)
    const Millivolts probe = commanded - config_.guard_band + Millivolts{1.0};
    const bool unsafe = config_.restore == RestorePolicy::ClampToMaximalSafe
                            ? commanded < maximal_safe_
                            : map_.is_unsafe(freq, probe);
    if (!unsafe) return;

    ++metrics_.detections;
    metrics_.last_detection = kernel.machine().now();
    PV_TRACE_EVENT(trace::EventKind::Instant, "unsafe-detected",
                   kernel.machine().now().value(),
                   static_cast<std::uint64_t>(freq.value()), ocm);
    // How long was the unsafe offset armed before we saw it?  Measured
    // from the mailbox write that commanded it (hardware injection has
    // no mailbox trace and is excluded by the zero check).
    const Picoseconds armed = kernel.machine().last_ocm_write_time();
    if (armed > Picoseconds{0} && kernel.machine().now() >= armed)
        unsafe_dwell_us_.observe((kernel.machine().now() - armed).microseconds());

    // Algo. 3 line 7: force the system back into a safe state.  Two
    // levers, pulled in order of immediacy:
    //  1. frequency (instant, always the safe direction): cancel any
    //     pending raise outright (back to the effective frequency — the
    //     rail may still be parked deep, so completing the raise at ANY
    //     higher P-state is a transition-window gamble), and never above
    //     the highest frequency safe for the commanded offset;
    //  2. voltage (slow: wrmsr latency + regulator ramp): restore the
    //     offset per the configured policy.
    const Megahertz f_safe =
        std::min(effective, map_.max_safe_frequency(commanded, config_.guard_band));
    // on_each_cpu: the rail is package-wide, so a pending raise on ANY
    // core keeps the package target high -- cancel them all.
    if (freq > f_safe) clamp_frequencies(kernel, poller_cpu, f_safe);

    Millivolts safe{0.0};
    switch (config_.restore) {
        case RestorePolicy::RestoreZero: safe = Millivolts{0.0}; break;
        case RestorePolicy::ClampToSafeLimit:
            safe = map_.safe_limit(freq, config_.guard_band);
            break;
        case RestorePolicy::ClampToMaximalSafe: safe = maximal_safe_; break;
    }
    const std::uint64_t raw = sim::encode_offset(safe, plane);
    bool applied = false;
    if (write_msr(kernel, poller_cpu, target_cpu, sim::kMsrOcMailbox, raw, &applied) &&
        applied) {
        ++metrics_.restore_writes;
        PV_TRACE_EVENT(trace::EventKind::SafeStateRewrite, "safe-state-rewrite",
                       kernel.machine().now().value(), raw,
                       static_cast<std::uint64_t>(plane));
    }
    log_debug("plugvolt: unsafe state at f=", freq.value(), " MHz, offset=",
              commanded.value(), " mV -> restoring ", safe.value(), " mV");
}

trace::MetricsSnapshot PollingModule::metrics_snapshot() const {
    trace::MetricsRegistry reg;
    reg.counter("polls") = metrics_.polls;
    reg.counter("detections") = metrics_.detections;
    reg.counter("restore_writes") = metrics_.restore_writes;
    reg.counter("freq_drops") = metrics_.freq_drops;
    reg.counter("rail_watch_detections") = metrics_.rail_watch_detections;
    reg.counter("read_retries") = metrics_.read_retries;
    reg.counter("write_retries") = metrics_.write_retries;
    reg.counter("stale_reads") = metrics_.stale_reads;
    reg.counter("missed_polls") = metrics_.missed_polls;
    reg.counter("fail_closed_clamps") = metrics_.fail_closed_clamps;
    reg.gauge("last_detection_us") = metrics_.last_detection.microseconds();
    trace::MetricsSnapshot out = reg.snapshot();
    auto freeze = [&out](const char* name, const trace::Histogram& h) {
        trace::MetricValue v;
        v.kind = trace::MetricValue::Kind::Histogram;
        v.count = h.count();
        v.value = h.sum();
        v.bounds = h.bounds();
        v.buckets = h.buckets();
        out.set(name, std::move(v));
    };
    freeze("poll_gap_us", poll_gap_us_);
    freeze("unsafe_dwell_us", unsafe_dwell_us_);
    return out;
}

void PollingModule::init(os::Kernel& kernel) {
    const unsigned cores = kernel.machine().core_count();
    last_poll_.assign(cores, Picoseconds{});
    if (config_.per_core_threads) {
        for (unsigned cpu = 0; cpu < cores; ++cpu) {
            kthreads_.push_back(kernel.start_kthread(
                {.name = "plugvolt/" + std::to_string(cpu), .cpu = cpu,
                 .period = config_.interval},
                [this, cpu](os::Kernel& k) { poll_cpu(k, cpu, cpu); }));
        }
    } else {
        kthreads_.push_back(kernel.start_kthread(
            {.name = "plugvolt/0", .cpu = 0, .period = config_.interval},
            [this, cores](os::Kernel& k) {
                for (unsigned cpu = 0; cpu < cores; ++cpu) poll_cpu(k, 0, cpu);
            }));
    }
}

void PollingModule::exit(os::Kernel& kernel) {
    for (const os::KthreadId id : kthreads_) kernel.stop_kthread(id);
    kthreads_.clear();
}

}  // namespace pv::plugvolt
