#include "plugvolt/microcode_guard.hpp"

#include "sim/ocm.hpp"
#include "util/error.hpp"

namespace pv::plugvolt {

MicrocodeGuard::MicrocodeGuard(sim::Machine& machine, Millivolts maximal_safe)
    : machine_(machine), maximal_safe_(maximal_safe) {
    if (maximal_safe_ > Millivolts{0.0})
        throw ConfigError("maximal safe state must be a non-positive offset");
}

MicrocodeGuard::~MicrocodeGuard() { uninstall(); }

void MicrocodeGuard::install() {
    if (token_) return;
    token_ = machine_.add_write_hook(
        [this](unsigned, std::uint32_t addr, std::uint64_t& value) {
            if (addr != sim::kMsrOcMailbox) return sim::MsrWriteAction::Allow;
            const auto req = sim::decode_offset(value);
            if (!req || !req->command || !req->write_enable)
                return sim::MsrWriteAction::Allow;
            const bool fault_relevant = req->plane == sim::VoltagePlane::Core ||
                                        req->plane == sim::VoltagePlane::Cache;
            if (fault_relevant && req->offset < maximal_safe_) {
                ++ignored_;  // conditional microcode branch: drop the write
                return sim::MsrWriteAction::Ignore;
            }
            return sim::MsrWriteAction::Allow;
        });
}

void MicrocodeGuard::uninstall() {
    if (!token_) return;
    machine_.remove_write_hook(*token_);
    token_.reset();
}

}  // namespace pv::plugvolt
