#include "plugvolt/msr_clamp.hpp"

#include <cmath>

#include "sim/ocm.hpp"
#include "util/error.hpp"

namespace pv::plugvolt {

MsrClamp::MsrClamp(sim::Machine& machine, Millivolts limit, bool locked)
    : machine_(machine), limit_(limit), locked_(locked) {
    if (limit_ > Millivolts{0.0})
        throw ConfigError("voltage offset limit must be a non-positive offset");
}

MsrClamp::~MsrClamp() { uninstall(); }

std::uint64_t MsrClamp::encode_limit(Millivolts limit, bool locked) {
    const auto magnitude =
        static_cast<std::uint64_t>(std::llround(-limit.value())) & 0x1FFFFFULL;
    return magnitude | (locked ? (1ULL << 31) : 0ULL);
}

Millivolts MsrClamp::decode_limit(std::uint64_t raw) {
    return Millivolts{-static_cast<double>(raw & 0x1FFFFFULL)};
}

void MsrClamp::install() {
    if (clamp_token_) return;
    // Fuse the limit before arming the lock hook.  This deployment is
    // BIOS/pcode-level by construction (Sec. 5.2): it programs the limit
    // register beneath the OS driver, so the audited-driver rule does
    // not apply to it — that is the point of the deployment.
    // pv-lint: allow(msr-raw-access) BIOS/pcode-level install, below the driver by design
    machine_.write_msr(0, sim::kMsrVoltageOffsetLimit, encode_limit(limit_, locked_));

    lock_token_ = machine_.add_write_hook(
        [this](unsigned, std::uint32_t addr, std::uint64_t&) {
            if (addr != sim::kMsrVoltageOffsetLimit) return sim::MsrWriteAction::Allow;
            // pv-lint: allow(msr-raw-access) write-hook context: pcode reading its own register
            const std::uint64_t current = machine_.read_msr(0, sim::kMsrVoltageOffsetLimit);
            if (current & (1ULL << 31)) {  // lock bit set: frozen until reset
                ++blocked_limit_writes_;
                return sim::MsrWriteAction::Ignore;
            }
            return sim::MsrWriteAction::Allow;
        });

    clamp_token_ = machine_.add_write_hook(
        [this](unsigned, std::uint32_t addr, std::uint64_t& value) {
            if (addr != sim::kMsrOcMailbox) return sim::MsrWriteAction::Allow;
            const auto req = sim::decode_offset(value);
            const bool fault_relevant =
                req && (req->plane == sim::VoltagePlane::Core ||
                        req->plane == sim::VoltagePlane::Cache);
            if (!req || !req->command || !req->write_enable || !fault_relevant)
                return sim::MsrWriteAction::Allow;
            const Millivolts live_limit = decode_limit(
                // pv-lint: allow(msr-raw-access) write-hook context: pcode reads its own register
                machine_.read_msr(0, sim::kMsrVoltageOffsetLimit));
            if (req->offset < live_limit) {
                ++clamped_;  // DRAM_MIN_PWR-style clamp, not a drop
                value = sim::encode_offset(live_limit, req->plane);
            }
            return sim::MsrWriteAction::Allow;
        });
}

void MsrClamp::uninstall() {
    if (clamp_token_) {
        machine_.remove_write_hook(*clamp_token_);
        clamp_token_.reset();
    }
    if (lock_token_) {
        machine_.remove_write_hook(*lock_token_);
        lock_token_.reset();
    }
}

}  // namespace pv::plugvolt
