// PlugVolt — the polling countermeasure kernel module (Sec. 4.3, Algo. 3).
//
// A kernel module whose kthread(s) poll MSR 0x198 (frequency + measured
// voltage) and MSR 0x150 (commanded offset) on every core, classify the
// (frequency, offset) pair against the characterized safe-state map, and
// on detecting an unsafe state rewrite 0x150 to force the system back
// into a safe state.  Two restore policies:
//   - ClampToSafeLimit (default): write the deepest still-safe offset for
//     the current frequency — benign undervolting keeps working, the
//     paper's headline advantage over access-control defenses;
//   - RestoreZero: write offset 0 (most conservative).
//
// Two threading layouts, both measured by the ablation bench:
//   - one kthread per core polling local MSRs (default — what per-CPU
//     kernel workers would do; cheapest);
//   - a single kthread on one core polling every core via IPIs (the
//     literal reading of Algo. 3's "for each CPU core" loop).
#pragma once

#include <cstdint>
#include <vector>

#include <optional>

#include "os/kernel.hpp"
#include "plugvolt/safe_state.hpp"
#include "resilience/retry.hpp"
#include "sim/vf_curve.hpp"
#include "trace/metrics.hpp"

namespace pv::plugvolt {

/// How the module forces the system back into a safe state.
///
/// ClampToSafeLimit keeps the deepest per-frequency safe offset (the most
/// DVFS-friendly choice and the paper's kernel-module behaviour); it has
/// a theoretical residual race against an adversary who parks a deep,
/// currently-safe offset and then steps frequency by exactly one bin
/// (see the attack-matrix ablation).  ClampToMaximalSafe enforces the
/// Sec. 5 maximal safe state on the *commanded* offset at all times,
/// which provably closes that race at the cost of shallower benign
/// undervolts.  RestoreZero is the most conservative.
enum class RestorePolicy { ClampToSafeLimit, ClampToMaximalSafe, RestoreZero };

/// Module configuration.
struct PollingConfig {
    Picoseconds interval = microseconds(50.0);
    bool per_core_threads = true;
    RestorePolicy restore = RestorePolicy::ClampToSafeLimit;
    /// Safety margin applied when clamping to the safe limit.
    Millivolts guard_band{15.0};

    /// Rail watchdog (defense-in-depth beyond the paper): compare the
    /// MEASURED voltage (0x198 bits 47:32) against what the mailbox
    /// commanded.  A persistently more-negative residual means something
    /// other than software is pulling the rail — a hardware SVID
    /// interposer (VoltPillager).  The mailbox cannot fix that, but the
    /// frequency lever is instant and attacker-unreachable from the bus:
    /// the module clamps the P-state so the injected rail becomes safe.
    bool watch_measured_rail = false;
    /// Residual threshold before the watchdog fires.
    Millivolts rail_watch_margin{30.0};
    /// The fused VF table (vendor data a real module ships with); needed
    /// to convert the measured voltage into an offset.  Required when
    /// watch_measured_rail is set.
    std::optional<sim::VfCurve> nominal_rail;

    /// Retry budget for driver accesses inside one poll.  A read that
    /// exhausts it FAIL-CLOSES: the module clamps the commanded offset
    /// to the maximal safe state rather than dwell blind — an attacker
    /// who can starve the status reads must not buy an unguarded window.
    resilience::RetryPolicy driver_retry{};
    /// Seed of the deterministic retry-jitter stream.
    std::uint64_t retry_seed = 0x5AFE'0001;
};

/// Runtime counters exposed by the module (like a sysfs stats file).
struct PollingMetrics {
    std::uint64_t polls = 0;            ///< per-core poll iterations
    std::uint64_t detections = 0;       ///< unsafe states detected
    std::uint64_t restore_writes = 0;   ///< 0x150 rewrites issued
    std::uint64_t freq_drops = 0;       ///< instant 0x199 safety clamps issued
    std::uint64_t rail_watch_detections = 0;  ///< hardware-injection residuals seen
    std::uint64_t read_retries = 0;     ///< faulted status reads absorbed by retry
    std::uint64_t write_retries = 0;    ///< faulted restore writes absorbed by retry
    std::uint64_t stale_reads = 0;      ///< torn reads served a previous value
    std::uint64_t missed_polls = 0;     ///< polls abandoned: read budget exhausted
    std::uint64_t fail_closed_clamps = 0;  ///< maximal-safe clamps forced by misses
    Picoseconds last_detection{};       ///< timestamp of the latest detection
};

/// The countermeasure module.  Load with Kernel::load_module; its load
/// state is what the paper proposes adding to SGX attestation reports.
class PollingModule final : public os::KernelModule {
public:
    PollingModule(SafeStateMap map, PollingConfig config);

    [[nodiscard]] std::string_view name() const override { return kModuleName; }
    void init(os::Kernel& kernel) override;
    void exit(os::Kernel& kernel) override;

    [[nodiscard]] const PollingMetrics& metrics() const { return metrics_; }
    [[nodiscard]] const SafeStateMap& map() const { return map_; }
    [[nodiscard]] const PollingConfig& config() const { return config_; }

    /// Counters plus latency histograms ("poll_gap_us": observed gap
    /// between consecutive polls of the same core; "unsafe_dwell_us":
    /// virtual time between the mailbox write that armed an unsafe state
    /// and the module's restoring rewrite).  Merged into campaign cell
    /// metrics under the "polling." prefix.
    [[nodiscard]] trace::MetricsSnapshot metrics_snapshot() const;

    static constexpr std::string_view kModuleName = "plugvolt";

private:
    /// One poll of `target_cpu` from `poller_cpu` (Algo. 3 body).
    void poll_cpu(os::Kernel& kernel, unsigned poller_cpu, unsigned target_cpu);

    /// Drop every core's requested frequency to at most `f_safe`.
    void clamp_frequencies(os::Kernel& kernel, unsigned poller_cpu, Megahertz f_safe);

    /// Burn `delay` on `cpu` as stolen cycles (a kthread cannot advance
    /// the machine clock from inside its own callback).
    void stall(os::Kernel& kernel, unsigned cpu, Picoseconds delay);

    /// Retried driver read; nullopt once the budget is exhausted (the
    /// caller must fail closed, never act on unknown state).
    [[nodiscard]] std::optional<std::uint64_t> read_msr(os::Kernel& kernel,
                                                        unsigned poller_cpu,
                                                        unsigned target_cpu,
                                                        std::uint32_t addr);

    /// Retried driver write; false once the budget is exhausted.
    bool write_msr(os::Kernel& kernel, unsigned poller_cpu, unsigned target_cpu,
                   std::uint32_t addr, std::uint64_t value, bool* applied);

    /// The degradation path: a poll that cannot read its status MSRs
    /// clamps the commanded offset to the maximal safe state.
    void fail_closed(os::Kernel& kernel, unsigned poller_cpu, unsigned target_cpu);

    SafeStateMap map_;
    Millivolts last_commanded_{};   // rail-watch blanking state
    Picoseconds blank_until_{};
    PollingConfig config_;
    Millivolts maximal_safe_{};
    PollingMetrics metrics_;
    trace::Histogram poll_gap_us_;
    trace::Histogram unsafe_dwell_us_;
    std::vector<Picoseconds> last_poll_;  // per-core, for the gap histogram
    std::vector<os::KthreadId> kthreads_;
};

}  // namespace pv::plugvolt
