// PlugVolt — empirical safe/unsafe characterization (Sec. 4.2, Algo. 2).
//
// Reproduces the paper's two-thread framework: a DVFS thread that walks
// the Cartesian product of table frequencies and negative offsets
// (written to MSR 0x150 through the userspace msr-tools path), and an
// EXECUTE thread running 10^6 imul iterations per cell.  Cells with
// wrong products are unsafe; each frequency column is pushed deeper
// until the machine crashes (then rebooted), exactly like the paper's
// sweep, producing the data behind Figs. 2-4.
#pragma once

#include <cstdint>
#include <functional>

#include "os/cpupower.hpp"
#include "os/kernel.hpp"
#include "plugvolt/safe_state.hpp"
#include "resilience/retry.hpp"

namespace pv::plugvolt {

/// Sweep parameters (defaults are the paper's).
struct CharacterizerConfig {
    Millivolts sweep_floor{-300.0};   ///< deepest offset tried (paper: -300 mV)
    Millivolts offset_step{1.0};      ///< offset resolution (paper: 1 mV)
    std::uint64_t ops_per_cell = 1'000'000;  ///< EXECUTE iterations per cell
    unsigned dvfs_core = 0;           ///< core the DVFS thread runs on
    unsigned execute_core = 1;        ///< core the EXECUTE thread runs on
    /// Instruction the EXECUTE thread hammers.  The paper uses imul (the
    /// longest path, hence the shallowest onsets — the conservative
    /// choice for a defense map); other classes characterize shallower
    /// paths, e.g. FpMul for AES-NI-style victims.
    sim::InstrClass instr_class = sim::InstrClass::Imul;
    /// Pin the die to this temperature at the start of every cell
    /// (0 = leave the thermal model alone).  Characterizing HOT is the
    /// worst case: timing margins shrink with temperature, so a map
    /// taken at the maximum expected die temperature stays conservative
    /// at runtime (see bench_thermal).
    double die_preheat_c = 0.0;
    /// Retry budget for the mailbox writes that drive each cell.  An
    /// injected EIO / busy mailbox / IPI timeout is retried after a
    /// deterministic backoff (charged on the machine clock); only an
    /// exhausted budget aborts the sweep with DriverError.
    resilience::RetryPolicy retry{};
};

/// Result of probing one (frequency, offset) cell.
struct CellResult {
    std::uint64_t faults = 0;
    bool crashed = false;
};

/// The Algorithm 2 driver.
class Characterizer {
public:
    Characterizer(os::Kernel& kernel, CharacterizerConfig config);

    /// Probe one cell: pin all cores to `f`, command `offset`, wait for
    /// the rail, run the EXECUTE loop, restore nominal settings.  If the
    /// machine crashes the caller's machine is left crashed (reboot is
    /// the sweep driver's job, as on real hardware).
    [[nodiscard]] CellResult test_cell(Megahertz f, Millivolts offset);

    /// test_cell for a machine whose cores are already pinned to `f`
    /// with the rail settled (the state pin_frequency() leaves behind,
    /// or a restored snapshot of it).  Skips the per-cell cpupower pass
    /// — provably state-neutral under that precondition, which is the
    /// same invariant that makes the sweep engine's snapshot restore
    /// sound — so the probe hot path pays only the cell's own physics.
    [[nodiscard]] CellResult test_cell_pinned(Megahertz f, Millivolts offset);

    /// Pin all cores to `f` and wait for the P-state raise to complete.
    /// Draws no random numbers, so the machine state afterwards is a
    /// pure function of (boot state, f) — which is what lets the sweep
    /// engine snapshot the pinned state once per row and restore it per
    /// cell instead of re-simulating the boot -> row-frequency ramp.
    /// test_cell()'s own frequency_set then finds every core already at
    /// `f` and is state-neutral.
    void pin_frequency(Megahertz f);

    /// One frequency column of the sweep: push the offset from one step
    /// below nominal down toward the floor, classifying onset and crash
    /// exactly like Algo. 2; reboots the machine if the column ends in a
    /// crash.  This is the reusable unit the sharded parallel engine
    /// dispatches per worker — rows are independent experiments.
    [[nodiscard]] FreqCharacterization characterize_row(Megahertz f);

    /// Full sweep over the profile's frequency table, producing the
    /// safe-state map.  Reboots the machine after every crash cell.
    /// `progress` (optional) is called once per completed column.
    [[nodiscard]] SafeStateMap characterize(
        const std::function<void(const FreqCharacterization&)>& progress = {});

    /// Number of machine crashes (reboots) the last sweep caused.
    [[nodiscard]] unsigned crash_count() const { return crash_count_; }

    /// Non-Ok mailbox write attempts absorbed by the retry budget since
    /// construction (0 unless a fault injector is attached upstream).
    [[nodiscard]] std::uint64_t msr_retries() const { return msr_retries_; }

    /// Number of offset steps one full column visits (floor / step).
    [[nodiscard]] std::uint64_t sweep_steps() const;

    /// Offset commanded at 1-based step `s` (step 1 is one offset_step
    /// below nominal; sweep_steps() is the floor).
    [[nodiscard]] Millivolts offset_at_step(std::uint64_t s) const;

    /// The `crash` field value for a column that never crashed: one step
    /// below the sweep floor, so nothing inside the sweep classifies as
    /// Crash.
    [[nodiscard]] Millivolts no_crash_sentinel() const {
        return config_.sweep_floor - config_.offset_step;
    }

    [[nodiscard]] const CharacterizerConfig& config() const { return config_; }

private:
    /// Command `offset` on the Core plane through the mailbox, retrying
    /// environment faults per config_.retry with backoffs salted by
    /// `salt` (a pure function of the cell, so injected-fault runs
    /// replay bit-exactly regardless of worker assignment).  Returns
    /// false when the machine crashed while waiting out a backoff;
    /// throws DriverError once the budget is exhausted.
    bool command_offset(Millivolts offset, std::uint64_t salt);

    /// Shared cell protocol; `assume_pinned` elides the DVFS thread's
    /// frequency pass when the caller guarantees it would be a no-op.
    [[nodiscard]] CellResult test_cell_impl(Megahertz f, Millivolts offset,
                                            bool assume_pinned);

    os::Kernel& kernel_;
    os::Cpupower cpupower_;
    CharacterizerConfig config_;
    unsigned crash_count_ = 0;
    std::uint64_t msr_retries_ = 0;
};

}  // namespace pv::plugvolt
