// PlugVolt — umbrella header and high-level protection facade.
//
// The library reproduces "Plug Your Volt" (DAC 2024): characterize a
// system's safe/unsafe (frequency, voltage-offset) states, then enforce
// safety at one of three deployment levels — kernel-module polling
// (Sec. 4.3), microcode write-ignore (Sec. 5.1), or a hardware clamp MSR
// (Sec. 5.2).
//
// Typical use:
//
//   sim::Machine machine(sim::cometlake_i7_10510u(), seed);
//   os::Kernel kernel(machine);
//   plugvolt::Characterizer chr(kernel, {});
//   plugvolt::Protector protector(kernel, chr.characterize());
//   protector.deploy(plugvolt::DeploymentLevel::KernelModule);
#pragma once

#include <memory>

#include "plugvolt/characterizer.hpp"
#include "plugvolt/microcode_guard.hpp"
#include "plugvolt/msr_clamp.hpp"
#include "plugvolt/polling_module.hpp"
#include "plugvolt/safe_state.hpp"
#include "plugvolt/turnaround.hpp"

namespace pv::plugvolt {

/// Where the countermeasure is enforced.
enum class DeploymentLevel {
    KernelModule,  ///< Algo. 3 polling kthreads (software-only, deployable today)
    Microcode,     ///< Sec. 5.1 sequencer write-ignore (vendor microcode)
    HardwareMsr,   ///< Sec. 5.2 MSR_VOLTAGE_OFFSET_LIMIT clamp (silicon)
};

[[nodiscard]] const char* to_string(DeploymentLevel level);

/// One-stop deployment facade over the three mechanisms.
class Protector {
public:
    Protector(os::Kernel& kernel, SafeStateMap map);
    ~Protector();

    Protector(const Protector&) = delete;
    Protector& operator=(const Protector&) = delete;

    /// Activate protection at `level` (replacing any active deployment).
    /// `config` applies to the KernelModule level only.
    void deploy(DeploymentLevel level, PollingConfig config = {});

    /// Deactivate protection entirely.
    void undeploy();

    [[nodiscard]] bool deployed() const { return level_.has_value(); }
    [[nodiscard]] std::optional<DeploymentLevel> level() const { return level_; }
    [[nodiscard]] const SafeStateMap& map() const { return map_; }

    /// Live module when deployed at KernelModule level, else nullptr.
    [[nodiscard]] const PollingModule* polling_module() const { return module_.get(); }

private:
    os::Kernel& kernel_;
    SafeStateMap map_;
    std::optional<DeploymentLevel> level_;
    std::shared_ptr<PollingModule> module_;
    std::unique_ptr<MicrocodeGuard> microcode_;
    std::unique_ptr<MsrClamp> clamp_;
};

}  // namespace pv::plugvolt
