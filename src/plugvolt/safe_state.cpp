#include "plugvolt/safe_state.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "check/state_hasher.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace pv::plugvolt {
namespace {

/// Shortest decimal that round-trips the double bit-exactly: the file
/// round trip must reproduce the same map hash the sweep computed.
std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

const char* to_string(StateClass c) {
    switch (c) {
        case StateClass::Safe: return "safe";
        case StateClass::Unsafe: return "unsafe";
        case StateClass::Crash: return "crash";
    }
    return "?";
}

SafeStateMap::SafeStateMap(std::string system_name, Millivolts sweep_floor)
    : system_name_(std::move(system_name)), sweep_floor_(sweep_floor) {
    if (sweep_floor_ >= Millivolts{0.0})
        throw ConfigError("sweep floor must be a negative offset");
}

void SafeStateMap::add(FreqCharacterization row) {
    if (!rows_.empty() && row.freq <= rows_.back().freq)
        throw ConfigError("safe-state rows must be added in increasing frequency order");
    if (!row.fault_free && row.crash > row.onset)
        throw ConfigError("crash boundary cannot be shallower than fault onset");
    rows_.push_back(row);
}

const FreqCharacterization& SafeStateMap::nearest_row(Megahertz f) const {
    if (rows_.empty()) throw ConfigError("safe-state map is empty");
    const FreqCharacterization* best = &rows_.front();
    double best_d = std::abs(f.value() - best->freq.value());
    for (const auto& row : rows_) {
        const double d = std::abs(f.value() - row.freq.value());
        if (d < best_d) {
            best = &row;
            best_d = d;
        }
    }
    return *best;
}

StateClass SafeStateMap::classify(Megahertz f, Millivolts offset) const {
    const FreqCharacterization& row = nearest_row(f);
    if (row.fault_free) {
        // No faults were seen down to the sweep floor; anything deeper
        // was never characterized and must be treated as unsafe.
        return offset >= sweep_floor_ ? StateClass::Safe : StateClass::Unsafe;
    }
    if (offset <= row.crash) return StateClass::Crash;
    if (offset <= row.onset) return StateClass::Unsafe;
    return StateClass::Safe;
}

bool SafeStateMap::is_unsafe(Megahertz f, Millivolts offset) const {
    return classify(f, offset) != StateClass::Safe;
}

Millivolts SafeStateMap::safe_limit(Megahertz f, Millivolts guard) const {
    const FreqCharacterization& row = nearest_row(f);
    const Millivolts edge = row.fault_free ? sweep_floor_ : row.onset;
    return std::min(Millivolts{0.0}, edge + guard);
}

Millivolts SafeStateMap::maximal_safe_offset(Millivolts guard) const {
    if (rows_.empty()) throw ConfigError("safe-state map is empty");
    Millivolts shallowest_edge = sweep_floor_;
    for (const auto& row : rows_) {
        const Millivolts edge = row.fault_free ? sweep_floor_ : row.onset;
        shallowest_edge = std::max(shallowest_edge, edge);
    }
    return std::min(Millivolts{0.0}, shallowest_edge + guard);
}

Megahertz SafeStateMap::max_safe_frequency(Millivolts offset, Millivolts guard) const {
    if (rows_.empty()) throw ConfigError("safe-state map is empty");
    const Millivolts probe = offset - guard;
    Megahertz best = rows_.front().freq;
    bool found = false;
    for (const auto& row : rows_) {
        if (classify(row.freq, probe) == StateClass::Safe) {
            best = found ? std::max(best, row.freq) : row.freq;
            found = true;
        }
    }
    return found ? best : rows_.front().freq;
}

std::string SafeStateMap::to_csv() const {
    CsvDocument doc;
    doc.header = {"freq_mhz", "onset_mv", "crash_mv", "fault_free"};
    for (const auto& row : rows_) {
        doc.rows.push_back({fmt_double(row.freq.value()), fmt_double(row.onset.value()),
                            fmt_double(row.crash.value()),
                            row.fault_free ? "1" : "0"});
    }
    return csv_write(doc);
}

SafeStateMap SafeStateMap::from_csv(const std::string& text, std::string system_name,
                                    Millivolts sweep_floor) {
    const CsvDocument doc = csv_parse(text);
    if (doc.header != std::vector<std::string>{"freq_mhz", "onset_mv", "crash_mv", "fault_free"})
        throw ConfigError("unexpected safe-state CSV header");
    SafeStateMap map(std::move(system_name), sweep_floor);
    for (const auto& row : doc.rows) {
        map.add(FreqCharacterization{
            .freq = Megahertz{std::stod(row[0])},
            .onset = Millivolts{std::stod(row[1])},
            .crash = Millivolts{std::stod(row[2])},
            .fault_free = row[3] == "1",
        });
    }
    return map;
}

void SafeStateMap::save_csv(const std::string& path) const {
    atomic_write_file(path, to_csv());
}

SafeStateMap SafeStateMap::load_csv(const std::string& path, std::string system_name,
                                    Millivolts sweep_floor) {
    return from_csv(read_file(path), std::move(system_name), sweep_floor);
}

std::uint64_t state_hash(const SafeStateMap& map) {
    check::StateHasher h;
    h.mix(map.system_name());
    h.mix(map.sweep_floor().value());
    h.mix(static_cast<std::uint64_t>(map.rows().size()));
    for (const FreqCharacterization& row : map.rows()) {
        h.mix(row.freq.value());
        h.mix(row.onset.value());
        h.mix(row.crash.value());
        h.mix(row.fault_free);
    }
    return h.digest();
}

}  // namespace pv::plugvolt
