// PlugVolt — countermeasure turnaround time (Sec. 5).
//
// Turnaround is the window between the system entering an unsafe state
// and being forced back into a safe one.  For the kernel-module
// deployment it decomposes into: detection latency (bounded by the poll
// interval), the MSR access costs of the poll body, and the regulator's
// write latency + ramp.  The microcode and hardware deployments never
// let the unsafe state be entered, so their turnaround is identically
// zero — the paper's motivation for the maximal-safe-state design.
#pragma once

#include "os/kernel.hpp"
#include "plugvolt/polling_module.hpp"
#include "plugvolt/safe_state.hpp"

namespace pv::plugvolt {

/// Analytic decomposition of the kernel-module turnaround.
struct TurnaroundBreakdown {
    Picoseconds detection_mean{};   ///< E[time to next poll] = interval/2
    Picoseconds detection_worst{};  ///< full poll interval
    Picoseconds msr_access{};       ///< poll-body rdmsr/wrmsr cost
    Picoseconds regulator_latency{};///< SVID command latency
    Picoseconds regulator_ramp{};   ///< slew from unsafe back to safe offset

    [[nodiscard]] Picoseconds total_mean() const {
        return detection_mean + msr_access + regulator_latency + regulator_ramp;
    }
    [[nodiscard]] Picoseconds total_worst() const {
        return detection_worst + msr_access + regulator_latency + regulator_ramp;
    }
};

/// Analytic estimate for a polling deployment reacting at frequency
/// `poll_freq` to an excursion from `unsafe_offset` back to `safe_offset`.
[[nodiscard]] TurnaroundBreakdown estimate_turnaround(const sim::CpuProfile& profile,
                                                      const PollingConfig& config,
                                                      Megahertz poll_freq,
                                                      Millivolts unsafe_offset,
                                                      Millivolts safe_offset);

/// One measured turnaround experiment: inject an unsafe 0x150 write and
/// watch the live module detect and repair it.
struct MeasuredTurnaround {
    Picoseconds injected_at{};
    Picoseconds detected_at{};   ///< module's detection timestamp
    Picoseconds rail_safe_at{};  ///< rail back above the fault onset
    bool detected = false;
    bool crashed = false;        ///< the excursion crashed the machine first

    [[nodiscard]] Picoseconds exposure() const { return rail_safe_at - injected_at; }
};

/// Run the injection experiment on a live kernel+module.  `f` is pinned
/// on all cores first; `unsafe_offset` is written through the userspace
/// MSR path from core 0 (the attacker's vantage point).
[[nodiscard]] MeasuredTurnaround measure_turnaround(os::Kernel& kernel,
                                                    const PollingModule& module,
                                                    const SafeStateMap& map, Megahertz f,
                                                    Millivolts unsafe_offset);

}  // namespace pv::plugvolt
