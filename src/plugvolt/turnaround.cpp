#include "plugvolt/turnaround.hpp"

#include <cmath>

#include "os/cpupower.hpp"
#include "sim/ocm.hpp"
#include "util/error.hpp"

namespace pv::plugvolt {

TurnaroundBreakdown estimate_turnaround(const sim::CpuProfile& profile,
                                        const PollingConfig& config, Megahertz poll_freq,
                                        Millivolts unsafe_offset, Millivolts safe_offset) {
    if (poll_freq.value() <= 0.0) throw ConfigError("poll frequency must be positive");
    TurnaroundBreakdown b;
    b.detection_worst = config.interval;
    b.detection_mean = Picoseconds{config.interval.value() / 2};

    // Poll body on detection: two rdmsr + one wrmsr (local when per-core
    // threads, remote/IPI-priced otherwise) plus the kthread wakeup.
    const std::uint64_t ipi = config.per_core_threads ? 0 : profile.costs.ipi_cycles;
    const std::uint64_t cycles = profile.costs.kthread_wake_cycles +
                                 2 * (profile.costs.rdmsr_cycles + ipi) +
                                 (profile.costs.wrmsr_cycles + ipi);
    b.msr_access = Cycles{cycles}.at(poll_freq);

    b.regulator_latency = profile.regulator.write_latency;
    const double delta_mv = std::abs((safe_offset - unsafe_offset).value());
    b.regulator_ramp = microseconds(delta_mv / profile.regulator.slew_mv_per_us);
    return b;
}

MeasuredTurnaround measure_turnaround(os::Kernel& kernel, const PollingModule& module,
                                      const SafeStateMap& map, Megahertz f,
                                      Millivolts unsafe_offset) {
    sim::Machine& m = kernel.machine();
    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());
    cpupower.frequency_set(f);

    MeasuredTurnaround result;
    const std::uint64_t detections_before = module.metrics().detections;

    // Attacker injects the unsafe command from userspace on core 0.
    result.injected_at = m.now();
    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(unsafe_offset, sim::VoltagePlane::Core));

    // Watch until the rail is back above the fault onset for f (or the
    // machine crashes / we time out after 50 ms).
    const Millivolts onset_edge = map.safe_limit(f, Millivolts{0.0});
    const Picoseconds deadline = m.now() + milliseconds(50.0);
    while (m.now() < deadline && !m.crashed()) {
        m.advance(microseconds(2.0));
        const Millivolts applied = m.applied_offset(sim::VoltagePlane::Core);
        if (module.metrics().detections > detections_before && !result.detected) {
            result.detected = true;
            result.detected_at = module.metrics().last_detection;
        }
        // Safe again once the commanded target is safe and the rail has
        // climbed back out of (or never reached) the unsafe band.
        const Millivolts commanded = m.regulator().target(sim::VoltagePlane::Core);
        if (result.detected && commanded >= onset_edge && applied >= onset_edge) {
            result.rail_safe_at = m.now();
            result.crashed = false;
            return result;
        }
    }
    result.crashed = m.crashed();
    result.rail_safe_at = m.now();
    return result;
}

}  // namespace pv::plugvolt
