// PlugVolt — microcode-sequencer deployment (Sec. 5.1).
//
// Models the vendor-level variant: the maximal safe state is burned into
// microcode ROM, and the sequencer intercepts every `wrmsr` to 0x150.  A
// write that would push the system past the maximal safe boundary is
// silently ignored — the write-ignore behaviour Intel already applies to
// several MSRs.  Because the unsafe state is never *entered*, turnaround
// time is zero.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace pv::plugvolt {

/// Installable microcode patch guarding MSR 0x150.
class MicrocodeGuard {
public:
    /// `maximal_safe` comes from SafeStateMap::maximal_safe_offset().
    MicrocodeGuard(sim::Machine& machine, Millivolts maximal_safe);
    ~MicrocodeGuard();

    MicrocodeGuard(const MicrocodeGuard&) = delete;
    MicrocodeGuard& operator=(const MicrocodeGuard&) = delete;

    /// Load the microcode patch (idempotent).
    void install();
    /// Revert to the unpatched sequencer (idempotent).
    void uninstall();

    [[nodiscard]] bool installed() const { return token_.has_value(); }
    [[nodiscard]] Millivolts maximal_safe() const { return maximal_safe_; }

    /// Writes the sequencer has silently dropped.
    [[nodiscard]] std::uint64_t ignored_writes() const { return ignored_; }

private:
    sim::Machine& machine_;
    Millivolts maximal_safe_;
    std::optional<std::size_t> token_;
    std::uint64_t ignored_ = 0;
};

}  // namespace pv::plugvolt
