#include "plugvolt/plugvolt.hpp"

namespace pv::plugvolt {

const char* to_string(DeploymentLevel level) {
    switch (level) {
        case DeploymentLevel::KernelModule: return "kernel-module";
        case DeploymentLevel::Microcode: return "microcode";
        case DeploymentLevel::HardwareMsr: return "hardware-msr";
    }
    return "?";
}

Protector::Protector(os::Kernel& kernel, SafeStateMap map)
    : kernel_(kernel), map_(std::move(map)) {}

Protector::~Protector() { undeploy(); }

void Protector::deploy(DeploymentLevel level, PollingConfig config) {
    undeploy();
    switch (level) {
        case DeploymentLevel::KernelModule:
            // Arm the rail watchdog with the platform's fused VF table
            // unless the caller configured it explicitly.
            if (!config.watch_measured_rail && !config.nominal_rail) {
                config.watch_measured_rail = true;
                config.nominal_rail = kernel_.machine().profile().vf_curve();
            }
            module_ = std::make_shared<PollingModule>(map_, config);
            kernel_.load_module(module_);
            break;
        case DeploymentLevel::Microcode:
            microcode_ = std::make_unique<MicrocodeGuard>(kernel_.machine(),
                                                          map_.maximal_safe_offset());
            microcode_->install();
            break;
        case DeploymentLevel::HardwareMsr:
            clamp_ = std::make_unique<MsrClamp>(kernel_.machine(),
                                                map_.maximal_safe_offset());
            clamp_->install();
            break;
    }
    level_ = level;
}

void Protector::undeploy() {
    if (module_) {
        kernel_.unload_module(PollingModule::kModuleName);
        module_.reset();
    }
    microcode_.reset();  // destructor uninstalls
    clamp_.reset();
    level_.reset();
}

}  // namespace pv::plugvolt
