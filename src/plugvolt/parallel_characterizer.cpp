#include "plugvolt/parallel_characterizer.hpp"

#include <cmath>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "check/assert.hpp"
#include "util/flat_map.hpp"
#include "check/state_hasher.hpp"
#include "os/kernel.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pv::plugvolt {
namespace {

/// Salt mixed into the cell seed to derive the per-cell injector seed:
/// keeps the fault stream independent of the machine's own RNG stream.
constexpr std::uint64_t kFaultSeedTag = 0xFA'5EED;

}  // namespace

const char* to_string(SweepMode mode) {
    switch (mode) {
        case SweepMode::Exhaustive: return "exhaustive";
        case SweepMode::Bisection: return "bisection";
        case SweepMode::Adaptive: return "adaptive";
    }
    return "?";
}

/// Per-worker simulator instance plus the per-row probe cache.  Owned by
/// exactly one pool thread at a time; rows never share a Worker.
class ParallelCharacterizer::Worker {
public:
    Worker(const sim::CpuProfile& profile, const CharacterizerConfig& cell_config,
           std::uint64_t boot_seed,
           const std::optional<resilience::FaultPlan>& fault_plan)
        : context_(os::make_worker_context(profile, boot_seed)),
          characterizer_(*context_.kernel, cell_config) {
        if (fault_plan) {
            injector_.emplace(*fault_plan);
            context_.kernel->msr().set_fault_injector(&*injector_);
        }
    }

    /// Start a new frequency row: forget cached probes and the pinned-
    /// state snapshot (it belongs to the previous row's frequency).
    void begin_row(Megahertz f, std::uint64_t row_seed) {
        freq_ = f;
        row_seed_ = row_seed;
        memo_.clear();
        pinned_.reset();
        cells_ = 0;
        crashes_ = 0;
        retry_base_ = characterizer_.msr_retries();
    }

    /// Probe offset step `s` of the current row from a fresh boot with
    /// the cell's derived seed; memoized, so bisection and refinement
    /// never pay for (or re-randomize) a cell twice.
    ///
    /// The boot -> row-frequency pin draws no random numbers, so its
    /// trajectory is a pure function of the row frequency: the first
    /// probe simulates it once and snapshots the pinned machine; every
    /// later probe restores the snapshot and reseeds — bit-identical to
    /// reset + re-pin (the perfpath differential suite holds this to
    /// state-hash equality), at a fraction of the per-cell cost.
    [[nodiscard]] const CellResult& probe(std::uint64_t s) {
        const auto it = memo_.find(s);
        if (it != memo_.end()) return it->second;
        const std::uint64_t cell_seed = mix_seed(row_seed_, s);
        if (pinned_) {
            context_.machine->restore_snapshot(*pinned_, cell_seed);
        } else {
            context_.machine->reset(cell_seed);
            characterizer_.pin_frequency(freq_);
            pinned_.emplace(context_.machine->capture_snapshot());
        }
        if (injector_) {
            // The fault stream and stale-read history restart with the
            // cell, so which accesses fault is a pure function of
            // (plan, cell) — no cross-cell leakage via probe order.
            injector_->reseed(mix_seed(cell_seed, kFaultSeedTag));
            context_.kernel->msr().clear_stale_cache();
        }
        // Both branches above leave the machine pinned at freq_ with the
        // rail settled, so the cell can skip the per-cell cpupower pass.
        const CellResult cell =
            characterizer_.test_cell_pinned(freq_, characterizer_.offset_at_step(s));
        ++cells_;
        if (cell.crashed) ++crashes_;
        return memo_.emplace(s, cell).first->second;
    }

    [[nodiscard]] const Characterizer& characterizer() const { return characterizer_; }
    [[nodiscard]] std::uint64_t cells() const { return cells_; }
    [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
    /// Mailbox retries absorbed during the current row.
    [[nodiscard]] std::uint64_t row_retries() const {
        return characterizer_.msr_retries() - retry_base_;
    }
    [[nodiscard]] std::uint64_t env_faults() const {
        return injector_ ? injector_->injected_total() : 0;
    }

private:
    os::WorkerContext context_;
    Characterizer characterizer_;
    std::optional<resilience::FaultInjector> injector_;
    Megahertz freq_{};
    std::uint64_t row_seed_ = 0;
    FlatMap<std::uint64_t, CellResult> memo_;  // begin_row clear keeps capacity
    std::optional<sim::Machine::Snapshot> pinned_;  // per-row pinned state
    std::uint64_t cells_ = 0;
    std::uint64_t crashes_ = 0;
    std::uint64_t retry_base_ = 0;
};

ParallelCharacterizer::ParallelCharacterizer(sim::CpuProfile profile,
                                             ParallelCharacterizerConfig config)
    : profile_(std::move(profile)), config_(std::move(config)) {
    if (config_.workers == 0)
        config_.workers = config_.run_inline ? 1 : ThreadPool::default_worker_count();
    if (config_.run_inline && config_.workers != 1)
        throw ConfigError("run_inline sweeps are serial; workers must be 1");
    if (config_.refine_window == 0)
        throw ConfigError("refine_window must cover at least one step");
    if (config_.mode == SweepMode::Adaptive && !config_.planner)
        throw ConfigError(
            "Adaptive sweeps need an injected planner (src/infer provides one)");
    if (config_.mode != SweepMode::Adaptive && config_.planner)
        throw ConfigError("a planner is only meaningful in Adaptive mode");
    if (config_.fault_plan) config_.fault_plan->validate();
    // Validate the cell protocol eagerly (same checks a Characterizer
    // would apply) so misconfiguration surfaces here, not on a worker.
    sim::Machine probe_machine(profile_, /*seed=*/0);
    os::Kernel probe_kernel(probe_machine);
    (void)Characterizer(probe_kernel, config_.cell);
}

ParallelCharacterizer::RowOutcome ParallelCharacterizer::characterize_row(
    Worker& worker, std::size_t row_index, Megahertz f, std::uint64_t row_seed) const {
    worker.begin_row(f, row_seed);
    const Characterizer& chr = worker.characterizer();
    const std::uint64_t steps = chr.sweep_steps();

    FreqCharacterization row{
        .freq = f,
        .onset = Millivolts{0.0},
        .crash = chr.no_crash_sentinel(),
        .fault_free = true,
    };

    if (config_.mode == SweepMode::Exhaustive) {
        // The paper's scan, with per-cell boot-fresh state: walk deeper
        // until faults appear, keep walking until the machine dies.
        for (std::uint64_t s = 1; s <= steps; ++s) {
            const CellResult& cell = worker.probe(s);
            if (cell.crashed) {
                row.crash = chr.offset_at_step(s);
                if (row.fault_free) row.onset = row.crash;  // band narrower than the step
                row.fault_free = false;
                break;
            }
            if (cell.faults > 0 && row.fault_free) {
                row.onset = chr.offset_at_step(s);
                row.fault_free = false;
            }
        }
        return RowOutcome{row, worker.cells(), worker.crashes(), worker.row_retries()};
    }

    // --- Bisection mode -------------------------------------------------
    // Warm-start hints (lot-neighbour boundaries) narrow the searches
    // without changing their answers; see the soundness notes inline.
    std::optional<RowWarmStart> hint;
    if (config_.warm_start) hint = config_.warm_start(row_index);

    // Crash boundary first: crashed(s) is a deterministic monotone
    // predicate (would_crash is a timing threshold), and step 0 (nominal
    // voltage) is crash-free by Machine's construction-time validation.
    // The cold search brackets with [0, steps]; a hinted search gallops
    // outward from the hint until it brackets the boundary (or reaches
    // the sweep edge, where it degenerates into the cold verdict).  Both
    // establish the same invariant — !crashed(lo) && crashed(hi) — and
    // the predicate is deterministic, so bisection converges to the SAME
    // boundary step regardless of how the bracket was found.
    std::uint64_t s_crash = steps + 1;  // "no crash inside the sweep"
    if (steps >= 1) {
        std::uint64_t lo = 0, hi = 0;
        bool bracketed = false, no_crash = false;
        const std::uint64_t crash_hint =
            hint != std::nullopt && hint->crash_step >= 1
                ? (hint->crash_step < steps ? hint->crash_step : steps)
                : 0;
        if (crash_hint != 0) {
            if (worker.probe(crash_hint).crashed) {
                hi = crash_hint;
                std::uint64_t stride = 1;
                while (hi > 1) {
                    const std::uint64_t cand = hi > stride ? hi - stride : 1;
                    if (!worker.probe(cand).crashed) {
                        lo = cand;
                        break;
                    }
                    hi = cand;
                    stride *= 2;
                }
                bracketed = true;  // hi==1 leaves lo==0: nominal is crash-free
            } else {
                lo = crash_hint;
                std::uint64_t stride = 1;
                while (lo < steps) {
                    const std::uint64_t cand =
                        lo + stride < steps ? lo + stride : steps;
                    if (worker.probe(cand).crashed) {
                        hi = cand;
                        bracketed = true;
                        break;
                    }
                    lo = cand;
                    stride *= 2;
                }
                // Galloped to the sweep edge without a crash: the deepest
                // cell survived, which is exactly the cold no-crash test.
                no_crash = !bracketed;
            }
        } else if (worker.probe(steps).crashed) {
            lo = 0;
            hi = steps;
            bracketed = true;
        } else {
            no_crash = true;
        }
        if (bracketed && !no_crash) {
            while (hi - lo > 1) {
                const std::uint64_t mid = lo + (hi - lo) / 2;
                (worker.probe(mid).crashed ? hi : lo) = mid;
            }
            s_crash = hi;
        }
    }

    // Fault onset inside the surviving range [1, s_crash - 1].  The
    // deepest surviving cell is the most fault-prone; if even it shows
    // no faults the whole column is fault-free (the band, if any, is
    // narrower than one step and hides under the crash cell).  A warm
    // start keeps that gate probe — it decides fault-free columns, so
    // skipping it could diverge from the cold verdict — and replaces
    // only the bisection that locates a faulting cell to refine from.
    std::uint64_t s_onset = 0;  // 0 = no faulting cell found
    const std::uint64_t limit = (s_crash <= steps ? s_crash - 1 : steps);
    if (limit >= 1 && worker.probe(limit).faults > 0) {
        const std::uint64_t onset_hint =
            hint != std::nullopt && hint->onset_step >= 1
                ? (hint->onset_step < limit ? hint->onset_step : limit)
                : 0;
        std::uint64_t start;
        if (onset_hint != 0 && worker.probe(onset_hint).faults > 0) {
            // The neighbours' onset cell faults here too: refine from it
            // directly, skipping the bisection entirely.
            start = onset_hint;
        } else {
            // No usable hint (or the hint cell came up clean — this die's
            // band sits deeper): bisect down to a faulting cell.  A clean
            // hint cell still helps as the bisection's lower bound.
            std::uint64_t lo = onset_hint, hi = limit;
            while (hi - lo > 1) {
                const std::uint64_t mid = lo + (hi - lo) / 2;
                (worker.probe(mid).faults > 0 ? hi : lo) = mid;
            }
            start = hi;
        }
        // Refinement: fault observation is stochastic cell-by-cell, so
        // the faulting cell found above may not be the *shallowest*
        // faulting cell.  Scan up to refine_window shallower cells; each
        // hit restarts the window below it.  An exhaustive scan would
        // report the shallowest faulting cell — with the window covering
        // the observability band, so do we, from ANY faulting start:
        // inside the band no two faulting cells are more than a window
        // apart, so every walk descends the same chain to its bottom.
        std::uint64_t s = start;
        while (s > 1) {
            const std::uint64_t stop = s > config_.refine_window ? s - config_.refine_window : 1;
            std::uint64_t found = 0;
            for (std::uint64_t t = s - 1; t >= stop; --t) {
                if (worker.probe(t).faults > 0) {
                    found = t;
                    break;
                }
                if (t == stop) break;
            }
            if (found == 0) break;
            s = found;
        }
        s_onset = s;
    }

    if (s_crash <= steps) {
        row.crash = chr.offset_at_step(s_crash);
        row.fault_free = false;
    }
    if (s_onset != 0) {
        row.onset = chr.offset_at_step(s_onset);
        row.fault_free = false;
    } else if (s_crash <= steps) {
        row.onset = row.crash;  // faults and crash within one step
    }
    return RowOutcome{row, worker.cells(), worker.crashes(), worker.row_retries()};
}

std::uint64_t ParallelCharacterizer::config_hash() const {
    check::StateHasher h;
    h.mix(std::string_view(profile_.name));
    const std::vector<Megahertz> table = profile_.frequency_table();
    h.mix(static_cast<std::uint64_t>(table.size()));
    for (const Megahertz f : table) h.mix(f.value());
    h.mix(config_.cell.sweep_floor.value());
    h.mix(config_.cell.offset_step.value());
    h.mix(config_.cell.ops_per_cell);
    h.mix(static_cast<std::uint64_t>(config_.cell.dvfs_core));
    h.mix(static_cast<std::uint64_t>(config_.cell.execute_core));
    h.mix(static_cast<std::uint64_t>(config_.cell.instr_class));
    h.mix(config_.cell.die_preheat_c);
    h.mix(static_cast<std::uint64_t>(config_.cell.retry.max_attempts));
    h.mix(static_cast<std::uint64_t>(config_.cell.retry.base_delay.value()));
    h.mix(config_.cell.retry.multiplier);
    h.mix(static_cast<std::uint64_t>(config_.cell.retry.max_delay.value()));
    h.mix(config_.cell.retry.jitter);
    h.mix(config_.seed);
    h.mix(static_cast<std::uint64_t>(config_.mode));
    h.mix(config_.refine_window);
    h.mix(config_.fault_plan.has_value());
    if (config_.fault_plan) {
        h.mix(config_.fault_plan->seed);
        for (const double r : config_.fault_plan->rates) h.mix(r);
    }
    return h.digest();
}

resilience::JournalHeader ParallelCharacterizer::journal_header() const {
    resilience::JournalHeader header;
    header.config_hash = config_hash();
    header.seed = config_.seed;
    header.sweep_floor_mv = config_.cell.sweep_floor.value();
    header.system_name = profile_.name;
    return header;
}

SafeStateMap ParallelCharacterizer::characterize(
    const std::function<void(const FreqCharacterization&)>& progress) {
    return run_sweep(nullptr, progress);
}

SafeStateMap ParallelCharacterizer::characterize(
    resilience::SweepJournal& journal,
    const std::function<void(const FreqCharacterization&)>& progress) {
    return run_sweep(&journal, progress);
}

SafeStateMap ParallelCharacterizer::resume(
    resilience::SweepJournal& journal,
    const std::function<void(const FreqCharacterization&)>& progress) {
    return run_sweep(&journal, progress);
}

SafeStateMap ParallelCharacterizer::characterize_with(
    const std::vector<resilience::RowRecord>& adopted,
    const std::function<void(const resilience::RowRecord&)>& commit,
    const std::function<void(const FreqCharacterization&)>& progress) {
    const std::vector<Megahertz> table = profile_.frequency_table();
    FlatMap<std::uint64_t, resilience::RowRecord> done;
    for (const resilience::RowRecord& rec : adopted) {
        if (rec.row_index >= table.size() ||
            rec.freq_mhz != table[rec.row_index].value())
            throw JournalError("adopted row " + std::to_string(rec.row_index) +
                               " does not match the frequency table");
        done.emplace(rec.row_index, rec);
    }
    return run_rows(done, commit, progress);
}

SafeStateMap ParallelCharacterizer::run_sweep(
    resilience::SweepJournal* journal,
    const std::function<void(const FreqCharacterization&)>& progress) {
    const std::vector<Megahertz> table = profile_.frequency_table();

    // Rows already durable in the journal are adopted, not re-probed.
    // FlatMap, not unordered_map: this path feeds the replay fingerprint,
    // and flat iteration order is canonical (pv-lint determinism-unordered).
    FlatMap<std::uint64_t, resilience::RowRecord> done;
    std::uint64_t journal_bytes_base = 0;
    if (journal != nullptr) {
        if (journal->header().config_hash != config_hash())
            throw ConfigError(
                "journal config_hash does not match this sweep's configuration");
        journal_bytes_base = journal->bytes_written();
        for (const resilience::RowRecord& rec : journal->rows()) {
            if (rec.row_index >= table.size() ||
                rec.freq_mhz != table[rec.row_index].value())
                throw JournalError("journal row " + std::to_string(rec.row_index) +
                                   " does not match the frequency table");
            done.emplace(rec.row_index, rec);
        }
    }

    std::function<void(const resilience::RowRecord&)> commit;
    if (journal != nullptr)
        commit = [journal](const resilience::RowRecord& rec) { journal->commit(rec); };
    SafeStateMap map = run_rows(done, commit, progress);
    if (journal != nullptr)
        stats_.journal_bytes = journal->bytes_written() - journal_bytes_base;
    return map;
}

SafeStateMap ParallelCharacterizer::run_rows(
    const FlatMap<std::uint64_t, resilience::RowRecord>& done,
    const std::function<void(const resilience::RowRecord&)>& commit,
    const std::function<void(const FreqCharacterization&)>& progress) {
    if (config_.mode == SweepMode::Adaptive) return run_adaptive(done, commit, progress);
    const std::vector<Megahertz> table = profile_.frequency_table();
    stats_ = {};
    planned_rows_.clear();  // a planner verdict only exists for Adaptive sweeps

    // One simulator per worker thread, all from the same profile; the
    // boot seed is irrelevant to results (every probe re-seeds) but kept
    // distinct for hygiene.  Declared before the pool so that on any
    // unwind the pool joins (draining queued rows) before a Worker dies.
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w)
        workers.push_back(std::make_unique<Worker>(profile_, config_.cell,
                                                   mix_seed(config_.seed, 1'000'000 + w),
                                                   config_.fault_plan));

    // run_inline: no pool — each fresh row is computed lazily on the
    // calling thread right where the pooled path would block on its
    // future.  Same rows, same seeds, same delivery order.
    std::optional<ThreadPool> pool;
    std::vector<std::future<RowOutcome>> futures(table.size());
    if (!config_.run_inline) {
        pool.emplace(config_.workers);
        // Futures stay positional (index == row); adopted rows leave
        // theirs invalid.  Collection below walks rows in frequency order.
        for (std::size_t i = 0; i < table.size(); ++i) {
            if (done.contains(i)) continue;
            const Megahertz f = table[i];
            const std::uint64_t row_seed = mix_seed(config_.seed, i);
            futures[i] = pool->submit([this, &workers, i, f, row_seed] {
                // The workers vector is shared across threads but strictly
                // partitioned by worker index: each pool thread only ever
                // touches its own Worker, so no lock is needed — the index
                // bound is the invariant that partitioning rests on.
                const int w = ThreadPool::current_worker_index();
                PV_ASSERT(w >= 0 && static_cast<std::size_t>(w) < workers.size(),
                          "row task ran outside the pool: worker index " << w << " of "
                                                                         << workers.size());
                return characterize_row(*workers[static_cast<std::size_t>(w)], i, f,
                                        row_seed);
            });
        }
    }

    SafeStateMap map(profile_.name, config_.cell.sweep_floor);
    for (std::size_t i = 0; i < table.size(); ++i) {
        ++stats_.rows;
        if (const auto it = done.find(i); it != done.end()) {
            const resilience::RowRecord& rec = it->second;
            const FreqCharacterization row{
                .freq = Megahertz{rec.freq_mhz},
                .onset = Millivolts{rec.onset_mv},
                .crash = Millivolts{rec.crash_mv},
                .fault_free = rec.fault_free,
            };
            ++stats_.rows_resumed;
            map.add(row);
            if (progress) progress(row);
            continue;
        }
        RowOutcome outcome =
            config_.run_inline
                ? characterize_row(*workers[0], i, table[i], mix_seed(config_.seed, i))
                : futures[i].get();  // rethrows worker exceptions
        stats_.cells_evaluated += outcome.cells;
        stats_.crash_probes += outcome.crashes;
        stats_.msr_retries += outcome.retries;
        if (commit) {
            // Commit BEFORE the progress callback: if the process dies
            // anywhere past this point the row is already durable, which
            // is what makes kill-at-any-point + resume == uninterrupted.
            commit(resilience::RowRecord{
                .row_index = i,
                .freq_mhz = outcome.row.freq.value(),
                .onset_mv = outcome.row.onset.value(),
                .crash_mv = outcome.row.crash.value(),
                .fault_free = outcome.row.fault_free,
                .cells = outcome.cells,
                .crashes = outcome.crashes,
            });
            ++stats_.journal_commits;
        }
        map.add(outcome.row);
        if (progress) progress(outcome.row);
    }
    for (const auto& worker : workers) stats_.env_faults += worker->env_faults();
    return map;
}

SafeStateMap ParallelCharacterizer::run_adaptive(
    const FlatMap<std::uint64_t, resilience::RowRecord>& done,
    const std::function<void(const resilience::RowRecord&)>& commit,
    const std::function<void(const FreqCharacterization&)>& progress) {
    const std::vector<Megahertz> table = profile_.frequency_table();
    stats_ = {};
    probe_log_.clear();

    // The planner itself is sequential; workers are interchangeable
    // simulator contexts (every probe reseeds from the cell seed), so
    // results AND the probe sequence are worker-count-independent — the
    // acquisition-determinism PROP test pins that down.
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w)
        workers.push_back(std::make_unique<Worker>(profile_, config_.cell,
                                                   mix_seed(config_.seed, 1'000'000 + w),
                                                   config_.fault_plan));

    const Characterizer& chr = workers[0]->characterizer();
    const std::uint64_t steps = chr.sweep_steps();
    const double step_mv = config_.cell.offset_step.value();
    const double sentinel_mv = chr.no_crash_sentinel().value();
    const auto to_step = [step_mv](double offset_mv) {
        return static_cast<std::uint64_t>(std::llround(-offset_mv / step_mv));
    };

    AdaptiveContext ctx;
    ctx.rows = table.size();
    ctx.steps = steps;
    ctx.seed = config_.seed;
    ctx.refine_window = config_.refine_window;
    ctx.warm_start = config_.warm_start;
    ctx.adopted.assign(table.size(), std::nullopt);
    for (const auto& [i, rec] : done) {
        // Back to the planner's step coordinates.  A journal only records
        // boundary millivolts; onset == crash collapses to the same
        // effective encoding the planner's interpolation logic uses, so
        // replanning from adopted rows reproduces the uninterrupted plan.
        PlannedRow adopted;
        adopted.anchored = rec.cells > 0;  // cells == 0 marks interpolated rows
        adopted.crash_step =
            rec.crash_mv == sentinel_mv ? steps + 1 : to_step(rec.crash_mv);
        adopted.onset_step =
            rec.fault_free || rec.onset_mv == 0.0 ? 0 : to_step(rec.onset_mv);
        ctx.adopted[i] = adopted;
    }

    // Engine-level probe memo: the per-worker caches are row-scoped (and
    // reset when a worker switches rows), but the planner's certificate
    // logic may revisit a (row, step) pair at any point; every pair is
    // probed and logged at most once per sweep.
    FlatMap<std::uint64_t, CellResult> memo;
    std::vector<std::size_t> worker_row(workers.size(), table.size());
    const CellProbeFn probe = [&](std::size_t row, std::uint64_t step) -> CellResult {
        PV_ASSERT(row < table.size() && step >= 1 && step <= steps,
                  "adaptive probe out of range: row " << row << " step " << step);
        const std::uint64_t key = static_cast<std::uint64_t>(row) * (steps + 2) + step;
        if (const auto it = memo.find(key); it != memo.end()) return it->second;
        const std::size_t w = row % workers.size();
        if (worker_row[w] != row) {
            workers[w]->begin_row(table[row], mix_seed(config_.seed, row));
            worker_row[w] = row;
        }
        const CellResult cell = workers[w]->probe(step);
        probe_log_.push_back({row, step, cell.faults, cell.crashed});
        // Stamped with the selection ordinal, not machine time: the
        // planner runs outside any single machine's virtual clock, and
        // the ordinal is just as deterministic.
        PV_TRACE_EVENT(trace::EventKind::ProbeSelected, "adaptive-probe",
                       static_cast<std::int64_t>(probe_log_.size()), row, step);
        memo.emplace(key, cell);
        return cell;
    };

    const std::vector<PlannedRow> plan = config_.planner(ctx, probe);
    if (plan.size() != table.size())
        throw ConfigError("adaptive planner returned " + std::to_string(plan.size()) +
                          " rows for a " + std::to_string(table.size()) + "-row table");

    // Surface the merged verdict (adopted rows keep their journaled
    // provenance, fresh rows take the planner's) for the serving layer's
    // uncertainty-aware guard bands.
    planned_rows_.resize(table.size());
    for (std::size_t i = 0; i < table.size(); ++i)
        planned_rows_[i] = ctx.adopted[i] ? *ctx.adopted[i] : plan[i];

    std::vector<std::uint64_t> row_cells(table.size(), 0);
    std::vector<std::uint64_t> row_crashes(table.size(), 0);
    for (const ProbeLogEntry& entry : probe_log_) {
        ++row_cells[entry.row];
        if (entry.crashed) ++row_crashes[entry.row];
    }

    SafeStateMap map(profile_.name, config_.cell.sweep_floor);
    for (std::size_t i = 0; i < table.size(); ++i) {
        ++stats_.rows;
        if (const auto it = done.find(i); it != done.end()) {
            const resilience::RowRecord& rec = it->second;
            const FreqCharacterization row{
                .freq = Megahertz{rec.freq_mhz},
                .onset = Millivolts{rec.onset_mv},
                .crash = Millivolts{rec.crash_mv},
                .fault_free = rec.fault_free,
            };
            ++stats_.rows_resumed;
            map.add(row);
            if (progress) progress(row);
            continue;
        }
        const PlannedRow& planned = plan[i];
        if (planned.crash_step < 1 || planned.crash_step > steps + 1 ||
            planned.onset_step > steps ||
            (planned.onset_step != 0 && planned.onset_step > planned.crash_step))
            throw ConfigError("adaptive planner returned an invalid verdict for row " +
                              std::to_string(i));
        FreqCharacterization row{
            .freq = table[i],
            .onset = Millivolts{0.0},
            .crash = chr.no_crash_sentinel(),
            .fault_free = true,
        };
        if (planned.crash_step <= steps) {
            row.crash = chr.offset_at_step(planned.crash_step);
            row.fault_free = false;
        }
        if (planned.onset_step != 0) {
            row.onset = chr.offset_at_step(planned.onset_step);
            row.fault_free = false;
        } else if (planned.crash_step <= steps) {
            row.onset = row.crash;  // faults and crash within one step
        }
        if (row_cells[i] == 0) ++stats_.rows_interpolated;
        if (commit) {
            // Same write-ahead contract as the other modes; cells == 0
            // doubles as the interpolated-row marker a resumed plan reads
            // back through ctx.adopted.
            commit(resilience::RowRecord{
                .row_index = i,
                .freq_mhz = row.freq.value(),
                .onset_mv = row.onset.value(),
                .crash_mv = row.crash.value(),
                .fault_free = row.fault_free,
                .cells = row_cells[i],
                .crashes = row_crashes[i],
            });
            ++stats_.journal_commits;
        }
        map.add(row);
        if (progress) progress(row);
    }
    stats_.cells_evaluated = probe_log_.size();
    for (const ProbeLogEntry& entry : probe_log_)
        if (entry.crashed) ++stats_.crash_probes;
    for (const auto& worker : workers) {
        stats_.env_faults += worker->env_faults();
        stats_.msr_retries += worker->characterizer().msr_retries();
    }
    return map;
}

}  // namespace pv::plugvolt
