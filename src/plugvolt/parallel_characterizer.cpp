#include "plugvolt/parallel_characterizer.hpp"

#include <future>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "check/assert.hpp"
#include "os/kernel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pv::plugvolt {

const char* to_string(SweepMode mode) {
    switch (mode) {
        case SweepMode::Exhaustive: return "exhaustive";
        case SweepMode::Bisection: return "bisection";
    }
    return "?";
}

/// Per-worker simulator instance plus the per-row probe cache.  Owned by
/// exactly one pool thread at a time; rows never share a Worker.
class ParallelCharacterizer::Worker {
public:
    Worker(const sim::CpuProfile& profile, const CharacterizerConfig& cell_config,
           std::uint64_t boot_seed)
        : context_(os::make_worker_context(profile, boot_seed)),
          characterizer_(*context_.kernel, cell_config) {}

    /// Start a new frequency row: forget cached probes.
    void begin_row(Megahertz f, std::uint64_t row_seed) {
        freq_ = f;
        row_seed_ = row_seed;
        memo_.clear();
        cells_ = 0;
        crashes_ = 0;
    }

    /// Probe offset step `s` of the current row from a fresh boot with
    /// the cell's derived seed; memoized, so bisection and refinement
    /// never pay for (or re-randomize) a cell twice.
    [[nodiscard]] const CellResult& probe(std::uint64_t s) {
        const auto it = memo_.find(s);
        if (it != memo_.end()) return it->second;
        context_.machine->reset(mix_seed(row_seed_, s));
        const CellResult cell =
            characterizer_.test_cell(freq_, characterizer_.offset_at_step(s));
        ++cells_;
        if (cell.crashed) ++crashes_;
        return memo_.emplace(s, cell).first->second;
    }

    [[nodiscard]] const Characterizer& characterizer() const { return characterizer_; }
    [[nodiscard]] std::uint64_t cells() const { return cells_; }
    [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

private:
    os::WorkerContext context_;
    Characterizer characterizer_;
    Megahertz freq_{};
    std::uint64_t row_seed_ = 0;
    std::unordered_map<std::uint64_t, CellResult> memo_;
    std::uint64_t cells_ = 0;
    std::uint64_t crashes_ = 0;
};

ParallelCharacterizer::ParallelCharacterizer(sim::CpuProfile profile,
                                             ParallelCharacterizerConfig config)
    : profile_(std::move(profile)), config_(std::move(config)) {
    if (config_.workers == 0) config_.workers = ThreadPool::default_worker_count();
    if (config_.refine_window == 0)
        throw ConfigError("refine_window must cover at least one step");
    // Validate the cell protocol eagerly (same checks a Characterizer
    // would apply) so misconfiguration surfaces here, not on a worker.
    sim::Machine probe_machine(profile_, /*seed=*/0);
    os::Kernel probe_kernel(probe_machine);
    (void)Characterizer(probe_kernel, config_.cell);
}

ParallelCharacterizer::RowOutcome ParallelCharacterizer::characterize_row(
    Worker& worker, Megahertz f, std::uint64_t row_seed) const {
    worker.begin_row(f, row_seed);
    const Characterizer& chr = worker.characterizer();
    const std::uint64_t steps = chr.sweep_steps();

    FreqCharacterization row{
        .freq = f,
        .onset = Millivolts{0.0},
        .crash = chr.no_crash_sentinel(),
        .fault_free = true,
    };

    if (config_.mode == SweepMode::Exhaustive) {
        // The paper's scan, with per-cell boot-fresh state: walk deeper
        // until faults appear, keep walking until the machine dies.
        for (std::uint64_t s = 1; s <= steps; ++s) {
            const CellResult& cell = worker.probe(s);
            if (cell.crashed) {
                row.crash = chr.offset_at_step(s);
                if (row.fault_free) row.onset = row.crash;  // band narrower than the step
                row.fault_free = false;
                break;
            }
            if (cell.faults > 0 && row.fault_free) {
                row.onset = chr.offset_at_step(s);
                row.fault_free = false;
            }
        }
        return RowOutcome{row, worker.cells(), worker.crashes()};
    }

    // --- Bisection mode -------------------------------------------------
    // Crash boundary first: crashed(s) is a deterministic monotone
    // predicate (would_crash is a timing threshold), and step 0 (nominal
    // voltage) is crash-free by Machine's construction-time validation.
    std::uint64_t s_crash = steps + 1;  // "no crash inside the sweep"
    if (steps >= 1 && worker.probe(steps).crashed) {
        std::uint64_t lo = 0, hi = steps;
        while (hi - lo > 1) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            (worker.probe(mid).crashed ? hi : lo) = mid;
        }
        s_crash = hi;
    }

    // Fault onset inside the surviving range [1, s_crash - 1].  The
    // deepest surviving cell is the most fault-prone; if even it shows
    // no faults the whole column is fault-free (the band, if any, is
    // narrower than one step and hides under the crash cell).
    std::uint64_t s_onset = 0;  // 0 = no faulting cell found
    const std::uint64_t limit = (s_crash <= steps ? s_crash - 1 : steps);
    if (limit >= 1 && worker.probe(limit).faults > 0) {
        std::uint64_t lo = 0, hi = limit;
        while (hi - lo > 1) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            (worker.probe(mid).faults > 0 ? hi : lo) = mid;
        }
        s_onset = hi;
        // Refinement: fault observation is stochastic cell-by-cell, so
        // the crossing bisection found may not be the *shallowest*
        // faulting cell.  Scan up to refine_window shallower cells; each
        // hit restarts the window below it.  An exhaustive scan would
        // report the shallowest faulting cell — with the window covering
        // the observability band, so do we.
        std::uint64_t s = s_onset;
        while (s > 1) {
            const std::uint64_t stop = s > config_.refine_window ? s - config_.refine_window : 1;
            std::uint64_t found = 0;
            for (std::uint64_t t = s - 1; t >= stop; --t) {
                if (worker.probe(t).faults > 0) {
                    found = t;
                    break;
                }
                if (t == stop) break;
            }
            if (found == 0) break;
            s = found;
        }
        s_onset = s;
    }

    if (s_crash <= steps) {
        row.crash = chr.offset_at_step(s_crash);
        row.fault_free = false;
    }
    if (s_onset != 0) {
        row.onset = chr.offset_at_step(s_onset);
        row.fault_free = false;
    } else if (s_crash <= steps) {
        row.onset = row.crash;  // faults and crash within one step
    }
    return RowOutcome{row, worker.cells(), worker.crashes()};
}

SafeStateMap ParallelCharacterizer::characterize(
    const std::function<void(const FreqCharacterization&)>& progress) {
    const std::vector<Megahertz> table = profile_.frequency_table();
    stats_ = {};

    // One simulator per worker thread, all from the same profile; the
    // boot seed is irrelevant to results (every probe re-seeds) but kept
    // distinct for hygiene.  Declared before the pool so that on any
    // unwind the pool joins (draining queued rows) before a Worker dies.
    std::vector<std::unique_ptr<Worker>> workers;
    workers.reserve(config_.workers);
    for (unsigned w = 0; w < config_.workers; ++w)
        workers.push_back(std::make_unique<Worker>(profile_, config_.cell,
                                                   mix_seed(config_.seed, 1'000'000 + w)));
    ThreadPool pool(config_.workers);

    std::vector<std::future<RowOutcome>> futures;
    futures.reserve(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        const Megahertz f = table[i];
        const std::uint64_t row_seed = mix_seed(config_.seed, i);
        futures.push_back(pool.submit([this, &workers, f, row_seed] {
            // The workers vector is shared across threads but strictly
            // partitioned by worker index: each pool thread only ever
            // touches its own Worker, so no lock is needed — the index
            // bound is the invariant that partitioning rests on.
            const int w = ThreadPool::current_worker_index();
            PV_ASSERT(w >= 0 && static_cast<std::size_t>(w) < workers.size(),
                      "row task ran outside the pool: worker index " << w << " of "
                                                                     << workers.size());
            return characterize_row(*workers[static_cast<std::size_t>(w)], f, row_seed);
        }));
    }

    SafeStateMap map(profile_.name, config_.cell.sweep_floor);
    for (auto& future : futures) {
        RowOutcome outcome = future.get();  // rethrows worker exceptions
        stats_.cells_evaluated += outcome.cells;
        stats_.crash_probes += outcome.crashes;
        ++stats_.rows;
        map.add(outcome.row);
        if (progress) progress(outcome.row);
    }
    return map;
}

}  // namespace pv::plugvolt
