#include "plugvolt/characterizer.hpp"

#include <bit>
#include <cmath>
#include <string>

#include "sim/ocm.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace pv::plugvolt {

Characterizer::Characterizer(os::Kernel& kernel, CharacterizerConfig config)
    : kernel_(kernel),
      cpupower_(kernel.cpufreq(), kernel.machine().core_count()),
      config_(config) {
    if (config_.sweep_floor >= Millivolts{0.0})
        throw ConfigError("sweep floor must be negative");
    if (config_.offset_step <= Millivolts{0.0})
        throw ConfigError("offset step must be positive");
    if (config_.dvfs_core == config_.execute_core)
        throw ConfigError("DVFS and EXECUTE threads need distinct cores");
    const unsigned cores = kernel.machine().core_count();
    if (config_.dvfs_core >= cores || config_.execute_core >= cores)
        throw ConfigError("characterizer core out of range");
    config_.retry.validate();
}

bool Characterizer::command_offset(Millivolts offset, std::uint64_t salt) {
    sim::Machine& m = kernel_.machine();
    const std::uint64_t raw = sim::encode_offset(offset, sim::VoltagePlane::Core);
    resilience::RetrySchedule sched(config_.retry, salt);
    os::MsrStatus last = os::MsrStatus::Ok;
    while (sched.next_attempt()) {
        if (sched.backoff() > Picoseconds{0}) {
            PV_TRACE_EVENT(trace::EventKind::RetryBackoff, "mailbox-retry",
                           m.now().value(),
                           static_cast<std::uint64_t>(sched.backoff().value()),
                           sched.attempts());
            m.advance(sched.backoff());
            if (m.crashed()) return false;
        }
        const os::MsrWriteResult r = kernel_.msr().try_ioctl_wrmsr(
            config_.dvfs_core, config_.dvfs_core, sim::kMsrOcMailbox, raw);
        if (r.status == os::MsrStatus::Ok) return true;
        last = r.status;
        ++msr_retries_;
    }
    throw DriverError("mailbox write failed after " +
                      std::to_string(config_.retry.max_attempts) + " attempts: " +
                      os::to_string(last));
}

void Characterizer::pin_frequency(Megahertz f) {
    sim::Machine& m = kernel_.machine();
    cpupower_.frequency_set(f);
    const Picoseconds settle = m.rail_settle_time();
    if (settle > m.now()) m.advance_to(settle);
}

CellResult Characterizer::test_cell(Megahertz f, Millivolts offset) {
    return test_cell_impl(f, offset, /*assume_pinned=*/false);
}

CellResult Characterizer::test_cell_pinned(Megahertz f, Millivolts offset) {
    return test_cell_impl(f, offset, /*assume_pinned=*/true);
}

CellResult Characterizer::test_cell_impl(Megahertz f, Millivolts offset,
                                         bool assume_pinned) {
    sim::Machine& m = kernel_.machine();
    if (m.crashed()) return {0, true};

    // DVFS thread, step 1: pin every core to the test frequency
    // (cpupower frequency-set, as in Algo. 2 line 9).  When the caller
    // guarantees the machine is already pinned and settled at `f`, the
    // pass is state-neutral (idempotent P-state writes, unchanged rail
    // target, no RNG draws) and is skipped.
    if (!assume_pinned) {
        cpupower_.frequency_set(f);
        if (m.crashed()) return {0, true};
    }

    // DVFS thread, step 2: command the undervolt through the userspace
    // msr-tools path (Algo. 1 encoding + ioctl wrmsr to 0x150), retrying
    // environment faults.  The backoff salt is a pure function of the
    // cell so replays don't depend on sweep order or worker assignment.
    const std::uint64_t cell_salt =
        mix_seed(std::bit_cast<std::uint64_t>(f.value()),
                 std::bit_cast<std::uint64_t>(offset.value()));
    if (!command_offset(offset, cell_salt)) return {0, true};

    // Let the rails settle (offset ramp and any pending P-state raise).
    const Picoseconds settle = m.rail_settle_time();
    if (settle > m.now()) m.advance_to(settle);
    if (m.crashed()) return {0, true};

    // EXECUTE thread: the tight loop with varying operands (Algo. 2
    // runs it concurrently and non-blocking; the discrete-event clock
    // gives the same interleaving with the rail already settled).
    if (config_.die_preheat_c > 0.0) m.set_die_temperature(config_.die_preheat_c);
    const sim::BatchResult batch =
        m.run_batch(config_.execute_core, config_.instr_class, config_.ops_per_cell);

    // DVFS thread, step 3: restore nominal voltage (Algo. 2 lines 13-14).
    if (!m.crashed()) {
        if (!command_offset(Millivolts{0.0}, mix_seed(cell_salt, 1)))
            return {batch.faults, true};
        const Picoseconds restore = m.rail_settle_time();
        if (restore > m.now()) m.advance_to(restore);
    }
    return {batch.faults, m.crashed()};
}

std::uint64_t Characterizer::sweep_steps() const {
    return static_cast<std::uint64_t>(
        std::floor(-config_.sweep_floor.value() / config_.offset_step.value()));
}

Millivolts Characterizer::offset_at_step(std::uint64_t s) const {
    return Millivolts{-static_cast<double>(s) * config_.offset_step.value()};
}

FreqCharacterization Characterizer::characterize_row(Megahertz f) {
    sim::Machine& m = kernel_.machine();
    FreqCharacterization row{
        .freq = f,
        .onset = Millivolts{0.0},
        .crash = no_crash_sentinel(),
        .fault_free = true,
    };
    const std::uint64_t steps = sweep_steps();
    for (std::uint64_t s = 1; s <= steps; ++s) {
        const Millivolts offset = offset_at_step(s);
        const CellResult cell = test_cell(f, offset);
        if (cell.crashed) {
            row.crash = offset;
            if (row.fault_free) row.onset = offset;  // band narrower than the step
            row.fault_free = false;
            ++crash_count_;
            m.reboot();
            break;
        }
        if (cell.faults > 0 && row.fault_free) {
            row.onset = offset;
            row.fault_free = false;
        }
    }
    log_debug("characterized f=", f.value(), " MHz onset=", row.onset.value(),
              " crash=", row.crash.value(), " fault_free=", row.fault_free);
    return row;
}

SafeStateMap Characterizer::characterize(
    const std::function<void(const FreqCharacterization&)>& progress) {
    sim::Machine& m = kernel_.machine();
    SafeStateMap map(m.profile().name, config_.sweep_floor);
    crash_count_ = 0;

    for (const Megahertz f : m.profile().frequency_table()) {
        FreqCharacterization row = characterize_row(f);
        map.add(row);
        if (progress) progress(row);
    }

    // Leave the machine at its boot frequency, nominal voltage.
    cpupower_.frequency_set(m.profile().freq_base);
    return map;
}

}  // namespace pv::plugvolt
