// PlugVolt — parallel sharded characterization engine.
//
// The Algorithm 2 sweep is embarrassingly parallel across frequency
// rows: on real hardware the machine crash-reboots between columns
// anyway, so no state an attacker or defender cares about flows from one
// row to the next.  This engine shards rows across a ThreadPool, each
// worker owning its own Machine/Kernel/Characterizer built from the same
// CpuProfile, and reproduces the paper's per-cell protocol bit-for-bit
// regardless of worker count or visit order.
//
// Determinism / seeding scheme
// ----------------------------
//   row_seed  = mix(sweep_seed, row_index)
//   cell_seed = mix(row_seed, offset_step_index)
// and every cell probe starts from Machine::reset(cell_seed): boot
// state, cold die, fresh RNG.  A cell's outcome is therefore a pure
// function of (profile, frequency, offset, sweep_seed) — independent of
// which worker probes it, in which order, and of how many cells were
// probed before it.  That is what makes the three execution strategies
// (serial exhaustive, sharded exhaustive, sharded bisection) produce the
// same SafeStateMap cell-for-cell.
//
// Bisection mode
// --------------
// The fault physics guarantee monotonicity in offset at a fixed
// frequency: fault probability only grows as the offset deepens, and the
// crash condition (FaultModel::would_crash) is a deterministic
// threshold.  Exploit both:
//   - the crash boundary is found by exact bisection (the predicate is
//     deterministic and monotone), O(log steps) probes;
//   - the fault-onset boundary is found by bisection on "any faults
//     observed in 10^6 ops", then *refined* by scanning a small window
//     of shallower cells: fault observation is a per-cell Bernoulli
//     draw, so the observable boundary is fuzzy over the few steps where
//     the expected fault count crosses ~1.  The window (refine_window)
//     bounds that band; within it bisection+refinement lands on exactly
//     the cell an exhaustive scan would report first.
// Use Exhaustive mode to validate maps (it probes every cell up to the
// crash boundary, exactly like the paper's sweep); use Bisection for the
// production fast path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "plugvolt/characterizer.hpp"
#include "plugvolt/safe_state.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/journal.hpp"
#include "sim/cpu_profile.hpp"
#include "util/flat_map.hpp"

namespace pv::plugvolt {

/// How each frequency row locates its onset and crash boundaries.
enum class SweepMode {
    Exhaustive,  ///< probe every offset step down to the crash (validation)
    Bisection,   ///< O(log steps) boundary search (production fast path)
    Adaptive,    ///< posterior-driven probe selection (src/infer planner)
};

[[nodiscard]] const char* to_string(SweepMode mode);

/// Warm-start hint for one frequency row of a Bisection sweep: the
/// boundary steps a lot-neighbour (an already-characterized unit of the
/// same silicon lot) reported for this row.  0 means "no hint" for that
/// boundary.  Hints NEVER change sweep results — the crash boundary is a
/// deterministic monotone predicate, so any bracketing search finds the
/// same cell, and the onset refinement walk lands on the same shallowest
/// faulting cell from any faulting start (see DESIGN §5h for the
/// soundness argument) — they only shrink the probe count, which is why
/// they are excluded from config_hash().
struct RowWarmStart {
    std::uint64_t crash_step = 0;  ///< neighbours' crash boundary (1-based step)
    std::uint64_t onset_step = 0;  ///< neighbours' fault-onset step (1-based)
};

/// Per-row hint source consulted at the start of each Bisection row;
/// return std::nullopt (or zero steps) to fall back to the cold search.
/// Called on the worker thread that characterizes the row.
using WarmStartFn = std::function<std::optional<RowWarmStart>(std::size_t row_index)>;

// --- Adaptive-mode delegation ------------------------------------------
// The Adaptive sweep strategy is IMPLEMENTED one layer up, in src/infer
// (posterior model + cost-aware acquisition); plugvolt only defines the
// delegation surface so the layering DAG stays acyclic: infer includes
// plugvolt, and callers that want adaptive sweeps (fleet, bench, tests)
// inject an infer planner through ParallelCharacterizerConfig::planner —
// the same inversion the fleet orchestrator already uses for WarmStartFn.

/// One cell probe actually executed by an adaptive sweep, in selection
/// order.  `step` is the 1-based offset step of the row's column.
struct ProbeLogEntry {
    std::uint64_t row = 0;
    std::uint64_t step = 0;
    std::uint64_t faults = 0;
    bool crashed = false;
};

/// An adaptive planner's verdict for one frequency row, in 1-based
/// offset steps (the bisection's coordinate system):
///   crash_step in [1, steps]  — certified crash boundary;
///   crash_step == steps + 1   — no crash inside the sweep;
///   onset_step in [1, steps]  — shallowest faulting cell;
///   onset_step == 0           — no faulting cell (fault-free column, or
///                               the band hides under the crash cell).
/// `anchored` rows were certified by direct probes (the bisection
/// bracket invariant holds for them); non-anchored rows were interpolated
/// between anchors and carry a 1-cell accuracy certificate instead.
struct PlannedRow {
    std::uint64_t crash_step = 0;
    std::uint64_t onset_step = 0;
    bool anchored = false;
};

/// Everything a planner may condition on.  Probe OUTCOMES arrive only
/// through the CellProbeFn the engine passes alongside, which routes
/// through the same memoized per-cell reseeding path as every other
/// sweep mode — that is what keeps any adaptively probed cell
/// bit-identical to its exhaustive counterpart.
struct AdaptiveContext {
    std::size_t rows = 0;            ///< frequency-table size
    std::uint64_t steps = 0;         ///< offset steps per column
    std::uint64_t seed = 0;          ///< sweep seed (planner RNG root)
    std::uint64_t refine_window = 0; ///< onset observability-band bound
    /// Rows already durable in a journal being resumed: the planner must
    /// treat anchored entries as certified boundary values (their probes
    /// already happened in the killed run) and must not re-derive them.
    /// Planning decisions may depend only on certified VALUES, never on
    /// probe counts — that is the resume bit-identity contract.
    std::vector<std::optional<PlannedRow>> adopted;
    /// Lot-neighbour prior source (fleet warm start); hints shape the
    /// posterior only, never certified results.
    WarmStartFn warm_start;
};

/// Probe offset step `s` (1-based, <= steps) of row `row`.  Memoized by
/// the engine: repeated calls are free and logged once.
using CellProbeFn = std::function<CellResult(std::size_t row, std::uint64_t step)>;

/// The adaptive strategy itself: given the context and a probe oracle,
/// return a verdict for every row.  Runs sequentially on the sweep's
/// calling thread, so the probe sequence is a pure function of
/// (context, probe outcomes) regardless of worker count.
using AdaptivePlannerFn =
    std::function<std::vector<PlannedRow>(const AdaptiveContext&, const CellProbeFn&)>;

struct ParallelCharacterizerConfig {
    /// Per-cell protocol (offset step, floor, ops per cell, cores, ...).
    CharacterizerConfig cell{};
    /// Worker threads; 0 means ThreadPool::default_worker_count().
    unsigned workers = 0;
    SweepMode mode = SweepMode::Bisection;
    /// Root seed of the deterministic per-row / per-cell seeding scheme.
    std::uint64_t seed = 0xDAC2024;
    /// Shallow verification window of the bisection onset search, in
    /// offset steps.  Must cover the stochastic observability band (a
    /// few steps at 1 mV resolution); the equality tests pin it down.
    std::uint64_t refine_window = 8;
    /// Environment fault plan applied to every worker's MSR driver.
    /// The injector is reseeded per cell from the cell seed, so which
    /// accesses fault is a pure function of (plan, cell) — independent
    /// of worker count and probe order, like the cells themselves.
    std::optional<resilience::FaultPlan> fault_plan;
    /// Run rows serially on the CALLING thread instead of a ThreadPool
    /// (requires workers == 1).  For drivers that already shard at a
    /// coarser axis — the fleet orchestrator shards by *unit* and runs
    /// each unit's row loop inline on its own pool thread — so per-unit
    /// sweeps do not nest a pool inside a pool.  Results are identical
    /// either way (every cell is seeded independently).
    bool run_inline = false;
    /// Optional warm-start hint source for Bisection rows (ignored in
    /// Exhaustive mode).  Affects probe cost only, never results, and is
    /// therefore excluded from config_hash().
    WarmStartFn warm_start;
    /// Adaptive-mode strategy (required when mode == SweepMode::Adaptive,
    /// rejected otherwise).  Like warm_start it is excluded from
    /// config_hash(): the mode itself IS hashed, and a conforming planner
    /// produces results determined by (profile, cell protocol, seed) —
    /// the differential tests hold adaptive maps to the golden
    /// fingerprints within the certified 1-cell tolerance.
    AdaptivePlannerFn planner;
};

/// Aggregate cost counters of one sweep (the quantities the bench
/// tracks: probing work and reboots burned).
struct SweepStats {
    std::uint64_t cells_evaluated = 0;  ///< cell probes actually run
    std::uint64_t crash_probes = 0;     ///< probes that ended in a crash-reboot
    std::uint64_t rows = 0;             ///< frequency columns characterized
    std::uint64_t rows_resumed = 0;     ///< columns adopted from a journal
    std::uint64_t msr_retries = 0;      ///< faulted mailbox writes retried
    std::uint64_t env_faults = 0;       ///< environment faults injected
    std::uint64_t journal_commits = 0;  ///< row frames committed this run
    std::uint64_t journal_bytes = 0;    ///< bytes physically written this run
    std::uint64_t rows_interpolated = 0;  ///< adaptive rows certified without probes
};

/// The sharded Algorithm 2 driver.
class ParallelCharacterizer {
public:
    ParallelCharacterizer(sim::CpuProfile profile, ParallelCharacterizerConfig config);

    /// Run the sweep over the profile's full frequency table.  `progress`
    /// (optional) is called on the calling thread, in frequency order,
    /// once per completed column.
    [[nodiscard]] SafeStateMap characterize(
        const std::function<void(const FreqCharacterization&)>& progress = {});

    /// Journaled sweep: every completed column is committed to `journal`
    /// BEFORE the progress callback sees it, so a crash at any point
    /// leaves all delivered rows durable.  Columns already present in
    /// the journal are adopted bit-for-bit instead of being re-probed —
    /// so calling this on a journal recovered after a crash IS the
    /// resume path, and the result is cell-identical to an
    /// uninterrupted sweep.  Throws ConfigError when the journal's
    /// config_hash does not match this sweep's configuration.
    [[nodiscard]] SafeStateMap characterize(
        resilience::SweepJournal& journal,
        const std::function<void(const FreqCharacterization&)>& progress = {});

    /// Semantic alias of the journaled characterize() for the recovery
    /// call site: resume a sweep from a journal recovered off disk.
    [[nodiscard]] SafeStateMap resume(
        resilience::SweepJournal& journal,
        const std::function<void(const FreqCharacterization&)>& progress = {});

    /// Durability-agnostic sweep: rows in `adopted` (keyed by row_index
    /// into this sweep's frequency table) are taken verbatim instead of
    /// re-probed, and every freshly computed row is handed to `commit`
    /// BEFORE the progress callback — the same write-ahead contract as
    /// the journaled characterize(), with the durable medium abstracted
    /// away.  This is the fleet orchestrator's entry point: it frames
    /// many units' rows into one shared journal, so per-unit sweeps
    /// deliver rows through this sink instead of owning a journal each.
    /// Throws JournalError when an adopted row does not match the table.
    [[nodiscard]] SafeStateMap characterize_with(
        const std::vector<resilience::RowRecord>& adopted,
        const std::function<void(const resilience::RowRecord&)>& commit,
        const std::function<void(const FreqCharacterization&)>& progress = {});

    /// Fingerprint of everything that determines sweep RESULTS (profile,
    /// frequency table, cell protocol, seed, mode, refine window, fault
    /// plan — NOT worker count).  A journal is only resumable into a
    /// sweep with the same hash.
    [[nodiscard]] std::uint64_t config_hash() const;

    /// Header for a fresh journal of this sweep.
    [[nodiscard]] resilience::JournalHeader journal_header() const;

    /// Counters of the last characterize() call.
    [[nodiscard]] const SweepStats& stats() const { return stats_; }

    /// Every cell probe the last Adaptive sweep executed, in selection
    /// order (empty for other modes).  The determinism PROP tests assert
    /// this sequence bit-identical across worker counts, and the
    /// differential layer replays each entry against a fresh-boot
    /// single-cell characterization.
    [[nodiscard]] const std::vector<ProbeLogEntry>& adaptive_probe_log() const {
        return probe_log_;
    }

    /// The last Adaptive sweep's per-row verdicts, indexed like the
    /// frequency table (empty for other modes).  `anchored` marks rows
    /// certified by direct probes; interpolated rows carry only the
    /// planner's 1-cell certificate — the uncertainty signal the serving
    /// layer widens guard bands with.  Identical between a fresh run and
    /// a journal resume (adopted rows keep their probed/interpolated
    /// provenance via the journal's cells counter).
    [[nodiscard]] const std::vector<PlannedRow>& planned_rows() const {
        return planned_rows_;
    }

    [[nodiscard]] const ParallelCharacterizerConfig& config() const { return config_; }
    [[nodiscard]] const sim::CpuProfile& profile() const { return profile_; }

private:
    struct RowOutcome {
        FreqCharacterization row;
        std::uint64_t cells = 0;
        std::uint64_t crashes = 0;
        std::uint64_t retries = 0;
    };
    class Worker;

    [[nodiscard]] RowOutcome characterize_row(Worker& worker, std::size_t row_index,
                                              Megahertz f, std::uint64_t row_seed) const;

    [[nodiscard]] SafeStateMap run_sweep(
        resilience::SweepJournal* journal,
        const std::function<void(const FreqCharacterization&)>& progress);

    /// Shared sweep core: `done` rows are adopted, fresh rows flow
    /// through `commit` (may be empty) before `progress`.  Dispatches to
    /// the inline-serial or the pooled execution strategy.
    [[nodiscard]] SafeStateMap run_rows(
        const FlatMap<std::uint64_t, resilience::RowRecord>& done,
        const std::function<void(const resilience::RowRecord&)>& commit,
        const std::function<void(const FreqCharacterization&)>& progress);

    /// Adaptive execution strategy: the injected planner drives probes
    /// sequentially on the calling thread (workers supply interchangeable
    /// simulator contexts, so results and the probe sequence are
    /// worker-count-independent), then rows are delivered in frequency
    /// order under the same commit-before-progress contract.
    [[nodiscard]] SafeStateMap run_adaptive(
        const FlatMap<std::uint64_t, resilience::RowRecord>& done,
        const std::function<void(const resilience::RowRecord&)>& commit,
        const std::function<void(const FreqCharacterization&)>& progress);

    sim::CpuProfile profile_;
    ParallelCharacterizerConfig config_;
    SweepStats stats_{};
    std::vector<ProbeLogEntry> probe_log_;
    std::vector<PlannedRow> planned_rows_;
};

}  // namespace pv::plugvolt
