// PlugVolt — hardware MSR deployment (Sec. 5.2).
//
// Models the proposed MSR_VOLTAGE_OFFSET_LIMIT, with the same semantics
// as DRAM_MIN_PWR in MSR_DRAM_POWER_INFO: any 0x150 write requesting an
// offset deeper than the fused limit is *clamped* to the limit (not
// dropped — software still gets the deepest safe undervolt it asked
// for).  An optional lock bit freezes the limit until reset, so a
// privileged adversary cannot simply widen it.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/machine.hpp"

namespace pv::plugvolt {

/// The hardware gatekeeper register.
class MsrClamp {
public:
    /// Fuses `limit` (from SafeStateMap::maximal_safe_offset()) into
    /// MSR_VOLTAGE_OFFSET_LIMIT.  `locked` freezes it until reboot.
    MsrClamp(sim::Machine& machine, Millivolts limit, bool locked = true);
    ~MsrClamp();

    MsrClamp(const MsrClamp&) = delete;
    MsrClamp& operator=(const MsrClamp&) = delete;

    void install();
    void uninstall();

    [[nodiscard]] bool installed() const { return clamp_token_.has_value(); }
    [[nodiscard]] Millivolts limit() const { return limit_; }
    [[nodiscard]] bool locked() const { return locked_; }

    /// Writes whose offset was clamped to the limit.
    [[nodiscard]] std::uint64_t clamped_writes() const { return clamped_; }
    /// Attempts to relax the limit MSR that were blocked by the lock.
    [[nodiscard]] std::uint64_t blocked_limit_writes() const { return blocked_limit_writes_; }

    /// Encode/decode the limit register value (bits 20:0 = |offset| in
    /// millivolts, bit 31 = lock).
    [[nodiscard]] static std::uint64_t encode_limit(Millivolts limit, bool locked);
    [[nodiscard]] static Millivolts decode_limit(std::uint64_t raw);

private:
    sim::Machine& machine_;
    Millivolts limit_;
    bool locked_;
    std::optional<std::size_t> clamp_token_;
    std::optional<std::size_t> lock_token_;
    std::uint64_t clamped_ = 0;
    std::uint64_t blocked_limit_writes_ = 0;
};

}  // namespace pv::plugvolt
