// PlugVolt — registry of component-registered runtime invariants.
//
// Components register named predicates ("rail within physical range",
// "core frequency inside the profile table") and the owner — Machine,
// for the simulator — evaluates the whole set at a configurable cadence
// from its event loop.  The registry is deliberately passive: it never
// samples state on its own, so a disabled registry (cadence 0) costs one
// integer increment per tick and a level-0 build can elide even that.
//
// Violations are fatal by default (a broken simulator invariant means
// every result after it is garbage — the PV_ASSERT philosophy); tests
// flip set_fatal(false) and inspect violations() instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pv::check {

/// One failed invariant evaluation.
struct InvariantViolation {
    std::string name;  ///< registered name of the invariant
    std::string why;   ///< predicate-supplied diagnosis
};

class InvariantRegistry {
public:
    /// Returns true when the invariant holds; on failure fill `why` with
    /// the diagnosis.  Predicates must be read-only observers — they run
    /// inside the simulator's event loop and must not perturb its state
    /// (determinism contract).
    using Predicate = std::function<bool(std::string& why)>;

    /// Register a predicate; returns a token for remove().
    std::size_t add(std::string name, Predicate predicate);
    void remove(std::size_t token);

    [[nodiscard]] std::size_t size() const { return entries_.size(); }

    /// Evaluate every Nth tick() call; 0 disables tick-driven evaluation
    /// entirely (check_now() still works).
    void set_cadence(std::uint64_t every_n) { cadence_ = every_n; }
    [[nodiscard]] std::uint64_t cadence() const { return cadence_; }

    /// Cadence-gated evaluation hook (call from the owner's hot loop).
    /// Returns the number of violations found by this call (0 when the
    /// cadence skipped evaluation).
    std::size_t tick();

    /// Evaluate all invariants immediately, regardless of cadence.
    /// Fatal mode PV_ASSERT-fails on the first violation; otherwise
    /// violations are appended to violations().
    std::size_t check_now();

    /// When fatal (default), a violation aborts via the PV_ASSERT
    /// failure path; when not, it is recorded and execution continues.
    void set_fatal(bool fatal) { fatal_ = fatal; }
    [[nodiscard]] bool fatal() const { return fatal_; }

    [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
        return violations_;
    }
    void clear_violations() { violations_.clear(); }

    /// Counters for cadence tests: total tick() calls and how many of
    /// them (plus check_now() calls) ran a full evaluation.
    [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
    [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }

private:
    struct Entry {
        std::size_t token;
        std::string name;
        Predicate predicate;
    };

    std::vector<Entry> entries_;
    std::vector<InvariantViolation> violations_;
    std::size_t next_token_ = 0;
    std::uint64_t cadence_ = 0;
    std::uint64_t ticks_ = 0;
    std::uint64_t evaluations_ = 0;
    bool fatal_ = true;
};

}  // namespace pv::check
