// PlugVolt — machine-enforced invariants: PV_ASSERT / PV_DCHECK.
//
// The simulator's correctness argument rests on invariants that were
// previously comment-enforced ("the rail never goes negative", "worker
// indices are always valid").  These macros make them machine-enforced:
//
//   PV_ASSERT(cond)            always-on check (PV_CHECK_LEVEL >= 1)
//   PV_ASSERT(cond, ctx << x)  with streamed context, built lazily —
//                              only evaluated when the check fires
//   PV_DCHECK(cond)            debug check (PV_CHECK_LEVEL >= 2); elided
//                              to a syntax-only no-op in release builds
//
// PV_CHECK_LEVEL is a compile definition plumbed through CMake
// (-DPV_CHECK_LEVEL=0|1|2, default 2).  At level 0 both macros compile
// to `sizeof`-checked no-ops: the condition is type-checked but never
// evaluated, so release builds pay nothing.
//
// A failed check prints `file:line: PV_ASSERT(cond) failed: context` to
// stderr and calls the process-wide failure handler (default: abort(),
// which is what GTest death tests expect).  Tests that want to assert on
// the formatted message without dying can install a throwing handler via
// set_check_failure_handler().
#pragma once

#include <functional>
#include <sstream>
#include <string>

#ifndef PV_CHECK_LEVEL
#define PV_CHECK_LEVEL 2
#endif

namespace pv::check {

/// Everything known about one failed check, as given to the handler.
struct CheckFailure {
    const char* expression;  ///< stringified condition
    const char* file;
    int line;
    std::string context;  ///< streamed message, "" when none was given
};

using FailureHandler = std::function<void(const CheckFailure&)>;

/// Install a process-wide handler called on check failure (after the
/// message is printed to stderr).  Returns the previous handler.  A
/// handler that returns normally still aborts the process — throw to
/// survive.  Intended for tests; not thread-safe against racing installs.
FailureHandler set_check_failure_handler(FailureHandler handler);

namespace detail {

/// Print + dispatch to the handler; aborts if the handler returns.
[[noreturn]] void check_failed(const char* expression, const char* file, int line,
                               const std::string& context);

/// Streamed-context builder: PV_ASSERT(x, "y=" << y) expands the
/// variadic part into `(std::ostringstream{} << ... )`.
class ContextStream {
public:
    template <typename T>
    ContextStream& operator<<(const T& v) {
        os_ << v;
        return *this;
    }
    [[nodiscard]] std::string str() const { return os_.str(); }

private:
    std::ostringstream os_;
};

}  // namespace detail
}  // namespace pv::check

// The context arguments only ever run when the check already failed, so
// arbitrarily expensive diagnostics cost nothing on the hot path.
#define PV_CHECK_IMPL(cond, ...)                                                  \
    do {                                                                          \
        if (!(cond)) [[unlikely]] {                                               \
            ::pv::check::detail::check_failed(                                    \
                #cond, __FILE__, __LINE__,                                        \
                (::pv::check::detail::ContextStream{} __VA_ARGS__).str());        \
        }                                                                         \
    } while (false)

// Syntax-only no-op: the condition is type-checked, never evaluated.
#define PV_CHECK_ELIDED(cond, ...) \
    do {                           \
        (void)sizeof(!(cond));     \
    } while (false)

#if PV_CHECK_LEVEL >= 1
#define PV_ASSERT(cond, ...) PV_CHECK_IMPL(cond, __VA_OPT__(<<) __VA_ARGS__)
#else
#define PV_ASSERT(cond, ...) PV_CHECK_ELIDED(cond)
#endif

#if PV_CHECK_LEVEL >= 2
#define PV_DCHECK(cond, ...) PV_CHECK_IMPL(cond, __VA_OPT__(<<) __VA_ARGS__)
#else
#define PV_DCHECK(cond, ...) PV_CHECK_ELIDED(cond)
#endif
