#include "check/msr_auditor.hpp"

#include <utility>

#include "check/assert.hpp"
#include "sim/machine.hpp"
#include "sim/ocm.hpp"
#include "util/log.hpp"

namespace pv::check {

const char* to_string(AuditKind kind) {
    switch (kind) {
        case AuditKind::MalformedMailbox: return "malformed-mailbox";
        case AuditKind::OffsetOutOfRange: return "offset-out-of-range";
        case AuditKind::UnsafeWrite: return "unsafe-write";
        case AuditKind::OutOfBandWrite: return "out-of-band-write";
        case AuditKind::StaleStatusRead: return "stale-status-read";
    }
    return "?";
}

MsrAuditor::MsrAuditor(os::Kernel& kernel, MsrAuditorConfig config)
    : kernel_(kernel), config_(std::move(config)) {
    if (config_.map != nullptr) config_.offset_floor = config_.map->sweep_floor();
    os::MsrObserver* previous = kernel_.msr().set_observer(this);
    PV_ASSERT(previous == nullptr, "MsrDriver already has an observer attached");
    // Register the machine-level hook at attach time so it runs before
    // hooks installed later (deployed guards): an earlier hook that
    // ignores a write would hide it from the audit.
    hook_token_ = kernel_.machine().add_write_hook(
        [this](unsigned core_id, std::uint32_t addr, std::uint64_t& value) {
            if (addr == sim::kMsrOcMailbox) {
                const bool via_driver = driver_write_in_flight_;
                driver_write_in_flight_ = false;
                audit_mailbox_write(core_id, value, via_driver);
            }
            return sim::MsrWriteAction::Allow;  // observe, never interfere
        });
}

MsrAuditor::~MsrAuditor() {
    kernel_.machine().remove_write_hook(hook_token_);
    kernel_.msr().set_observer(nullptr);
}

void MsrAuditor::on_wrmsr(unsigned /*caller_cpu*/, unsigned /*target_cpu*/, std::uint32_t addr,
                          std::uint64_t /*value*/) {
    // A stale flag can only survive here if a previously attached write
    // hook swallowed the last driver write before our hook saw it; clear
    // defensively so it cannot legitimize a later forged write.
    driver_write_in_flight_ = (addr == sim::kMsrOcMailbox);
}

void MsrAuditor::on_rdmsr(unsigned /*caller_cpu*/, unsigned target_cpu, std::uint32_t addr,
                          std::uint64_t value) {
    if (addr != sim::kMsrPerfStatus && addr != sim::kMsrOcMailbox) return;
    ++audited_;
    if (addr != sim::kMsrPerfStatus) return;
    const sim::Machine& machine = kernel_.machine();
    const Picoseconds settle = machine.rail_settle_time();
    if (machine.now() < settle) {
        record(AuditKind::StaleStatusRead, target_cpu, addr, value,
               "0x198 read mid-transition: rail settles at " +
                   std::to_string(settle.value()) + " ps, now " +
                   std::to_string(machine.now().value()) + " ps");
    }
}

void MsrAuditor::audit_mailbox_write(unsigned core_id, std::uint64_t value, bool via_driver) {
    ++audited_;
    if (!via_driver) {
        record(AuditKind::OutOfBandWrite, core_id, sim::kMsrOcMailbox, value,
               "0x150 write reached the machine without passing the MSR driver");
    }
    const auto req = sim::decode_offset(value);
    if (!req) {
        record(AuditKind::MalformedMailbox, core_id, sim::kMsrOcMailbox, value,
               "plane field does not decode to an assigned voltage plane");
        return;
    }
    // Without both bit 63 (command) and bit 32 (write-enable) the
    // mailbox treats the write as a no-op; nothing to validate.
    if (!req->command || !req->write_enable) return;

    if (req->offset < config_.offset_floor) {
        record(AuditKind::OffsetOutOfRange, core_id, sim::kMsrOcMailbox, value,
               "offset " + std::to_string(req->offset.value()) +
                   " mV is deeper than the audited floor " +
                   std::to_string(config_.offset_floor.value()) + " mV");
    }
    // Only the planes that feed modeled fault paths classify against the
    // map; GPU/uncore/AIO offsets are outside its domain.
    const bool fault_plane =
        req->plane == sim::VoltagePlane::Core || req->plane == sim::VoltagePlane::Cache;
    if (config_.map == nullptr || !fault_plane) return;
    const Megahertz f = kernel_.machine().max_active_frequency();
    if (config_.map->is_unsafe(f, req->offset) && !kernel_.module_loaded(config_.guard_module)) {
        record(AuditKind::UnsafeWrite, core_id, sim::kMsrOcMailbox, value,
               "offset " + std::to_string(req->offset.value()) + " mV at " +
                   std::to_string(f.value()) + " MHz classifies " +
                   plugvolt::to_string(config_.map->classify(f, req->offset)) +
                   " with no '" + config_.guard_module + "' guard loaded");
    }
}

void MsrAuditor::record(AuditKind kind, unsigned core, std::uint32_t addr, std::uint64_t value,
                        std::string detail) {
    log_warn("msr-audit [", to_string(kind), "] core ", core, " msr 0x", std::hex, addr,
             std::dec, ": ", detail);
    PV_ASSERT(!config_.fatal,
              "msr-audit [" << to_string(kind) << "] core " << core << ": " << detail);
    violations_.push_back(
        AuditViolation{kind, core, addr, value, kernel_.machine().now(), std::move(detail)});
}

}  // namespace pv::check
