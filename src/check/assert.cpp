#include "check/assert.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace pv::check {
namespace {

FailureHandler g_handler;  // empty = default (abort)

}  // namespace

FailureHandler set_check_failure_handler(FailureHandler handler) {
    return std::exchange(g_handler, std::move(handler));
}

namespace detail {

void check_failed(const char* expression, const char* file, int line,
                  const std::string& context) {
    // Straight to stderr (not the log sink): the message must survive
    // any log level, and death tests match against stderr.
    std::fprintf(stderr, "%s:%d: PV_ASSERT(%s) failed%s%s\n", file, line, expression,
                 context.empty() ? "" : ": ", context.c_str());
    std::fflush(stderr);
    if (g_handler) g_handler(CheckFailure{expression, file, line, context});
    // Either no handler is installed or the handler declined to throw;
    // a failed invariant never continues.
    std::abort();
}

}  // namespace detail
}  // namespace pv::check
