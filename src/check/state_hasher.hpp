// PlugVolt — order-sensitive state fingerprinting (determinism checker).
//
// The parallel sweep engine's headline guarantee is that its maps are
// *bit-identical* to the serial reference.  Until now that was checked
// by ad-hoc comparisons (CSV string equality in one bench, field loops
// in tests).  StateHasher gives every layer the same definition of
// "identical": a 64-bit FNV-1a fingerprint over a canonical serialization
// of the state — doubles are hashed by bit pattern, so two states hash
// equal iff they are bit-for-bit the same, not merely close.
//
// Producers: Machine::state_hash() (full simulator state) and
// pv::plugvolt::state_hash(SafeStateMap) (characterization results).
// Consumers: determinism tests and bench_parallel_sweep's self-check.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace pv::check {

/// Incremental FNV-1a (64-bit) over typed fields.  Field order matters;
/// mix a tag or length where ambiguity is possible.
class StateHasher {
public:
    StateHasher& mix(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) mix_byte(static_cast<unsigned char>(v >> (8 * i)));
        return *this;
    }
    StateHasher& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
    StateHasher& mix(std::uint32_t v) { return mix(static_cast<std::uint64_t>(v)); }
    StateHasher& mix(bool b) { return mix(static_cast<std::uint64_t>(b)); }
    /// Doubles hash by bit pattern: -0.0 != +0.0, and NaNs are distinct
    /// by payload — exactly the "bit-identical" contract.
    StateHasher& mix(double d) { return mix(std::bit_cast<std::uint64_t>(d)); }
    StateHasher& mix(std::string_view s) {
        mix(static_cast<std::uint64_t>(s.size()));  // length-prefix: no concatenation aliasing
        for (const char c : s) mix_byte(static_cast<unsigned char>(c));
        return *this;
    }

    [[nodiscard]] std::uint64_t digest() const { return h_; }

private:
    void mix_byte(unsigned char b) {
        h_ ^= b;
        h_ *= 0x100000001B3ULL;  // FNV-1a 64 prime
    }

    std::uint64_t h_ = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
};

}  // namespace pv::check
