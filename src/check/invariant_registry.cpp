#include "check/invariant_registry.hpp"

#include <algorithm>
#include <utility>

#include "check/assert.hpp"

namespace pv::check {

std::size_t InvariantRegistry::add(std::string name, Predicate predicate) {
    PV_ASSERT(predicate != nullptr, "invariant '" << name << "' registered without a predicate");
    const std::size_t token = next_token_++;
    entries_.push_back(Entry{token, std::move(name), std::move(predicate)});
    return token;
}

void InvariantRegistry::remove(std::size_t token) {
    std::erase_if(entries_, [token](const Entry& e) { return e.token == token; });
}

std::size_t InvariantRegistry::tick() {
    ++ticks_;
    if (cadence_ == 0 || ticks_ % cadence_ != 0) return 0;
    return check_now();
}

std::size_t InvariantRegistry::check_now() {
    ++evaluations_;
    std::size_t found = 0;
    for (const Entry& e : entries_) {
        std::string why;
        if (e.predicate(why)) continue;
        PV_ASSERT(!fatal_, "invariant '" << e.name << "' violated: " << why);
        violations_.push_back(InvariantViolation{e.name, std::move(why)});
        ++found;
    }
    return found;
}

}  // namespace pv::check
