// PlugVolt — runtime audit of the MSR 0x150 / 0x198 surface.
//
// The whole countermeasure stands on two MSRs behaving: 0x150 writes
// must be well-formed mailbox commands landing inside the characterized
// offset range, and 0x198 reads must reflect settled plane state before
// anyone acts on them.  The auditor wires into both ends of the path:
//
//   - as an os::MsrObserver on the kernel's MsrDriver it sees every
//     *legitimate* (driver-mediated) access, validating 0x150 writes
//     against the mailbox encoding and the safe-state map, and flagging
//     0x198 reads taken while a commanded rail transition is still
//     slewing (stale plane state — the value will keep moving);
//   - as a Machine write hook it sees every 0x150 write however it got
//     there, so a write that never passed the driver (a forged,
//     out-of-band injection — the VoltPillager software analogue) is
//     caught by cross-checking the two streams.
//
// "Unsafe write" means: the decoded offset, at the machine's current
// fastest active frequency, classifies Unsafe or Crash in the reference
// map while no polling-guard module is loaded — i.e. the write bypasses
// the countermeasure.  With the guard loaded the same write is recorded
// as guarded traffic (the guard's job is to rewrite it).
//
// Violations are recorded (default) or fatal (set_fatal) — recording is
// what tests and soak runs want; fatal is the belt-and-braces mode for
// long determinism sweeps where any violation invalidates the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "plugvolt/safe_state.hpp"
#include "util/units.hpp"

namespace pv::check {

/// Classification of one audit finding.
enum class AuditKind {
    MalformedMailbox,   ///< 0x150 value whose plane field does not decode
    OffsetOutOfRange,   ///< decoded offset deeper than the audited floor
    UnsafeWrite,        ///< would enter Unsafe/Crash territory with no guard loaded
    OutOfBandWrite,     ///< 0x150 write reached the machine without the driver
    StaleStatusRead,    ///< 0x198 read while the commanded rail is still slewing
};

[[nodiscard]] const char* to_string(AuditKind kind);

/// One recorded violation.
struct AuditViolation {
    AuditKind kind;
    unsigned core = 0;          ///< target core of the access
    std::uint32_t addr = 0;
    std::uint64_t value = 0;    ///< raw MSR value written/read
    Picoseconds time{};         ///< machine time of the access
    std::string detail;
};

struct MsrAuditorConfig {
    /// Reference safe-state map for UnsafeWrite classification; when
    /// null only encoding/range/out-of-band/staleness checks run.
    const plugvolt::SafeStateMap* map = nullptr;
    /// Deepest offset considered in-range.  Defaults to the map's sweep
    /// floor when a map is given, else the paper's -300 mV.
    Millivolts offset_floor{-300.0};
    /// Name of the module whose load state counts as "the polling guard
    /// is active" for UnsafeWrite (default: the paper's kernel module).
    std::string guard_module = "plugvolt";
    /// Abort via the PV_ASSERT failure path on the first violation.
    bool fatal = false;
};

/// Attaches to a Kernel (driver observer + machine write hook) for its
/// lifetime; detaches on destruction.
class MsrAuditor final : public os::MsrObserver {
public:
    MsrAuditor(os::Kernel& kernel, MsrAuditorConfig config);
    ~MsrAuditor() override;

    MsrAuditor(const MsrAuditor&) = delete;
    MsrAuditor& operator=(const MsrAuditor&) = delete;

    // os::MsrObserver
    void on_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                  std::uint64_t value) override;
    void on_rdmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                  std::uint64_t value) override;

    [[nodiscard]] const std::vector<AuditViolation>& violations() const { return violations_; }
    void clear() { violations_.clear(); }

    /// Total 0x150/0x198 accesses inspected (driver + machine level).
    [[nodiscard]] std::uint64_t audited_accesses() const { return audited_; }

    void set_fatal(bool fatal) { config_.fatal = fatal; }
    [[nodiscard]] const MsrAuditorConfig& config() const { return config_; }

private:
    /// Machine-level inspection of a 0x150 write (any provenance).
    void audit_mailbox_write(unsigned core_id, std::uint64_t value, bool via_driver);
    void record(AuditKind kind, unsigned core, std::uint32_t addr, std::uint64_t value,
                std::string detail);

    os::Kernel& kernel_;
    MsrAuditorConfig config_;
    std::vector<AuditViolation> violations_;
    std::size_t hook_token_ = 0;
    std::uint64_t audited_ = 0;
    /// Set between the driver-level on_wrmsr and the machine hook for
    /// the same 0x150 write; a machine-level write without it is forged.
    bool driver_write_in_flight_ = false;
};

}  // namespace pv::check
