// PlugVolt — deterministic environment fault injection.
//
// The attacks and sweeps in this tree assume a cooperative environment;
// real campaigns do not get one.  PMFault bricked boards on wedged PMBus
// writes, V0LTpwn engineered around thousands of crash-reboot cycles,
// and any long sweep meets EIO from /dev/cpu/*/msr, stale status reads
// and mailbox-busy stalls.  FaultInjector models that environment as a
// SEEDED, REPLAYABLE adversary: each fault kind draws from its own
// stateless splitmix64 stream indexed by (seed, kind, opportunity
// count), so whether the N-th rdmsr on a given machine faults is a pure
// function of (FaultPlan, seed, N) — independent of threads, wall time
// and every other kind's draws.  Reseeding per characterization cell
// (mix of the cell seed) makes injected-fault sweeps order- and
// worker-count-independent, exactly like the cell outcomes themselves.
//
// The injector is wired into os::MsrDriver (observer-style, non-owning)
// and into resilience::SweepJournal commits; with no injector attached
// every path is bit-for-bit the pre-injection one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "trace/metrics.hpp"

namespace pv::resilience {

/// Environment failure modes the injector can produce.
enum class FaultKind : std::uint8_t {
    RdmsrError,     ///< rdmsr fails outright (EIO from the driver)
    WrmsrError,     ///< wrmsr fails outright (EIO, write not applied)
    RdmsrTimeout,   ///< rdmsr IPI stalls, then fails (extra cycles burned)
    WrmsrTimeout,   ///< wrmsr IPI stalls, then fails
    StaleRead,      ///< rdmsr returns the previous value of that MSR (torn poll)
    MailboxBusy,    ///< 0x150 write bounces off a busy OCM mailbox
    FileWriteError, ///< journal/map file write fails (disk hiccup)
};

inline constexpr std::size_t kFaultKindCount = 7;

[[nodiscard]] const char* to_string(FaultKind kind);

/// Per-kind injection probabilities plus the stream seed.  A rate is the
/// probability that one opportunity (one driver call, one file write) of
/// that kind faults.
struct FaultPlan {
    std::uint64_t seed = 0xFA017;
    std::array<double, kFaultKindCount> rates{};

    [[nodiscard]] double rate(FaultKind kind) const {
        return rates[static_cast<std::size_t>(kind)];
    }
    void set_rate(FaultKind kind, double r) { rates[static_cast<std::size_t>(kind)] = r; }
    /// True when every rate is zero (the plan injects nothing).
    [[nodiscard]] bool empty() const;
    /// Throws ConfigError when any rate is outside [0, 1].
    void validate() const;
};

/// The seeded fault source.  should_inject() is the single decision
/// point; counters record opportunities and injections per kind for the
/// metrics snapshot and the tests.
class FaultInjector {
public:
    explicit FaultInjector(FaultPlan plan);

    /// Restart every per-kind stream from `seed` (the per-cell reseed the
    /// sharded sweep uses).  Cumulative counters are NOT reset.
    void reseed(std::uint64_t seed);

    /// Decide one opportunity of `kind`.  Deterministic in (plan.rates,
    /// current seed, number of prior opportunities of this kind since the
    /// last reseed).  A zero rate never fires and never advances the
    /// stream.
    [[nodiscard]] bool should_inject(FaultKind kind);

    [[nodiscard]] const FaultPlan& plan() const { return plan_; }
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    [[nodiscard]] std::uint64_t opportunities(FaultKind kind) const {
        return opportunities_[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] std::uint64_t injected(FaultKind kind) const {
        return injected_[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] std::uint64_t injected_total() const;

    /// Per-kind opportunity/injection counters as metrics.
    [[nodiscard]] trace::MetricsSnapshot metrics_snapshot() const;

private:
    FaultPlan plan_;
    std::uint64_t seed_;
    std::array<std::uint64_t, kFaultKindCount> draws_{};   // reset on reseed
    std::array<std::uint64_t, kFaultKindCount> opportunities_{};
    std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace pv::resilience
