// PlugVolt — bounded retry with deterministic exponential backoff.
//
// Real sweeps and campaigns survive a flaky environment (EIO from the
// msr driver, mailbox-busy stalls, machines that die mid-undervolt) by
// retrying with backoff.  This repo's retries must additionally be
// DETERMINISTIC: every delay, including its jitter, is a pure function
// of (policy, seed, retry index), drawn through the same splitmix64
// derivation the sharded drivers use for their cell seeds — so a run
// with injected faults replays bit-exactly and a backoff never consults
// wall time or shared RNG state.
//
// Monotonicity contract (pinned by the property tests): with the
// validated constraint multiplier >= 1 + jitter, the backoff sequence is
// non-decreasing in the retry index and capped at max_delay:
//   delay(k) = min(base * multiplier^k * (1 + jitter * u_k), max_delay)
// where u_k in [0, 1) comes from mix_seed(seed, k).  The (k+1)-th
// pre-cap delay is at least base * m^k * (1 + jitter) >= every jittered
// k-th delay, and min(-, max_delay) preserves the ordering.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pv::resilience {

/// Backoff parameters shared by every retrying caller (characterizer
/// mailbox writes, polling-module reads, campaign machine rebuilds,
/// journal commits).
struct RetryPolicy {
    /// Total attempts (first try included); must be at least 1.
    unsigned max_attempts = 3;
    /// Delay before the first retry.
    Picoseconds base_delay = microseconds(2.0);
    /// Growth factor per retry; must be >= 1 + jitter (see header note).
    double multiplier = 2.0;
    /// Cap on any single delay.
    Picoseconds max_delay = milliseconds(1.0);
    /// Jitter fraction in [0, 1): delay is stretched by up to this much,
    /// deterministically from the seed.
    double jitter = 0.25;

    /// Throws ConfigError when the parameters violate the contract.
    void validate() const;

    /// Delay before retry `retry_index` (0 = first retry), jittered from
    /// `seed`.  Pure function of its arguments.
    [[nodiscard]] Picoseconds backoff(unsigned retry_index, std::uint64_t seed) const;
};

/// Iterator-style attempt budget for retry loops:
///
///   RetrySchedule sched(policy, seed);
///   while (sched.next_attempt()) {
///       wait(sched.backoff());          // zero for the first attempt
///       if (try_the_thing()) break;
///   }
///
/// Validates the policy at construction.
class RetrySchedule {
public:
    RetrySchedule(RetryPolicy policy, std::uint64_t seed);

    /// Grant the next attempt; false once the budget is spent.
    [[nodiscard]] bool next_attempt();

    /// Deterministic backoff preceding the attempt just granted.
    [[nodiscard]] Picoseconds backoff() const { return backoff_; }

    /// Attempts granted so far.
    [[nodiscard]] unsigned attempts() const { return attempt_; }

    [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

private:
    RetryPolicy policy_;
    std::uint64_t seed_;
    unsigned attempt_ = 0;
    Picoseconds backoff_{};
};

}  // namespace pv::resilience
