#include "resilience/retry.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pv::resilience {

void RetryPolicy::validate() const {
    if (max_attempts == 0) throw ConfigError("retry policy needs at least one attempt");
    if (base_delay < Picoseconds{0}) throw ConfigError("retry base delay must be >= 0");
    if (max_delay < base_delay)
        throw ConfigError("retry max_delay must be at least base_delay");
    if (jitter < 0.0 || jitter >= 1.0) throw ConfigError("retry jitter must be in [0, 1)");
    if (multiplier < 1.0 + jitter)
        throw ConfigError("retry multiplier must be >= 1 + jitter (monotone backoff)");
}

Picoseconds RetryPolicy::backoff(unsigned retry_index, std::uint64_t seed) const {
    // u_k in [0, 1) from the top 53 bits of the derived seed — the same
    // stateless construction Rng uses, with no generator state to carry.
    const double u =
        static_cast<double>(mix_seed(seed, retry_index) >> 11) * 0x1.0p-53;
    const double ideal = static_cast<double>(base_delay.value()) *
                         std::pow(multiplier, static_cast<double>(retry_index));
    const double jittered = ideal * (1.0 + jitter * u);
    const double capped = std::min(jittered, static_cast<double>(max_delay.value()));
    return Picoseconds{static_cast<std::int64_t>(capped)};
}

RetrySchedule::RetrySchedule(RetryPolicy policy, std::uint64_t seed)
    : policy_(policy), seed_(seed) {
    policy_.validate();
}

bool RetrySchedule::next_attempt() {
    if (attempt_ >= policy_.max_attempts) return false;
    backoff_ = attempt_ == 0 ? Picoseconds{} : policy_.backoff(attempt_ - 1, seed_);
    ++attempt_;
    return true;
}

}  // namespace pv::resilience
