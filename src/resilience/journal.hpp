// PlugVolt — write-ahead sweep journal.
//
// A real Algorithm 2 characterization is a sequence of crash-reboot
// cycles (deep offsets kill the machine — that is the *point* of the
// sweep), so losing all progress on a crash is not an edge case, it is
// the common case.  The journal makes every completed frequency row
// durable before the sweep moves on; after a crash, the resumed sweep
// adopts journaled rows verbatim and recomputes only the rest, and the
// per-cell seeding scheme guarantees the final map is bit-identical to
// an uninterrupted run's.
//
// On-disk format (version 1), built on the generic CRC framing in
// frames.hpp (frame := magic:u16 kind:u8 payload_len:u32 crc:u32
// payload, torn tails dropped and scrubbed on resume):
//
//   file   := header-frame row-frame*
//   header := version:u32  config_hash:u64  seed:u64  sweep_floor:f64(bits)
//             name_len:u32  name bytes                       (kind = 1)
//   row    := row_index:u64  freq_mhz:f64  onset_mv:f64  crash_mv:f64
//             fault_free:u8  cells:u64  crashes:u64           (kind = 2)
//
// Commit modes and fault-injected retry live in FrameLog (frames.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/fault_injection.hpp"
#include "resilience/frames.hpp"
#include "resilience/retry.hpp"

namespace pv::resilience {

/// Identity of the sweep a journal belongs to.  `config_hash` is the
/// producer's configuration fingerprint; resume refuses a journal whose
/// hash does not match (adopting rows probed under a different protocol
/// would silently corrupt the map).
struct JournalHeader {
    std::uint32_t version = 1;
    std::uint64_t config_hash = 0;
    std::uint64_t seed = 0;
    double sweep_floor_mv = 0.0;
    std::string system_name;

    friend bool operator==(const JournalHeader&, const JournalHeader&) = default;
};

/// One journaled frequency row: the characterization result plus the
/// probe-cost counters (so resumed sweeps report honest statistics).
struct RowRecord {
    std::uint64_t row_index = 0;
    double freq_mhz = 0.0;
    double onset_mv = 0.0;
    double crash_mv = 0.0;
    bool fault_free = false;
    std::uint64_t cells = 0;
    std::uint64_t crashes = 0;

    friend bool operator==(const RowRecord&, const RowRecord&) = default;
};

/// Frame encoders, exposed for the property tests (round-trip and
/// torn-tail recovery are tested at this layer).
[[nodiscard]] std::string encode_header_frame(const JournalHeader& header);
[[nodiscard]] std::string encode_row_frame(const RowRecord& record);

/// Result of replaying a journal byte image.
struct JournalReplay {
    JournalHeader header;
    std::vector<RowRecord> rows;
    /// True when trailing bytes after the last valid frame were dropped.
    bool tail_dropped = false;
    /// Size of the valid prefix (header + intact frames).
    std::size_t valid_bytes = 0;
};

/// Decode a journal byte image, dropping any torn tail.  Throws
/// JournalError when the image does not start with a valid header frame.
[[nodiscard]] JournalReplay decode_journal(std::string_view bytes);

/// The write-ahead journal.  One instance owns one file.
class SweepJournal {
public:
    /// Start a fresh journal at `path` (truncating any previous file).
    SweepJournal(std::string path, JournalHeader header, JournalOptions options = {});

    /// Reopen an existing journal: replay its rows, scrub any torn tail
    /// from the file, and position for further commits.  Throws
    /// JournalError when the file has no valid header.
    [[nodiscard]] static SweepJournal resume(const std::string& path,
                                             JournalOptions options = {});

    /// Make one completed row durable (write-ahead: callers commit
    /// BEFORE acting on the row).  Retries injected file faults up to
    /// the io_retry budget, then throws JournalError.
    void commit(const RowRecord& record);

    [[nodiscard]] const JournalHeader& header() const { return header_; }
    /// Rows durable in this journal (replayed + committed), in commit order.
    [[nodiscard]] const std::vector<RowRecord>& rows() const { return rows_; }
    /// True when resume() dropped a torn tail.
    [[nodiscard]] bool tail_dropped() const { return log_.tail_dropped(); }
    [[nodiscard]] const std::string& path() const { return log_.path(); }
    [[nodiscard]] const JournalOptions& options() const { return log_.options(); }

    /// I/O accounting for bench_recovery: logical journal size vs bytes
    /// actually written (write amplification), commits and fault retries.
    [[nodiscard]] std::uint64_t commits() const { return log_.commits(); }
    [[nodiscard]] std::uint64_t bytes_written() const { return log_.bytes_written(); }
    [[nodiscard]] std::uint64_t logical_bytes() const { return log_.logical_bytes(); }
    [[nodiscard]] std::uint64_t io_retries() const { return log_.io_retries(); }

private:
    explicit SweepJournal(FrameLog&& log);  // resume body

    FrameLog log_;
    JournalHeader header_;
    std::vector<RowRecord> rows_;
};

}  // namespace pv::resilience
