#include "resilience/frames.hpp"

#include <algorithm>
#include <bit>
#include <fstream>
#include <utility>

#include "resilience/crc32.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace pv::resilience {
namespace {

constexpr char kMagic0 = 'P';
constexpr char kMagic1 = 'V';

}  // namespace

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

void put_str(std::string& out, std::string_view s) {
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

double PayloadReader::f64() { return std::bit_cast<double>(take(8)); }

std::string PayloadReader::str(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
        ok_ = false;
        return {};
    }
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
}

std::uint64_t PayloadReader::take(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
        ok_ = false;
        return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    pos_ += n;
    return v;
}

std::string encode_frame(std::uint8_t kind, const std::string& payload) {
    std::string out;
    out.reserve(kFrameOverhead + payload.size());
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    put_u8(out, kind);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, crc32(payload));
    out += payload;
    return out;
}

ScannedFrame scan_frame(std::string_view bytes) {
    ScannedFrame f;
    if (bytes.size() < kFrameOverhead) return f;
    if (bytes[0] != kMagic0 || bytes[1] != kMagic1) return f;
    const auto kind = static_cast<std::uint8_t>(bytes[2]);
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3 + i]))
               << (8 * i);
    std::uint32_t crc = 0;
    for (std::size_t i = 0; i < 4; ++i)
        crc |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[7 + i]))
               << (8 * i);
    if (len > kMaxFramePayload || kFrameOverhead + len > bytes.size()) return f;
    const std::string_view payload = bytes.substr(kFrameOverhead, len);
    if (crc32(payload) != crc) return f;
    f.valid = true;
    f.kind = kind;
    f.payload = payload;
    f.size = kFrameOverhead + len;
    return f;
}

const char* to_string(CommitMode mode) {
    switch (mode) {
        case CommitMode::Append: return "append";
        case CommitMode::AtomicRewrite: return "atomic-rewrite";
    }
    return "?";
}

FrameLog::FrameLog(std::string path, Kinds kinds, const std::string& header_payload,
                   JournalOptions options)
    : path_(std::move(path)),
      kinds_(std::move(kinds)),
      options_(options),
      header_payload_(header_payload) {
    options_.io_retry.validate();
    // The initial image is written unconditionally (creating the log is
    // the caller's decision to start a run, not a mid-run commit),
    // atomically in both modes so a half-written header can never exist.
    content_ = encode_frame(kinds_.header, header_payload_);
    atomic_write_file(path_, content_);
    bytes_written_ += content_.size();
}

FrameLog::FrameLog(std::string path, Kinds kinds, JournalOptions options,
                   const FrameValidator& validate)
    : path_(std::move(path)), kinds_(std::move(kinds)), options_(options) {
    options_.io_retry.validate();
    const std::string bytes = read_file(path_);
    const ScannedFrame head = scan_frame(bytes);
    if (!head.valid || head.kind != kinds_.header)
        throw JournalError("no valid header frame in " + path_);
    if (validate && !validate(head.kind, head.payload))
        throw JournalError("malformed header frame in " + path_);
    header_payload_ = std::string(head.payload);
    std::size_t pos = head.size;
    while (pos < bytes.size()) {
        const ScannedFrame f = scan_frame(std::string_view(bytes).substr(pos));
        if (!f.valid) break;  // torn tail from here on
        if (!kinds_.accepted.empty() &&
            std::find(kinds_.accepted.begin(), kinds_.accepted.end(), f.kind) ==
                kinds_.accepted.end())
            break;
        if (validate && !validate(f.kind, f.payload)) break;  // CRC collided with garbage
        frames_.push_back(Frame{f.kind, std::string(f.payload)});
        pos += f.size;
    }
    tail_dropped_ = pos < bytes.size();
    content_ = bytes.substr(0, pos);
    if (tail_dropped_) {
        // Scrub the torn bytes so Append-mode commits land after the
        // last intact frame, not after garbage the decoder would stop at.
        atomic_write_file(path_, content_);
        bytes_written_ += content_.size();
    }
}

FrameLog FrameLog::resume(const std::string& path, Kinds kinds, JournalOptions options,
                          const FrameValidator& validate) {
    return FrameLog(path, std::move(kinds), options, validate);
}

void FrameLog::write_frame(const std::string& frame_bytes) {
    RetrySchedule sched(options_.io_retry, mix_seed(options_.io_retry_seed, commits_));
    while (sched.next_attempt()) {
        if (sched.attempts() > 1) ++io_retries_;
        if (options_.file_faults != nullptr &&
            options_.file_faults->should_inject(FaultKind::FileWriteError)) {
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "journal-write-fault", 0,
                           static_cast<std::uint64_t>(FaultKind::FileWriteError),
                           commits_);
            continue;
        }
        if (options_.mode == CommitMode::AtomicRewrite) {
            atomic_write_file(path_, content_ + frame_bytes);
            bytes_written_ += content_.size() + frame_bytes.size();
        } else {
            std::ofstream out(path_, std::ios::binary | std::ios::app);
            out.write(frame_bytes.data(),
                      static_cast<std::streamsize>(frame_bytes.size()));
            out.flush();
            if (!out) throw JournalError("append failed on " + path_);
            bytes_written_ += frame_bytes.size();
        }
        content_ += frame_bytes;
        return;
    }
    throw JournalError("commit to " + path_ + " failed after " +
                       std::to_string(options_.io_retry.max_attempts) + " attempts");
}

void FrameLog::append(std::uint8_t kind, const std::string& payload) {
    write_frame(encode_frame(kind, payload));
    frames_.push_back(Frame{kind, payload});
    ++commits_;
}

}  // namespace pv::resilience
