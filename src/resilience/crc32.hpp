// PlugVolt — CRC-32 (IEEE 802.3, reflected) frame checksums.
//
// The sweep journal frames every record with a CRC so that a crash mid-
// append (a torn final record) is detected and dropped on replay instead
// of corrupting the sweep.  The polynomial is the ubiquitous 0xEDB88320
// reflected form, table-driven; the check value for "123456789" is
// 0xCBF43926 (the classic known-answer test).
#pragma once

#include <cstdint>
#include <string_view>

namespace pv::resilience {

/// CRC-32 of `bytes`, optionally continuing from a previous digest so
/// large payloads can be checksummed incrementally:
///   crc32(b) == crc32(b2, crc32(b1))  for any split b = b1 + b2.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes, std::uint32_t crc = 0);

}  // namespace pv::resilience
