#include "resilience/journal.hpp"

#include <utility>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace pv::resilience {
namespace {

constexpr std::uint8_t kHeaderKind = 1;
constexpr std::uint8_t kRowKind = 2;

std::string encode_header_payload(const JournalHeader& header) {
    std::string payload;
    put_u32(payload, header.version);
    put_u64(payload, header.config_hash);
    put_u64(payload, header.seed);
    put_f64(payload, header.sweep_floor_mv);
    put_str(payload, header.system_name);
    return payload;
}

std::string encode_row_payload(const RowRecord& record) {
    std::string payload;
    put_u64(payload, record.row_index);
    put_f64(payload, record.freq_mhz);
    put_f64(payload, record.onset_mv);
    put_f64(payload, record.crash_mv);
    put_u8(payload, record.fault_free ? 1 : 0);
    put_u64(payload, record.cells);
    put_u64(payload, record.crashes);
    return payload;
}

/// Decode a header payload; throws JournalError on a malformed or
/// unsupported header (the journal cannot be used at all in that case).
JournalHeader decode_header_payload(std::string_view payload) {
    PayloadReader r(payload);
    JournalHeader header;
    header.version = r.u32();
    header.config_hash = r.u64();
    header.seed = r.u64();
    header.sweep_floor_mv = r.f64();
    header.system_name = r.str_lp();
    if (!r.ok() || !r.exhausted()) throw JournalError("malformed journal header payload");
    if (header.version != 1)
        throw JournalError("unsupported journal version " +
                           std::to_string(header.version));
    return header;
}

bool decode_row_payload(std::string_view payload, RowRecord& rec) {
    PayloadReader r(payload);
    rec.row_index = r.u64();
    rec.freq_mhz = r.f64();
    rec.onset_mv = r.f64();
    rec.crash_mv = r.f64();
    rec.fault_free = r.u8() != 0;
    rec.cells = r.u64();
    rec.crashes = r.u64();
    return r.ok() && r.exhausted();
}

FrameLog::Kinds journal_kinds() { return FrameLog::Kinds{kHeaderKind, {kRowKind}}; }

/// Replay-time validator: row frames whose CRC collided with garbage
/// must start the torn tail, exactly as decode_journal treats them.
bool validate_frame(std::uint8_t kind, std::string_view payload) {
    if (kind == kHeaderKind) return true;  // header decode errors throw below
    RowRecord rec;
    return decode_row_payload(payload, rec);
}

}  // namespace

std::string encode_header_frame(const JournalHeader& header) {
    return encode_frame(kHeaderKind, encode_header_payload(header));
}

std::string encode_row_frame(const RowRecord& record) {
    return encode_frame(kRowKind, encode_row_payload(record));
}

JournalReplay decode_journal(std::string_view bytes) {
    JournalReplay replay;
    const ScannedFrame head = scan_frame(bytes);
    if (!head.valid || head.kind != kHeaderKind)
        throw JournalError("no valid journal header frame");
    replay.header = decode_header_payload(head.payload);
    std::size_t pos = head.size;
    while (pos < bytes.size()) {
        const ScannedFrame f = scan_frame(bytes.substr(pos));
        if (!f.valid || f.kind != kRowKind) break;  // torn tail from here on
        RowRecord rec;
        if (!decode_row_payload(f.payload, rec)) break;  // CRC collided with garbage
        replay.rows.push_back(rec);
        pos += f.size;
    }
    replay.valid_bytes = pos;
    replay.tail_dropped = pos < bytes.size();
    return replay;
}

SweepJournal::SweepJournal(std::string path, JournalHeader header, JournalOptions options)
    : log_(std::move(path), journal_kinds(), encode_header_payload(header), options),
      header_(std::move(header)) {}

SweepJournal::SweepJournal(FrameLog&& log) : log_(std::move(log)) {
    header_ = decode_header_payload(log_.header_payload());
    rows_.reserve(log_.frames().size());
    for (const FrameLog::Frame& f : log_.frames()) {
        RowRecord rec;
        decode_row_payload(f.payload, rec);  // validated during replay
        rows_.push_back(rec);
    }
}

SweepJournal SweepJournal::resume(const std::string& path, JournalOptions options) {
    return SweepJournal(FrameLog::resume(path, journal_kinds(), options, validate_frame));
}

void SweepJournal::commit(const RowRecord& record) {
    log_.append(kRowKind, encode_row_payload(record));
    rows_.push_back(record);
    PV_TRACE_EVENT(trace::EventKind::JournalCommit, "journal-commit", 0,
                   record.row_index, log_.logical_bytes());
}

}  // namespace pv::resilience
