#include "resilience/journal.hpp"

#include <bit>
#include <fstream>
#include <utility>

#include "resilience/crc32.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"

namespace pv::resilience {
namespace {

constexpr char kMagic0 = 'P';
constexpr char kMagic1 = 'V';
constexpr std::uint8_t kHeaderKind = 1;
constexpr std::uint8_t kRowKind = 2;
constexpr std::size_t kFrameOverhead = 2 + 1 + 4 + 4;  // magic + kind + len + crc
/// Frames larger than this are rejected as corrupt rather than parsed
/// (a flipped length byte must not make the decoder swallow the file).
constexpr std::uint32_t kMaxPayload = 1u << 20;

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian reader over one payload.
class Reader {
public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    [[nodiscard]] bool ok() const { return ok_; }
    [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

    std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
    std::uint64_t u64() { return take(8); }
    double f64() { return std::bit_cast<double>(take(8)); }

    std::string str(std::size_t n) {
        if (pos_ + n > bytes_.size()) {
            ok_ = false;
            return {};
        }
        std::string s(bytes_.substr(pos_, n));
        pos_ += n;
        return s;
    }

private:
    std::uint64_t take(std::size_t n) {
        if (pos_ + n > bytes_.size()) {
            ok_ = false;
            return 0;
        }
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < n; ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += n;
        return v;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

std::string frame(std::uint8_t kind, const std::string& payload) {
    std::string out;
    out.reserve(kFrameOverhead + payload.size());
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    put_u8(out, kind);
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, crc32(payload));
    out += payload;
    return out;
}

/// One frame scanned off the head of `bytes`; valid == false means the
/// bytes at this position are not an intact frame (torn tail).
struct ScannedFrame {
    bool valid = false;
    std::uint8_t kind = 0;
    std::string_view payload;
    std::size_t size = 0;
};

ScannedFrame scan_frame(std::string_view bytes) {
    ScannedFrame f;
    if (bytes.size() < kFrameOverhead) return f;
    if (bytes[0] != kMagic0 || bytes[1] != kMagic1) return f;
    const auto kind = static_cast<std::uint8_t>(bytes[2]);
    std::uint32_t len = 0;
    for (std::size_t i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3 + i]))
               << (8 * i);
    std::uint32_t crc = 0;
    for (std::size_t i = 0; i < 4; ++i)
        crc |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[7 + i]))
               << (8 * i);
    if (len > kMaxPayload || kFrameOverhead + len > bytes.size()) return f;
    const std::string_view payload = bytes.substr(kFrameOverhead, len);
    if (crc32(payload) != crc) return f;
    f.valid = true;
    f.kind = kind;
    f.payload = payload;
    f.size = kFrameOverhead + len;
    return f;
}

}  // namespace

const char* to_string(CommitMode mode) {
    switch (mode) {
        case CommitMode::Append: return "append";
        case CommitMode::AtomicRewrite: return "atomic-rewrite";
    }
    return "?";
}

std::string encode_header_frame(const JournalHeader& header) {
    std::string payload;
    put_u32(payload, header.version);
    put_u64(payload, header.config_hash);
    put_u64(payload, header.seed);
    put_f64(payload, header.sweep_floor_mv);
    put_u32(payload, static_cast<std::uint32_t>(header.system_name.size()));
    payload += header.system_name;
    return frame(kHeaderKind, payload);
}

std::string encode_row_frame(const RowRecord& record) {
    std::string payload;
    put_u64(payload, record.row_index);
    put_f64(payload, record.freq_mhz);
    put_f64(payload, record.onset_mv);
    put_f64(payload, record.crash_mv);
    put_u8(payload, record.fault_free ? 1 : 0);
    put_u64(payload, record.cells);
    put_u64(payload, record.crashes);
    return frame(kRowKind, payload);
}

JournalReplay decode_journal(std::string_view bytes) {
    JournalReplay replay;
    const ScannedFrame head = scan_frame(bytes);
    if (!head.valid || head.kind != kHeaderKind)
        throw JournalError("no valid journal header frame");
    {
        Reader r(head.payload);
        replay.header.version = r.u32();
        replay.header.config_hash = r.u64();
        replay.header.seed = r.u64();
        replay.header.sweep_floor_mv = r.f64();
        const std::uint32_t name_len = r.u32();
        replay.header.system_name = r.str(name_len);
        if (!r.ok() || !r.exhausted())
            throw JournalError("malformed journal header payload");
        if (replay.header.version != 1)
            throw JournalError("unsupported journal version " +
                               std::to_string(replay.header.version));
    }
    std::size_t pos = head.size;
    while (pos < bytes.size()) {
        const ScannedFrame f = scan_frame(bytes.substr(pos));
        if (!f.valid || f.kind != kRowKind) break;  // torn tail from here on
        Reader r(f.payload);
        RowRecord rec;
        rec.row_index = r.u64();
        rec.freq_mhz = r.f64();
        rec.onset_mv = r.f64();
        rec.crash_mv = r.f64();
        rec.fault_free = r.u8() != 0;
        rec.cells = r.u64();
        rec.crashes = r.u64();
        if (!r.ok() || !r.exhausted()) break;  // CRC collided with garbage; drop
        replay.rows.push_back(rec);
        pos += f.size;
    }
    replay.valid_bytes = pos;
    replay.tail_dropped = pos < bytes.size();
    return replay;
}

SweepJournal::SweepJournal(std::string path, JournalHeader header, JournalOptions options)
    : path_(std::move(path)), options_(options), header_(std::move(header)) {
    options_.io_retry.validate();
    // The initial image is written unconditionally (creating the journal
    // is the caller's decision to start a sweep, not a mid-sweep commit),
    // atomically in both modes so a half-written header can never exist.
    content_ = encode_header_frame(header_);
    atomic_write_file(path_, content_);
    bytes_written_ += content_.size();
}

SweepJournal::SweepJournal(std::string path, JournalOptions options)
    : path_(std::move(path)), options_(options) {
    options_.io_retry.validate();
    const std::string bytes = read_file(path_);
    JournalReplay replay = decode_journal(bytes);
    header_ = std::move(replay.header);
    rows_ = std::move(replay.rows);
    tail_dropped_ = replay.tail_dropped;
    content_ = bytes.substr(0, replay.valid_bytes);
    if (tail_dropped_) {
        // Scrub the torn bytes so Append-mode commits land after the
        // last intact frame, not after garbage the decoder would stop at.
        atomic_write_file(path_, content_);
        bytes_written_ += content_.size();
    }
}

SweepJournal SweepJournal::resume(const std::string& path, JournalOptions options) {
    return SweepJournal(path, options);
}

void SweepJournal::write_frame(const std::string& frame_bytes) {
    RetrySchedule sched(options_.io_retry, mix_seed(options_.io_retry_seed, commits_));
    while (sched.next_attempt()) {
        if (sched.attempts() > 1) ++io_retries_;
        if (options_.file_faults != nullptr &&
            options_.file_faults->should_inject(FaultKind::FileWriteError)) {
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "journal-write-fault", 0,
                           static_cast<std::uint64_t>(FaultKind::FileWriteError),
                           commits_);
            continue;
        }
        if (options_.mode == CommitMode::AtomicRewrite) {
            atomic_write_file(path_, content_ + frame_bytes);
            bytes_written_ += content_.size() + frame_bytes.size();
        } else {
            std::ofstream out(path_, std::ios::binary | std::ios::app);
            out.write(frame_bytes.data(),
                      static_cast<std::streamsize>(frame_bytes.size()));
            out.flush();
            if (!out) throw JournalError("append failed on " + path_);
            bytes_written_ += frame_bytes.size();
        }
        content_ += frame_bytes;
        return;
    }
    throw JournalError("commit to " + path_ + " failed after " +
                       std::to_string(options_.io_retry.max_attempts) + " attempts");
}

void SweepJournal::commit(const RowRecord& record) {
    write_frame(encode_row_frame(record));
    rows_.push_back(record);
    ++commits_;
    PV_TRACE_EVENT(trace::EventKind::JournalCommit, "journal-commit", 0,
                   record.row_index, static_cast<std::uint64_t>(content_.size()));
}

}  // namespace pv::resilience
