// PlugVolt — CRC-framed WAL building blocks.
//
// The sweep journal (journal.hpp) proved out a crash-tolerant on-disk
// format: a header frame followed by record frames, each CRC-protected,
// with torn tails dropped on replay.  The serving daemon needs the same
// guarantees for two more logs (the campaign cell journal and the job
// queue WAL), so the framing lives here as a public, record-agnostic
// layer:
//
//   frame := magic:u16 ('P','V')  kind:u8  payload_len:u32  crc:u32  payload
//
// `FrameLog` is the generic append-only write-ahead log over that
// framing: one header frame whose payload identifies the producer, then
// any number of record frames.  Replay stops at the first frame that is
// torn (bad magic/length/CRC), has an unexpected kind, or fails the
// caller's payload validator — everything after is a crash artifact and
// is scrubbed from the file so later appends cannot land after garbage.
//
// Two commit modes (the write-amplification trade bench_recovery
// measures):
//   Append        — append + flush one frame per commit;
//   AtomicRewrite — rewrite the whole log through temp-file + rename per
//                   commit, so every on-disk state is a complete log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/fault_injection.hpp"
#include "resilience/retry.hpp"

namespace pv::resilience {

constexpr std::size_t kFrameOverhead = 2 + 1 + 4 + 4;  // magic + kind + len + crc
/// Frames larger than this are rejected as corrupt rather than parsed
/// (a flipped length byte must not make the decoder swallow the file).
constexpr std::uint32_t kMaxFramePayload = 1u << 20;

/// Little-endian payload writers.  Doubles travel as bit patterns so
/// replayed records are bit-exact — the state_hash contract.
void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
/// Length-prefixed string: u32 byte count + raw bytes.
void put_str(std::string& out, std::string_view s);

/// Bounds-checked little-endian reader over one payload.  A read past
/// the end clears ok() and returns zero; decoders check ok() once at
/// the end instead of guarding every field.
class PayloadReader {
public:
    explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

    [[nodiscard]] bool ok() const { return ok_; }
    [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

    std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
    std::uint64_t u64() { return take(8); }
    double f64();

    std::string str(std::size_t n);
    /// Length-prefixed counterpart of put_str.
    std::string str_lp() { return str(u32()); }

private:
    std::uint64_t take(std::size_t n);

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/// Wrap a payload in one CRC frame.
[[nodiscard]] std::string encode_frame(std::uint8_t kind, const std::string& payload);

/// One frame scanned off the head of `bytes`; valid == false means the
/// bytes at this position are not an intact frame (torn tail).
struct ScannedFrame {
    bool valid = false;
    std::uint8_t kind = 0;
    std::string_view payload;
    std::size_t size = 0;
};

[[nodiscard]] ScannedFrame scan_frame(std::string_view bytes);

enum class CommitMode { Append, AtomicRewrite };

[[nodiscard]] const char* to_string(CommitMode mode);

struct JournalOptions {
    CommitMode mode = CommitMode::Append;
    /// Optional injected-fault source for commits (FileWriteError
    /// opportunities); not owned, may be nullptr.
    FaultInjector* file_faults = nullptr;
    /// Commit retry budget against injected file faults.
    RetryPolicy io_retry{};
    /// Jitter stream for the commit retries.
    std::uint64_t io_retry_seed = 0x10'FA17;
};

/// The generic CRC-framed append-only WAL.  One instance owns one file.
/// Record semantics (what the payload bytes mean) belong to the caller;
/// this class owns durability, torn-tail recovery, and fault-injected
/// commit retry.
class FrameLog {
public:
    struct Frame {
        std::uint8_t kind = 0;
        std::string payload;

        friend bool operator==(const Frame&, const Frame&) = default;
    };

    /// The frame-kind contract of one log format.  `accepted` lists the
    /// record kinds replay trusts; a CRC-valid frame of any other kind
    /// is treated as a torn tail (a crash can tear exactly at a frame
    /// boundary and leave bytes that happen to scan).  Empty = any kind.
    struct Kinds {
        std::uint8_t header = 1;
        std::vector<std::uint8_t> accepted{};
    };

    /// Replay-time payload check: return false to treat the frame (and
    /// everything after it) as a torn tail.
    using FrameValidator = std::function<bool(std::uint8_t kind, std::string_view payload)>;

    /// Start a fresh log at `path` (truncating any previous file).  The
    /// header image is written atomically in both modes so a
    /// half-written header can never exist.
    FrameLog(std::string path, Kinds kinds, const std::string& header_payload,
             JournalOptions options = {});

    /// Reopen an existing log: replay its frames, scrub any torn tail
    /// from the file, and position for further appends.  Throws
    /// JournalError when the file has no valid header frame.
    [[nodiscard]] static FrameLog resume(const std::string& path, Kinds kinds,
                                         JournalOptions options = {},
                                         const FrameValidator& validate = {});

    /// Make one record durable (write-ahead: callers append BEFORE
    /// acting on the record).  Retries injected file faults up to the
    /// io_retry budget, then throws JournalError.
    void append(std::uint8_t kind, const std::string& payload);

    [[nodiscard]] const std::string& header_payload() const { return header_payload_; }
    /// Record frames durable in this log (replayed + appended), in
    /// commit order; the header frame is not included.
    [[nodiscard]] const std::vector<Frame>& frames() const { return frames_; }
    /// True when resume() dropped a torn tail.
    [[nodiscard]] bool tail_dropped() const { return tail_dropped_; }
    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] const JournalOptions& options() const { return options_; }

    /// I/O accounting: logical log size vs bytes actually written
    /// (write amplification), commits and fault retries.
    [[nodiscard]] std::uint64_t commits() const { return commits_; }
    [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
    [[nodiscard]] std::uint64_t logical_bytes() const { return content_.size(); }
    [[nodiscard]] std::uint64_t io_retries() const { return io_retries_; }

private:
    FrameLog(std::string path, Kinds kinds, JournalOptions options,
             const FrameValidator& validate);  // resume body

    /// Write `frame` durably per the commit mode, retrying injected
    /// faults; appends to content_ on success.
    void write_frame(const std::string& frame_bytes);

    std::string path_;
    Kinds kinds_;
    JournalOptions options_;
    std::string header_payload_;
    std::vector<Frame> frames_;
    std::string content_;  // the valid byte image (logical log)
    bool tail_dropped_ = false;
    std::uint64_t commits_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::uint64_t io_retries_ = 0;
};

}  // namespace pv::resilience
