#include "resilience/crc32.hpp"

#include <array>

namespace pv::resilience {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::string_view bytes, std::uint32_t crc) {
    crc = ~crc;
    for (const char ch : bytes)
        crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
    return ~crc;
}

}  // namespace pv::resilience
