#include "resilience/fault_injection.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace pv::resilience {

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::RdmsrError: return "rdmsr-error";
        case FaultKind::WrmsrError: return "wrmsr-error";
        case FaultKind::RdmsrTimeout: return "rdmsr-timeout";
        case FaultKind::WrmsrTimeout: return "wrmsr-timeout";
        case FaultKind::StaleRead: return "stale-read";
        case FaultKind::MailboxBusy: return "mailbox-busy";
        case FaultKind::FileWriteError: return "file-write-error";
    }
    return "?";
}

bool FaultPlan::empty() const {
    for (const double r : rates)
        if (r != 0.0) return false;
    return true;
}

void FaultPlan::validate() const {
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
        const double r = rates[k];
        if (!(r >= 0.0 && r <= 1.0))
            throw ConfigError(std::string("fault rate for ") +
                              to_string(static_cast<FaultKind>(k)) +
                              " must be in [0, 1]");
    }
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan), seed_(plan.seed) {
    plan_.validate();
}

void FaultInjector::reseed(std::uint64_t seed) {
    seed_ = seed;
    draws_.fill(0);
}

bool FaultInjector::should_inject(FaultKind kind) {
    const auto k = static_cast<std::size_t>(kind);
    ++opportunities_[k];
    const double rate = plan_.rates[k];
    if (rate == 0.0) return false;
    // Stateless per-kind stream: two mix levels keep the kind streams
    // independent of each other and of the sweep's cell-seed derivation.
    const std::uint64_t bits = mix_seed(mix_seed(seed_, 0xFA00 + k), draws_[k]++);
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    if (u >= rate) return false;
    ++injected_[k];
    return true;
}

std::uint64_t FaultInjector::injected_total() const {
    std::uint64_t total = 0;
    for (const std::uint64_t n : injected_) total += n;
    return total;
}

trace::MetricsSnapshot FaultInjector::metrics_snapshot() const {
    trace::MetricsRegistry reg;
    for (std::size_t k = 0; k < kFaultKindCount; ++k) {
        const char* name = to_string(static_cast<FaultKind>(k));
        reg.counter(std::string(name) + ".opportunities") = opportunities_[k];
        reg.counter(std::string(name) + ".injected") = injected_[k];
    }
    return reg.snapshot();
}

}  // namespace pv::resilience
