#include "campaign/report.hpp"

#include <sstream>

#include "check/state_hasher.hpp"
#include "util/fsio.hpp"

namespace pv::campaign {
namespace {

std::string hex64(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
    return buf;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

// RFC 4180 quoting for the free-text columns (verdicts carry bracketed
// annotations today and could grow commas; profile names are vendor
// strings).  Matches what util::csv_parse accepts.
std::string csv_escape(const std::string& s) {
    if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::uint64_t CampaignReport::fingerprint() const {
    check::StateHasher hasher;
    hasher.mix(seed);
    hasher.mix(static_cast<std::uint64_t>(cells.size()));
    for (const CampaignCellResult& cell : cells) hasher.mix(campaign::fingerprint(cell));
    return hasher.digest();
}

std::size_t CampaignReport::weaponized_count() const {
    std::size_t n = 0;
    for (const CampaignCellResult& cell : cells)
        if (cell.attack_result.weaponized) ++n;
    return n;
}

std::string CampaignReport::to_csv() const {
    std::ostringstream out;
    out << "index,profile,attack,defense,cell_seed,verdict,faults,weaponized,crashes,"
           "attempts,machine_rebuilds,writes_attempted,writes_effective,polls,"
           "detections,restore_writes,freq_drops,rail_watch_detections,"
           "audit_violations,audited_accesses,machine_state_hash,fingerprint\n";
    for (const CampaignCellResult& cell : cells) {
        const attack::AttackResult& r = cell.attack_result;
        out << cell.spec.index << ',' << csv_escape(cell.profile_name) << ','
            << to_string(cell.spec.attack) << ',' << to_string(cell.spec.defense) << ','
            << hex64(cell.spec.seed) << ',' << csv_escape(cell.verdict) << ','
            << r.faults_observed
            << ',' << (r.weaponized ? 1 : 0) << ',' << r.crashes << ',' << cell.attempts
            << ',' << cell.machine_rebuilds << ',' << r.writes_attempted << ','
            << r.writes_effective << ',';
        if (cell.polling) {
            out << cell.polling->polls << ',' << cell.polling->detections << ','
                << cell.polling->restore_writes << ',' << cell.polling->freq_drops << ','
                << cell.polling->rail_watch_detections << ',';
        } else {
            out << ",,,,,";
        }
        out << cell.audit_violations << ',' << cell.audited_accesses << ','
            << hex64(cell.machine_state_hash) << ',' << hex64(campaign::fingerprint(cell))
            << '\n';
    }
    return out.str();
}

std::string CampaignReport::to_json() const {
    std::ostringstream out;
    out << "{\n  \"seed\": " << seed << ",\n  \"attacks\": " << n_attacks
        << ",\n  \"defenses\": " << n_defenses << ",\n  \"profiles\": " << n_profiles
        << ",\n  \"fingerprint\": \"" << hex64(fingerprint()) << "\",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CampaignCellResult& cell = cells[i];
        const attack::AttackResult& r = cell.attack_result;
        out << "    {\"index\": " << cell.spec.index << ", \"profile\": \""
            << json_escape(cell.profile_name) << "\", \"attack\": \""
            << to_string(cell.spec.attack) << "\", \"defense\": \""
            << to_string(cell.spec.defense) << "\", \"cell_seed\": \""
            << hex64(cell.spec.seed) << "\", \"verdict\": \"" << json_escape(cell.verdict)
            << "\", \"faults\": " << r.faults_observed
            << ", \"weaponized\": " << (r.weaponized ? "true" : "false")
            << ", \"weaponization\": \"" << json_escape(r.weaponization)
            << "\", \"crashes\": " << r.crashes << ", \"attempts\": " << cell.attempts
            << ", \"machine_rebuilds\": " << cell.machine_rebuilds
            << ", \"writes_attempted\": " << r.writes_attempted
            << ", \"writes_effective\": " << r.writes_effective;
        if (cell.polling) {
            out << ", \"polls\": " << cell.polling->polls
                << ", \"detections\": " << cell.polling->detections
                << ", \"restore_writes\": " << cell.polling->restore_writes
                << ", \"freq_drops\": " << cell.polling->freq_drops
                << ", \"rail_watch_detections\": " << cell.polling->rail_watch_detections;
        }
        out << ", \"audit_violations\": " << cell.audit_violations
            << ", \"audited_accesses\": " << cell.audited_accesses
            << ", \"machine_state_hash\": \"" << hex64(cell.machine_state_hash)
            << "\", \"metrics\": " << cell.metrics.to_json()
            << ", \"fingerprint\": \"" << hex64(campaign::fingerprint(cell)) << "\"}"
            << (i + 1 < cells.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    return out.str();
}

std::string CampaignReport::write_csv(const std::string& path) const {
    // Atomic (temp-file + rename): a campaign killed mid-report leaves
    // the previous report intact, never a torn one.
    atomic_write_file(path, to_csv());
    return path;
}

std::string CampaignReport::write_json(const std::string& path) const {
    atomic_write_file(path, to_json());
    return path;
}

}  // namespace pv::campaign
