// PlugVolt — adversarial campaign engine (Sec. 4.3 / Table 2 at scale).
//
// The paper's central claim is a *matrix* claim: the polling module
// defeats every software DVFS fault attack that access control
// (SA-00289) and Minefield cannot, at every deployment level, on every
// characterized part.  bench_attack_matrix used to exercise that matrix
// with an ad-hoc loop over one profile; the campaign engine turns the
// full {attack} x {defense deployment} x {CPU profile} cross-product
// into a sharded, crash-tolerant, bit-exactly replayable workload:
//
//   - every cell runs on a freshly constructed Machine seeded from
//     mix(campaign_seed, cell_index) — the same order-independence
//     trick as ParallelCharacterizer, so a cell's outcome is a pure
//     function of (config, cell) and the sharded run equals the
//     single-thread run fingerprint-for-fingerprint;
//   - a cell whose Machine ends dead (the attack gave up mid-crash, or
//     a simulator error unwound) is rebuilt and re-run with the next
//     derived attempt seed, up to max_attempts, with the rebuild count
//     recorded — the crash-tolerant retry loop long stochastic attacker
//     campaigns (V0LTpwn, PMFault) need;
//   - any single cell can be re-executed bit-exactly via run_cell()
//     (campaign_demo exposes it as --replay seed:cell) for debugging;
//   - results carry the AttackResult, the polling module's metrics,
//     the MsrAuditor's findings and a state-hash fingerprint, and the
//     report serializes to JSON and CSV (report.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "plugvolt/polling_module.hpp"
#include "plugvolt/safe_state.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/retry.hpp"
#include "sim/cpu_profile.hpp"
#include "trace/metrics.hpp"

namespace pv::trace {
class TraceSession;
}  // namespace pv::trace

namespace pv::campaign {

/// The attack column of the matrix.  BenignUndervolt is the paper's
/// differentiator probe, not an attack: a non-SGX process asking for
/// safe undervolts while an enclave is loaded (full/clamped/DENIED).
enum class AttackKind {
    Plundervolt,
    VoltJockey,            ///< big-jump frequency raise
    VoltJockeyPrecise,     ///< adjacent-bin hop with attacker map
    VoltJockeyDescending,  ///< descending-rail PCU transition race
    VoltPillager,          ///< hardware SVID injection (no MSR trace)
    V0ltpwn,               ///< enclave victim, no stepping
    V0ltpwnSgxStep,        ///< enclave victim + SGX-Step zero-stepping
    BenignUndervolt,       ///< benign DVFS usability probe
};

/// The defense row of the matrix: none, the four polling flavours, the
/// two vendor deployments, and the two baselines the paper argues
/// against.
enum class DefenseKind {
    None,
    PollingNoRailWatch,   ///< plain PollingModule (paper Algo. 3, no watchdog)
    PollingSafeLimit,     ///< Protector kernel-module (safe-limit + rail watch)
    PollingMaximalSafe,   ///< RestorePolicy::ClampToMaximalSafe
    PollingRestoreZero,   ///< RestorePolicy::RestoreZero
    Microcode,            ///< Sec. 5.1 write-ignore
    MsrClamp,             ///< Sec. 5.2 hardware clamp MSR
    AccessControl,        ///< Intel SA-00289 baseline
    Minefield,            ///< trap-deflection baseline (victim compile time)
};

[[nodiscard]] const char* to_string(AttackKind kind);
[[nodiscard]] const char* to_string(DefenseKind kind);

/// Every attack / defense kind, in matrix order.
[[nodiscard]] const std::vector<AttackKind>& all_attacks();
[[nodiscard]] const std::vector<DefenseKind>& all_defenses();

/// Cost knobs threaded into every attack's campaign parameters, so the
/// differential and property tests can run the whole cube at a coarse,
/// fast setting while the demo runs the published shape.
struct AttackTuning {
    /// Offset scan resolution (Plundervolt/VoltJockey/V0LTpwn scans;
    /// VoltPillager keeps its published 2x-coarser ratio).
    Millivolts scan_step{2.0};
    /// Probe-loop iterations per scanned offset.
    std::uint64_t probe_ops = 100'000;
    /// Enclave entries per offset (V0LTpwn).  The published campaign
    /// enters tens of thousands of times; 200 is enough for the
    /// last-mul fault (the one Minefield's traps cannot see under
    /// zero-step suppression) to land reliably.
    unsigned runs_per_offset = 200;
    /// Reboots an attacker tolerates before giving up.  The published
    /// one-shot campaigns default to 2-3; a campaign adversary with
    /// physical access retries more.
    unsigned max_crashes = 6;
};

struct CampaignConfig {
    std::vector<AttackKind> attacks = all_attacks();
    std::vector<DefenseKind> defenses = all_defenses();
    std::vector<sim::CpuProfile> profiles = sim::paper_profiles();
    /// Root seed: every cell seed and every per-profile characterization
    /// seed derives from it.
    std::uint64_t seed = 0xDAC2024;
    /// Worker threads for run(); 1 = run cells inline on the calling
    /// thread (the single-thread reference execution), 0 = pool default.
    unsigned workers = 0;
    /// Crash-tolerant retry: rebuild the Machine and re-run the cell up
    /// to this many total attempts when it ends with a dead machine.
    unsigned max_attempts = 3;
    /// Backoff between rebuild attempts (max_attempts above overrides
    /// the policy's own budget).  The delay models the reboot pacing a
    /// physical campaign pays and is charged on the rebuilt machine's
    /// virtual clock — deterministically, so retried cells still replay
    /// bit-exactly.
    resilience::RetryPolicy retry{};
    /// Resolution of the per-profile safe-state maps the defenses (and
    /// map-driven attacks) are armed with.
    Millivolts char_step{2.0};
    AttackTuning tuning{};
    /// Attach an MsrAuditor to every cell and record its findings.
    bool audit = true;
    /// Optional environment fault plan: every cell attempt runs its MSR
    /// traffic through a FaultInjector reseeded from (cell seed,
    /// attempt), so injected faults are a pure function of (config,
    /// cell, attempt) — order- and worker-count-independent, and
    /// bit-identical across resumed runs.
    std::optional<resilience::FaultPlan> fault_plan;
    /// Optional trace sink (not owned; must outlive run()).  Every cell
    /// opens its own track, keyed by cell INDEX — never by worker or OS
    /// thread — and all events carry virtual-clock timestamps, so the
    /// exported trace is byte-identical between serial and sharded runs.
    trace::TraceSession* trace = nullptr;
};

/// One cell of the cube, fully determined by the config and its index.
struct CellSpec {
    std::size_t index = 0;  ///< linear index in the enumeration order
    AttackKind attack = AttackKind::Plundervolt;
    DefenseKind defense = DefenseKind::None;
    std::size_t profile_index = 0;
    std::uint64_t seed = 0;  ///< mix(config.seed, index)
};

/// Outcome of one campaign cell.
struct CampaignCellResult {
    CellSpec spec;
    std::string profile_name;
    attack::AttackResult attack_result;
    /// Polling-module counters, when the cell's defense deploys one.
    std::optional<plugvolt::PollingMetrics> polling;
    /// MsrAuditor findings over the cell (0/0 when auditing is off).
    std::uint64_t audit_violations = 0;
    std::uint64_t audited_accesses = 0;
    /// Machine::state_hash() after the final attempt — the cell's
    /// bit-exact replay witness.
    std::uint64_t machine_state_hash = 0;
    /// Attempts executed (1 = no retry) and machines rebuilt dead.
    unsigned attempts = 1;
    unsigned machine_rebuilds = 0;
    /// Human verdict: "blocked", "faults leaked (n)", "BROKEN (n faults)"
    /// — or the benign probe's "full"/"clamped"/"DENIED".
    std::string verdict;
    /// Cell-level metrics (attempts, faults, virtual duration, plus the
    /// polling module's counters and histograms under "polling.").
    /// Folded into fingerprint() and the JSON report.
    trace::MetricsSnapshot metrics;
};

/// 64-bit fingerprint over every field of a cell result (StateHasher).
/// Equal fingerprints mean the cell replayed bit-exactly.
[[nodiscard]] std::uint64_t fingerprint(const CampaignCellResult& cell);

struct CampaignReport;  // report.hpp
class CampaignJournal;  // journal.hpp

/// Per-run resume accounting (what run(journal) adopted vs executed).
struct CampaignRunStats {
    std::uint64_t cells_executed = 0;
    std::uint64_t cells_adopted = 0;
    std::uint64_t attempts_fast_forwarded = 0;

    friend bool operator==(const CampaignRunStats&, const CampaignRunStats&) = default;
};

/// The sharded campaign driver.
class CampaignEngine {
public:
    /// Notification that `attempts_failed` attempts of `spec` have ended
    /// with a dead machine (the journaling hook; may fire on a pool
    /// worker thread in sharded runs).
    using AttemptSink = std::function<void(const CellSpec& spec, unsigned attempts_failed)>;

    explicit CampaignEngine(CampaignConfig config);
    ~CampaignEngine();

    CampaignEngine(const CampaignEngine&) = delete;
    CampaignEngine& operator=(const CampaignEngine&) = delete;

    /// The full cube, in enumeration order (profile-major, then defense,
    /// then attack) with derived per-cell seeds.
    [[nodiscard]] std::vector<CellSpec> cells() const;

    /// Fingerprint over everything result-determining in the config
    /// (cube axes, seed, tuning, retry, audit, fault plan — NOT workers
    /// or trace sinks).  The campaign journal's header identity.
    [[nodiscard]] std::uint64_t config_hash() const;

    /// Run the whole cube.  workers > 1 shards cells across a ThreadPool;
    /// the report's cells are always in enumeration order and equal the
    /// single-thread run fingerprint-for-fingerprint.  `progress`
    /// (optional) is called on the calling thread, in cell order.
    [[nodiscard]] CampaignReport run(
        const std::function<void(const CampaignCellResult&)>& progress = {});

    /// Run the cube against a cell-granular WAL: journaled cells are
    /// adopted verbatim (bit-identical by per-cell purity), journaled
    /// dead-attempt counts fast-forward each cell's retry stream, and
    /// every fresh cell is committed BEFORE `progress` sees it.  The
    /// journal's header must match this engine (config_hash, seed, cube
    /// size) or JournalError is thrown.
    [[nodiscard]] CampaignReport run(
        CampaignJournal& journal,
        const std::function<void(const CampaignCellResult&)>& progress = {});

    /// Accounting for the most recent run(journal) call.
    [[nodiscard]] const CampaignRunStats& run_stats() const { return run_stats_; }

    /// Execute one cell bit-exactly (the --replay path).  Pure function
    /// of (config, spec): calling it twice returns equal fingerprints.
    [[nodiscard]] CampaignCellResult run_cell(const CellSpec& spec);

    /// run_cell with resume support: skips the first `start_attempt`
    /// attempts (journaled as dead) while still consuming their retry
    /// schedule — the executed attempts see the same seeds and backoffs
    /// as an uninterrupted run, so the result is bit-identical.  `sink`
    /// (optional) observes each dead attempt as it is recorded.
    [[nodiscard]] CampaignCellResult run_cell(const CellSpec& spec,
                                              unsigned start_attempt,
                                              const AttemptSink& sink);

    /// Characterize (once, lazily) and return the safe-state map armed
    /// for profile `profile_index`.  Deterministic in config.seed and
    /// independent of worker count.
    [[nodiscard]] const plugvolt::SafeStateMap& map_for(std::size_t profile_index);

    [[nodiscard]] const CampaignConfig& config() const { return config_; }

private:
    /// Ensure every profile map exists (serially, on the calling
    /// thread) so sharded cells only ever read the cache.
    void prepare_maps();

    CampaignConfig config_;
    std::vector<std::unique_ptr<plugvolt::SafeStateMap>> maps_;
    CampaignRunStats run_stats_;
};

}  // namespace pv::campaign
