#include "campaign/campaign.hpp"

#include <exception>
#include <future>
#include <utility>

#include "attacks/plundervolt.hpp"
#include "attacks/v0ltpwn.hpp"
#include "attacks/voltjockey.hpp"
#include "attacks/voltpillager.hpp"
#include "campaign/benign_probe.hpp"
#include "campaign/journal.hpp"
#include "campaign/report.hpp"
#include "check/assert.hpp"
#include "check/msr_auditor.hpp"
#include "check/state_hasher.hpp"
#include "defenses/access_control.hpp"
#include "defenses/minefield.hpp"
#include "plugvolt/parallel_characterizer.hpp"
#include "plugvolt/plugvolt.hpp"
#include "os/msr_driver.hpp"
#include "sgx/runtime.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pv::campaign {
namespace {

/// Seed-stream tags, so the per-cell machine seeds, the per-profile
/// characterization seeds and the attacks' private RNG seeds never
/// collide on one mix level.
constexpr std::uint64_t kMapSeedTag = 0xC0DE'0001;
constexpr std::uint64_t kAttackRngTag = 0xC0DE'0002;
constexpr std::uint64_t kRetryBackoffTag = 0xC0DE'0003;
constexpr std::uint64_t kEnvFaultTag = 0xC0DE'0004;

/// Everything one cell holds alive while its attack runs.  Member order
/// is teardown order in reverse: the machine must outlive every consumer.
struct CellRig {
    CellRig(const sim::CpuProfile& profile, std::uint64_t seed)
        : machine(profile, seed), kernel(machine), runtime(kernel) {}

    sim::Machine machine;
    os::Kernel kernel;
    sgx::SgxRuntime runtime;
    std::unique_ptr<plugvolt::Protector> protector;
    std::shared_ptr<plugvolt::PollingModule> bare_module;
    std::unique_ptr<defense::AccessControl> access_control;
    std::unique_ptr<check::MsrAuditor> auditor;
    std::unique_ptr<sgx::Enclave> tenant;

    /// Live polling module of whichever deployment installed one.
    [[nodiscard]] const plugvolt::PollingModule* polling_module() const {
        if (bare_module) return bare_module.get();
        if (protector) return protector->polling_module();
        return nullptr;
    }
};

void install_defense(CellRig& rig, DefenseKind kind, const plugvolt::SafeStateMap& map) {
    plugvolt::PollingConfig cfg;
    switch (kind) {
        case DefenseKind::None:
        case DefenseKind::Minefield:  // applied at victim compile time
            return;
        case DefenseKind::PollingNoRailWatch:
            rig.bare_module = std::make_shared<plugvolt::PollingModule>(map, cfg);
            rig.kernel.load_module(rig.bare_module);
            return;
        case DefenseKind::PollingSafeLimit:
            rig.protector = std::make_unique<plugvolt::Protector>(rig.kernel, map);
            rig.protector->deploy(plugvolt::DeploymentLevel::KernelModule);
            return;
        case DefenseKind::PollingMaximalSafe:
            cfg.restore = plugvolt::RestorePolicy::ClampToMaximalSafe;
            rig.protector = std::make_unique<plugvolt::Protector>(rig.kernel, map);
            rig.protector->deploy(plugvolt::DeploymentLevel::KernelModule, cfg);
            return;
        case DefenseKind::PollingRestoreZero:
            cfg.restore = plugvolt::RestorePolicy::RestoreZero;
            rig.protector = std::make_unique<plugvolt::Protector>(rig.kernel, map);
            rig.protector->deploy(plugvolt::DeploymentLevel::KernelModule, cfg);
            return;
        case DefenseKind::Microcode:
            rig.protector = std::make_unique<plugvolt::Protector>(rig.kernel, map);
            rig.protector->deploy(plugvolt::DeploymentLevel::Microcode);
            return;
        case DefenseKind::MsrClamp:
            rig.protector = std::make_unique<plugvolt::Protector>(rig.kernel, map);
            rig.protector->deploy(plugvolt::DeploymentLevel::HardwareMsr);
            return;
        case DefenseKind::AccessControl:
            rig.access_control =
                std::make_unique<defense::AccessControl>(rig.machine, rig.runtime);
            rig.access_control->install();
            return;
    }
}

[[nodiscard]] bool is_v0ltpwn(AttackKind kind) {
    return kind == AttackKind::V0ltpwn || kind == AttackKind::V0ltpwnSgxStep;
}

std::unique_ptr<attack::Attack> make_attack(CellRig& rig, const CellSpec& spec,
                                            const AttackTuning& tuning,
                                            const plugvolt::SafeStateMap& map) {
    switch (spec.attack) {
        case AttackKind::Plundervolt: {
            attack::PlundervoltConfig cfg;
            cfg.scan_step = tuning.scan_step;
            cfg.probe_ops = tuning.probe_ops;
            cfg.max_crashes = tuning.max_crashes;
            cfg.rng_seed = mix_seed(spec.seed, kAttackRngTag);
            return std::make_unique<attack::Plundervolt>(cfg);
        }
        case AttackKind::VoltJockey:
        case AttackKind::VoltJockeyPrecise:
        case AttackKind::VoltJockeyDescending: {
            attack::VoltJockeyConfig cfg;
            cfg.scan_step = tuning.scan_step;
            cfg.probe_ops = tuning.probe_ops;
            cfg.max_crashes = tuning.max_crashes;
            cfg.precise_step = spec.attack == AttackKind::VoltJockeyPrecise;
            cfg.descending_rail = spec.attack == AttackKind::VoltJockeyDescending;
            if (spec.attack == AttackKind::VoltJockey)
                return std::make_unique<attack::VoltJockey>(cfg);
            // The map-driven variants carry the attacker's own
            // characterization — the search space is open to adversaries
            // too (same map; an attacker would measure the same physics).
            return std::make_unique<attack::VoltJockey>(cfg, map);
        }
        case AttackKind::VoltPillager: {
            attack::VoltPillagerConfig cfg;
            cfg.scan_step = tuning.scan_step * 2.0;  // published 2x-coarser ratio
            cfg.probe_ops = tuning.probe_ops;
            cfg.max_crashes = tuning.max_crashes;
            return std::make_unique<attack::VoltPillager>(cfg);
        }
        case AttackKind::V0ltpwn:
        case AttackKind::V0ltpwnSgxStep: {
            attack::V0ltpwnConfig cfg;
            // The published campaign pins a chosen P-state, not the
            // maximum: the attacker (who holds the same characterization
            // the defender does) picks the frequency whose fault-onset to
            // crash window is widest, maximizing faultable-but-alive
            // dwell time for the stepped enclave runs.
            double best_window_mv = 0.0;
            for (const plugvolt::FreqCharacterization& row : map.rows()) {
                if (row.fault_free) continue;
                const double window_mv = row.onset.value() - row.crash.value();
                if (window_mv > best_window_mv) {
                    best_window_mv = window_mv;
                    cfg.pin_freq = row.freq;
                }
            }
            sgx::Program program = sgx::make_mul_chain(0xAAAA, 0x5555, 32);
            if (spec.defense == DefenseKind::Minefield) {
                defense::Minefield pass;
                program = pass.instrument(program);
            }
            cfg.victim_program = program;
            cfg.suppress_after_index = sgx::last_mul_index(program);
            cfg.use_sgx_step = spec.attack == AttackKind::V0ltpwnSgxStep;
            cfg.scan_step = tuning.scan_step;
            cfg.runs_per_offset = tuning.runs_per_offset;
            cfg.max_crashes = tuning.max_crashes;
            return std::make_unique<attack::V0ltpwn>(rig.runtime, cfg);
        }
        case AttackKind::BenignUndervolt:
            return std::make_unique<BenignUndervolt>();
    }
    throw ConfigError("unknown attack kind");
}

std::string verdict_of(const CellSpec& spec, const attack::AttackResult& r) {
    if (spec.attack == AttackKind::BenignUndervolt) return r.weaponization;
    if (r.weaponized) return "BROKEN (" + std::to_string(r.faults_observed) + " faults)";
    if (r.faults_observed > 0)
        return "faults leaked (" + std::to_string(r.faults_observed) + ")";
    return "blocked";
}

}  // namespace

const char* to_string(AttackKind kind) {
    switch (kind) {
        case AttackKind::Plundervolt: return "plundervolt";
        case AttackKind::VoltJockey: return "voltjockey";
        case AttackKind::VoltJockeyPrecise: return "voltjockey-precise";
        case AttackKind::VoltJockeyDescending: return "voltjockey-descending";
        case AttackKind::VoltPillager: return "voltpillager";
        case AttackKind::V0ltpwn: return "v0ltpwn";
        case AttackKind::V0ltpwnSgxStep: return "v0ltpwn-sgxstep";
        case AttackKind::BenignUndervolt: return "benign-undervolt";
    }
    return "?";
}

const char* to_string(DefenseKind kind) {
    switch (kind) {
        case DefenseKind::None: return "none";
        case DefenseKind::PollingNoRailWatch: return "polling-no-rail-watch";
        case DefenseKind::PollingSafeLimit: return "polling-safe-limit";
        case DefenseKind::PollingMaximalSafe: return "polling-maximal-safe";
        case DefenseKind::PollingRestoreZero: return "polling-restore-zero";
        case DefenseKind::Microcode: return "microcode";
        case DefenseKind::MsrClamp: return "msr-clamp";
        case DefenseKind::AccessControl: return "access-control";
        case DefenseKind::Minefield: return "minefield";
    }
    return "?";
}

const std::vector<AttackKind>& all_attacks() {
    static const std::vector<AttackKind> kinds = {
        AttackKind::Plundervolt,         AttackKind::VoltJockey,
        AttackKind::VoltJockeyPrecise,   AttackKind::VoltJockeyDescending,
        AttackKind::VoltPillager,        AttackKind::V0ltpwn,
        AttackKind::V0ltpwnSgxStep,      AttackKind::BenignUndervolt,
    };
    return kinds;
}

const std::vector<DefenseKind>& all_defenses() {
    static const std::vector<DefenseKind> kinds = {
        DefenseKind::None,
        DefenseKind::PollingNoRailWatch,
        DefenseKind::PollingSafeLimit,
        DefenseKind::PollingMaximalSafe,
        DefenseKind::PollingRestoreZero,
        DefenseKind::Microcode,
        DefenseKind::MsrClamp,
        DefenseKind::AccessControl,
        DefenseKind::Minefield,
    };
    return kinds;
}

std::uint64_t fingerprint(const CampaignCellResult& cell) {
    check::StateHasher hasher;
    hasher.mix(static_cast<std::uint64_t>(cell.spec.index));
    hasher.mix(static_cast<std::uint64_t>(cell.spec.attack));
    hasher.mix(static_cast<std::uint64_t>(cell.spec.defense));
    hasher.mix(static_cast<std::uint64_t>(cell.spec.profile_index));
    hasher.mix(cell.spec.seed);
    hasher.mix(std::string_view(cell.profile_name));
    const attack::AttackResult& r = cell.attack_result;
    hasher.mix(std::string_view(r.attack_name));
    hasher.mix(r.faults_observed);
    hasher.mix(r.weaponized);
    hasher.mix(std::string_view(r.weaponization));
    hasher.mix(static_cast<std::uint64_t>(r.crashes));
    hasher.mix(r.writes_attempted);
    hasher.mix(r.writes_effective);
    hasher.mix(r.started.value());
    hasher.mix(r.finished.value());
    hasher.mix(std::string_view(r.notes));
    hasher.mix(cell.polling.has_value());
    if (cell.polling) {
        hasher.mix(cell.polling->polls);
        hasher.mix(cell.polling->detections);
        hasher.mix(cell.polling->restore_writes);
        hasher.mix(cell.polling->freq_drops);
        hasher.mix(cell.polling->rail_watch_detections);
        hasher.mix(cell.polling->read_retries);
        hasher.mix(cell.polling->write_retries);
        hasher.mix(cell.polling->stale_reads);
        hasher.mix(cell.polling->missed_polls);
        hasher.mix(cell.polling->fail_closed_clamps);
        hasher.mix(cell.polling->last_detection.value());
    }
    hasher.mix(cell.audit_violations);
    hasher.mix(cell.audited_accesses);
    hasher.mix(cell.machine_state_hash);
    hasher.mix(static_cast<std::uint64_t>(cell.attempts));
    hasher.mix(static_cast<std::uint64_t>(cell.machine_rebuilds));
    hasher.mix(std::string_view(cell.verdict));
    hasher.mix(static_cast<std::uint64_t>(cell.metrics.size()));
    for (const auto& [name, v] : cell.metrics.values()) {
        hasher.mix(std::string_view(name));
        hasher.mix(static_cast<std::uint64_t>(v.kind));
        hasher.mix(v.count);
        hasher.mix(v.value);
        hasher.mix(static_cast<std::uint64_t>(v.bounds.size()));
        for (const double b : v.bounds) hasher.mix(b);
        for (const std::uint64_t c : v.buckets) hasher.mix(c);
    }
    return hasher.digest();
}

CampaignEngine::CampaignEngine(CampaignConfig config) : config_(std::move(config)) {
    if (config_.attacks.empty() || config_.defenses.empty() || config_.profiles.empty())
        throw ConfigError("campaign cube must have at least one attack, defense and profile");
    if (config_.max_attempts == 0)
        throw ConfigError("campaign max_attempts must be at least 1");
    config_.retry.max_attempts = config_.max_attempts;
    config_.retry.validate();
    if (config_.workers == 0) config_.workers = ThreadPool::default_worker_count();
    maps_.resize(config_.profiles.size());
}

CampaignEngine::~CampaignEngine() = default;

std::vector<CellSpec> CampaignEngine::cells() const {
    std::vector<CellSpec> specs;
    specs.reserve(config_.profiles.size() * config_.defenses.size() * config_.attacks.size());
    std::size_t index = 0;
    for (std::size_t p = 0; p < config_.profiles.size(); ++p)
        for (const DefenseKind defense : config_.defenses)
            for (const AttackKind attack : config_.attacks) {
                specs.push_back(CellSpec{
                    .index = index,
                    .attack = attack,
                    .defense = defense,
                    .profile_index = p,
                    .seed = mix_seed(config_.seed, index),
                });
                ++index;
            }
    return specs;
}

const plugvolt::SafeStateMap& CampaignEngine::map_for(std::size_t profile_index) {
    PV_ASSERT(profile_index < maps_.size(),
              "profile index " << profile_index << " outside the cube's "
                               << maps_.size() << " profiles");
    if (!maps_[profile_index]) {
        plugvolt::ParallelCharacterizerConfig pc;
        pc.cell.offset_step = config_.char_step;
        pc.workers = config_.workers;
        pc.seed = mix_seed(config_.seed, kMapSeedTag + profile_index);
        plugvolt::ParallelCharacterizer characterizer(config_.profiles[profile_index], pc);
        maps_[profile_index] =
            std::make_unique<plugvolt::SafeStateMap>(characterizer.characterize());
    }
    return *maps_[profile_index];
}

void CampaignEngine::prepare_maps() {
    for (std::size_t p = 0; p < config_.profiles.size(); ++p) (void)map_for(p);
}

CampaignCellResult CampaignEngine::run_cell(const CellSpec& spec) {
    return run_cell(spec, 0, {});
}

std::uint64_t CampaignEngine::config_hash() const {
    check::StateHasher hasher;
    hasher.mix(std::uint64_t{1});  // codec version
    hasher.mix(config_.seed);
    hasher.mix(static_cast<std::uint64_t>(config_.attacks.size()));
    for (const AttackKind a : config_.attacks) hasher.mix(static_cast<std::uint64_t>(a));
    hasher.mix(static_cast<std::uint64_t>(config_.defenses.size()));
    for (const DefenseKind d : config_.defenses) hasher.mix(static_cast<std::uint64_t>(d));
    hasher.mix(static_cast<std::uint64_t>(config_.profiles.size()));
    for (const sim::CpuProfile& p : config_.profiles) {
        hasher.mix(std::string_view(p.name));
        hasher.mix(std::string_view(p.codename));
        hasher.mix(std::string_view(p.microcode));
        hasher.mix(static_cast<std::uint64_t>(p.core_count));
        hasher.mix(p.freq_min.value());
        hasher.mix(p.freq_max.value());
        hasher.mix(p.freq_base.value());
        hasher.mix(p.freq_step.value());
        hasher.mix(static_cast<std::uint64_t>(p.vf_points.size()));
        for (const auto& pt : p.vf_points) {
            hasher.mix(pt.freq.value());
            hasher.mix(pt.voltage.value());
        }
    }
    hasher.mix(static_cast<std::uint64_t>(config_.max_attempts));
    hasher.mix(static_cast<std::uint64_t>(config_.retry.base_delay.value()));
    hasher.mix(config_.retry.multiplier);
    hasher.mix(static_cast<std::uint64_t>(config_.retry.max_delay.value()));
    hasher.mix(config_.retry.jitter);
    hasher.mix(config_.char_step.value());
    hasher.mix(config_.tuning.scan_step.value());
    hasher.mix(config_.tuning.probe_ops);
    hasher.mix(static_cast<std::uint64_t>(config_.tuning.runs_per_offset));
    hasher.mix(static_cast<std::uint64_t>(config_.tuning.max_crashes));
    hasher.mix(config_.audit);
    hasher.mix(config_.fault_plan.has_value());
    if (config_.fault_plan) {
        hasher.mix(config_.fault_plan->seed);
        for (const double rate : config_.fault_plan->rates) hasher.mix(rate);
    }
    return hasher.digest();
}

CampaignCellResult CampaignEngine::run_cell(const CellSpec& spec,
                                            unsigned start_attempt,
                                            const AttemptSink& sink) {
    PV_ASSERT(spec.profile_index < config_.profiles.size(),
              "cell profile index " << spec.profile_index << " out of range");
    const sim::CpuProfile& profile = config_.profiles[spec.profile_index];
    const plugvolt::SafeStateMap& map = map_for(spec.profile_index);

    if (start_attempt >= config_.max_attempts) start_attempt = config_.max_attempts - 1;

    CampaignCellResult out;
    out.spec = spec;
    out.profile_name = profile.name;
    // Journaled dead attempts are skipped, not replayed; they still count.
    out.machine_rebuilds = start_attempt;

    // One trace track per cell, keyed by cell index: which worker (or
    // the calling thread) executes the cell is invisible in the export.
    trace::TraceRecorder* recorder =
        config_.trace == nullptr
            ? nullptr
            : &config_.trace->create_track("cell-" + std::to_string(spec.index),
                                           spec.index);
    trace::ScopedRecorder bind_recorder(recorder);
    PV_TRACE_EVENT(trace::EventKind::CampaignCellBegin, "cell", 0,
                   static_cast<std::uint64_t>(spec.attack),
                   static_cast<std::uint64_t>(spec.defense));
    std::int64_t cell_end_ps = 0;

    resilience::RetrySchedule sched(config_.retry, mix_seed(spec.seed, kRetryBackoffTag));
    while (sched.next_attempt()) {
        const unsigned attempt = sched.attempts() - 1;
        // Fast-forward past journaled dead attempts: the schedule is
        // still consumed (same attempt indices, same backoff stream), but
        // the dead work is not replayed — the executed attempts are
        // bit-identical to an uninterrupted run's.
        if (attempt < start_attempt) continue;
        // Attempt seeds derive from the cell seed, so the retry loop is
        // as deterministic as the first try: a cell that dies on attempt
        // 0 dies identically on every replay, and its attempt-1 outcome
        // is a pure function of (config, cell) too.
        // The env-fault injector reseeds per (cell, attempt) and must
        // outlive the rig (teardown can still issue MSR traffic).
        std::optional<resilience::FaultInjector> injector;
        CellRig rig(profile, mix_seed(spec.seed, attempt));
        if (config_.fault_plan) {
            injector.emplace(*config_.fault_plan);
            injector->reseed(mix_seed(mix_seed(spec.seed, kEnvFaultTag), attempt));
            rig.kernel.msr().set_fault_injector(&*injector);
        }
        if (sched.backoff() > Picoseconds{0}) {
            // Reboot pacing: the operator waits out the backoff before
            // re-arming the cell, charged on the fresh machine's clock so
            // retried cells replay bit-exactly.
            PV_TRACE_EVENT(trace::EventKind::RetryBackoff, "cell-rebuild-backoff",
                           rig.machine.now().value(),
                           static_cast<std::uint64_t>(sched.backoff().value()), attempt);
            rig.machine.advance(sched.backoff());
        }
        install_defense(rig, spec.defense, map);
        if (config_.audit) {
            check::MsrAuditorConfig audit_cfg;
            audit_cfg.map = &map;
            rig.auditor = std::make_unique<check::MsrAuditor>(rig.kernel, audit_cfg);
        }
        // Non-enclave attacks still run against a platform hosting an
        // enclave: that is what arms AccessControl and what the benign
        // probe's "while an enclave is loaded" clause means.  The
        // V0LTpwn campaigns create their own victim enclave.
        if (!is_v0ltpwn(spec.attack))
            rig.tenant = rig.runtime.create_enclave("tenant", profile.core_count - 1);

        std::unique_ptr<attack::Attack> atk = make_attack(rig, spec, config_.tuning, map);
        bool dead = false;
        try {
            PV_TRACE_SPAN("attack", rig.machine);
            out.attack_result = atk->run(rig.kernel);
            dead = rig.machine.crashed();
        } catch (const Error& e) {
            // A simulator error mid-campaign is the software analogue of
            // the machine dying under the attacker: rebuild and retry.
            out.attack_result = {};
            out.attack_result.attack_name = std::string(atk->name());
            out.attack_result.notes = std::string("attempt aborted: ") + e.what();
            dead = true;
        }

        out.attempts = attempt + 1;
        if (const plugvolt::PollingModule* module = rig.polling_module())
            out.polling = module->metrics();
        else
            out.polling.reset();
        if (rig.auditor) {
            out.audit_violations = rig.auditor->violations().size();
            out.audited_accesses = rig.auditor->audited_accesses();
        }
        out.machine_state_hash = rig.machine.state_hash();
        out.verdict = verdict_of(spec, out.attack_result);
        cell_end_ps = rig.machine.now().value();

        trace::MetricsRegistry reg;
        reg.counter("attempts") = out.attempts;
        reg.counter("machine_rebuilds") = out.machine_rebuilds;
        reg.counter("attack_faults") = out.attack_result.faults_observed;
        reg.counter("attack_crashes") = out.attack_result.crashes;
        reg.counter("audit_violations") = out.audit_violations;
        reg.gauge("cell_virtual_us") = rig.machine.now().microseconds();
        // Simulator traversal-work counters: deterministic per cell (and
        // across stepping modes and worker counts), so fingerprints can
        // assert the batched hot path actually engaged.
        const sim::Machine::Stats mstats = rig.machine.stats();
        reg.counter("machine.events_dispatched") = mstats.events_dispatched;
        reg.counter("machine.batched_iterations") = mstats.batched_iterations;
        reg.counter("machine.batch_windows") = mstats.batch_windows;
        reg.counter("machine.heap_peak") = mstats.heap_peak;
        out.metrics = reg.snapshot();
        if (const plugvolt::PollingModule* module = rig.polling_module())
            out.metrics.merge(module->metrics_snapshot(), "polling.");
        if (injector) out.metrics.merge(injector->metrics_snapshot(), "env.");

        if (!dead) break;
        ++out.machine_rebuilds;
        out.metrics.set_counter("machine_rebuilds", out.machine_rebuilds);
        if (sink) sink(spec, out.machine_rebuilds);
        if (attempt + 1 == config_.max_attempts) {
            out.verdict += " [machine dead after " + std::to_string(out.attempts) +
                           " attempts]";
            break;
        }
    }
    PV_TRACE_EVENT(trace::EventKind::CampaignCellEnd, "cell", cell_end_ps,
                   static_cast<std::uint64_t>(spec.attack),
                   static_cast<std::uint64_t>(spec.defense));
    return out;
}

CampaignReport CampaignEngine::run(
    const std::function<void(const CampaignCellResult&)>& progress) {
    // Characterize every profile up front, serially: the sharded cells
    // below only ever read the cache, so no lock is needed.
    prepare_maps();

    const std::vector<CellSpec> specs = cells();
    CampaignReport report;
    report.seed = config_.seed;
    report.n_attacks = config_.attacks.size();
    report.n_defenses = config_.defenses.size();
    report.n_profiles = config_.profiles.size();
    report.cells.reserve(specs.size());

    if (config_.workers <= 1) {
        // The single-thread reference execution: cells inline, in order.
        for (const CellSpec& spec : specs) {
            report.cells.push_back(run_cell(spec));
            if (progress) progress(report.cells.back());
        }
        return report;
    }

    ThreadPool pool(config_.workers);
    std::vector<std::future<CampaignCellResult>> futures;
    futures.reserve(specs.size());
    for (const CellSpec& spec : specs)
        futures.push_back(pool.submit([this, spec] { return run_cell(spec); }));
    for (auto& future : futures) {
        report.cells.push_back(future.get());  // rethrows worker exceptions
        if (progress) progress(report.cells.back());
    }
    return report;
}

CampaignReport CampaignEngine::run(
    CampaignJournal& journal,
    const std::function<void(const CampaignCellResult&)>& progress) {
    const std::vector<CellSpec> specs = cells();
    const CampaignJournalHeader& header = journal.header();
    if (header.config_hash != config_hash())
        throw JournalError("campaign journal belongs to a different configuration");
    if (header.seed != config_.seed) throw JournalError("campaign journal seed mismatch");
    if (header.cells != specs.size())
        throw JournalError("campaign journal cube size mismatch");

    run_stats_ = {};
    FlatMap<std::uint64_t, CampaignCellResult> adopted;
    {
        std::vector<CampaignCellResult> done = journal.cells();
        for (CampaignCellResult& cell : done) {
            const std::uint64_t index = cell.spec.index;
            if (index >= specs.size()) throw JournalError("journaled cell outside the cube");
            const CellSpec& expect = specs[index];
            if (cell.spec.attack != expect.attack || cell.spec.defense != expect.defense ||
                cell.spec.profile_index != expect.profile_index ||
                cell.spec.seed != expect.seed)
                throw JournalError("journaled cell " + std::to_string(index) +
                                   " does not match the cube enumeration");
            adopted[index] = std::move(cell);
        }
    }

    prepare_maps();
    CampaignReport report;
    report.seed = config_.seed;
    report.n_attacks = config_.attacks.size();
    report.n_defenses = config_.defenses.size();
    report.n_profiles = config_.profiles.size();
    report.cells.reserve(specs.size());

    const AttemptSink sink = [&journal](const CellSpec& s, unsigned failed) {
        journal.commit_attempt(s.index, failed);
    };
    // Write-ahead ordering: a fresh cell becomes durable BEFORE progress
    // observes it, so a crash between the two re-runs nothing and a
    // consumer never sees a cell the journal could lose.
    const auto deliver = [&](CampaignCellResult&& cell, bool fresh) {
        if (fresh) journal.commit_cell(cell);
        report.cells.push_back(std::move(cell));
        if (progress) progress(report.cells.back());
    };

    if (config_.workers <= 1) {
        for (const CellSpec& spec : specs) {
            const auto it = adopted.find(spec.index);
            if (it != adopted.end()) {
                ++run_stats_.cells_adopted;
                deliver(std::move(it->second), false);
                continue;
            }
            const unsigned start = journal.attempts_failed(spec.index);
            run_stats_.attempts_fast_forwarded += start;
            ++run_stats_.cells_executed;
            deliver(run_cell(spec, start, sink), true);
        }
        return report;
    }

    // Sharded resume: only the missing cells enter the pool; collection
    // stays in enumeration order, so commit order (and the journal's
    // cell-frame order) is deterministic even though attempt frames from
    // workers may interleave freely — replay keys every frame by index.
    ThreadPool pool(config_.workers);
    std::vector<std::future<CampaignCellResult>> futures(specs.size());
    for (const CellSpec& spec : specs) {
        if (adopted.contains(spec.index)) continue;
        const unsigned start = journal.attempts_failed(spec.index);
        run_stats_.attempts_fast_forwarded += start;
        ++run_stats_.cells_executed;
        futures[spec.index] =
            pool.submit([this, spec, start, &sink] { return run_cell(spec, start, sink); });
    }
    for (const CellSpec& spec : specs) {
        const auto it = adopted.find(spec.index);
        if (it != adopted.end()) {
            ++run_stats_.cells_adopted;
            deliver(std::move(it->second), false);
        } else {
            deliver(futures[spec.index].get(), true);  // rethrows worker exceptions
        }
    }
    return report;
}

}  // namespace pv::campaign
