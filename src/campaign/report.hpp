// PlugVolt — campaign report: the serialized outcome of one cube run.
//
// Two formats, one source of truth:
//   - CSV: one row per cell, flat columns — the diff-friendly artifact
//     committed next to bench output and consumed by the matrix bench's
//     table renderer;
//   - JSON: the same cells nested under the campaign's identity (seed,
//     cube dimensions, combined fingerprint) — the machine-readable
//     artifact CI archives.
// The combined fingerprint mixes every cell fingerprint in enumeration
// order; two reports with equal fingerprints describe bit-identical
// campaigns (the differential test's single comparison).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace pv::campaign {

struct CampaignReport {
    std::uint64_t seed = 0;
    std::size_t n_attacks = 0;
    std::size_t n_defenses = 0;
    std::size_t n_profiles = 0;
    std::vector<CampaignCellResult> cells;  ///< enumeration order

    /// Combined fingerprint over all cell fingerprints, in order.
    [[nodiscard]] std::uint64_t fingerprint() const;

    /// Cells whose attack extracted something useful.
    [[nodiscard]] std::size_t weaponized_count() const;

    [[nodiscard]] std::string to_csv() const;
    [[nodiscard]] std::string to_json() const;

    /// Write to `path`, overwriting.  Returns the path.
    std::string write_csv(const std::string& path) const;
    std::string write_json(const std::string& path) const;
};

}  // namespace pv::campaign
