#include "campaign/journal.hpp"

#include <algorithm>
#include <utility>

#include "trace/trace.hpp"
#include "util/error.hpp"

namespace pv::campaign {
namespace {

constexpr std::uint8_t kHeaderKind = 1;
constexpr std::uint8_t kCellKind = 2;
constexpr std::uint8_t kAttemptKind = 3;

using resilience::FrameLog;
using resilience::PayloadReader;
using resilience::put_f64;
using resilience::put_str;
using resilience::put_u32;
using resilience::put_u64;
using resilience::put_u8;

std::string encode_header_payload(const CampaignJournalHeader& header) {
    std::string payload;
    put_u32(payload, header.version);
    put_u64(payload, header.config_hash);
    put_u64(payload, header.seed);
    put_u64(payload, header.cells);
    return payload;
}

CampaignJournalHeader decode_header_payload(std::string_view payload) {
    PayloadReader r(payload);
    CampaignJournalHeader header;
    header.version = r.u32();
    header.config_hash = r.u64();
    header.seed = r.u64();
    header.cells = r.u64();
    if (!r.ok() || !r.exhausted())
        throw JournalError("malformed campaign journal header payload");
    if (header.version != 1)
        throw JournalError("unsupported campaign journal version " +
                           std::to_string(header.version));
    return header;
}

void encode_metrics(std::string& payload, const trace::MetricsSnapshot& metrics) {
    put_u32(payload, static_cast<std::uint32_t>(metrics.size()));
    for (const auto& [name, v] : metrics.values()) {
        put_str(payload, name);
        put_u8(payload, static_cast<std::uint8_t>(v.kind));
        put_u64(payload, v.count);
        put_f64(payload, v.value);
        put_u32(payload, static_cast<std::uint32_t>(v.bounds.size()));
        for (const double b : v.bounds) put_f64(payload, b);
        put_u32(payload, static_cast<std::uint32_t>(v.buckets.size()));
        for (const std::uint64_t c : v.buckets) put_u64(payload, c);
    }
}

bool decode_metrics(PayloadReader& r, trace::MetricsSnapshot& metrics) {
    const std::uint32_t entries = r.u32();
    for (std::uint32_t i = 0; i < entries && r.ok(); ++i) {
        const std::string name = r.str_lp();
        trace::MetricValue v;
        v.kind = static_cast<trace::MetricValue::Kind>(r.u8());
        v.count = r.u64();
        v.value = r.f64();
        const std::uint32_t n_bounds = r.u32();
        if (!r.ok()) return false;
        v.bounds.reserve(n_bounds);
        for (std::uint32_t b = 0; b < n_bounds && r.ok(); ++b) v.bounds.push_back(r.f64());
        const std::uint32_t n_buckets = r.u32();
        if (!r.ok()) return false;
        v.buckets.reserve(n_buckets);
        for (std::uint32_t b = 0; b < n_buckets && r.ok(); ++b)
            v.buckets.push_back(r.u64());
        metrics.set(name, std::move(v));
    }
    return r.ok();
}

std::string encode_attempt_payload(std::uint64_t cell_index,
                                   std::uint32_t attempts_failed) {
    std::string payload;
    put_u64(payload, cell_index);
    put_u32(payload, attempts_failed);
    return payload;
}

bool decode_attempt_payload(std::string_view payload, std::uint64_t& cell_index,
                            std::uint32_t& attempts_failed) {
    PayloadReader r(payload);
    cell_index = r.u64();
    attempts_failed = r.u32();
    return r.ok() && r.exhausted();
}

FrameLog::Kinds journal_kinds() {
    return FrameLog::Kinds{kHeaderKind, {kCellKind, kAttemptKind}};
}

bool validate_frame(std::uint8_t kind, std::string_view payload) {
    if (kind == kHeaderKind) return true;  // header decode errors throw in resume
    if (kind == kAttemptKind) {
        std::uint64_t index = 0;
        std::uint32_t failed = 0;
        return decode_attempt_payload(payload, index, failed);
    }
    CampaignCellResult cell;
    return decode_cell_payload(payload, cell);
}

}  // namespace

std::string encode_cell_payload(const CampaignCellResult& cell) {
    std::string payload;
    put_u64(payload, static_cast<std::uint64_t>(cell.spec.index));
    put_u8(payload, static_cast<std::uint8_t>(cell.spec.attack));
    put_u8(payload, static_cast<std::uint8_t>(cell.spec.defense));
    put_u64(payload, static_cast<std::uint64_t>(cell.spec.profile_index));
    put_u64(payload, cell.spec.seed);
    put_str(payload, cell.profile_name);
    const attack::AttackResult& r = cell.attack_result;
    put_str(payload, r.attack_name);
    put_u64(payload, r.faults_observed);
    put_u8(payload, r.weaponized ? 1 : 0);
    put_str(payload, r.weaponization);
    put_u32(payload, r.crashes);
    put_u64(payload, r.writes_attempted);
    put_u64(payload, r.writes_effective);
    put_u64(payload, static_cast<std::uint64_t>(r.started.value()));
    put_u64(payload, static_cast<std::uint64_t>(r.finished.value()));
    put_str(payload, r.notes);
    put_u8(payload, cell.polling.has_value() ? 1 : 0);
    if (cell.polling) {
        const plugvolt::PollingMetrics& p = *cell.polling;
        put_u64(payload, p.polls);
        put_u64(payload, p.detections);
        put_u64(payload, p.restore_writes);
        put_u64(payload, p.freq_drops);
        put_u64(payload, p.rail_watch_detections);
        put_u64(payload, p.read_retries);
        put_u64(payload, p.write_retries);
        put_u64(payload, p.stale_reads);
        put_u64(payload, p.missed_polls);
        put_u64(payload, p.fail_closed_clamps);
        put_u64(payload, static_cast<std::uint64_t>(p.last_detection.value()));
    }
    put_u64(payload, cell.audit_violations);
    put_u64(payload, cell.audited_accesses);
    put_u64(payload, cell.machine_state_hash);
    put_u32(payload, cell.attempts);
    put_u32(payload, cell.machine_rebuilds);
    put_str(payload, cell.verdict);
    encode_metrics(payload, cell.metrics);
    return payload;
}

bool decode_cell_payload(std::string_view payload, CampaignCellResult& cell) {
    PayloadReader r(payload);
    cell = CampaignCellResult{};
    cell.spec.index = static_cast<std::size_t>(r.u64());
    cell.spec.attack = static_cast<AttackKind>(r.u8());
    cell.spec.defense = static_cast<DefenseKind>(r.u8());
    cell.spec.profile_index = static_cast<std::size_t>(r.u64());
    cell.spec.seed = r.u64();
    cell.profile_name = r.str_lp();
    attack::AttackResult& ar = cell.attack_result;
    ar.attack_name = r.str_lp();
    ar.faults_observed = r.u64();
    ar.weaponized = r.u8() != 0;
    ar.weaponization = r.str_lp();
    ar.crashes = r.u32();
    ar.writes_attempted = r.u64();
    ar.writes_effective = r.u64();
    ar.started = Picoseconds{static_cast<std::int64_t>(r.u64())};
    ar.finished = Picoseconds{static_cast<std::int64_t>(r.u64())};
    ar.notes = r.str_lp();
    if (r.u8() != 0) {
        plugvolt::PollingMetrics p;
        p.polls = r.u64();
        p.detections = r.u64();
        p.restore_writes = r.u64();
        p.freq_drops = r.u64();
        p.rail_watch_detections = r.u64();
        p.read_retries = r.u64();
        p.write_retries = r.u64();
        p.stale_reads = r.u64();
        p.missed_polls = r.u64();
        p.fail_closed_clamps = r.u64();
        p.last_detection = Picoseconds{static_cast<std::int64_t>(r.u64())};
        cell.polling = p;
    }
    cell.audit_violations = r.u64();
    cell.audited_accesses = r.u64();
    cell.machine_state_hash = r.u64();
    cell.attempts = r.u32();
    cell.machine_rebuilds = r.u32();
    cell.verdict = r.str_lp();
    if (!decode_metrics(r, cell.metrics)) return false;
    return r.ok() && r.exhausted();
}

CampaignJournal::CampaignJournal(std::string path, CampaignJournalHeader header,
                                 resilience::JournalOptions options)
    : log_(std::move(path), journal_kinds(), encode_header_payload(header), options),
      header_(header) {}

CampaignJournal::CampaignJournal(resilience::FrameLog&& log) : log_(std::move(log)) {
    header_ = decode_header_payload(log_.header_payload());
    for (const FrameLog::Frame& f : log_.frames()) {
        if (f.kind == kCellKind) {
            CampaignCellResult cell;
            (void)decode_cell_payload(f.payload, cell);  // validated during replay
            cells_.push_back(std::move(cell));
        } else {
            std::uint64_t index = 0;
            std::uint32_t failed = 0;
            decode_attempt_payload(f.payload, index, failed);
            std::uint32_t& slot = attempts_[index];
            slot = std::max(slot, failed);
        }
    }
}

CampaignJournal CampaignJournal::resume(const std::string& path,
                                        resilience::JournalOptions options) {
    return CampaignJournal(
        FrameLog::resume(path, journal_kinds(), options, validate_frame));
}

void CampaignJournal::commit_cell(const CampaignCellResult& cell) {
    MutexLock lock(mutex_);
    log_.append(kCellKind, encode_cell_payload(cell));
    cells_.push_back(cell);
    PV_TRACE_EVENT(trace::EventKind::JournalCommit, "campaign-cell-commit", 0,
                   static_cast<std::uint64_t>(cell.spec.index), log_.logical_bytes());
}

void CampaignJournal::commit_attempt(std::uint64_t cell_index,
                                     std::uint32_t attempts_failed) {
    MutexLock lock(mutex_);
    log_.append(kAttemptKind, encode_attempt_payload(cell_index, attempts_failed));
    std::uint32_t& slot = attempts_[cell_index];
    slot = std::max(slot, attempts_failed);
}

std::vector<CampaignCellResult> CampaignJournal::cells() const {
    MutexLock lock(mutex_);
    return cells_;
}

std::uint32_t CampaignJournal::attempts_failed(std::uint64_t cell_index) const {
    MutexLock lock(mutex_);
    const auto it = attempts_.find(cell_index);
    return it == attempts_.end() ? 0 : it->second;
}

bool CampaignJournal::tail_dropped() const {
    MutexLock lock(mutex_);
    return log_.tail_dropped();
}

std::string CampaignJournal::path() const {
    MutexLock lock(mutex_);
    return log_.path();
}

std::uint64_t CampaignJournal::commits() const {
    MutexLock lock(mutex_);
    return log_.commits();
}

std::uint64_t CampaignJournal::bytes_written() const {
    MutexLock lock(mutex_);
    return log_.bytes_written();
}

std::uint64_t CampaignJournal::logical_bytes() const {
    MutexLock lock(mutex_);
    return log_.logical_bytes();
}

std::uint64_t CampaignJournal::io_retries() const {
    MutexLock lock(mutex_);
    return log_.io_retries();
}

}  // namespace pv::campaign
