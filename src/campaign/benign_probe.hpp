// PlugVolt — benign-undervolt usability probe, in Attack clothing.
//
// The paper's differentiator against access-control defenses is not an
// attack at all: while an enclave is loaded, can a *benign* non-SGX
// process still use safe undervolting?  Modeling the probe as an
// attack::Attack lets the campaign engine run it through the identical
// cell machinery (defense installed, auditor attached, fingerprinted),
// one column of the matrix among the real attacks.
//
// Verdicts (in AttackResult::weaponization):
//   "full"    — both the shallow (-40 mV) and deep (-100 mV) safe
//               undervolts land;
//   "clamped" — the shallow one lands, the deep one is limited to the
//               maximal safe state (Sec. 5 deployments);
//   "DENIED"  — the OCM is blocked outright (Intel SA-00289).
// The probe never faults and never weaponizes anything.
#pragma once

#include "attacks/attack.hpp"

namespace pv::campaign {

struct BenignUndervoltConfig {
    Megahertz pin_freq = from_ghz(1.2);
    Millivolts shallow{-40.0};
    Millivolts deep{-100.0};
    /// Residual tolerance when checking the applied offset reached the
    /// request (the regulator settles asymptotically).
    Millivolts tolerance{5.0};
    unsigned core = 0;
};

class BenignUndervolt final : public attack::Attack {
public:
    explicit BenignUndervolt(BenignUndervoltConfig config = {});

    [[nodiscard]] std::string_view name() const override { return "benign-undervolt"; }
    [[nodiscard]] attack::AttackResult run(os::Kernel& kernel) override;

private:
    BenignUndervoltConfig config_;
};

}  // namespace pv::campaign
