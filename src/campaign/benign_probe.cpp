#include "campaign/benign_probe.hpp"

#include "os/cpupower.hpp"
#include "sim/ocm.hpp"

namespace pv::campaign {

BenignUndervolt::BenignUndervolt(BenignUndervoltConfig config) : config_(config) {}

attack::AttackResult BenignUndervolt::run(os::Kernel& kernel) {
    attack::AttackResult result;
    result.attack_name = std::string(name());
    result.started = kernel.machine().now();

    sim::Machine& machine = kernel.machine();
    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(config_.pin_freq);
    machine.advance_to(machine.rail_settle_time());

    auto reaches = [&](Millivolts request) {
        result.writes_attempted++;
        const bool effective = kernel.msr().ioctl_wrmsr(
            config_.core, config_.core, sim::kMsrOcMailbox,
            sim::encode_offset(request, sim::VoltagePlane::Core));
        if (effective) result.writes_effective++;
        machine.advance(milliseconds(2.0));
        return machine.applied_offset(sim::VoltagePlane::Core).value() <
               request.value() + config_.tolerance.value();
    };
    const bool shallow = reaches(config_.shallow);
    const bool deep = reaches(config_.deep);

    if (shallow && deep) result.weaponization = "full";
    else if (shallow) result.weaponization = "clamped";
    else result.weaponization = "DENIED";
    result.notes = "benign DVFS usability probe: shallow " +
                   std::to_string(config_.shallow.value()) + " mV, deep " +
                   std::to_string(config_.deep.value()) + " mV at " +
                   std::to_string(config_.pin_freq.gigahertz()) + " GHz";
    result.crashes = 0;
    result.finished = machine.now();
    return result;
}

}  // namespace pv::campaign
