// PlugVolt — cell-granular campaign write-ahead journal.
//
// The sweep journal (resilience/journal.hpp) made characterization rows
// durable; a campaign cube is the same crash-surface one level up — a
// full quick cube is hundreds of cells, each a multi-attempt attack
// run, and the daemon re-runs cubes continuously.  This journal extends
// the WAL to CELL granularity on the shared CRC framing (FrameLog):
//
//   file    := header-frame (cell-frame | attempt-frame)*
//   header  := version:u32  config_hash:u64  seed:u64  cells:u64  (kind 1)
//   cell    := the full CampaignCellResult, bit-exact (doubles as bit
//              patterns, metrics snapshot included)              (kind 2)
//   attempt := cell_index:u64  attempts_failed:u32               (kind 3)
//
// A cell frame is committed when the cell completes (write-ahead:
// BEFORE the engine reports it); a resumed run adopts journaled cells
// verbatim and re-runs only the rest — bit-identical, because every
// cell is a pure function of (config, cell index).
//
// Attempt frames close the retry-stream resume gap: when a cell's
// machine dies mid-attempt the engine journals how many attempts have
// failed so far, so a resumed run fast-forwards the RetrySchedule past
// the journaled dead attempts instead of replaying them.  The final
// result is bit-identical either way (attempt outcomes are pure in
// (config, cell, attempt)); the frame makes the resumed run *do* the
// same remaining work and keeps `machine_rebuilds`/backoff accounting
// exact under FaultPlan-driven env-fault exhaustion.
//
// Attempt frames may be committed from worker threads (a sharded run
// retries inside the pool); all journal access is mutex-guarded.  The
// frame ORDER across threads is scheduling-dependent, but replay keys
// every frame by cell index, so the reconstructed state — and every
// fingerprint derived from it — is not.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "resilience/frames.hpp"
#include "util/flat_map.hpp"
#include "util/mutex.hpp"

namespace pv::campaign {

/// Identity of the campaign a journal belongs to.  `config_hash` is
/// CampaignEngine::config_hash(); resume refuses a journal whose hash
/// does not match (adopting cells run under a different cube, tuning or
/// fault plan would silently corrupt the report).
struct CampaignJournalHeader {
    std::uint32_t version = 1;
    std::uint64_t config_hash = 0;
    std::uint64_t seed = 0;
    std::uint64_t cells = 0;  ///< cube size, |attacks|·|defenses|·|profiles|

    friend bool operator==(const CampaignJournalHeader&,
                           const CampaignJournalHeader&) = default;
};

/// Cell-result codec, exposed for the round-trip property tests.  The
/// payload carries every field campaign::fingerprint() mixes, doubles
/// as bit patterns — decode(encode(cell)) has an equal fingerprint.
[[nodiscard]] std::string encode_cell_payload(const CampaignCellResult& cell);
[[nodiscard]] bool decode_cell_payload(std::string_view payload,
                                       CampaignCellResult& cell);

/// The campaign WAL.  One instance owns one file.  commit_cell and
/// commit_attempt are thread-safe (sharded runs commit attempt frames
/// from pool workers); the read accessors snapshot under the same lock.
class CampaignJournal {
public:
    /// Start a fresh journal at `path` (truncating any previous file).
    CampaignJournal(std::string path, CampaignJournalHeader header,
                    resilience::JournalOptions options = {});

    /// Reopen an existing journal: replay its cells and attempt counts,
    /// scrub any torn tail, and position for further commits.  Throws
    /// JournalError when the file has no valid header.
    [[nodiscard]] static CampaignJournal resume(const std::string& path,
                                                resilience::JournalOptions options = {});

    /// Make one completed cell durable (write-ahead: the engine commits
    /// BEFORE reporting the cell).
    void commit_cell(const CampaignCellResult& cell);

    /// Record that `attempts_failed` attempts of cell `cell_index` have
    /// ended with a dead machine (monotonic per cell; the largest
    /// journaled value wins on replay).
    void commit_attempt(std::uint64_t cell_index, std::uint32_t attempts_failed);

    [[nodiscard]] const CampaignJournalHeader& header() const { return header_; }

    /// Completed cells durable in this journal, in commit order.
    [[nodiscard]] std::vector<CampaignCellResult> cells() const;
    /// Journaled dead-attempt count for one cell (0 when none recorded).
    [[nodiscard]] std::uint32_t attempts_failed(std::uint64_t cell_index) const;

    [[nodiscard]] bool tail_dropped() const;
    [[nodiscard]] std::string path() const;
    [[nodiscard]] std::uint64_t commits() const;
    [[nodiscard]] std::uint64_t bytes_written() const;
    [[nodiscard]] std::uint64_t logical_bytes() const;
    [[nodiscard]] std::uint64_t io_retries() const;

private:
    explicit CampaignJournal(resilience::FrameLog&& log);  // resume body

    mutable Mutex mutex_;
    resilience::FrameLog log_ PV_GUARDED_BY(mutex_);
    CampaignJournalHeader header_;  // immutable after construction
    std::vector<CampaignCellResult> cells_ PV_GUARDED_BY(mutex_);
    FlatMap<std::uint64_t, std::uint32_t> attempts_ PV_GUARDED_BY(mutex_);
};

}  // namespace pv::campaign
