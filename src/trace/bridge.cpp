#include "trace/bridge.hpp"

#include "trace/recorder.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace pv::trace {
namespace {

void log_forwarder(LogLevel level, const std::string& message) {
    if (TraceRecorder* r = current_recorder())
        r->record(EventKind::LogRecord, r->intern(message), r->last_ts(),
                  static_cast<std::uint64_t>(level));
}

void dispatch_forwarder(std::uint64_t submitted, std::size_t queue_depth) {
    if (TraceRecorder* r = current_recorder())
        r->record(EventKind::TaskDispatch, "pool-submit", r->last_ts(), submitted,
                  queue_depth);
}

}  // namespace

void install_log_bridge() { set_log_tap(&log_forwarder); }

void remove_log_bridge() { set_log_tap(nullptr); }

void install_pool_bridge() { ThreadPool::set_dispatch_tap(&dispatch_forwarder); }

void remove_pool_bridge() { ThreadPool::set_dispatch_tap(nullptr); }

}  // namespace pv::trace
