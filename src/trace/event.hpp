// PlugVolt — trace event schema.
//
// One fixed-size binary record per observable: MSR traffic, OCM mailbox
// transactions, fault injections, poll iterations, safe-state rewrites,
// campaign cell boundaries, thread-pool dispatches, spans and log
// records.  Every event is timestamped from the SIMULATOR'S VIRTUAL
// CLOCK (integer picoseconds), never from wall time — that is what makes
// a trace a pure function of (config, seed) and therefore bit-identical
// between a serial and a sharded run of the same workload.
#pragma once

#include <cstdint>

namespace pv::trace {

/// Typed event kinds.  The numeric values are part of the CSV export
/// format only through kind_name(); reordering is safe.
enum class EventKind : std::uint8_t {
    MsrRead,           ///< driver-level rdmsr (fine level)
    MsrWrite,          ///< driver-level wrmsr (fine level)
    OcmTransaction,    ///< 0x150 mailbox command applied by the machine
    FaultInjected,     ///< undervolt fault(s) sampled into a workload
    PollIteration,     ///< one Algo. 3 poll body (fine level)
    SafeStateRewrite,  ///< polling module rewrote 0x150 to a safe state
    FreqClamp,         ///< polling module dropped a core's P-state
    CampaignCellBegin, ///< campaign cell started (span begin)
    CampaignCellEnd,   ///< campaign cell finished (span end)
    TaskDispatch,      ///< thread-pool task submitted
    SpanBegin,         ///< ScopedSpan opened
    SpanEnd,           ///< ScopedSpan closed
    Instant,           ///< generic point event (crash, reboot, detection)
    LogRecord,         ///< util::log line routed through the bridge
    EnvFaultInjected,  ///< resilience::FaultInjector fired (EIO, stale read, ...)
    RetryBackoff,      ///< a bounded retry waited its deterministic backoff
    JournalCommit,     ///< sweep journal made one row durable
    ProbeSelected,     ///< adaptive sweep chose its next (f, v) probe
    PosteriorUpdate,   ///< adaptive boundary posterior absorbed an observation
};

/// Stable human-readable tag for an event kind.
[[nodiscard]] const char* kind_name(EventKind kind);

/// One trace record.  `name` points at static storage or at a string
/// interned by the owning recorder; it is never owned by the event.
/// `a` and `b` are kind-specific payloads (MSR address/value, offset
/// bit patterns, core ids, ...).
struct Event {
    std::int64_t ts_ps = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    const char* name = "";
    EventKind kind = EventKind::Instant;
};

}  // namespace pv::trace
