// PlugVolt — tracing macros (the instrumentation surface).
//
// PV_TRACE_LEVEL (a compile-time gate, set from CMake like
// PV_CHECK_LEVEL) selects how much instrumentation exists in the binary:
//   0 — every macro expands to nothing: zero code, zero branches, the
//       shipping configuration's hot paths are bit-for-bit the pre-trace
//       ones;
//   1 — coarse events: OCM transactions, fault injections, safe-state
//       rewrites, detections, crashes, campaign cell boundaries, spans,
//       log records;
//   2 — adds the fine-grained stream: every driver-level MSR access and
//       every poll iteration (PV_TRACE_EVENT_FINE).
// At any level, an event is only materialized when a recorder is bound
// to the calling thread (trace/recorder.hpp) — unbound threads pay one
// thread-local load and a predictable branch.
#pragma once

#include "trace/recorder.hpp"

#ifndef PV_TRACE_LEVEL
#define PV_TRACE_LEVEL 2
#endif

#define PV_TRACE_CONCAT_IMPL(a, b) a##b
#define PV_TRACE_CONCAT(a, b) PV_TRACE_CONCAT_IMPL(a, b)

// The disabled expansion parks its arguments in a provably dead branch:
// nothing is evaluated or emitted, but variables used only for tracing
// do not turn into -Wunused errors on a level-0 build.
#define PV_TRACE_DISABLED_(kind, name, ts_ps, a, b)       \
    do {                                                  \
        if (false) {                                      \
            static_cast<void>(kind);                      \
            static_cast<void>(name);                      \
            static_cast<void>(ts_ps);                     \
            static_cast<void>(a);                         \
            static_cast<void>(b);                         \
        }                                                 \
    } while (0)

#if PV_TRACE_LEVEL >= 1
/// Record a coarse event on the bound recorder (no-op when none bound).
#define PV_TRACE_EVENT(kind, name, ts_ps, a, b)                               \
    do {                                                                      \
        if (::pv::trace::TraceRecorder* pv_trace_rec_ =                       \
                ::pv::trace::current_recorder())                              \
            pv_trace_rec_->record((kind), (name), (ts_ps), (a), (b));         \
    } while (0)
/// RAII span: SpanBegin now, SpanEnd at scope exit, stamped from
/// `clock.now()` (e.g. a sim::Machine).
#define PV_TRACE_SPAN(name, clock)                                            \
    ::pv::trace::ScopedSpan PV_TRACE_CONCAT(pv_trace_span_, __LINE__) {       \
        (name), (clock)                                                       \
    }
#else
#define PV_TRACE_EVENT(kind, name, ts_ps, a, b) \
    PV_TRACE_DISABLED_(kind, name, ts_ps, a, b)
#define PV_TRACE_SPAN(name, clock)              \
    do {                                        \
        if (false) static_cast<void>(clock);    \
    } while (0)
#endif

#if PV_TRACE_LEVEL >= 2
/// Fine-grained stream (MSR traffic, poll iterations).
#define PV_TRACE_EVENT_FINE(kind, name, ts_ps, a, b) \
    PV_TRACE_EVENT(kind, name, ts_ps, a, b)
#else
#define PV_TRACE_EVENT_FINE(kind, name, ts_ps, a, b) \
    PV_TRACE_DISABLED_(kind, name, ts_ps, a, b)
#endif
