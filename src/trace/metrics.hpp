// PlugVolt — metrics: counters, gauges and fixed-bucket histograms.
//
// A MetricsRegistry is single-writer scratch space (one per campaign
// cell / polling module / bench trial) with the same discipline as a
// TraceRecorder; a MetricsSnapshot is the frozen, ordered, value-type
// result that travels inside CampaignCellResult and into report JSON.
// Snapshots are plain std::maps, so iteration order — and therefore the
// JSON export and any fingerprint mixed over them — is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pv::trace {

/// Fixed-bucket histogram: `bounds` are strictly ascending inclusive
/// upper bounds, plus an implicit overflow bucket — buckets().size() ==
/// bounds().size() + 1.  Bucketing a sample is O(#buckets); the bucket
/// layout is fixed at construction so serial and sharded runs bucket
/// identically.
class Histogram {
public:
    explicit Histogram(std::vector<double> upper_bounds);

    /// Count `value` into its bucket and accumulate sum/count.
    void observe(double value);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/// One frozen metric value.  For a counter only `count` is meaningful;
/// for a gauge only `value`; a histogram uses all four fields (`count`
/// = samples, `value` = sum).
struct MetricValue {
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    Kind kind = Kind::Counter;
    std::uint64_t count = 0;
    double value = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;

    [[nodiscard]] bool operator==(const MetricValue& other) const;
};

/// An ordered, immutable-by-convention map of metric name -> value.
class MetricsSnapshot {
public:
    using Map = std::map<std::string, MetricValue>;

    void set_counter(const std::string& name, std::uint64_t count);
    void set_gauge(const std::string& name, double value);
    void set(const std::string& name, MetricValue value);

    /// Copy every entry of `other` in under `prefix + name` (use a
    /// prefix like "polling." to fold a subsystem's snapshot into a
    /// cell's).
    void merge(const MetricsSnapshot& other, const std::string& prefix = "");

    /// Monotonic delta against an earlier snapshot: counters and
    /// histogram counts/sums/buckets subtract (entries missing from
    /// `earlier` count from zero); gauges keep their current value.
    [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& earlier) const;

    /// One JSON object, keys in map order, doubles printed with %.17g —
    /// byte-deterministic for equal snapshots.
    [[nodiscard]] std::string to_json() const;

    [[nodiscard]] const Map& values() const { return values_; }
    [[nodiscard]] bool empty() const { return values_.empty(); }
    [[nodiscard]] std::size_t size() const { return values_.size(); }
    [[nodiscard]] bool operator==(const MetricsSnapshot& other) const {
        return values_ == other.values_;
    }

private:
    Map values_;
};

/// Named registry of live instruments.  NOT thread-safe — one registry
/// per logical unit of work, same single-writer rule as TraceRecorder.
class MetricsRegistry {
public:
    /// Find-or-create.  A counter/gauge name must not already be
    /// registered as a different instrument kind (ConfigError).
    std::uint64_t& counter(const std::string& name);
    double& gauge(const std::string& name);
    /// `upper_bounds` only applies on first creation; later lookups
    /// with different bounds are a ConfigError.
    Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

    void add(const std::string& name, std::uint64_t delta) { counter(name) += delta; }
    void set(const std::string& name, double value) { gauge(name) = value; }

    [[nodiscard]] MetricsSnapshot snapshot() const;

private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
};

/// Deterministic textual rendering of a double ("%.17g" — shortest is
/// not needed, stable is).  Shared by metrics JSON and the exporters.
[[nodiscard]] std::string format_double(double value);

}  // namespace pv::trace
