#include "trace/metrics.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace pv::trace {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
    if (bounds_.empty()) throw ConfigError("histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        if (bounds_[i - 1] >= bounds_[i])
            throw ConfigError("histogram bounds must be strictly ascending");
    buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    ++buckets_[i];
    ++count_;
    sum_ += value;
}

bool MetricValue::operator==(const MetricValue& other) const {
    return kind == other.kind && count == other.count && value == other.value &&
           bounds == other.bounds && buckets == other.buckets;
}

void MetricsSnapshot::set_counter(const std::string& name, std::uint64_t count) {
    MetricValue v;
    v.kind = MetricValue::Kind::Counter;
    v.count = count;
    values_[name] = std::move(v);
}

void MetricsSnapshot::set_gauge(const std::string& name, double value) {
    MetricValue v;
    v.kind = MetricValue::Kind::Gauge;
    v.value = value;
    values_[name] = std::move(v);
}

void MetricsSnapshot::set(const std::string& name, MetricValue value) {
    values_[name] = std::move(value);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other, const std::string& prefix) {
    for (const auto& [name, value] : other.values_) values_[prefix + name] = value;
}

MetricsSnapshot MetricsSnapshot::diff(const MetricsSnapshot& earlier) const {
    MetricsSnapshot out;
    for (const auto& [name, value] : values_) {
        MetricValue d = value;
        auto it = earlier.values_.find(name);
        if (it != earlier.values_.end() && it->second.kind == value.kind) {
            const MetricValue& before = it->second;
            switch (value.kind) {
                case MetricValue::Kind::Counter:
                    d.count = value.count - before.count;
                    break;
                case MetricValue::Kind::Gauge:
                    break;  // gauges are levels, not totals
                case MetricValue::Kind::Histogram:
                    d.count = value.count - before.count;
                    d.value = value.value - before.value;
                    if (before.bounds == value.bounds)
                        for (std::size_t i = 0; i < d.buckets.size(); ++i)
                            d.buckets[i] = value.buckets[i] - before.buckets[i];
                    break;
            }
        }
        out.values_[name] = std::move(d);
    }
    return out;
}

std::string format_double(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

namespace {

void json_escape_into(std::ostringstream& os, const std::string& s) {
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto& [name, v] : values_) {
        if (!first) os << ',';
        first = false;
        os << '"';
        json_escape_into(os, name);
        os << "\":{";
        switch (v.kind) {
            case MetricValue::Kind::Counter:
                os << "\"kind\":\"counter\",\"count\":" << v.count;
                break;
            case MetricValue::Kind::Gauge:
                os << "\"kind\":\"gauge\",\"value\":" << format_double(v.value);
                break;
            case MetricValue::Kind::Histogram: {
                os << "\"kind\":\"histogram\",\"count\":" << v.count
                   << ",\"sum\":" << format_double(v.value) << ",\"bounds\":[";
                for (std::size_t i = 0; i < v.bounds.size(); ++i) {
                    if (i) os << ',';
                    os << format_double(v.bounds[i]);
                }
                os << "],\"buckets\":[";
                for (std::size_t i = 0; i < v.buckets.size(); ++i) {
                    if (i) os << ',';
                    os << v.buckets[i];
                }
                os << ']';
                break;
            }
        }
        os << '}';
    }
    os << '}';
    return os.str();
}

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
    if (gauges_.count(name) || histograms_.count(name))
        throw ConfigError("metric '" + name + "' already registered with another kind");
    return counters_[name];
}

double& MetricsRegistry::gauge(const std::string& name) {
    if (counters_.count(name) || histograms_.count(name))
        throw ConfigError("metric '" + name + "' already registered with another kind");
    return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
    if (counters_.count(name) || gauges_.count(name))
        throw ConfigError("metric '" + name + "' already registered with another kind");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, Histogram(std::move(upper_bounds))).first;
    } else if (it->second.bounds() != upper_bounds) {
        throw ConfigError("metric '" + name + "' re-registered with different bounds");
    }
    return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot out;
    for (const auto& [name, count] : counters_) out.set_counter(name, count);
    for (const auto& [name, value] : gauges_) out.set_gauge(name, value);
    for (const auto& [name, h] : histograms_) {
        MetricValue v;
        v.kind = MetricValue::Kind::Histogram;
        v.count = h.count();
        v.value = h.sum();
        v.bounds = h.bounds();
        v.buckets = h.buckets();
        out.set(name, std::move(v));
    }
    return out;
}

}  // namespace pv::trace
