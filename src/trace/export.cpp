// TraceSession exporters: Chrome trace-event JSON and compact CSV.
//
// Both walk tracks in (id, name) order and events in recording order,
// format timestamps with integer arithmetic only, and never consult
// wall-clock state — equal sessions export byte-identical files.
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "trace/recorder.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/fsio.hpp"

namespace pv::trace {
namespace {

void json_escape_into(std::ostringstream& os, std::string_view s) {
    for (char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
}

/// Picoseconds -> microseconds as a decimal string ("12.000345"),
/// computed in integer math so no floating-point rounding can differ
/// between runs.  Trace timestamps are non-negative by construction
/// (virtual clocks only move forward from zero).
std::string ts_microseconds(std::int64_t ps) {
    const std::int64_t whole = ps / 1'000'000;
    const std::int64_t frac = ps % 1'000'000;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%" PRId64 ".%06" PRId64, whole, frac < 0 ? -frac : frac);
    return buf;
}

const char* chrome_phase(EventKind kind) {
    switch (kind) {
        case EventKind::SpanBegin:
        case EventKind::CampaignCellBegin:
            return "B";
        case EventKind::SpanEnd:
        case EventKind::CampaignCellEnd:
            return "E";
        default:
            return "i";
    }
}

std::string hex64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
    return buf;
}

void write_file(const std::string& path, const std::string& body) {
    // Atomic: an exporter killed mid-write never leaves a torn trace.
    atomic_write_file(path, body);
}

}  // namespace

std::string TraceSession::to_chrome_json() const {
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first) os << ",\n";
        first = false;
    };
    for (const TraceRecorder* track : tracks()) {
        // Name the pseudo-thread after the track so timelines read
        // "cell-17", not a bare tid.
        comma();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track->track_id()
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
        json_escape_into(os, track->track_name());
        os << "\"}}";
        for (const Event& e : track->events()) {
            comma();
            os << "{\"ph\":\"" << chrome_phase(e.kind) << "\",\"pid\":1,\"tid\":"
               << track->track_id() << ",\"ts\":" << ts_microseconds(e.ts_ps)
               << ",\"name\":\"";
            json_escape_into(os, e.name);
            os << "\",\"cat\":\"" << kind_name(e.kind) << '"';
            if (*chrome_phase(e.kind) == 'i') os << ",\"s\":\"t\"";
            os << ",\"args\":{\"a\":\"" << hex64(e.a) << "\",\"b\":\"" << hex64(e.b)
               << "\"}}";
        }
    }
    os << "\n]}\n";
    return os.str();
}

std::string TraceSession::to_csv() const {
    CsvDocument doc;
    doc.header = {"track_id", "track_name", "seq", "ts_ps", "kind", "name", "a", "b"};
    for (const TraceRecorder* track : tracks()) {
        std::uint64_t seq = 0;
        for (const Event& e : track->events()) {
            doc.rows.push_back({std::to_string(track->track_id()), track->track_name(),
                                std::to_string(seq++), std::to_string(e.ts_ps),
                                kind_name(e.kind), e.name, std::to_string(e.a),
                                std::to_string(e.b)});
        }
    }
    return csv_write(doc);
}

std::string TraceSession::write_chrome_json(const std::string& path) const {
    write_file(path, to_chrome_json());
    return path;
}

std::string TraceSession::write_csv(const std::string& path) const {
    write_file(path, to_csv());
    return path;
}

}  // namespace pv::trace
