// PlugVolt — bridges from util observation hooks into the trace stream.
//
// util must stay free of any trace dependency, so log.hpp and
// thread_pool.hpp expose plain function-pointer taps; this translation
// unit supplies the forwarders that turn tapped observations into
// events on the CALLING thread's bound recorder (nothing happens on
// unbound threads).  Process-wide: install once around a traced run.
#pragma once

namespace pv::trace {

/// Route util::log lines (that pass the level filter) into the bound
/// recorder as LogRecord events, stamped at the track's last virtual
/// timestamp.  Replaces any previously installed log tap.
void install_log_bridge();
void remove_log_bridge();

/// Route ThreadPool submissions into the bound recorder as TaskDispatch
/// events (a = tasks submitted so far, b = queue depth).  Campaign
/// submissions happen on the orchestrating thread, which binds no
/// recorder — so pool scheduling never leaks into cell tracks and the
/// worker count cannot perturb trace determinism.
void install_pool_bridge();
void remove_pool_bridge();

/// RAII: install both bridges for a scope (a traced bench or test).
class ScopedBridges {
public:
    ScopedBridges() {
        install_log_bridge();
        install_pool_bridge();
    }
    ~ScopedBridges() {
        remove_pool_bridge();
        remove_log_bridge();
    }

    ScopedBridges(const ScopedBridges&) = delete;
    ScopedBridges& operator=(const ScopedBridges&) = delete;
};

}  // namespace pv::trace
