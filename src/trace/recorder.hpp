// PlugVolt — deterministic trace recording.
//
// A TraceRecorder is one TRACK of events: a bounded ring buffer written
// by exactly one thread at a time (the thread the track is bound to via
// ScopedRecorder).  Tracks are identified by a caller-chosen logical id
// (a campaign cell index, a bench trial number) — never by an OS thread
// id — so the exported trace is independent of which pool worker
// happened to execute the work.  A TraceSession owns many tracks and
// serializes their creation; export walks tracks in id order, which is
// what makes a sharded run's trace byte-identical to the serial run's.
//
// Instrumentation reaches the recorder through a thread-local binding
// (current_recorder()): simulator layers emit unconditionally cheap
// "is anything bound?" checks and never know who is listening.  The
// PV_TRACE_* macros in trace/trace.hpp compile those checks away
// entirely at PV_TRACE_LEVEL=0.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pv::trace {

/// One track of events.  NOT thread-safe: a recorder must only ever be
/// written by the thread it is currently bound to (ScopedRecorder), the
/// same single-writer discipline the simulator itself lives by.
class TraceRecorder {
public:
    /// `capacity` bounds the ring: once full, the OLDEST events are
    /// overwritten (the tail of a long run is the interesting part) and
    /// dropped_events() counts the overwritten ones.
    TraceRecorder(std::string track_name, std::uint64_t track_id,
                  std::size_t capacity = kDefaultCapacity);

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /// Append one event.  `name` must outlive the recorder (string
    /// literal or intern()ed).
    void record(EventKind kind, const char* name, std::int64_t ts_ps, std::uint64_t a = 0,
                std::uint64_t b = 0) {
        Event e{ts_ps, a, b, name, kind};
        if (ring_.size() < capacity_) {
            ring_.push_back(e);
        } else {
            ring_[next_] = e;
            next_ = (next_ + 1) % capacity_;
        }
        ++recorded_;
        last_ts_ = ts_ps;
    }

    /// Copy a dynamic string into recorder-owned storage and return a
    /// pointer stable for the recorder's lifetime (deque never moves
    /// settled elements).  For log records and other non-literal names.
    const char* intern(std::string_view s);

    [[nodiscard]] const std::string& track_name() const { return name_; }
    [[nodiscard]] std::uint64_t track_id() const { return id_; }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t size() const { return ring_.size(); }
    [[nodiscard]] std::uint64_t recorded_events() const { return recorded_; }
    [[nodiscard]] std::uint64_t dropped_events() const { return recorded_ - ring_.size(); }
    /// Timestamp of the most recently recorded event (0 before any).
    /// Clock-less emitters (the log bridge, pool dispatch) reuse it so
    /// their instants land at the track's current virtual time.
    [[nodiscard]] std::int64_t last_ts() const { return last_ts_; }

    /// Events oldest-first (unwraps the ring).
    [[nodiscard]] std::vector<Event> events() const;

    static constexpr std::size_t kDefaultCapacity = 1 << 14;

private:
    std::string name_;
    std::uint64_t id_;
    std::size_t capacity_;
    std::vector<Event> ring_;
    std::size_t next_ = 0;         // overwrite cursor once the ring is full
    std::uint64_t recorded_ = 0;
    std::int64_t last_ts_ = 0;
    std::deque<std::string> interned_;
};

namespace detail {
/// The calling thread's recorder binding, as a function-local TLS slot.
/// A namespace-scope `extern thread_local` is reached through a weak
/// compiler-generated wrapper (the variable may need dynamic init in
/// another TU), which UBSan flags as a null-pointer load when the init
/// symbol resolves weak-null.  A function-local thread_local with
/// constant init has no wrapper and no guard: inlined, this is a plain
/// TLS load — same cost as the raw variable, sanitizer-clean.
[[nodiscard]] inline TraceRecorder*& tl_recorder_slot() noexcept {
    thread_local TraceRecorder* slot = nullptr;
    return slot;
}
}  // namespace detail

/// The recorder bound to the calling thread, or nullptr (tracing off).
[[nodiscard]] inline TraceRecorder* current_recorder() {
    return detail::tl_recorder_slot();
}

/// Bind a recorder to the calling thread for a scope.  Binding nullptr
/// is a no-op passthrough (the outer binding, if any, stays active), so
/// callers can write `ScopedRecorder bind(maybe_null)` unconditionally.
class ScopedRecorder {
public:
    explicit ScopedRecorder(TraceRecorder* recorder)
        : previous_(detail::tl_recorder_slot()), bound_(recorder != nullptr) {
        if (bound_) detail::tl_recorder_slot() = recorder;
    }
    ~ScopedRecorder() {
        if (bound_) detail::tl_recorder_slot() = previous_;
    }

    ScopedRecorder(const ScopedRecorder&) = delete;
    ScopedRecorder& operator=(const ScopedRecorder&) = delete;

private:
    TraceRecorder* previous_;
    bool bound_;
};

/// RAII span: emits SpanBegin at construction and SpanEnd at scope exit,
/// both stamped from `clock.now()` (any type with a now() returning a
/// value with .value(), i.e. Picoseconds — duck-typed so this header
/// needs no dependency on the simulator).
template <typename Clock>
class ScopedSpan {
public:
    ScopedSpan(const char* name, const Clock& clock, std::uint64_t a = 0, std::uint64_t b = 0)
        : clock_(clock), name_(name) {
        if (TraceRecorder* r = current_recorder())
            r->record(EventKind::SpanBegin, name_, clock_.now().value(), a, b);
    }
    ~ScopedSpan() {
        if (TraceRecorder* r = current_recorder())
            r->record(EventKind::SpanEnd, name_, clock_.now().value());
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    const Clock& clock_;
    const char* name_;
};

/// A set of tracks with thread-safe creation (workers open their own
/// tracks) and deterministic export (tracks sorted by id, events in
/// recording order).  Exporters live in trace/export.cpp.
class TraceSession {
public:
    explicit TraceSession(std::size_t track_capacity = TraceRecorder::kDefaultCapacity)
        : track_capacity_(track_capacity) {}

    /// Create a new track.  Thread-safe; the returned recorder must then
    /// only be written by one thread at a time (bind it).
    TraceRecorder& create_track(std::string name, std::uint64_t track_id)
        PV_EXCLUDES(mutex_);

    /// Tracks sorted by (id, name, creation order).  Call only after
    /// every writer is done (export time).
    [[nodiscard]] std::vector<const TraceRecorder*> tracks() const PV_EXCLUDES(mutex_);

    [[nodiscard]] std::size_t track_count() const PV_EXCLUDES(mutex_);
    /// Sum of recorded (not dropped) events across tracks.
    [[nodiscard]] std::uint64_t event_count() const PV_EXCLUDES(mutex_);

    /// Chrome trace-event JSON (chrome://tracing, Perfetto).  Byte-
    /// deterministic for identical sessions.
    [[nodiscard]] std::string to_chrome_json() const;
    /// Compact CSV: track_id,track_name,seq,ts_ps,kind,name,a,b.
    [[nodiscard]] std::string to_csv() const;

    /// Write to `path`, overwriting.  Returns the path.
    std::string write_chrome_json(const std::string& path) const;
    std::string write_csv(const std::string& path) const;

private:
    std::size_t track_capacity_;
    mutable Mutex mutex_;
    std::vector<std::unique_ptr<TraceRecorder>> tracks_ PV_GUARDED_BY(mutex_);
};

}  // namespace pv::trace
