#include "trace/recorder.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pv::trace {

const char* kind_name(EventKind kind) {
    switch (kind) {
        case EventKind::MsrRead: return "msr-read";
        case EventKind::MsrWrite: return "msr-write";
        case EventKind::OcmTransaction: return "ocm-transaction";
        case EventKind::FaultInjected: return "fault-injected";
        case EventKind::PollIteration: return "poll-iteration";
        case EventKind::SafeStateRewrite: return "safe-state-rewrite";
        case EventKind::FreqClamp: return "freq-clamp";
        case EventKind::CampaignCellBegin: return "campaign-cell-begin";
        case EventKind::CampaignCellEnd: return "campaign-cell-end";
        case EventKind::TaskDispatch: return "task-dispatch";
        case EventKind::SpanBegin: return "span-begin";
        case EventKind::SpanEnd: return "span-end";
        case EventKind::Instant: return "instant";
        case EventKind::LogRecord: return "log";
        case EventKind::EnvFaultInjected: return "env-fault";
        case EventKind::RetryBackoff: return "retry-backoff";
        case EventKind::JournalCommit: return "journal-commit";
        case EventKind::ProbeSelected: return "probe-selected";
        case EventKind::PosteriorUpdate: return "posterior-update";
    }
    return "?";
}

TraceRecorder::TraceRecorder(std::string track_name, std::uint64_t track_id,
                             std::size_t capacity)
    : name_(std::move(track_name)), id_(track_id), capacity_(capacity) {
    if (capacity_ == 0) throw ConfigError("trace track capacity must be positive");
    ring_.reserve(std::min<std::size_t>(capacity_, 1024));  // grow lazily up to capacity
}

const char* TraceRecorder::intern(std::string_view s) {
    interned_.emplace_back(s);
    return interned_.back().c_str();
}

std::vector<Event> TraceRecorder::events() const {
    std::vector<Event> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;  // never wrapped: already oldest-first
    } else {
        out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_), ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(next_));
    }
    return out;
}

TraceRecorder& TraceSession::create_track(std::string name, std::uint64_t track_id) {
    MutexLock lock(mutex_);
    tracks_.push_back(
        std::make_unique<TraceRecorder>(std::move(name), track_id, track_capacity_));
    return *tracks_.back();
}

std::vector<const TraceRecorder*> TraceSession::tracks() const {
    std::vector<const TraceRecorder*> out;
    {
        MutexLock lock(mutex_);
        out.reserve(tracks_.size());
        for (const auto& t : tracks_) out.push_back(t.get());
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecorder* a, const TraceRecorder* b) {
                         if (a->track_id() != b->track_id())
                             return a->track_id() < b->track_id();
                         return a->track_name() < b->track_name();
                     });
    return out;
}

std::size_t TraceSession::track_count() const {
    MutexLock lock(mutex_);
    return tracks_.size();
}

std::uint64_t TraceSession::event_count() const {
    MutexLock lock(mutex_);
    std::uint64_t n = 0;
    for (const auto& t : tracks_) n += t->size();
    return n;
}

}  // namespace pv::trace
