#include "fleet/silicon_lot.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "check/state_hasher.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pv::fleet {
namespace {

/// Salt separating the jitter stream from every other mix_seed consumer
/// of the same lot seed (sweep rows, cells, boot seeds).
constexpr std::uint64_t kJitterTag = 0x51'71C0;

/// Gaussian deviate with sigma = tolerance/3, hard-clamped to the
/// tolerance: ~99.7% of draws land inside on their own, the clamp makes
/// the bound unconditional (the property tests assert it exactly).
double bounded_deviate(Rng& rng, double tolerance) {
    if (tolerance <= 0.0) return 0.0;
    const double d = rng.gaussian(0.0, tolerance / 3.0);
    if (d > tolerance) return tolerance;
    if (d < -tolerance) return -tolerance;
    return d;
}

}  // namespace

void LotConfig::validate() const {
    const double tolerances[] = {alpha_tolerance, vth_tolerance_mv, path_tolerance,
                                 crash_path_tolerance};
    for (const double t : tolerances)
        if (!(t >= 0.0) || !std::isfinite(t))
            throw ConfigError("lot tolerances must be finite and non-negative");
}

SiliconLot::SiliconLot(sim::CpuProfile base, LotConfig config)
    : base_(std::move(base)), config_(config) {
    config_.validate();
}

UnitJitter SiliconLot::jitter(std::uint64_t unit_id) const {
    // A private generator per unit, seeded from (lot_seed, unit_id) only:
    // no shared stream, hence no order sensitivity.  Draw order within
    // the unit is fixed by this function body.
    Rng rng(mix_seed(mix_seed(config_.lot_seed, kJitterTag), unit_id));
    UnitJitter j;
    j.alpha_scale = 1.0 + bounded_deviate(rng, config_.alpha_tolerance);
    j.vth_delta_mv = bounded_deviate(rng, config_.vth_tolerance_mv);
    j.path_scale = 1.0 + bounded_deviate(rng, config_.path_tolerance);
    j.crash_path_scale = 1.0 + bounded_deviate(rng, config_.crash_path_tolerance);
    return j;
}

sim::CpuProfile SiliconLot::unit_profile(std::uint64_t unit_id) const {
    const UnitJitter j = jitter(unit_id);
    sim::CpuProfile p = base_;
    p.name += "#u" + std::to_string(unit_id);
    p.timing.alpha *= j.alpha_scale;
    p.timing.threshold_voltage = p.timing.threshold_voltage + Millivolts{j.vth_delta_mv};
    p.timing.path_constant_ps *= j.path_scale;
    p.timing.crash_path_factor *= j.crash_path_scale;
    return p;
}

std::uint64_t SiliconLot::config_hash() const {
    check::StateHasher h;
    h.mix(std::string_view(base_.name));
    h.mix(base_.freq_min.value());
    h.mix(base_.freq_max.value());
    h.mix(base_.freq_step.value());
    h.mix(base_.timing.threshold_voltage.value());
    h.mix(base_.timing.alpha);
    h.mix(base_.timing.path_constant_ps);
    h.mix(base_.timing.setup_time_ps);
    h.mix(base_.timing.clock_uncertainty_ps);
    h.mix(base_.timing.sigma_fraction);
    h.mix(base_.timing.crash_path_factor);
    h.mix(config_.lot_seed);
    h.mix(config_.alpha_tolerance);
    h.mix(config_.vth_tolerance_mv);
    h.mix(config_.path_tolerance);
    h.mix(config_.crash_path_tolerance);
    return h.digest();
}

}  // namespace pv::fleet
