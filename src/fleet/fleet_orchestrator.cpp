#include "fleet/fleet_orchestrator.hpp"

#include <cmath>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "check/state_hasher.hpp"
#include "infer/adaptive_planner.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pv::fleet {

/// Lock-guarded per-row boundary aggregate the warm starts draw from.
/// Finished units fold their row boundaries in (as offset STEPS, the
/// bisection's coordinate); later units' rows start from the running
/// mean of their lot neighbours.  Folds and reads race benignly across
/// unit tasks: WHICH hints a unit sees depends on completion order, but
/// hints only shrink probe counts (parallel_characterizer.hpp), so every
/// downstream result stays order-independent.
class FleetOrchestrator::Aggregate {
public:
    Aggregate(std::size_t rows, double step_mv, double sentinel_mv)
        : step_mv_(step_mv), sentinel_mv_(sentinel_mv), rows_(rows) {}

    /// Fold one completed row (local index) into the running means.
    /// Sentinel crash values (column never crashed) and fault-free rows
    /// contribute nothing — a hint must point at a real boundary.
    void fold(const resilience::RowRecord& rec) {
        MutexLock lock(mutex_);
        RowSum& sum = rows_[rec.row_index];
        if (rec.crash_mv != sentinel_mv_) {
            sum.crash_steps += to_step(rec.crash_mv);
            ++sum.crash_units;
        }
        if (!rec.fault_free && rec.onset_mv != 0.0) {
            sum.onset_steps += to_step(rec.onset_mv);
            ++sum.onset_units;
        }
    }

    [[nodiscard]] std::optional<plugvolt::RowWarmStart> hint(std::size_t row) {
        MutexLock lock(mutex_);
        const RowSum& sum = rows_[row];
        plugvolt::RowWarmStart h;
        if (sum.crash_units != 0)
            h.crash_step = (sum.crash_steps + sum.crash_units / 2) / sum.crash_units;
        if (sum.onset_units != 0)
            h.onset_step = (sum.onset_steps + sum.onset_units / 2) / sum.onset_units;
        if (h.crash_step == 0 && h.onset_step == 0) return std::nullopt;
        ++hints_served_;
        return h;
    }

    [[nodiscard]] std::uint64_t hints_served() {
        MutexLock lock(mutex_);
        return hints_served_;
    }

private:
    struct RowSum {
        std::uint64_t crash_steps = 0;
        std::uint64_t crash_units = 0;
        std::uint64_t onset_steps = 0;
        std::uint64_t onset_units = 0;
    };

    [[nodiscard]] std::uint64_t to_step(double offset_mv) const {
        return static_cast<std::uint64_t>(std::llround(-offset_mv / step_mv_));
    }

    double step_mv_;
    double sentinel_mv_;
    Mutex mutex_;
    std::vector<RowSum> rows_ PV_GUARDED_BY(mutex_);
    std::uint64_t hints_served_ PV_GUARDED_BY(mutex_) = 0;
};

FleetOrchestrator::FleetOrchestrator(SiliconLot lot, FleetConfig config)
    : lot_(std::move(lot)), config_(std::move(config)) {
    if (config_.units == 0) throw ConfigError("a fleet needs at least one unit");
    if (config_.sweep.run_inline)
        throw ConfigError("the fleet orchestrator owns run_inline; leave it unset");
    if (config_.sweep.warm_start)
        throw ConfigError("the fleet orchestrator owns warm_start; leave it unset");
    if (config_.workers == 0) config_.workers = ThreadPool::default_worker_count();
    // Adaptive per-unit sweeps default to the infer planner; the same
    // Aggregate that fuels bisection gallops then warm-starts each
    // unit's boundary POSTERIOR from lot-neighbour onset/crash means
    // (hints shape priors only, so per-unit maps stay bit-identical to
    // cold solo adaptive runs — the adaptive fleet differential's
    // contract).  A caller-supplied planner is kept as-is.
    if (config_.sweep.mode == plugvolt::SweepMode::Adaptive && !config_.sweep.planner)
        config_.sweep.planner = infer::adaptive_planner();
    stride_ = lot_.base().frequency_table().size();
    if (stride_ == 0) throw ConfigError("the lot's frequency table is empty");
    // Validate the per-unit protocol (and unit 0's jittered profile)
    // eagerly so misconfiguration surfaces here, not on a pool thread.
    (void)plugvolt::ParallelCharacterizer(lot_.unit_profile(0), unit_sweep_config(0));
}

plugvolt::ParallelCharacterizerConfig FleetOrchestrator::unit_sweep_config(
    std::uint64_t unit_id) const {
    plugvolt::ParallelCharacterizerConfig cfg = config_.sweep;
    cfg.seed = mix_seed(config_.sweep.seed, unit_id);
    return cfg;
}

std::uint64_t FleetOrchestrator::config_hash() const {
    check::StateHasher h;
    h.mix(lot_.config_hash());
    h.mix(config_.units);
    // The per-unit protocol fingerprint, taken through unit 0's sweep:
    // covers the cell protocol, mode, refine window, fault plan, and the
    // unit-seed derivation (warm_start and worker counts excluded by the
    // row engine's own contract).
    const plugvolt::ParallelCharacterizer probe(lot_.unit_profile(0),
                                               unit_sweep_config(0));
    h.mix(probe.config_hash());
    return h.digest();
}

resilience::JournalHeader FleetOrchestrator::journal_header() const {
    resilience::JournalHeader header;
    header.config_hash = config_hash();
    header.seed = config_.sweep.seed;
    header.sweep_floor_mv = config_.sweep.cell.sweep_floor.value();
    header.system_name = lot_.base().name + " fleet";
    return header;
}

plugvolt::SafeStateMap FleetOrchestrator::characterize_unit(std::uint64_t unit_id) const {
    plugvolt::ParallelCharacterizer sweeper(lot_.unit_profile(unit_id),
                                            unit_sweep_config(unit_id));
    return sweeper.characterize();
}

PopulationEnvelope FleetOrchestrator::characterize(const UnitProgress& progress) {
    return run_fleet(nullptr, progress);
}

PopulationEnvelope FleetOrchestrator::characterize(resilience::SweepJournal& journal,
                                                   const UnitProgress& progress) {
    return run_fleet(&journal, progress);
}

PopulationEnvelope FleetOrchestrator::resume(resilience::SweepJournal& journal,
                                             const UnitProgress& progress) {
    return run_fleet(&journal, progress);
}

PopulationEnvelope FleetOrchestrator::run_fleet(resilience::SweepJournal* journal,
                                                const UnitProgress& progress) {
    stats_ = {};
    const std::uint64_t units = config_.units;
    const double step_mv = config_.sweep.cell.offset_step.value();
    const double sentinel_mv =
        (config_.sweep.cell.sweep_floor - config_.sweep.cell.offset_step).value();

    // Journaled rows, re-framed from the global unit*stride + row index
    // to each unit's local row index (characterize_with validates them
    // against the frequency table from there).
    std::vector<std::vector<resilience::RowRecord>> adopted(units);
    std::uint64_t journal_bytes_base = 0;
    if (journal != nullptr) {
        if (journal->header().config_hash != config_hash())
            throw ConfigError(
                "journal config_hash does not match this fleet's configuration");
        journal_bytes_base = journal->bytes_written();
        for (const resilience::RowRecord& rec : journal->rows()) {
            const std::uint64_t unit = rec.row_index / stride_;
            if (unit >= units)
                throw JournalError("journal row " + std::to_string(rec.row_index) +
                                   " is beyond this fleet's " + std::to_string(units) +
                                   " units");
            resilience::RowRecord local = rec;
            local.row_index = rec.row_index % stride_;
            adopted[unit].push_back(local);
        }
    }

    Aggregate aggregate(stride_, step_mv, sentinel_mv);
    plugvolt::WarmStartFn hint_fn;
    if (config_.warm_start) {
        // Adopted rows are finished results: seed the hint pool with
        // them before any unit starts.
        for (const std::vector<resilience::RowRecord>& unit_rows : adopted)
            for (const resilience::RowRecord& rec : unit_rows) aggregate.fold(rec);
        hint_fn = [&aggregate](std::size_t row) { return aggregate.hint(row); };
    }

    struct UnitOutcome {
        plugvolt::SafeStateMap map;
        std::vector<resilience::RowRecord> fresh;
        plugvolt::SweepStats sweep;
    };

    // One task per unit; each runs its row loop inline on the pool
    // thread that picked it up (run_inline — no nested pools).  The
    // futures stay positional (index == unit id); collection walks units
    // in id order, which is the delivery, journaling, and progress order.
    ThreadPool pool(config_.workers);
    std::vector<std::future<UnitOutcome>> futures(units);
    for (std::uint64_t u = 0; u < units; ++u) {
        futures[u] = pool.submit([this, u, &adopted, &aggregate, &hint_fn] {
            plugvolt::ParallelCharacterizerConfig cfg = unit_sweep_config(u);
            cfg.run_inline = true;
            cfg.workers = 1;
            cfg.warm_start = hint_fn;
            plugvolt::ParallelCharacterizer sweeper(lot_.unit_profile(u), cfg);
            std::vector<resilience::RowRecord> fresh;
            plugvolt::SafeStateMap map = sweeper.characterize_with(
                adopted[u],
                [&fresh](const resilience::RowRecord& rec) { fresh.push_back(rec); });
            if (config_.warm_start)
                for (const resilience::RowRecord& rec : fresh) aggregate.fold(rec);
            return UnitOutcome{std::move(map), std::move(fresh), sweeper.stats()};
        });
    }

    PopulationEnvelope envelope(config_.envelope);
    for (std::uint64_t u = 0; u < units; ++u) {
        UnitOutcome outcome = futures[u].get();  // rethrows task exceptions
        ++stats_.units;
        if (outcome.fresh.empty() && !adopted[u].empty()) ++stats_.units_resumed;
        stats_.rows_resumed += outcome.sweep.rows_resumed;
        stats_.cells_evaluated += outcome.sweep.cells_evaluated;
        stats_.crash_probes += outcome.sweep.crash_probes;
        stats_.msr_retries += outcome.sweep.msr_retries;
        stats_.env_faults += outcome.sweep.env_faults;
        if (journal != nullptr) {
            // Commit the unit's fresh rows (re-framed to global indices)
            // BEFORE the progress callback: a kill at any unit boundary
            // leaves every delivered unit durable, which is what makes
            // kill + resume == uninterrupted at fleet granularity.
            for (resilience::RowRecord rec : outcome.fresh) {
                rec.row_index = u * stride_ + rec.row_index;
                journal->commit(rec);
                ++stats_.journal_commits;
            }
        }
        envelope.add(u, outcome.map);
        if (progress) progress(u, outcome.map);
    }
    stats_.warm_rows = aggregate.hints_served();
    if (journal != nullptr)
        stats_.journal_bytes = journal->bytes_written() - journal_bytes_base;
    return envelope;
}

}  // namespace pv::fleet
