#include "fleet/population_envelope.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

#include "check/state_hasher.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace pv::fleet {
namespace {

/// Shortest decimal that round-trips the double bit-exactly (the same
/// contract as the SafeStateMap CSV).
std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Median of a sorted, non-empty vector (mean of the middle pair when
/// the count is even — deterministic double arithmetic).
double median_sorted(const std::vector<double>& sorted) {
    const std::size_t n = sorted.size();
    const std::size_t mid = n / 2;
    return (n % 2 == 1) ? sorted[mid] : (sorted[mid - 1] + sorted[mid]) / 2.0;
}

}  // namespace

PopulationEnvelope::PopulationEnvelope(EnvelopeConfig config) : config_(config) {
    if (!(config_.outlier_threshold > 0.0))
        throw ConfigError("outlier_threshold must be positive");
    if (!(config_.mad_floor_mv >= 0.0))
        throw ConfigError("mad_floor_mv must be non-negative");
}

void PopulationEnvelope::add(std::uint64_t unit_id, const plugvolt::SafeStateMap& map) {
    if (map.rows().empty()) throw ConfigError("cannot fold an empty map into an envelope");
    if (!units_.empty()) {
        const std::vector<plugvolt::FreqCharacterization>& ref = units_.begin()->second.rows;
        if (map.rows().size() != ref.size())
            throw ConfigError("envelope maps must share one frequency table");
        for (std::size_t i = 0; i < ref.size(); ++i)
            if (map.rows()[i].freq != ref[i].freq)
                throw ConfigError("envelope maps must share one frequency table");
    }
    const auto [it, inserted] = units_.emplace(unit_id);
    if (!inserted)
        throw ConfigError("unit " + std::to_string(unit_id) + " already in the envelope");
    it->second.maximal_safe = map.maximal_safe_offset(config_.guard);
    it->second.rows = map.rows();
}

Millivolts PopulationEnvelope::clamp_at_yield(double yield) const {
    if (units_.empty()) throw ConfigError("clamp_at_yield on an empty envelope");
    if (!(yield > 0.0) || yield > 1.0)
        throw ConfigError("yield must be in (0, 1]");
    const std::size_t n = units_.size();
    // Exclusion budget: how many units the clamp may leave unprotected.
    const auto excluded = static_cast<std::size_t>(
        std::floor((1.0 - yield) * static_cast<double>(n)));
    std::vector<double> m;
    m.reserve(n);
    for (const auto& [id, rec] : units_) m.push_back(rec.maximal_safe.value());
    // Shallowest first (offsets are negative: descending numeric order);
    // skipping the `excluded` shallowest picks the deepest clamp that
    // still protects everyone else.
    std::sort(m.begin(), m.end(), std::greater<>());
    return Millivolts{m[excluded]};
}

double PopulationEnvelope::yield_at_clamp(Millivolts clamp) const {
    if (units_.empty()) throw ConfigError("yield_at_clamp on an empty envelope");
    std::size_t protected_units = 0;
    for (const auto& [id, rec] : units_)
        if (rec.maximal_safe <= clamp) ++protected_units;
    return static_cast<double>(protected_units) / static_cast<double>(units_.size());
}

std::vector<YieldPoint> PopulationEnvelope::guard_band_curve() const {
    if (units_.empty()) throw ConfigError("guard_band_curve on an empty envelope");
    std::vector<double> m;
    m.reserve(units_.size());
    for (const auto& [id, rec] : units_) m.push_back(rec.maximal_safe.value());
    std::sort(m.begin(), m.end(), std::greater<>());
    std::vector<YieldPoint> curve;
    curve.reserve(m.size());
    for (std::size_t e = 0; e < m.size(); ++e) {
        const Millivolts clamp{m[e]};
        // The honest yield: ties mean excluding e units may still
        // protect more than n - e of them.
        curve.push_back(YieldPoint{
            .yield = yield_at_clamp(clamp),
            .excluded = e,
            .clamp = clamp,
        });
    }
    return curve;
}

std::vector<std::uint64_t> PopulationEnvelope::outlier_units() const {
    std::vector<std::uint64_t> outliers;
    if (units_.size() < 3) return outliers;  // no meaningful spread statistic
    std::vector<double> m;
    m.reserve(units_.size());
    for (const auto& [id, rec] : units_) m.push_back(rec.maximal_safe.value());
    std::sort(m.begin(), m.end());
    const double med = median_sorted(m);
    std::vector<double> dev;
    dev.reserve(m.size());
    for (const double v : m) dev.push_back(std::fabs(v - med));
    std::sort(dev.begin(), dev.end());
    // The MAD floor keeps a tight lot (MAD ~ 0) from flagging every unit
    // that is merely one characterization step off the median.
    const double mad = std::max(median_sorted(dev), config_.mad_floor_mv);
    const double cut = config_.outlier_threshold * mad;
    for (const auto& [id, rec] : units_)
        if (std::fabs(rec.maximal_safe.value() - med) > cut) outliers.push_back(id);
    return outliers;
}

std::vector<EnvelopeRow> PopulationEnvelope::rows() const {
    std::vector<EnvelopeRow> out;
    if (units_.empty()) return out;
    const std::size_t n_rows = units_.begin()->second.rows.size();
    out.reserve(n_rows);
    std::vector<double> onsets, crashes;
    for (std::size_t i = 0; i < n_rows; ++i) {
        onsets.clear();
        crashes.clear();
        EnvelopeRow row;
        row.freq = units_.begin()->second.rows[i].freq;
        for (const auto& [id, rec] : units_) {
            const plugvolt::FreqCharacterization& cell = rec.rows[i];
            if (cell.fault_free)
                ++row.fault_free_units;
            else
                onsets.push_back(cell.onset.value());
            crashes.push_back(cell.crash.value());
        }
        std::sort(onsets.begin(), onsets.end());
        std::sort(crashes.begin(), crashes.end());
        if (!onsets.empty()) {
            row.onset_min = Millivolts{onsets.front()};
            row.onset_median = Millivolts{median_sorted(onsets)};
            row.onset_max = Millivolts{onsets.back()};
        }
        row.crash_min = Millivolts{crashes.front()};
        row.crash_median = Millivolts{median_sorted(crashes)};
        row.crash_max = Millivolts{crashes.back()};
        out.push_back(row);
    }
    return out;
}

Millivolts PopulationEnvelope::unit_clamp(std::uint64_t unit_id) const {
    const auto it = units_.find(unit_id);
    if (it == units_.end())
        throw ConfigError("unit " + std::to_string(unit_id) + " not in the envelope");
    return it->second.maximal_safe;
}

std::string PopulationEnvelope::to_csv() const {
    CsvDocument doc;
    doc.header = {"freq_mhz",     "onset_min_mv",  "onset_median_mv",
                  "onset_max_mv", "crash_min_mv",  "crash_median_mv",
                  "crash_max_mv", "fault_free_units"};
    for (const EnvelopeRow& row : rows()) {
        doc.rows.push_back({fmt_double(row.freq.value()), fmt_double(row.onset_min.value()),
                            fmt_double(row.onset_median.value()),
                            fmt_double(row.onset_max.value()),
                            fmt_double(row.crash_min.value()),
                            fmt_double(row.crash_median.value()),
                            fmt_double(row.crash_max.value()),
                            std::to_string(row.fault_free_units)});
    }
    return csv_write(doc);
}

std::uint64_t state_hash(const PopulationEnvelope& envelope) {
    check::StateHasher h;
    h.mix(envelope.config_.guard.value());
    h.mix(envelope.config_.outlier_threshold);
    h.mix(envelope.config_.mad_floor_mv);
    h.mix(static_cast<std::uint64_t>(envelope.units_.size()));
    // FlatMap iterates in unit-id order: the digest is a function of the
    // SET of folded maps, never of insertion order.
    for (const auto& [id, rec] : envelope.units_) {
        h.mix(id);
        h.mix(rec.maximal_safe.value());
        h.mix(static_cast<std::uint64_t>(rec.rows.size()));
        for (const plugvolt::FreqCharacterization& row : rec.rows) {
            h.mix(row.freq.value());
            h.mix(row.onset.value());
            h.mix(row.crash.value());
            h.mix(row.fault_free);
        }
    }
    return h.digest();
}

}  // namespace pv::fleet
