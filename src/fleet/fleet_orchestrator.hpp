// PlugVolt — fleet-scale characterization orchestrator.
//
// Characterizes every unit of a SiliconLot in one process and folds the
// per-unit SafeStateMaps into a PopulationEnvelope.  This is the first
// workload whose sharding axis is UNITS rather than frequency rows: the
// orchestrator owns the ThreadPool (one task per unit) and each unit's
// ParallelCharacterizer runs its row loop inline on the pool thread that
// picked the unit up (run_inline — no pool nested inside a pool).
//
// Warm starts: units finished earlier publish their row boundaries into
// a lock-guarded per-row aggregate; later units' bisections start from
// the lot-neighbour mean boundary instead of the full sweep range.
// Hints shrink probe counts only — results are hint-independent (see
// parallel_characterizer.hpp and DESIGN §5h), so per-unit maps stay
// bit-identical to cold solo runs even though WHICH hints a unit saw
// depends on completion order.  That is the envelope's determinism
// story, and the fleet differential test enforces it cell-for-cell.
//
// Journaling: one shared SweepJournal holds every unit's rows, framed as
// row_index = unit_id * row_stride() + row (all units of a lot share one
// frequency table).  Rows commit BEFORE the per-unit progress callback,
// in unit order, so killing the process at any unit boundary and
// resuming yields an envelope bit-identical to an uninterrupted run —
// the fleet kill/resume soak's contract.  Partially journaled units are
// resumed at row granularity: adopted rows are never re-probed or
// re-committed.
#pragma once

#include <cstdint>
#include <functional>

#include "fleet/population_envelope.hpp"
#include "fleet/silicon_lot.hpp"
#include "plugvolt/parallel_characterizer.hpp"
#include "resilience/journal.hpp"

namespace pv::fleet {

struct FleetConfig {
    /// Units to characterize: unit ids 0 .. units-1.
    std::uint64_t units = 1;
    /// Per-unit sweep protocol template.  `run_inline` and `warm_start`
    /// must be left at their defaults (the orchestrator owns both); the
    /// per-unit sweep seed is derived as mix_seed(sweep.seed, unit_id).
    /// With mode == SweepMode::Adaptive and no planner set, the
    /// orchestrator attaches the src/infer planner and the lot-neighbour
    /// aggregate warm-starts each unit's boundary posterior instead of
    /// fueling bisection gallops.
    plugvolt::ParallelCharacterizerConfig sweep{};
    /// Fleet pool width (units in flight); 0 means
    /// ThreadPool::default_worker_count().  Results are independent of
    /// this, like the row engine's worker count.
    unsigned workers = 0;
    /// Warm-start each unit's bisection from finished lot neighbours.
    bool warm_start = true;
    EnvelopeConfig envelope{};
};

/// Aggregate cost counters of one fleet run.
struct FleetStats {
    std::uint64_t units = 0;            ///< units delivered (adopted + characterized)
    std::uint64_t units_resumed = 0;    ///< units adopted whole from the journal
    std::uint64_t rows_resumed = 0;     ///< rows adopted from the journal
    std::uint64_t cells_evaluated = 0;  ///< cell probes actually run
    std::uint64_t crash_probes = 0;     ///< probes that ended in a crash-reboot
    std::uint64_t msr_retries = 0;      ///< faulted mailbox writes retried
    std::uint64_t env_faults = 0;       ///< environment faults injected
    std::uint64_t warm_rows = 0;        ///< rows that started from a neighbour hint
    std::uint64_t journal_commits = 0;  ///< row frames committed this run
    std::uint64_t journal_bytes = 0;    ///< bytes physically written this run
};

class FleetOrchestrator {
public:
    /// Throws ConfigError on an invalid FleetConfig (zero units, or a
    /// sweep template carrying run_inline / warm_start).
    FleetOrchestrator(SiliconLot lot, FleetConfig config);

    /// Called on the characterize() caller's thread, in unit-id order,
    /// once per completed unit (after its rows are durable).
    using UnitProgress =
        std::function<void(std::uint64_t unit_id, const plugvolt::SafeStateMap& map)>;

    /// Characterize the whole fleet (no durability).
    [[nodiscard]] PopulationEnvelope characterize(const UnitProgress& progress = {});

    /// Journaled fleet run; adopts journaled rows, commits fresh rows
    /// write-ahead.  Throws ConfigError when the journal's config_hash
    /// does not match, JournalError when a row does not belong to this
    /// fleet.
    [[nodiscard]] PopulationEnvelope characterize(resilience::SweepJournal& journal,
                                                  const UnitProgress& progress = {});

    /// Semantic alias of the journaled characterize() for recovery call
    /// sites.
    [[nodiscard]] PopulationEnvelope resume(resilience::SweepJournal& journal,
                                            const UnitProgress& progress = {});

    /// One unit characterized cold (no warm start, no fleet) — the
    /// reference the differential tests compare fleet maps against.
    [[nodiscard]] plugvolt::SafeStateMap characterize_unit(std::uint64_t unit_id) const;

    /// The exact per-unit sweep configuration unit `unit_id` runs under
    /// a cold solo characterization: the template with the unit-derived
    /// seed, no warm start, no inline flag.  Pair with
    /// lot().unit_profile(unit_id) to rebuild the reference sweep.
    [[nodiscard]] plugvolt::ParallelCharacterizerConfig unit_sweep_config(
        std::uint64_t unit_id) const;

    /// Rows per unit in the shared journal's global frame
    /// (= the lot's frequency-table size).
    [[nodiscard]] std::uint64_t row_stride() const { return stride_; }

    /// Fingerprint of everything that determines fleet RESULTS: the
    /// lot (base profile + jitter config), unit count, and the per-unit
    /// sweep protocol — NOT pool widths, warm_start, or the envelope
    /// statistics config (the journal stores raw rows, not envelopes).
    [[nodiscard]] std::uint64_t config_hash() const;

    /// Header for a fresh fleet journal.
    [[nodiscard]] resilience::JournalHeader journal_header() const;

    /// Counters of the last characterize() call.
    [[nodiscard]] const FleetStats& stats() const { return stats_; }

    [[nodiscard]] const SiliconLot& lot() const { return lot_; }
    [[nodiscard]] const FleetConfig& config() const { return config_; }

private:
    class Aggregate;

    [[nodiscard]] PopulationEnvelope run_fleet(resilience::SweepJournal* journal,
                                               const UnitProgress& progress);

    SiliconLot lot_;
    FleetConfig config_;
    std::uint64_t stride_;
    FleetStats stats_{};
};

}  // namespace pv::fleet
