// PlugVolt — population-level safe envelopes.
//
// One SafeStateMap protects one die; a vendor ships ONE clamp to a whole
// fleet.  PopulationEnvelope folds per-unit maps into the numbers that
// decision needs: percentile clamps ("the offset safe for 99.9% of
// units"), the guard-band-vs-yield curve that prices every extra
// millivolt of margin in excluded dies, per-frequency onset/crash spread,
// and outlier-die detection (units whose boundary sits far off the lot
// median are escapes worth re-screening, not data to widen the clamp by).
//
// Clamp semantics (sign convention: offsets are negative, "shallower" =
// closer to 0): unit u's scalar summary is m_u = maximal_safe_offset
// (guarded); a clamp c protects u iff c >= m_u.  clamp_at_yield(y) may
// exclude e = floor((1-y)*N) units and returns the (e+1)-th SHALLOWEST
// m_u — the deepest clamp that still protects at least ceil(y*N) units.
// Exclusion semantics make the update rule honest: at y = 1.0 (e = 0)
// adding a unit can only keep or SHALLOW the clamp (max over a superset),
// unconditionally; at y < 1.0 the same holds whenever the new unit does
// not grow the exclusion budget e — when it does, the clamp may step one
// unit deeper by design (one more die is allowed outside the envelope).
// The property tests assert exactly these two true forms.
//
// Order independence: units live in a FlatMap keyed by unit_id, so every
// derived quantity — and state_hash — depends only on the SET of
// (unit_id, map) pairs, never on insertion order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "plugvolt/safe_state.hpp"
#include "util/flat_map.hpp"
#include "util/units.hpp"

namespace pv::fleet {

struct EnvelopeConfig {
    /// Safety margin handed to SafeStateMap::maximal_safe_offset.
    Millivolts guard{15.0};
    /// A unit is an outlier when |m_u - median| exceeds this multiple of
    /// the lot's median absolute deviation.
    double outlier_threshold = 4.0;
    /// MAD floor in mV: a tight lot has MAD ~ 0 and would flag every
    /// unit off-median; deviations below the characterization resolution
    /// are not outliers.
    double mad_floor_mv = 1.0;
};

/// Per-frequency spread across the fleet.  min/max are numeric (offsets
/// are negative, so `*_max` is the SHALLOWEST boundary in the fleet and
/// `*_min` the deepest).  Onset statistics cover faulting units only
/// (and are 0 when every unit is fault-free at the frequency); crash
/// statistics cover all units, with the no-crash sentinel standing in
/// for columns that never crashed.
struct EnvelopeRow {
    Megahertz freq{};
    Millivolts onset_min{};
    Millivolts onset_median{};
    Millivolts onset_max{};
    Millivolts crash_min{};
    Millivolts crash_median{};
    Millivolts crash_max{};
    std::uint64_t fault_free_units = 0;
};

/// One point of the guard-band-vs-yield trade: excluding `excluded`
/// units buys `clamp` of depth and retains `yield` of the fleet.
struct YieldPoint {
    double yield = 0.0;
    std::uint64_t excluded = 0;
    Millivolts clamp{};
};

class PopulationEnvelope {
public:
    explicit PopulationEnvelope(EnvelopeConfig config = {});

    /// Fold unit `unit_id`'s map in.  All maps must share one frequency
    /// table and sweep floor (one lot); duplicate unit ids throw
    /// ConfigError, as does a table mismatch.
    void add(std::uint64_t unit_id, const plugvolt::SafeStateMap& map);

    [[nodiscard]] std::size_t units() const { return units_.size(); }
    [[nodiscard]] bool empty() const { return units_.empty(); }

    /// The deepest single clamp protecting at least ceil(yield * N)
    /// units (see the header comment for the exclusion semantics).
    /// Throws ConfigError when empty or yield is outside (0, 1].
    [[nodiscard]] Millivolts clamp_at_yield(double yield) const;

    /// Fraction of units a given clamp protects (m_u <= clamp).
    [[nodiscard]] double yield_at_clamp(Millivolts clamp) const;

    /// The full trade curve: one point per exclusion budget e = 0..N-1,
    /// shallowest-first (e = 0 is the protect-everyone clamp).
    [[nodiscard]] std::vector<YieldPoint> guard_band_curve() const;

    /// Units whose m_u sits more than outlier_threshold MADs from the
    /// lot median, ascending unit id.
    [[nodiscard]] std::vector<std::uint64_t> outlier_units() const;

    /// Per-frequency fleet spread, in frequency order.
    [[nodiscard]] std::vector<EnvelopeRow> rows() const;

    /// Unit `unit_id`'s scalar summary m_u.  Throws ConfigError when the
    /// unit is unknown.
    [[nodiscard]] Millivolts unit_clamp(std::uint64_t unit_id) const;

    /// CSV of rows() (header: freq_mhz,onset_min_mv,onset_median_mv,
    /// onset_max_mv,crash_min_mv,crash_median_mv,crash_max_mv,
    /// fault_free_units), doubles at max_digits10 — bit-exact like the
    /// SafeStateMap CSV.
    [[nodiscard]] std::string to_csv() const;

    [[nodiscard]] const EnvelopeConfig& config() const { return config_; }

private:
    struct UnitRecord {
        Millivolts maximal_safe{};  ///< m_u under config_.guard
        std::vector<plugvolt::FreqCharacterization> rows;
    };

    EnvelopeConfig config_;
    FlatMap<std::uint64_t, UnitRecord> units_;  // keyed by unit id: canonical order

    friend std::uint64_t state_hash(const PopulationEnvelope& envelope);
};

/// 64-bit fingerprint over the envelope's full content (config, every
/// unit's id, m_u and rows, in unit-id order).  Two envelopes hash equal
/// iff they aggregate bit-identical maps from the same units — the
/// equality the fleet kill/resume soak asserts.
[[nodiscard]] std::uint64_t state_hash(const PopulationEnvelope& envelope);

}  // namespace pv::fleet
