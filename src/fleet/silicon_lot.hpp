// PlugVolt — per-die silicon variation sampler.
//
// The paper characterizes three physical parts; a vendor shipping the
// maximal-safe-state clamp faces millions of units whose fault
// boundaries drift with per-die process variation.  SiliconLot models
// one manufacturing lot: a base CpuProfile plus per-unit jitter on the
// alpha-power-law and crash-threshold parameters, derived purely from
// (lot_seed, unit_id).  The jitter is a parameter OVERLAY — unit_profile
// returns an ordinary sim::CpuProfile with adjusted TimingParams, so the
// whole simulator/characterizer stack runs unmodified on a jittered die.
//
// Determinism contract: jitter(unit_id) seeds a private Rng with
// mix_seed(mix_seed(lot_seed, tag), unit_id) — unit N's parameters are
// identical whether sampled alone, first, or mid-fleet, in any order,
// from any thread.  That is what lets the fleet orchestrator shard by
// unit and still promise per-unit maps bit-identical to solo runs.
//
// Tolerance contract: each deviate is Gaussian with sigma = tolerance/3,
// hard-clamped to ±tolerance, so every unit in the lot stays within the
// configured envelope (the property tests pin this down) and — with the
// default tolerances — boots crash-free at nominal voltage, which
// sim::Machine validates at construction.
#pragma once

#include <cstdint>

#include "sim/cpu_profile.hpp"

namespace pv::fleet {

/// Lot identity and manufacturing spread.  Tolerances bound the per-unit
/// deviation: relative scales for alpha / path constants, absolute mV
/// for the threshold voltage.  Defaults are conservative enough that
/// every sampled unit of the three paper profiles boots nominally safe.
struct LotConfig {
    std::uint64_t lot_seed = 0xD1E'F1EE7;
    double alpha_tolerance = 0.01;        ///< relative, velocity-saturation exponent
    double vth_tolerance_mv = 4.0;        ///< absolute mV, threshold voltage
    double path_tolerance = 0.01;         ///< relative, critical-path constant
    double crash_path_tolerance = 0.005;  ///< relative, crash-path factor

    /// Throws ConfigError on negative / non-finite tolerances.
    void validate() const;
};

/// One die's deviation from the lot's base profile, as applied by
/// unit_profile(): scales multiply, the vth delta adds.
struct UnitJitter {
    double alpha_scale = 1.0;
    double vth_delta_mv = 0.0;
    double path_scale = 1.0;
    double crash_path_scale = 1.0;
};

/// A manufacturing lot of one CPU generation.
class SiliconLot {
public:
    /// Throws ConfigError on invalid tolerances.
    SiliconLot(sim::CpuProfile base, LotConfig config);

    /// Pure function of (lot config, unit_id): the unit's parameter
    /// deviation.  Thread-safe, order-independent.
    [[nodiscard]] UnitJitter jitter(std::uint64_t unit_id) const;

    /// The base profile with unit `unit_id`'s jitter applied to its
    /// TimingParams and "#u<id>" appended to its name (so per-unit maps
    /// and sweep fingerprints are distinguishable).  The frequency table
    /// is NOT jittered — all units of a lot share it, which is what lets
    /// the fleet journal frame rows as unit*stride + row.
    [[nodiscard]] sim::CpuProfile unit_profile(std::uint64_t unit_id) const;

    /// Fingerprint of everything that determines every unit's profile:
    /// the base profile's identity, frequency range, timing constants,
    /// and the full LotConfig.
    [[nodiscard]] std::uint64_t config_hash() const;

    [[nodiscard]] const sim::CpuProfile& base() const { return base_; }
    [[nodiscard]] const LotConfig& config() const { return config_; }

private:
    sim::CpuProfile base_;
    LotConfig config_;
};

}  // namespace pv::fleet
