// PlugVolt — SGX platform runtime.
//
// Tracks live enclaves (the "is an SGX context operational?" observable
// that Intel's access-control patch keys on) and produces attestation
// quotes from live platform state: the OCM-disabled bit is set by the
// AccessControl defense, and the PlugVolt-module bit is read from the
// kernel's module registry at quote time — so unloading the module
// *after* attestation is caught by the next quote, exactly the paper's
// proposed deployment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/kernel.hpp"
#include "sgx/attestation.hpp"
#include "sgx/enclave.hpp"

namespace pv::sgx {

/// Platform-level SGX state on top of the kernel.
class SgxRuntime {
public:
    explicit SgxRuntime(os::Kernel& kernel);

    [[nodiscard]] os::Kernel& kernel() { return kernel_; }
    [[nodiscard]] sim::Machine& machine() { return kernel_.machine(); }

    /// ECREATE+EINIT: load an enclave pinned to `core`.
    [[nodiscard]] std::unique_ptr<Enclave> create_enclave(std::string name, unsigned core);

    /// True while any enclave is inside run() (EENTER window).
    [[nodiscard]] bool any_enclave_active() const { return active_enclaves_ > 0; }

    /// True while any enclave exists on the platform (created and not yet
    /// destroyed) — the condition Intel's SA-00289 access control keys
    /// on to disable the OCM.
    [[nodiscard]] bool any_enclave_loaded() const { return loaded_enclaves_ > 0; }

    /// Name of the kernel module whose load state is attested (the
    /// paper's proposal); empty = no module attestation.
    void set_attested_module(std::string name) { attested_module_ = std::move(name); }

    /// Set by the AccessControl defense while it blocks the OCM.
    void set_ocm_disabled_bit(bool disabled) { ocm_disabled_ = disabled; }
    [[nodiscard]] bool ocm_disabled_bit() const { return ocm_disabled_; }

    /// Produce a quote for `enclave` from live platform state.
    [[nodiscard]] AttestationReport quote(const Enclave& enclave) const;

private:
    friend class Enclave;
    void enter() { ++active_enclaves_; }
    void leave() { --active_enclaves_; }
    void enclave_created() { ++loaded_enclaves_; }
    void enclave_destroyed() { --loaded_enclaves_; }

    os::Kernel& kernel_;
    int active_enclaves_ = 0;
    int loaded_enclaves_ = 0;
    bool ocm_disabled_ = false;
    std::string attested_module_;
};

}  // namespace pv::sgx
