#include "sgx/enclave.hpp"

#include "sgx/runtime.hpp"

namespace pv::sgx {

Enclave::Enclave(SgxRuntime& runtime, std::string name, unsigned core)
    : runtime_(runtime), name_(std::move(name)), core_(core) {
    runtime_.enclave_created();
}

Enclave::~Enclave() { runtime_.enclave_destroyed(); }

EnclaveRunResult Enclave::run(const Program& program) {
    EnclaveRunResult result;
    sim::Machine& machine = runtime_.machine();
    VictimContext ctx{&machine, core_, {}};

    runtime_.enter();
    for (std::size_t i = 0; i < program.size(); ++i) {
        const VictimInstr& instr = program[i];
        const bool faulted = machine.execute_op(core_, instr.cls);
        if (machine.crashed()) {
            result.machine_crashed = true;
            break;
        }
        if (instr.is_trap) {
            // A faulted trap instance corrupts its own recomputation —
            // either way the comparison trips and the deflection fires.
            if (faulted || (instr.trap_check && instr.trap_check(ctx))) {
                result.trap_detected = true;
                break;
            }
            continue;
        }
        instr.semantics(ctx, faulted);

        if (stepper_ != nullptr && stepper_->capabilities().single_step) {
            ++result.aex_count;  // adversary-induced asynchronous exit
            if (stepper_->step(i) == StepAction::SuppressProgress) {
                result.suppressed = true;
                break;
            }
        }
    }
    runtime_.leave();

    result.completed = !result.trap_detected && !result.suppressed && !result.machine_crashed;
    result.regs = ctx.regs;
    return result;
}

}  // namespace pv::sgx
