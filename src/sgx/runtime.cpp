#include "sgx/runtime.hpp"

namespace pv::sgx {

SgxRuntime::SgxRuntime(os::Kernel& kernel) : kernel_(kernel) {}

std::unique_ptr<Enclave> SgxRuntime::create_enclave(std::string name, unsigned core) {
    return std::make_unique<Enclave>(*this, std::move(name), core);
}

AttestationReport SgxRuntime::quote(const Enclave& enclave) const {
    AttestationReport report;
    report.mrenclave = measure_enclave(enclave.name());
    report.features.ocm_disabled = ocm_disabled_;
    report.features.hyperthreading_enabled = false;  // paper setups disable HT
    report.features.plugvolt_module_loaded =
        !attested_module_.empty() && kernel_.module_loaded(attested_module_);
    report.features.microcode = kernel_.machine().profile().microcode;
    return report;
}

}  // namespace pv::sgx
