#include "sgx/program.hpp"

#include "util/error.hpp"

namespace pv::sgx {
namespace {

void check_reg(unsigned r) {
    if (r >= 16) throw ConfigError("register index out of range");
}

}  // namespace

VictimInstr make_imul(unsigned dst, unsigned a, unsigned b) {
    check_reg(dst);
    check_reg(a);
    check_reg(b);
    VictimInstr i;
    i.cls = sim::InstrClass::Imul;
    i.mnemonic = "imul r" + std::to_string(dst) + ", r" + std::to_string(a) + ", r" +
                 std::to_string(b);
    i.mul_ops = MulOperands{dst, a, b};
    i.semantics = [dst, a, b](VictimContext& ctx, bool faulted) {
        std::uint64_t v = ctx.regs[a] * ctx.regs[b];
        if (faulted && ctx.machine) v = ctx.machine->corrupt_value(v);
        ctx.regs[dst] = v;
    };
    return i;
}

VictimInstr make_add(unsigned dst, unsigned a, unsigned b) {
    check_reg(dst);
    check_reg(a);
    check_reg(b);
    VictimInstr i;
    i.cls = sim::InstrClass::Alu;
    i.mnemonic = "add r" + std::to_string(dst) + ", r" + std::to_string(a) + ", r" +
                 std::to_string(b);
    i.semantics = [dst, a, b](VictimContext& ctx, bool faulted) {
        std::uint64_t v = ctx.regs[a] + ctx.regs[b];
        if (faulted && ctx.machine) v = ctx.machine->corrupt_value(v);
        ctx.regs[dst] = v;
    };
    return i;
}

VictimInstr make_load_imm(unsigned dst, std::uint64_t imm) {
    check_reg(dst);
    VictimInstr i;
    i.cls = sim::InstrClass::Load;
    i.mnemonic = "mov r" + std::to_string(dst) + ", imm";
    i.semantics = [dst, imm](VictimContext& ctx, bool) { ctx.regs[dst] = imm; };
    return i;
}

VictimInstr make_xor(unsigned dst, unsigned a, unsigned b) {
    check_reg(dst);
    check_reg(a);
    check_reg(b);
    VictimInstr i;
    i.cls = sim::InstrClass::Alu;
    i.mnemonic = "xor r" + std::to_string(dst) + ", r" + std::to_string(a) + ", r" +
                 std::to_string(b);
    i.semantics = [dst, a, b](VictimContext& ctx, bool faulted) {
        std::uint64_t v = ctx.regs[a] ^ ctx.regs[b];
        if (faulted && ctx.machine) v = ctx.machine->corrupt_value(v);
        ctx.regs[dst] = v;
    };
    return i;
}

VictimInstr make_mul_trap(unsigned dst, unsigned a, unsigned b) {
    check_reg(dst);
    check_reg(a);
    check_reg(b);
    VictimInstr i;
    i.cls = sim::InstrClass::Imul;  // the check re-multiplies, same path
    i.mnemonic = "trap.mulchk r" + std::to_string(dst);
    i.is_trap = true;
    i.semantics = [](VictimContext&, bool) {};
    i.trap_check = [dst, a, b](VictimContext& ctx) {
        return ctx.regs[a] * ctx.regs[b] != ctx.regs[dst];
    };
    return i;
}

Program make_mul_chain(std::uint64_t seed_a, std::uint64_t seed_b, std::size_t n) {
    Program p;
    p.reserve(n + 2);
    p.push_back(make_load_imm(0, seed_a));
    p.push_back(make_load_imm(1, seed_b));
    for (std::size_t i = 0; i < n; ++i) {
        p.push_back(make_imul(2, 0, 1));
        p.push_back(make_xor(0, 2, 1));
    }
    return p;
}

std::array<std::uint64_t, 16> reference_run(const Program& program,
                                            std::array<std::uint64_t, 16> regs) {
    return reference_run_prefix(program, program.size(), regs);
}

std::array<std::uint64_t, 16> reference_run_prefix(const Program& program, std::size_t count,
                                                   std::array<std::uint64_t, 16> regs) {
    if (count > program.size()) throw ConfigError("reference prefix longer than program");
    VictimContext ctx{nullptr, 0, regs};
    for (std::size_t i = 0; i < count; ++i) {
        if (program[i].is_trap) continue;  // traps are side-effect free
        program[i].semantics(ctx, /*faulted=*/false);
    }
    return ctx.regs;
}

std::size_t last_mul_index(const Program& program) {
    for (std::size_t i = program.size(); i > 0; --i) {
        if (program[i - 1].mul_ops && !program[i - 1].is_trap) return i - 1;
    }
    throw ConfigError("program contains no multiply");
}

}  // namespace pv::sgx
