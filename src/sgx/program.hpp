// PlugVolt — victim programs.
//
// Attacks fault *computations*, and defenses instrument them — Minefield
// rewrites the instruction stream, enclaves single-step it.  A Program is
// a small straight-line instruction list over a 16-register file, with
// per-instruction fault semantics driven by the machine's fault model.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/instr.hpp"
#include "sim/machine.hpp"

namespace pv::sgx {

/// Register file + machine binding a program executes against.  The
/// machine pointer is null during reference (fault-free) evaluation.
struct VictimContext {
    sim::Machine* machine = nullptr;
    unsigned core = 0;
    std::array<std::uint64_t, 16> regs{};
};

/// Register operands of a multiply, exposed so instrumentation passes
/// (Minefield) can synthesize consistency checks.
struct MulOperands {
    unsigned dst = 0, a = 0, b = 0;
};

/// One victim instruction: a timing class (for the fault physics) plus
/// architectural semantics.  `semantics` receives whether this dynamic
/// instance faulted and must apply the corresponding result.
struct VictimInstr {
    sim::InstrClass cls = sim::InstrClass::Alu;
    std::string mnemonic;
    /// Applies the result; `faulted` tells it to corrupt its output.
    std::function<void(VictimContext&, bool faulted)> semantics;
    /// Set on multiplies so compiler passes can instrument them.
    std::optional<MulOperands> mul_ops;
    /// True for defense-inserted checks (Minefield traps): traps return
    /// whether they detected an inconsistency.
    bool is_trap = false;
    std::function<bool(VictimContext&)> trap_check;
};

using Program = std::vector<VictimInstr>;

/// rX = rA * rB (wrapping 64-bit); faults corrupt the product the way an
/// undervolted multiplier does.
[[nodiscard]] VictimInstr make_imul(unsigned dst, unsigned a, unsigned b);

/// rX = rA + rB; on the (much shorter) ALU path.
[[nodiscard]] VictimInstr make_add(unsigned dst, unsigned a, unsigned b);

/// rX = imm.
[[nodiscard]] VictimInstr make_load_imm(unsigned dst, std::uint64_t imm);

/// rX = rA ^ rB.
[[nodiscard]] VictimInstr make_xor(unsigned dst, unsigned a, unsigned b);

/// A Minefield-style trap: recompute rA * rB and trap if it differs from
/// rDst (i.e. the preceding multiply was faulted).
[[nodiscard]] VictimInstr make_mul_trap(unsigned dst, unsigned a, unsigned b);

/// A chain of `n` dependent multiplies r2 = r0 * r1; r0 = r2 ^ r1; ...
/// — the classic Plundervolt victim loop, unrolled.
[[nodiscard]] Program make_mul_chain(std::uint64_t seed_a, std::uint64_t seed_b, std::size_t n);

/// Reference (fault-free) final register file of a program, computed
/// without touching the machine.  Used to decide whether an output was
/// corrupted.
[[nodiscard]] std::array<std::uint64_t, 16> reference_run(const Program& program,
                                                          std::array<std::uint64_t, 16> regs = {});

/// Reference register file after executing only program[0..count).
[[nodiscard]] std::array<std::uint64_t, 16> reference_run_prefix(
    const Program& program, std::size_t count, std::array<std::uint64_t, 16> regs = {});

/// Index of the last non-trap multiply in `program`; throws ConfigError
/// if there is none.  (What a stepping attacker targets.)
[[nodiscard]] std::size_t last_mul_index(const Program& program);

}  // namespace pv::sgx
