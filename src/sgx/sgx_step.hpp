// PlugVolt — SGX-Step-style interrupt adversary.
//
// SGX-Step abuses the APIC timer to interrupt an enclave after every
// single instruction (AEX), giving the attacker a hook between any two
// victim instructions; zero-stepping additionally lets it replay/suppress
// forward progress — unbounded time between fault injection and whatever
// the enclave would do next.  The paper leans on exactly this capability
// to argue that trap-deflection defenses (Minefield) need third-party
// help, while the PlugVolt countermeasure does not care (Sec. 4.1).
#pragma once

#include <cstddef>
#include <functional>

namespace pv::sgx {

/// What the adversary can do to enclave execution.
struct StepperCapabilities {
    bool single_step = true;  ///< AEX after every instruction
    bool zero_step = false;   ///< suppress forward progress at will
};

/// Adversary decision at each AEX.
enum class StepAction {
    Continue,          ///< resume the enclave normally
    SuppressProgress,  ///< zero-step: the remaining program never retires
};

/// The stepping adversary attached to an enclave.
class SgxStep {
public:
    /// `on_step(index)` fires after instruction `index` retires (single-
    /// stepping).  Returning SuppressProgress only has effect when the
    /// zero-step capability is present.
    using StepHook = std::function<StepAction(std::size_t instr_index)>;

    explicit SgxStep(StepperCapabilities caps) : caps_(caps) {}

    void set_on_step(StepHook hook) { hook_ = std::move(hook); }

    [[nodiscard]] const StepperCapabilities& capabilities() const { return caps_; }

    /// Called by the enclave runtime at each AEX boundary.
    [[nodiscard]] StepAction step(std::size_t instr_index) const {
        if (!caps_.single_step || !hook_) return StepAction::Continue;
        const StepAction a = hook_(instr_index);
        if (a == StepAction::SuppressProgress && !caps_.zero_step)
            return StepAction::Continue;  // capability not present
        return a;
    }

private:
    StepperCapabilities caps_;
    StepHook hook_;
};

}  // namespace pv::sgx
