#include "sgx/attestation.hpp"

namespace pv::sgx {

VerifyResult verify(const AttestationReport& report, const AttestationPolicy& policy) {
    if (policy.require_ocm_disabled && !report.features.ocm_disabled)
        return {false, "policy requires the overclocking mailbox to be disabled"};
    if (policy.require_plugvolt_module && !report.features.plugvolt_module_loaded)
        return {false, "policy requires the PlugVolt countermeasure module to be loaded"};
    return {true, "accepted"};
}

std::uint64_t measure_enclave(const std::string& name) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

}  // namespace pv::sgx
