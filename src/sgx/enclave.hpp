// PlugVolt — enclave execution model.
//
// An Enclave runs a victim Program on a core.  Execution is faithful to
// the properties the paper's arguments rest on:
//  - each instruction's fault outcome comes from the machine's physics
//    (so undervolting the package faults enclave multiplies exactly like
//    non-enclave ones — SGX does not protect against DVFS faults);
//  - an attached SgxStep adversary gets an AEX hook after every retired
//    instruction, and with zero-stepping may suppress the rest of the
//    program (defeating in-enclave trap deflection);
//  - Minefield-style traps abort the run with `detected` when their
//    consistency check fails.
#pragma once

#include <cstdint>
#include <string>

#include "sgx/program.hpp"
#include "sgx/sgx_step.hpp"
#include "sim/machine.hpp"

namespace pv::sgx {

class SgxRuntime;

/// Outcome of one enclave entry.
struct EnclaveRunResult {
    bool completed = false;      ///< ran to the end of the program
    bool trap_detected = false;  ///< a defense trap fired (run aborted)
    bool suppressed = false;     ///< zero-stepping adversary froze progress
    bool machine_crashed = false;
    std::uint64_t aex_count = 0; ///< asynchronous exits (adversary interrupts)
    std::array<std::uint64_t, 16> regs{};  ///< architectural state at exit
};

/// A loaded enclave bound to a core.
class Enclave {
public:
    Enclave(SgxRuntime& runtime, std::string name, unsigned core);
    ~Enclave();

    Enclave(const Enclave&) = delete;
    Enclave& operator=(const Enclave&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] unsigned core() const { return core_; }

    /// Attach (or detach with nullptr) a stepping adversary.  Non-owning;
    /// the stepper must outlive the run.
    void attach_stepper(const SgxStep* stepper) { stepper_ = stepper; }

    /// EENTER: run `program` to completion, trap, suppression or crash.
    EnclaveRunResult run(const Program& program);

private:
    SgxRuntime& runtime_;
    std::string name_;
    unsigned core_;
    const SgxStep* stepper_ = nullptr;
};

}  // namespace pv::sgx
