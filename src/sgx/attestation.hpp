// PlugVolt — SGX attestation model.
//
// Remote attestation is the protocol hinge of the whole defense
// comparison.  Intel's SA-00289 response added the OCM-disabled status
// to attestation reports; the paper proposes *replacing* that bit with
// the load state of the PlugVolt kernel module — keeping OCM usable by
// benign software while letting clients refuse service to platforms
// where the countermeasure was unloaded (Sec. 4.1).
#pragma once

#include <cstdint>
#include <string>

namespace pv::sgx {

/// Platform feature bits included in a quote (alongside the enclave
/// measurement).  Mirrors how hyperthreading status is already attested.
struct PlatformFeatures {
    bool ocm_disabled = false;            ///< Intel SA-00289 bit
    bool hyperthreading_enabled = false;
    bool plugvolt_module_loaded = false;  ///< the paper's proposed bit
    std::string microcode;                ///< platform microcode revision
};

/// A (drastically simplified) attestation quote.
struct AttestationReport {
    std::uint64_t mrenclave = 0;  ///< measurement of the enclave identity
    PlatformFeatures features;
};

/// Client-side verification policy.
struct AttestationPolicy {
    /// Pre-SA-00289 clients accept anything; patched clients require the
    /// OCM bit; PlugVolt clients require the module bit instead.
    bool require_ocm_disabled = false;
    bool require_plugvolt_module = false;
};

/// Verdict of verifying a report against a policy.
struct VerifyResult {
    bool accepted = false;
    std::string reason;
};

/// Evaluate `report` under `policy`.
[[nodiscard]] VerifyResult verify(const AttestationReport& report,
                                  const AttestationPolicy& policy);

/// FNV-1a measurement of an enclave name (stand-in for MRENCLAVE).
[[nodiscard]] std::uint64_t measure_enclave(const std::string& name);

}  // namespace pv::sgx
