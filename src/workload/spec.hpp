// PlugVolt — the SPEC CPU2017 rate stand-in suite.
//
// Twenty-three kernels, one per row of the paper's Table 2.  Each is a
// small but genuine computation in the same algorithmic family as its
// namesake (stencil for bwaves, N-body for namd, SAD search for x264,
// bitboards for deepsjeng, ...), with an instruction-mix cost model
// calibrated to a plausible IPC for that family.  The suite runner
// (SpecSuite) executes the cost models on the simulated machine; the
// real kernels back the unit tests.
#pragma once

#include <memory>
#include <vector>

#include "workload/workload.hpp"

namespace pv::workload {

// --- SPECrate 2017 Floating Point ----------------------------------------
[[nodiscard]] std::unique_ptr<Workload> make_bwaves(std::uint64_t seed);      // 503
[[nodiscard]] std::unique_ptr<Workload> make_cactubssn(std::uint64_t seed);   // 507
[[nodiscard]] std::unique_ptr<Workload> make_namd(std::uint64_t seed);        // 508
[[nodiscard]] std::unique_ptr<Workload> make_parest(std::uint64_t seed);      // 510
[[nodiscard]] std::unique_ptr<Workload> make_povray(std::uint64_t seed);      // 511
[[nodiscard]] std::unique_ptr<Workload> make_lbm(std::uint64_t seed);         // 519
[[nodiscard]] std::unique_ptr<Workload> make_wrf(std::uint64_t seed);         // 521
[[nodiscard]] std::unique_ptr<Workload> make_blender(std::uint64_t seed);     // 526
[[nodiscard]] std::unique_ptr<Workload> make_cam4(std::uint64_t seed);        // 527
[[nodiscard]] std::unique_ptr<Workload> make_imagick(std::uint64_t seed);     // 538
[[nodiscard]] std::unique_ptr<Workload> make_nab(std::uint64_t seed);         // 544
[[nodiscard]] std::unique_ptr<Workload> make_fotonik3d(std::uint64_t seed);   // 549
[[nodiscard]] std::unique_ptr<Workload> make_roms(std::uint64_t seed);        // 554

// --- SPECrate 2017 Integer ------------------------------------------------
[[nodiscard]] std::unique_ptr<Workload> make_perlbench(std::uint64_t seed);   // 500
[[nodiscard]] std::unique_ptr<Workload> make_gcc(std::uint64_t seed);         // 502
[[nodiscard]] std::unique_ptr<Workload> make_mcf(std::uint64_t seed);         // 505
[[nodiscard]] std::unique_ptr<Workload> make_omnetpp(std::uint64_t seed);     // 520
[[nodiscard]] std::unique_ptr<Workload> make_xalancbmk(std::uint64_t seed);   // 523
[[nodiscard]] std::unique_ptr<Workload> make_x264(std::uint64_t seed);        // 525
[[nodiscard]] std::unique_ptr<Workload> make_deepsjeng(std::uint64_t seed);   // 531
[[nodiscard]] std::unique_ptr<Workload> make_leela(std::uint64_t seed);       // 541
[[nodiscard]] std::unique_ptr<Workload> make_exchange2(std::uint64_t seed);   // 548
[[nodiscard]] std::unique_ptr<Workload> make_xz(std::uint64_t seed);          // 557

/// The full 23-kernel suite in Table 2 order (FP block then INT block).
[[nodiscard]] std::vector<std::unique_ptr<Workload>> spec2017_rate_suite(std::uint64_t seed);

}  // namespace pv::workload
