// SPECrate 2017 FP stand-ins: one genuine kernel per benchmark family.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "workload/spec.hpp"

namespace pv::workload {
namespace {

std::uint64_t fold(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
}

/// 503.bwaves_r: blast-wave solver — 3D 7-point Laplacian sweeps.
class Bwaves final : public SpecKernelBase {
public:
    explicit Bwaves(std::uint64_t seed)
        : SpecKernelBase("503.bwaves_r", {1'400'000, 2.1}, seed), grid_(kN * kN * kN) {
        for (auto& v : grid_) v = rng_.uniform(-1.0, 1.0);
        next_ = grid_;
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            for (int z = 1; z < kN - 1; ++z)
                for (int y = 1; y < kN - 1; ++y)
                    for (int x = 1; x < kN - 1; ++x) {
                        const double c = at(x, y, z);
                        next_[idx(x, y, z)] =
                            c + 0.1 * (at(x - 1, y, z) + at(x + 1, y, z) + at(x, y - 1, z) +
                                       at(x, y + 1, z) + at(x, y, z - 1) + at(x, y, z + 1) -
                                       6.0 * c);
                    }
            grid_.swap(next_);
            h = mix(h, fold(at(kN / 2, kN / 2, kN / 2)));
        }
        return h;
    }

private:
    static constexpr int kN = 20;
    static std::size_t idx(int x, int y, int z) {
        return static_cast<std::size_t>((z * kN + y) * kN + x);
    }
    double at(int x, int y, int z) const { return grid_[idx(x, y, z)]; }
    std::vector<double> grid_, next_;
};

/// 507.cactuBSSN_r: numerical relativity — wave equation with a
/// second-order leapfrog update.
class CactuBssn final : public SpecKernelBase {
public:
    explicit CactuBssn(std::uint64_t seed)
        : SpecKernelBase("507.cactuBSSN_r", {1'600'000, 1.9}, seed),
          cur_(kN * kN), prev_(kN * kN), next_(kN * kN) {
        for (auto& v : cur_) v = rng_.uniform(-0.5, 0.5);
        prev_ = cur_;
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        constexpr double c2 = 0.24;
        for (std::uint64_t u = 0; u < units; ++u) {
            for (int y = 1; y < kN - 1; ++y)
                for (int x = 1; x < kN - 1; ++x) {
                    const auto i = static_cast<std::size_t>(y * kN + x);
                    constexpr auto kStride = static_cast<std::size_t>(kN);
                    const double lap = cur_[i - 1] + cur_[i + 1] + cur_[i - kStride] +
                                       cur_[i + kStride] - 4.0 * cur_[i];
                    next_[i] = 2.0 * cur_[i] - prev_[i] + c2 * lap;
                }
            prev_.swap(cur_);
            cur_.swap(next_);
            h = mix(h, fold(cur_[kN * kN / 2]));
        }
        return h;
    }

private:
    static constexpr int kN = 56;
    std::vector<double> cur_, prev_, next_;
};

/// 508.namd_r: molecular dynamics — Lennard-Jones pairwise forces.
class Namd final : public SpecKernelBase {
public:
    explicit Namd(std::uint64_t seed)
        : SpecKernelBase("508.namd_r", {1'900'000, 2.3}, seed), pos_(3 * kAtoms),
          force_(3 * kAtoms) {
        for (auto& p : pos_) p = rng_.uniform(0.0, 8.0);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::fill(force_.begin(), force_.end(), 0.0);
            for (std::size_t i = 0; i < kAtoms; ++i)
                for (std::size_t j = i + 1; j < kAtoms; ++j) {
                    const double dx = pos_[3 * i] - pos_[3 * j];
                    const double dy = pos_[3 * i + 1] - pos_[3 * j + 1];
                    const double dz = pos_[3 * i + 2] - pos_[3 * j + 2];
                    const double r2 = dx * dx + dy * dy + dz * dz + 0.01;
                    const double inv6 = 1.0 / (r2 * r2 * r2);
                    const double f = (24.0 * inv6 - 48.0 * inv6 * inv6) / r2;
                    force_[3 * i] += f * dx;
                    force_[3 * j] -= f * dx;
                    force_[3 * i + 1] += f * dy;
                    force_[3 * j + 1] -= f * dy;
                    force_[3 * i + 2] += f * dz;
                    force_[3 * j + 2] -= f * dz;
                }
            for (std::size_t i = 0; i < 3 * kAtoms; ++i) pos_[i] += 1e-5 * force_[i];
            h = mix(h, fold(force_[1]));
        }
        return h;
    }

private:
    static constexpr std::size_t kAtoms = 96;
    std::vector<double> pos_, force_;
};

/// 510.parest_r: finite elements — CSR sparse matrix-vector + Jacobi.
class Parest final : public SpecKernelBase {
public:
    explicit Parest(std::uint64_t seed)
        : SpecKernelBase("510.parest_r", {1'200'000, 1.5}, seed) {
        // Random sparse SPD-ish matrix: diagonal dominance.
        for (std::size_t r = 0; r < kRows; ++r) {
            row_ptr_.push_back(static_cast<int>(cols_.size()));
            double off_sum = 0.0;
            for (int k = 0; k < 6; ++k) {
                const int c = static_cast<int>(rng_.uniform_below(kRows));
                const double v = rng_.uniform(-0.4, 0.4);
                cols_.push_back(c);
                vals_.push_back(v);
                off_sum += std::abs(v);
            }
            diag_.push_back(off_sum + 1.0);
        }
        row_ptr_.push_back(static_cast<int>(cols_.size()));
        x_.assign(kRows, 0.0);
        b_.resize(kRows);
        for (auto& v : b_) v = rng_.uniform(-1.0, 1.0);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        std::vector<double> xn(kRows);
        for (std::uint64_t u = 0; u < units; ++u) {
            for (int it = 0; it < 4; ++it) {
                for (std::size_t r = 0; r < kRows; ++r) {
                    double acc = b_[r];
                    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
                        acc -= vals_[static_cast<std::size_t>(k)] *
                               x_[static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)])];
                    xn[r] = acc / diag_[r];
                }
                x_.swap(xn);
            }
            h = mix(h, fold(x_[kRows / 3]));
        }
        return h;
    }

private:
    static constexpr std::size_t kRows = 1500;
    std::vector<int> row_ptr_, cols_;
    std::vector<double> vals_, diag_, x_, b_;
};

/// 511.povray_r: ray tracing — ray/sphere intersection batches.
class Povray final : public SpecKernelBase {
public:
    explicit Povray(std::uint64_t seed)
        : SpecKernelBase("511.povray_r", {1'500'000, 2.0}, seed) {
        for (auto& s : spheres_)
            s = {rng_.uniform(-4, 4), rng_.uniform(-4, 4), rng_.uniform(2, 10),
                 rng_.uniform(0.3, 1.2)};
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            double acc = 0.0;
            for (int py = 0; py < kRes; ++py)
                for (int px = 0; px < kRes; ++px) {
                    const double dx = (px - kRes / 2) / static_cast<double>(kRes);
                    const double dy = (py - kRes / 2) / static_cast<double>(kRes);
                    const double norm = 1.0 / std::sqrt(dx * dx + dy * dy + 1.0);
                    double nearest = 1e30;
                    for (const auto& s : spheres_) {
                        // |o + t*d - c|^2 = r^2 with o = origin.
                        const double ocx = -s[0], ocy = -s[1], ocz = -s[2];
                        const double b = 2.0 * norm * (ocx * dx + ocy * dy + ocz);
                        const double c =
                            ocx * ocx + ocy * ocy + ocz * ocz - s[3] * s[3];
                        const double disc = b * b - 4.0 * c;
                        if (disc > 0.0) {
                            const double t = (-b - std::sqrt(disc)) * 0.5;
                            if (t > 0.0 && t < nearest) nearest = t;
                        }
                    }
                    if (nearest < 1e29) acc += 1.0 / nearest;
                }
            h = mix(h, fold(acc));
        }
        return h;
    }

private:
    static constexpr int kRes = 48;
    std::array<std::array<double, 4>, 12> spheres_{};
};

/// 519.lbm_r: lattice Boltzmann D2Q9 stream + BGK collide.
class Lbm final : public SpecKernelBase {
public:
    explicit Lbm(std::uint64_t seed)
        : SpecKernelBase("519.lbm_r", {1'700'000, 1.4}, seed), f_(9u * kN * kN, 1.0 / 9.0),
          tmp_(f_) {
        for (auto& v : f_) v += rng_.uniform(-0.01, 0.01);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        static constexpr int ex[9] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
        static constexpr int ey[9] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
        static constexpr double w[9] = {4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
                                        1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};
        constexpr double omega = 1.2;
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            // Streaming with periodic wrap.
            for (unsigned q = 0; q < 9; ++q)
                for (unsigned y = 0; y < kN; ++y)
                    for (unsigned x = 0; x < kN; ++x) {
                        const int n = static_cast<int>(kN);
                        const auto sx = static_cast<unsigned>(
                            (static_cast<int>(x) - ex[q] + n) % n);
                        const auto sy = static_cast<unsigned>(
                            (static_cast<int>(y) - ey[q] + n) % n);
                        tmp_[(q * kN + y) * kN + x] = f_[(q * kN + sy) * kN + sx];
                    }
            // Collision.
            for (unsigned cell = 0; cell < kN * kN; ++cell) {
                double rho = 0.0, ux = 0.0, uy = 0.0;
                for (unsigned q = 0; q < 9; ++q) {
                    const double fq = tmp_[q * kN * kN + cell];
                    rho += fq;
                    ux += fq * ex[q];
                    uy += fq * ey[q];
                }
                ux /= rho;
                uy /= rho;
                const double uu = ux * ux + uy * uy;
                for (unsigned q = 0; q < 9; ++q) {
                    const double eu = ex[q] * ux + ey[q] * uy;
                    const double feq =
                        w[q] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * uu);
                    f_[q * kN * kN + cell] =
                        tmp_[q * kN * kN + cell] * (1.0 - omega) + omega * feq;
                }
            }
            h = mix(h, fold(f_[kN * kN / 2]));
        }
        return h;
    }

private:
    static constexpr unsigned kN = 24;
    std::vector<double> f_, tmp_;
};

/// 521.wrf_r: weather — 2D upwind advection of a scalar field.
class Wrf final : public SpecKernelBase {
public:
    explicit Wrf(std::uint64_t seed)
        : SpecKernelBase("521.wrf_r", {1'300'000, 1.8}, seed), q_(kN * kN), qn_(kN * kN) {
        for (auto& v : q_) v = rng_.uniform(0.0, 1.0);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        constexpr double u_wind = 0.35, v_wind = -0.2;
        std::uint64_t h = 0;
        for (std::uint64_t it = 0; it < units; ++it) {
            for (int y = 0; y < kN; ++y)
                for (int x = 0; x < kN; ++x) {
                    const int xm = (x - 1 + kN) % kN, ym = (y - 1 + kN) % kN;
                    const int xp = (x + 1) % kN, yp = (y + 1) % kN;
                    const double dqx = u_wind > 0 ? q_[at(x, y)] - q_[at(xm, y)]
                                                  : q_[at(xp, y)] - q_[at(x, y)];
                    const double dqy = v_wind > 0 ? q_[at(x, y)] - q_[at(x, ym)]
                                                  : q_[at(x, yp)] - q_[at(x, y)];
                    qn_[at(x, y)] = q_[at(x, y)] - u_wind * dqx - v_wind * dqy;
                }
            q_.swap(qn_);
            h = mix(h, fold(q_[at(kN / 2, kN / 3)]));
        }
        return h;
    }

private:
    static constexpr int kN = 52;
    static std::size_t at(int x, int y) { return static_cast<std::size_t>(y * kN + x); }
    std::vector<double> q_, qn_;
};

/// 526.blender_r: rendering — mat4 vertex transform + viewport clip.
class Blender final : public SpecKernelBase {
public:
    explicit Blender(std::uint64_t seed)
        : SpecKernelBase("526.blender_r", {1'450'000, 2.2}, seed), verts_(4u * kVerts) {
        for (auto& v : verts_) v = rng_.uniform(-2.0, 2.0);
        for (unsigned i = 0; i < kVerts; ++i) verts_[4 * i + 3] = 1.0;
        double angle = 0.3;
        mat_ = {std::cos(angle), -std::sin(angle), 0, 0.1,
                std::sin(angle), std::cos(angle),  0, 0.2,
                0,               0,                1, 3.0,
                0,               0,                0, 1.0};
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            double clipped = 0.0;
            for (unsigned rep = 0; rep < 12; ++rep)
                for (unsigned i = 0; i < kVerts; ++i) {
                    double out[4];
                    for (unsigned r = 0; r < 4; ++r) {
                        out[r] = 0.0;
                        for (unsigned c = 0; c < 4; ++c)
                            out[r] += mat_[4 * r + c] * verts_[4 * i + c];
                    }
                    const double inv_w = 1.0 / (out[3] + 4.0);
                    const double sx = out[0] * inv_w, sy = out[1] * inv_w;
                    if (sx > -1.0 && sx < 1.0 && sy > -1.0 && sy < 1.0) clipped += sx * sy;
                }
            h = mix(h, fold(clipped));
        }
        return h;
    }

private:
    static constexpr unsigned kVerts = 700;
    std::vector<double> verts_;
    std::array<double, 16> mat_{};
};

/// 527.cam4_r: climate — column physics with transcendental loads.
class Cam4 final : public SpecKernelBase {
public:
    explicit Cam4(std::uint64_t seed)
        : SpecKernelBase("527.cam4_r", {1'350'000, 1.6}, seed), temp_(kCols * kLevels) {
        for (auto& t : temp_) t = rng_.uniform(210.0, 300.0);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            double flux = 0.0;
            for (unsigned c = 0; c < kCols; ++c) {
                double optical_depth = 0.0;
                for (unsigned l = 0; l < kLevels; ++l) {
                    double& t = temp_[c * kLevels + l];
                    // Saturation vapour pressure (Clausius-Clapeyron) and
                    // grey-body emission per level.
                    const double es = 610.8 * std::exp(17.27 * (t - 273.15) / (t - 35.85));
                    optical_depth += 1e-5 * es;
                    const double emission = 5.67e-8 * t * t * t * t *
                                            std::exp(-optical_depth);
                    flux += emission;
                    t += 1e-7 * (emission - 230.0);
                }
            }
            h = mix(h, fold(flux));
        }
        return h;
    }

private:
    static constexpr unsigned kCols = 40, kLevels = 26;
    std::vector<double> temp_;
};

/// 538.imagick_r: image processing — separable 5x5 Gaussian blur.
class Imagick final : public SpecKernelBase {
public:
    explicit Imagick(std::uint64_t seed)
        : SpecKernelBase("538.imagick_r", {1'250'000, 2.0}, seed), img_(kN * kN),
          tmp_(kN * kN) {
        for (auto& p : img_) p = rng_.uniform(0.0, 255.0);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        static constexpr double k[5] = {0.0625, 0.25, 0.375, 0.25, 0.0625};
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            for (int y = 0; y < kN; ++y)
                for (int x = 0; x < kN; ++x) {
                    double acc = 0.0;
                    for (int d = -2; d <= 2; ++d)
                        acc += k[d + 2] * img_[at((x + d + kN) % kN, y)];
                    tmp_[at(x, y)] = acc;
                }
            for (int y = 0; y < kN; ++y)
                for (int x = 0; x < kN; ++x) {
                    double acc = 0.0;
                    for (int d = -2; d <= 2; ++d)
                        acc += k[d + 2] * tmp_[at(x, (y + d + kN) % kN)];
                    img_[at(x, y)] = acc;
                }
            h = mix(h, fold(img_[at(kN / 4, kN / 4)]));
        }
        return h;
    }

private:
    static constexpr int kN = 56;
    static std::size_t at(int x, int y) { return static_cast<std::size_t>(y * kN + x); }
    std::vector<double> img_, tmp_;
};

/// 544.nab_r: molecular modeling — distance matrix + Born radii pass.
class Nab final : public SpecKernelBase {
public:
    explicit Nab(std::uint64_t seed)
        : SpecKernelBase("544.nab_r", {1'550'000, 1.9}, seed), pos_(3 * kAtoms),
          radii_(kAtoms) {
        for (auto& p : pos_) p = rng_.uniform(0.0, 12.0);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            double energy = 0.0;
            for (std::size_t i = 0; i < kAtoms; ++i) {
                double born = 0.0;
                for (std::size_t j = 0; j < kAtoms; ++j) {
                    if (i == j) continue;
                    const double dx = pos_[3 * i] - pos_[3 * j];
                    const double dy = pos_[3 * i + 1] - pos_[3 * j + 1];
                    const double dz = pos_[3 * i + 2] - pos_[3 * j + 2];
                    const double r = std::sqrt(dx * dx + dy * dy + dz * dz + 1e-3);
                    born += std::exp(-r * 0.4) / r;
                }
                radii_[i] = 1.0 / (0.1 + born);
                energy += radii_[i];
            }
            pos_[0] += 1e-6 * energy;
            h = mix(h, fold(energy));
        }
        return h;
    }

private:
    static constexpr std::size_t kAtoms = 110;
    std::vector<double> pos_, radii_;
};

/// 549.fotonik3d_r: photonics — 2D FDTD (Yee) TE update.
class Fotonik3d final : public SpecKernelBase {
public:
    explicit Fotonik3d(std::uint64_t seed)
        : SpecKernelBase("549.fotonik3d_r", {1'500'000, 1.7}, seed), ez_(kN * kN),
          hx_(kN * kN), hy_(kN * kN) {
        // A dipole excitation in the middle, random permittivity texture.
        eps_inv_.resize(kN * kN);
        for (auto& e : eps_inv_) e = 1.0 / rng_.uniform(1.0, 4.0);
        ez_[at(kN / 2, kN / 2)] = 1.0;
    }

    std::uint64_t run_units(std::uint64_t units) override {
        constexpr double dt = 0.45;
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            for (int y = 0; y < kN - 1; ++y)
                for (int x = 0; x < kN - 1; ++x) {
                    hx_[at(x, y)] -= dt * (ez_[at(x, y + 1)] - ez_[at(x, y)]);
                    hy_[at(x, y)] += dt * (ez_[at(x + 1, y)] - ez_[at(x, y)]);
                }
            for (int y = 1; y < kN - 1; ++y)
                for (int x = 1; x < kN - 1; ++x)
                    ez_[at(x, y)] += dt * eps_inv_[at(x, y)] *
                                     ((hy_[at(x, y)] - hy_[at(x - 1, y)]) -
                                      (hx_[at(x, y)] - hx_[at(x, y - 1)]));
            h = mix(h, fold(ez_[at(kN / 2 + 3, kN / 2)]));
        }
        return h;
    }

private:
    static constexpr int kN = 54;
    static std::size_t at(int x, int y) { return static_cast<std::size_t>(y * kN + x); }
    std::vector<double> ez_, hx_, hy_, eps_inv_;
};

/// 554.roms_r: ocean modeling — shallow-water equations step.
class Roms final : public SpecKernelBase {
public:
    explicit Roms(std::uint64_t seed)
        : SpecKernelBase("554.roms_r", {1'400'000, 1.7}, seed), eta_(kN * kN), u_(kN * kN),
          v_(kN * kN) {
        for (auto& e : eta_) e = rng_.uniform(-0.1, 0.1);
    }

    std::uint64_t run_units(std::uint64_t units) override {
        constexpr double g = 9.81, dt = 0.01, depth = 10.0;
        std::uint64_t h = 0;
        for (std::uint64_t it = 0; it < units; ++it) {
            for (int y = 0; y < kN; ++y)
                for (int x = 0; x < kN; ++x) {
                    const int xp = (x + 1) % kN, yp = (y + 1) % kN;
                    u_[at(x, y)] -= dt * g * (eta_[at(xp, y)] - eta_[at(x, y)]);
                    v_[at(x, y)] -= dt * g * (eta_[at(x, yp)] - eta_[at(x, y)]);
                }
            for (int y = 0; y < kN; ++y)
                for (int x = 0; x < kN; ++x) {
                    const int xm = (x - 1 + kN) % kN, ym = (y - 1 + kN) % kN;
                    eta_[at(x, y)] -= dt * depth *
                                      ((u_[at(x, y)] - u_[at(xm, y)]) +
                                       (v_[at(x, y)] - v_[at(x, ym)]));
                }
            h = mix(h, fold(eta_[at(kN / 3, kN / 5)]));
        }
        return h;
    }

private:
    static constexpr int kN = 50;
    static std::size_t at(int x, int y) { return static_cast<std::size_t>(y * kN + x); }
    std::vector<double> eta_, u_, v_;
};

}  // namespace

std::unique_ptr<Workload> make_bwaves(std::uint64_t seed) { return std::make_unique<Bwaves>(seed); }
std::unique_ptr<Workload> make_cactubssn(std::uint64_t seed) { return std::make_unique<CactuBssn>(seed); }
std::unique_ptr<Workload> make_namd(std::uint64_t seed) { return std::make_unique<Namd>(seed); }
std::unique_ptr<Workload> make_parest(std::uint64_t seed) { return std::make_unique<Parest>(seed); }
std::unique_ptr<Workload> make_povray(std::uint64_t seed) { return std::make_unique<Povray>(seed); }
std::unique_ptr<Workload> make_lbm(std::uint64_t seed) { return std::make_unique<Lbm>(seed); }
std::unique_ptr<Workload> make_wrf(std::uint64_t seed) { return std::make_unique<Wrf>(seed); }
std::unique_ptr<Workload> make_blender(std::uint64_t seed) { return std::make_unique<Blender>(seed); }
std::unique_ptr<Workload> make_cam4(std::uint64_t seed) { return std::make_unique<Cam4>(seed); }
std::unique_ptr<Workload> make_imagick(std::uint64_t seed) { return std::make_unique<Imagick>(seed); }
std::unique_ptr<Workload> make_nab(std::uint64_t seed) { return std::make_unique<Nab>(seed); }
std::unique_ptr<Workload> make_fotonik3d(std::uint64_t seed) { return std::make_unique<Fotonik3d>(seed); }
std::unique_ptr<Workload> make_roms(std::uint64_t seed) { return std::make_unique<Roms>(seed); }

}  // namespace pv::workload
