// PlugVolt — workload abstraction.
//
// Table 2 measures throughput interference between the polling module
// and SPEC CPU2017 rate.  Each workload here carries two faces:
//  - real computation (`run_units`) with a checksum, so tests can pin
//    down determinism and the kernels are not stubs;
//  - a calibrated cost model (dynamic instructions per unit and
//    sustained IPC) that the suite runner executes on the simulated
//    machine, where kernel threads steal real (simulated) cycles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace pv::workload {

/// Instruction-level cost of one work unit on the simulated core.
struct CostModel {
    std::uint64_t instructions_per_unit = 0;
    double ipc = 1.0;  ///< sustained instructions per cycle
};

/// A runnable benchmark kernel.
class Workload {
public:
    virtual ~Workload() = default;

    /// SPEC-style identifier, e.g. "503.bwaves_r".
    [[nodiscard]] virtual std::string_view name() const = 0;

    [[nodiscard]] virtual CostModel cost_model() const = 0;

    /// Execute `units` units of the real computation; returns a checksum
    /// over the results (deterministic for a given construction seed).
    [[nodiscard]] virtual std::uint64_t run_units(std::uint64_t units) = 0;
};

/// Shared base handling name/cost plumbing.
class SpecKernelBase : public Workload {
public:
    SpecKernelBase(std::string name, CostModel cost, std::uint64_t seed)
        : name_(std::move(name)), cost_(cost), rng_(seed) {}

    [[nodiscard]] std::string_view name() const final { return name_; }
    [[nodiscard]] CostModel cost_model() const final { return cost_; }

private:
    std::string name_;
    CostModel cost_;

protected:
    Rng rng_;  // NOLINT: after name_/cost_ to match the ctor init order
};

}  // namespace pv::workload
