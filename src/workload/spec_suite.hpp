// PlugVolt — SPECrate 2017 suite runner (the Table 2 harness).
//
// Measures each kernel's rate score on the simulated machine, with and
// without the polling countermeasure loaded, in both base and peak
// tunings.  The measurement is genuine: workload copies progress on all
// cores in lockstep windows of simulated time, and the polling kthreads'
// wakeups steal cycles from exactly those windows — overhead is whatever
// falls out, not an asserted constant.
//
// Rate anchoring: SPEC rate = copies * t_ref / t_measured.  We take the
// per-benchmark reference times t_ref such that the *without-polling*
// run reproduces the paper's Table 2 rate (their testbed anchor); the
// deltas — the actual subject of Table 2 — then emerge from the cycle
// accounting plus a small deterministic run-to-run jitter, mirroring how
// SPEC results scatter on real machines.
#pragma once

#include <vector>

#include "plugvolt/polling_module.hpp"
#include "plugvolt/safe_state.hpp"
#include "sim/cpu_profile.hpp"
#include "workload/workload.hpp"

namespace pv::workload {

/// Suite configuration.
struct SpecSuiteConfig {
    std::uint64_t seed = 2024;
    /// Work units each copy executes (cost-model instructions per unit
    /// come from the kernel).
    std::uint64_t units = 120;
    /// Lockstep accounting window.
    Picoseconds window = microseconds(100.0);
    /// All-core frequency for base tuning (0 = profile max minus 300 MHz,
    /// a typical all-core turbo) and peak tuning (0 = profile max).
    Megahertz base_freq{0.0};
    Megahertz peak_freq{0.0};
    /// Peak tuning's compiler-flag IPC bonus.
    double peak_ipc_bonus = 1.03;
    /// Run-to-run measurement jitter (1 sigma, fraction of elapsed).
    double noise_fraction = 0.003;
};

/// One Table 2 row.
struct SpecScore {
    std::string name;
    double base_rate_without = 0.0;
    double base_rate_with = 0.0;
    double peak_rate_without = 0.0;
    double peak_rate_with = 0.0;

    [[nodiscard]] double base_slowdown() const {
        return (base_rate_without - base_rate_with) / base_rate_without;
    }
    [[nodiscard]] double peak_slowdown() const {
        return (peak_rate_without - peak_rate_with) / peak_rate_without;
    }
};

/// Paper Table 2 anchors (Comet Lake, microcode 0xf4): the published
/// without-polling base and peak rates, in suite order.
struct PaperAnchor {
    const char* name;
    double base_rate;
    double peak_rate;
};
[[nodiscard]] const std::vector<PaperAnchor>& table2_anchors();

/// The Table 2 runner.
class SpecSuite {
public:
    SpecSuite(sim::CpuProfile profile, SpecSuiteConfig config);

    /// Measure one workload's rate at `freq` on a fresh machine.
    /// `with_polling` loads the countermeasure module first.
    /// `noise_salt` decorrelates the per-measurement jitter.
    [[nodiscard]] double measure_rate(Workload& workload, Megahertz freq, bool with_polling,
                                      const plugvolt::SafeStateMap& map,
                                      const plugvolt::PollingConfig& polling,
                                      double ipc_scale, double ref_seconds,
                                      std::uint64_t noise_salt);

    /// Run the full 23-benchmark, 4-configuration measurement.
    [[nodiscard]] std::vector<SpecScore> run(const plugvolt::SafeStateMap& map,
                                             const plugvolt::PollingConfig& polling);

    /// Measured elapsed (seconds, simulated) of the last measure_rate call.
    [[nodiscard]] double last_elapsed_seconds() const { return last_elapsed_s_; }

private:
    sim::CpuProfile profile_;
    SpecSuiteConfig config_;
    double last_elapsed_s_ = 0.0;
};

}  // namespace pv::workload
