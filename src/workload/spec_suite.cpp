#include "workload/spec_suite.hpp"

#include <memory>

#include "os/cpupower.hpp"
#include "os/kernel.hpp"
#include "util/error.hpp"
#include "workload/spec.hpp"

namespace pv::workload {

const std::vector<PaperAnchor>& table2_anchors() {
    static const std::vector<PaperAnchor> anchors = {
        {"503.bwaves_r", 628.59, 604.21},   {"507.cactuBSSN_r", 222.95, 202.87},
        {"508.namd_r", 175.96, 179.55},     {"510.parest_r", 387.96, 324.46},
        {"511.povray_r", 328.67, 267.29},   {"519.lbm_r", 224.08, 176.56},
        {"521.wrf_r", 404.21, 428.21},      {"526.blender_r", 256.54, 239.52},
        {"527.cam4_r", 315.77, 324.12},     {"538.imagick_r", 401.88, 318.06},
        {"544.nab_r", 315.25, 282.02},      {"549.fotonik3d_r", 418.76, 415.46},
        {"554.roms_r", 322.51, 279.39},     {"500.perlbench_r", 295.87511, 253.71},
        {"502.gcc_r", 221.4159, 218.91},    {"505.mcf_r", 339.97, 297.68},
        {"520.omnetpp_r", 509.805, 479.08}, {"523.xalancbmk_r", 287.7046, 283.57},
        {"525.x264_r", 318.11903, 290.76},  {"531.deepsjeng_r", 306.148284, 284.09},
        {"541.leela_r", 417.2528, 383.03},  {"548.exchange2_r", 345.38, 248.6},
        {"557.xz_r", 387.71, 373.41},
    };
    return anchors;
}

SpecSuite::SpecSuite(sim::CpuProfile profile, SpecSuiteConfig config)
    : profile_(std::move(profile)), config_(config) {
    if (config_.units == 0) throw ConfigError("spec suite needs nonzero units");
    if (config_.base_freq.value() <= 0.0)
        config_.base_freq = Megahertz{profile_.freq_max.value() - 300.0};
    if (config_.peak_freq.value() <= 0.0) config_.peak_freq = profile_.freq_max;
}

double SpecSuite::measure_rate(Workload& workload, Megahertz freq, bool with_polling,
                               const plugvolt::SafeStateMap& map,
                               const plugvolt::PollingConfig& polling, double ipc_scale,
                               double ref_seconds, std::uint64_t noise_salt) {
    sim::Machine machine(profile_, config_.seed ^ noise_salt);
    os::Kernel kernel(machine);
    if (with_polling)
        kernel.load_module(std::make_shared<plugvolt::PollingModule>(map, polling));

    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(freq);
    const Picoseconds settle = machine.rail_settle_time();
    if (settle > machine.now()) machine.advance_to(settle);

    const CostModel cost = workload.cost_model();
    const double total_instructions =
        static_cast<double>(config_.units) * static_cast<double>(cost.instructions_per_unit);
    const unsigned copies = machine.core_count();

    std::vector<double> remaining(copies, total_instructions);
    std::vector<Picoseconds> finish(copies, Picoseconds{0});
    const Picoseconds start = machine.now();

    bool any_left = true;
    while (any_left) {
        machine.advance(config_.window);  // kthreads fire here and add steals
        any_left = false;
        for (unsigned c = 0; c < copies; ++c) {
            if (remaining[c] <= 0.0) continue;
            sim::Core& core = machine.core(c);
            const Picoseconds stolen = core.drain_steal(config_.window);
            const double avail_s = (config_.window - stolen).seconds();
            const double rate_ips = core.frequency().value() * 1e6 * cost.ipc * ipc_scale;
            remaining[c] -= avail_s * rate_ips;
            if (remaining[c] <= 0.0) {
                // Interpolate the finish instant inside the window so the
                // measurement is not quantized to the window size.
                const double overshoot_s = -remaining[c] / rate_ips;
                finish[c] = machine.now() -
                            Picoseconds{static_cast<std::int64_t>(overshoot_s * 1e12)};
            } else {
                any_left = true;
            }
        }
    }

    Picoseconds last_finish = start;
    for (const Picoseconds f : finish) last_finish = std::max(last_finish, f);
    double elapsed_s = (last_finish - start).seconds();

    // Deterministic run-to-run jitter (real SPEC results scatter too).
    Rng noise(config_.seed * 0x9E3779B97F4A7C15ULL + noise_salt);
    elapsed_s *= 1.0 + config_.noise_fraction * noise.gaussian();
    last_elapsed_s_ = elapsed_s;

    return static_cast<double>(copies) * ref_seconds / elapsed_s;
}

std::vector<SpecScore> SpecSuite::run(const plugvolt::SafeStateMap& map,
                                      const plugvolt::PollingConfig& polling) {
    auto suite = spec2017_rate_suite(config_.seed);
    const auto& anchors = table2_anchors();
    if (suite.size() != anchors.size()) throw SimError("suite/anchor size mismatch");

    std::vector<SpecScore> scores;
    scores.reserve(suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        Workload& w = *suite[i];
        if (anchors[i].name != w.name()) throw SimError("suite/anchor order mismatch");
        const CostModel cost = w.cost_model();
        const double total_instr = static_cast<double>(config_.units) *
                                   static_cast<double>(cost.instructions_per_unit);
        const unsigned copies = profile_.core_count;

        // Reference times chosen so the without-polling runs land on the
        // paper's testbed anchors (see header comment).
        const double ideal_base_s =
            total_instr / (config_.base_freq.value() * 1e6 * cost.ipc);
        const double ideal_peak_s =
            total_instr /
            (config_.peak_freq.value() * 1e6 * cost.ipc * config_.peak_ipc_bonus);
        const double ref_base_s = anchors[i].base_rate * ideal_base_s / copies;
        const double ref_peak_s = anchors[i].peak_rate * ideal_peak_s / copies;

        SpecScore score;
        score.name = std::string(w.name());
        score.base_rate_without = measure_rate(w, config_.base_freq, false, map, polling,
                                               1.0, ref_base_s, 4 * i + 0);
        score.base_rate_with = measure_rate(w, config_.base_freq, true, map, polling, 1.0,
                                            ref_base_s, 4 * i + 1);
        score.peak_rate_without = measure_rate(w, config_.peak_freq, false, map, polling,
                                               config_.peak_ipc_bonus, ref_peak_s, 4 * i + 2);
        score.peak_rate_with = measure_rate(w, config_.peak_freq, true, map, polling,
                                            config_.peak_ipc_bonus, ref_peak_s, 4 * i + 3);
        scores.push_back(score);
    }
    return scores;
}

}  // namespace pv::workload
