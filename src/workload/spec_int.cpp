// SPECrate 2017 INT stand-ins: one genuine kernel per benchmark family.
#include <algorithm>
#include <array>
#include <cstring>
#include <queue>
#include <string>
#include <vector>

#include "workload/spec.hpp"

namespace pv::workload {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
}

/// 500.perlbench_r: interpreter — string hashing and pattern scanning.
class Perlbench final : public SpecKernelBase {
public:
    explicit Perlbench(std::uint64_t seed)
        : SpecKernelBase("500.perlbench_r", {1'100'000, 1.6}, seed) {
        static constexpr char alphabet[] = "abcdefghijklmnopqrstuvwxyz ._-";
        text_.reserve(kTextLen);
        for (unsigned i = 0; i < kTextLen; ++i)
            text_.push_back(alphabet[rng_.uniform_below(sizeof alphabet - 1)]);
        patterns_ = {"perl", "hash", "regex", "bless", "local", "eval"};
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            // djb2 over sliding windows + naive multi-pattern scan.
            std::uint64_t acc = 5381;
            for (const char c : text_) acc = acc * 33 + static_cast<unsigned char>(c);
            std::uint64_t found = 0;
            for (const auto& p : patterns_) {
                for (std::size_t pos = 0; (pos = text_.find(p, pos)) != std::string::npos;
                     ++pos)
                    ++found;
            }
            // Mutate the text so iterations differ.
            text_[acc % text_.size()] = static_cast<char>('a' + (acc >> 8) % 26);
            h = mix(h, acc + found);
        }
        return h;
    }

private:
    static constexpr unsigned kTextLen = 8000;
    std::string text_;
    std::vector<std::string> patterns_;
};

/// 502.gcc_r: compiler — expression-tree constant folding.
class Gcc final : public SpecKernelBase {
public:
    explicit Gcc(std::uint64_t seed) : SpecKernelBase("502.gcc_r", {1'050'000, 1.3}, seed) {
        nodes_.resize(kNodes);
        for (unsigned i = 0; i < kNodes; ++i) {
            Node& n = nodes_[i];
            if (i < kNodes / 2) {
                n.op = Op::Const;
                n.value = static_cast<std::int64_t>(rng_.uniform_below(1000)) - 500;
            } else {
                n.op = static_cast<Op>(1 + rng_.uniform_below(4));
                n.lhs = static_cast<unsigned>(rng_.uniform_below(i));
                n.rhs = static_cast<unsigned>(rng_.uniform_below(i));
            }
        }
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            // Fold bottom-up (nodes reference lower indices only).
            std::vector<std::int64_t> folded(kNodes);
            for (unsigned i = 0; i < kNodes; ++i) {
                const Node& n = nodes_[i];
                switch (n.op) {
                    case Op::Const: folded[i] = n.value; break;
                    case Op::Add: folded[i] = folded[n.lhs] + folded[n.rhs]; break;
                    case Op::Sub: folded[i] = folded[n.lhs] - folded[n.rhs]; break;
                    case Op::Mul: folded[i] = folded[n.lhs] * (folded[n.rhs] & 0xFF); break;
                    case Op::Xor: folded[i] = folded[n.lhs] ^ folded[n.rhs]; break;
                }
            }
            const auto root = static_cast<std::uint64_t>(folded[kNodes - 1]);
            // Rewrite one subtree so the next unit folds different code.
            nodes_[kNodes / 2 + root % (kNodes / 2)].lhs =
                static_cast<unsigned>(root % (kNodes / 2));
            h = mix(h, root);
        }
        return h;
    }

private:
    enum class Op : std::uint8_t { Const, Add, Sub, Mul, Xor };
    struct Node {
        Op op = Op::Const;
        std::int64_t value = 0;
        unsigned lhs = 0, rhs = 0;
    };
    static constexpr unsigned kNodes = 4000;
    std::vector<Node> nodes_;
};

/// 505.mcf_r: network simplex family — Bellman-Ford relaxations.
class Mcf final : public SpecKernelBase {
public:
    explicit Mcf(std::uint64_t seed) : SpecKernelBase("505.mcf_r", {1'000'000, 0.8}, seed) {
        edges_.reserve(kEdges);
        for (unsigned i = 0; i < kEdges; ++i)
            edges_.push_back({static_cast<unsigned>(rng_.uniform_below(kNodes)),
                              static_cast<unsigned>(rng_.uniform_below(kNodes)),
                              static_cast<int>(rng_.uniform_below(100)) + 1});
        dist_.assign(kNodes, 1 << 28);
        dist_[0] = 0;
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::uint64_t relaxed = 0;
            for (int round = 0; round < 6; ++round)
                for (const auto& e : edges_) {
                    const int cand = dist_[e.from] + e.cost;
                    if (cand < dist_[e.to]) {
                        dist_[e.to] = cand;
                        ++relaxed;
                    }
                }
            // Perturb one source so relaxation keeps happening.
            dist_[relaxed % kNodes] = static_cast<int>(relaxed % 64);
            h = mix(h, relaxed + static_cast<std::uint64_t>(dist_[kNodes / 2]));
        }
        return h;
    }

private:
    struct Edge {
        unsigned from, to;
        int cost;
    };
    static constexpr unsigned kNodes = 1200, kEdges = 5000;
    std::vector<Edge> edges_;
    std::vector<int> dist_;
};

/// 520.omnetpp_r: discrete-event simulation — event-queue churn.
class Omnetpp final : public SpecKernelBase {
public:
    explicit Omnetpp(std::uint64_t seed)
        : SpecKernelBase("520.omnetpp_r", {1'150'000, 1.0}, seed) {}

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::priority_queue<std::pair<std::uint64_t, std::uint64_t>,
                                std::vector<std::pair<std::uint64_t, std::uint64_t>>,
                                std::greater<>>
                queue;
            for (unsigned i = 0; i < 64; ++i) queue.push({rng_.uniform_below(1000), i});
            std::uint64_t clock = 0, handled = 0;
            while (!queue.empty() && handled < kEventsPerUnit) {
                const auto [t, id] = queue.top();
                queue.pop();
                clock = t;
                ++handled;
                // Each event schedules 0-2 successors (bounded queue).
                const std::uint64_t kind = (t ^ id) % 3;
                for (std::uint64_t k = 0; k < kind; ++k)
                    if (queue.size() < 512)
                        queue.push({clock + 1 + ((id + k) * 2654435761u) % 97, id ^ k});
            }
            h = mix(h, clock + handled);
        }
        return h;
    }

private:
    static constexpr std::uint64_t kEventsPerUnit = 3000;
};

/// 523.xalancbmk_r: XML transformation — tokenize + tree rewrite.
class Xalancbmk final : public SpecKernelBase {
public:
    explicit Xalancbmk(std::uint64_t seed)
        : SpecKernelBase("523.xalancbmk_r", {1'100'000, 1.1}, seed) {
        static constexpr const char* tags[] = {"a", "li", "td", "row", "div", "p"};
        doc_.reserve(kDocLen);
        Rng local = rng_.fork();
        while (doc_.size() < kDocLen) {
            const char* tag = tags[local.uniform_below(6)];
            doc_ += "<";
            doc_ += tag;
            doc_ += ">x";
            doc_ += std::to_string(local.uniform_below(100));
            doc_ += "</";
            doc_ += tag;
            doc_ += ">";
        }
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::uint64_t depth = 0, max_depth = 0, text_sum = 0, tokens = 0;
            for (std::size_t i = 0; i < doc_.size(); ++i) {
                if (doc_[i] == '<') {
                    ++tokens;
                    if (i + 1 < doc_.size() && doc_[i + 1] == '/')
                        --depth;
                    else
                        max_depth = std::max(max_depth, ++depth);
                } else if (doc_[i] >= '0' && doc_[i] <= '9') {
                    text_sum += static_cast<std::uint64_t>(doc_[i] - '0');
                }
            }
            // "Transform": rotate a slice of the document.
            const std::size_t pivot = (text_sum + u) % (doc_.size() - 64);
            std::rotate(doc_.begin() + static_cast<std::ptrdiff_t>(pivot),
                        doc_.begin() + static_cast<std::ptrdiff_t>(pivot + 16),
                        doc_.begin() + static_cast<std::ptrdiff_t>(pivot + 64));
            h = mix(h, tokens + max_depth * 131 + text_sum);
        }
        return h;
    }

private:
    static constexpr std::size_t kDocLen = 12000;
    std::string doc_;
};

/// 525.x264_r: video encoding — SAD block motion search.
class X264 final : public SpecKernelBase {
public:
    explicit X264(std::uint64_t seed)
        : SpecKernelBase("525.x264_r", {1'600'000, 2.6}, seed), ref_(kW * kH), cur_(kW * kH) {
        for (auto& p : ref_) p = static_cast<std::uint8_t>(rng_.uniform_below(256));
        // Current frame = shifted reference + noise (so search finds real motion).
        for (unsigned y = 0; y < kH; ++y)
            for (unsigned x = 0; x < kW; ++x) {
                const unsigned sx = (x + 3) % kW, sy = (y + 1) % kH;
                cur_[y * kW + x] = static_cast<std::uint8_t>(
                    ref_[sy * kW + sx] + (rng_.uniform_below(8) == 0 ? 3 : 0));
            }
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::uint64_t total_sad = 0, best_vectors = 0;
            for (unsigned by = 0; by + 8 <= kH; by += 8)
                for (unsigned bx = 0; bx + 8 <= kW; bx += 8) {
                    unsigned best = ~0u, best_mv = 0;
                    for (int dy = -2; dy <= 2; ++dy)
                        for (int dx = -4; dx <= 4; ++dx) {
                            unsigned sad = 0;
                            for (unsigned y = 0; y < 8; ++y)
                                for (unsigned x = 0; x < 8; ++x) {
                                    const unsigned cy = by + y, cx = bx + x;
                                    const unsigned ry =
                                        (cy + static_cast<unsigned>(dy + static_cast<int>(kH))) % kH;
                                    const unsigned rx =
                                        (cx + static_cast<unsigned>(dx + static_cast<int>(kW))) % kW;
                                    const int d = static_cast<int>(cur_[cy * kW + cx]) -
                                                  static_cast<int>(ref_[ry * kW + rx]);
                                    sad += static_cast<unsigned>(d < 0 ? -d : d);
                                }
                            if (sad < best) {
                                best = sad;
                                best_mv = static_cast<unsigned>((dy + 2) * 9 + (dx + 4));
                            }
                        }
                    total_sad += best;
                    best_vectors += best_mv;
                }
            h = mix(h, total_sad * 31 + best_vectors);
        }
        return h;
    }

private:
    static constexpr unsigned kW = 64, kH = 32;
    std::vector<std::uint8_t> ref_, cur_;
};

/// 531.deepsjeng_r: chess — bitboard mobility + quiescence-lite search.
class Deepsjeng final : public SpecKernelBase {
public:
    explicit Deepsjeng(std::uint64_t seed)
        : SpecKernelBase("531.deepsjeng_r", {1'200'000, 1.7}, seed) {
        own_ = rng_.next_u64() & 0x00FF00FF00FF00FFULL;
        theirs_ = rng_.next_u64() & ~own_;
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::int64_t best = -(1 << 30);
            for (unsigned ply = 0; ply < kPlies; ++ply) {
                // Knight-move style attack spread of every own piece.
                std::uint64_t attacks = 0;
                std::uint64_t pieces = own_;
                while (pieces) {
                    const std::uint64_t sq = pieces & (~pieces + 1);
                    attacks |= (sq << 17) | (sq >> 17) | (sq << 15) | (sq >> 15) |
                               (sq << 10) | (sq >> 10) | (sq << 6) | (sq >> 6);
                    pieces &= pieces - 1;
                }
                const int mobility = __builtin_popcountll(attacks & ~own_);
                const int captures = __builtin_popcountll(attacks & theirs_);
                const std::int64_t score = mobility + 8 * captures;
                best = std::max(best, score);
                // Make the highest-value capture (greedy playout).
                const std::uint64_t taken = attacks & theirs_;
                if (taken) {
                    const std::uint64_t sq = taken & (~taken + 1);
                    theirs_ &= ~sq;
                    own_ = (own_ ^ (own_ & (~own_ + 1))) | sq;
                } else {
                    own_ = (own_ << 1) | (own_ >> 63);
                }
            }
            if (theirs_ == 0) theirs_ = rng_.next_u64() & ~own_;
            h = mix(h, static_cast<std::uint64_t>(best) ^ own_);
        }
        return h;
    }

private:
    static constexpr unsigned kPlies = 260;
    std::uint64_t own_ = 0, theirs_ = 0;
};

/// 541.leela_r: Go — random playouts with liberty counting.
class Leela final : public SpecKernelBase {
public:
    explicit Leela(std::uint64_t seed)
        : SpecKernelBase("541.leela_r", {1'250'000, 1.4}, seed), board_(kN * kN, 0) {}

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::fill(board_.begin(), board_.end(), 0);
            std::int8_t player = 1;
            std::uint64_t score = 0;
            for (unsigned move = 0; move < kMoves; ++move) {
                const unsigned pos = static_cast<unsigned>(rng_.uniform_below(kN * kN));
                if (board_[pos] != 0) continue;
                board_[pos] = player;
                // Liberties of the new stone's 4-neighbourhood.
                unsigned libs = 0;
                const unsigned x = pos % kN, y = pos / kN;
                if (x > 0 && board_[pos - 1] == 0) ++libs;
                if (x + 1 < kN && board_[pos + 1] == 0) ++libs;
                if (y > 0 && board_[pos - kN] == 0) ++libs;
                if (y + 1 < kN && board_[pos + kN] == 0) ++libs;
                if (libs == 0) board_[pos] = 0;  // suicide: undo
                else score += libs * static_cast<unsigned>(player == 1 ? 1 : 2);
                player = static_cast<std::int8_t>(-player);
            }
            h = mix(h, score);
        }
        return h;
    }

private:
    static constexpr unsigned kN = 13, kMoves = 600;
    std::vector<std::int8_t> board_;
};

/// 548.exchange2_r: recursive puzzle solving — Sudoku-style backtracking
/// on a 6x6 Latin square.
class Exchange2 final : public SpecKernelBase {
public:
    explicit Exchange2(std::uint64_t seed)
        : SpecKernelBase("548.exchange2_r", {1'300'000, 2.0}, seed) {}

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            grid_.fill(0);
            // Pre-place a few random clues (may force backtracking).
            for (int clue = 0; clue < 5; ++clue) {
                const auto pos = static_cast<unsigned>(rng_.uniform_below(kN * kN));
                const auto val = static_cast<std::uint8_t>(1 + rng_.uniform_below(kN));
                if (fits(pos, val)) grid_[pos] = val;
            }
            nodes_ = 0;
            const bool solved = solve(0);
            h = mix(h, nodes_ * 2 + (solved ? 1 : 0));
        }
        return h;
    }

private:
    static constexpr unsigned kN = 6;

    [[nodiscard]] bool fits(unsigned pos, std::uint8_t v) const {
        const unsigned r = pos / kN, c = pos % kN;
        for (unsigned i = 0; i < kN; ++i) {
            if (grid_[r * kN + i] == v || grid_[i * kN + c] == v) return false;
        }
        return true;
    }

    bool solve(unsigned pos) {
        ++nodes_;
        if (nodes_ > 200'000) return false;  // bound a pathological clue set
        while (pos < kN * kN && grid_[pos] != 0) ++pos;
        if (pos == kN * kN) return true;
        for (std::uint8_t v = 1; v <= kN; ++v) {
            if (!fits(pos, v)) continue;
            grid_[pos] = v;
            if (solve(pos + 1)) {
                grid_[pos] = 0;
                return true;
            }
            grid_[pos] = 0;
        }
        return false;
    }

    std::array<std::uint8_t, kN * kN> grid_{};
    std::uint64_t nodes_ = 0;
};

/// 557.xz_r: compression — greedy LZ77 match finding + byte histogram.
class Xz final : public SpecKernelBase {
public:
    explicit Xz(std::uint64_t seed) : SpecKernelBase("557.xz_r", {1'150'000, 1.2}, seed) {
        data_.resize(kLen);
        // Compressible data: repeated motifs with noise.
        for (std::size_t i = 0; i < kLen; ++i)
            data_[i] = static_cast<std::uint8_t>((i % 97) ^ (rng_.uniform_below(16) == 0
                                                                 ? rng_.next_u64() & 0xFF
                                                                 : 0));
    }

    std::uint64_t run_units(std::uint64_t units) override {
        std::uint64_t h = 0;
        for (std::uint64_t u = 0; u < units; ++u) {
            std::uint64_t matched = 0, literals = 0;
            std::array<std::uint32_t, 256> histogram{};
            std::size_t pos = 0;
            while (pos + 4 < data_.size()) {
                // Search a bounded window for the longest match.
                std::size_t best_len = 0;
                const std::size_t window =
                    pos > kWindow ? pos - kWindow : 0;
                for (std::size_t cand = window; cand < pos; ++cand) {
                    std::size_t len = 0;
                    while (len < 32 && pos + len < data_.size() &&
                           data_[cand + len] == data_[pos + len])
                        ++len;
                    best_len = std::max(best_len, len);
                }
                if (best_len >= 4) {
                    matched += best_len;
                    pos += best_len;
                } else {
                    ++histogram[data_[pos]];
                    ++literals;
                    ++pos;
                }
            }
            std::uint64_t entropy_proxy = 0;
            for (const auto count : histogram) entropy_proxy += count * count;
            // Mutate data so iterations differ.
            data_[(matched + literals) % data_.size()] ^= 0x55;
            h = mix(h, matched * 3 + literals + entropy_proxy);
        }
        return h;
    }

private:
    static constexpr std::size_t kLen = 3000, kWindow = 120;
    std::vector<std::uint8_t> data_;
};

}  // namespace

std::unique_ptr<Workload> make_perlbench(std::uint64_t seed) { return std::make_unique<Perlbench>(seed); }
std::unique_ptr<Workload> make_gcc(std::uint64_t seed) { return std::make_unique<Gcc>(seed); }
std::unique_ptr<Workload> make_mcf(std::uint64_t seed) { return std::make_unique<Mcf>(seed); }
std::unique_ptr<Workload> make_omnetpp(std::uint64_t seed) { return std::make_unique<Omnetpp>(seed); }
std::unique_ptr<Workload> make_xalancbmk(std::uint64_t seed) { return std::make_unique<Xalancbmk>(seed); }
std::unique_ptr<Workload> make_x264(std::uint64_t seed) { return std::make_unique<X264>(seed); }
std::unique_ptr<Workload> make_deepsjeng(std::uint64_t seed) { return std::make_unique<Deepsjeng>(seed); }
std::unique_ptr<Workload> make_leela(std::uint64_t seed) { return std::make_unique<Leela>(seed); }
std::unique_ptr<Workload> make_exchange2(std::uint64_t seed) { return std::make_unique<Exchange2>(seed); }
std::unique_ptr<Workload> make_xz(std::uint64_t seed) { return std::make_unique<Xz>(seed); }

std::vector<std::unique_ptr<Workload>> spec2017_rate_suite(std::uint64_t seed) {
    std::vector<std::unique_ptr<Workload>> suite;
    // Table 2 order: the FP block first, then the INT block.
    suite.push_back(make_bwaves(seed + 1));
    suite.push_back(make_cactubssn(seed + 2));
    suite.push_back(make_namd(seed + 3));
    suite.push_back(make_parest(seed + 4));
    suite.push_back(make_povray(seed + 5));
    suite.push_back(make_lbm(seed + 6));
    suite.push_back(make_wrf(seed + 7));
    suite.push_back(make_blender(seed + 8));
    suite.push_back(make_cam4(seed + 9));
    suite.push_back(make_imagick(seed + 10));
    suite.push_back(make_nab(seed + 11));
    suite.push_back(make_fotonik3d(seed + 12));
    suite.push_back(make_roms(seed + 13));
    suite.push_back(make_perlbench(seed + 14));
    suite.push_back(make_gcc(seed + 15));
    suite.push_back(make_mcf(seed + 16));
    suite.push_back(make_omnetpp(seed + 17));
    suite.push_back(make_xalancbmk(seed + 18));
    suite.push_back(make_x264(seed + 19));
    suite.push_back(make_deepsjeng(seed + 20));
    suite.push_back(make_leela(seed + 21));
    suite.push_back(make_exchange2(seed + 22));
    suite.push_back(make_xz(seed + 23));
    return suite;
}

}  // namespace pv::workload
