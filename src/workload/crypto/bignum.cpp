#include "workload/crypto/bignum.hpp"

#include <array>

#include "util/error.hpp"

namespace pv::crypto {

u64 mulmod(u64 a, u64 b, u64 m) {
    if (m == 0) throw ConfigError("mulmod by zero modulus");
    return static_cast<u64>((static_cast<u128>(a) * b) % m);
}

u64 powmod(u64 base, u64 exp, u64 m) {
    if (m == 0) throw ConfigError("powmod by zero modulus");
    u64 result = 1 % m;
    base %= m;
    while (exp != 0) {
        if (exp & 1) result = mulmod(result, base, m);
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    return result;
}

u64 gcd(u64 a, u64 b) {
    while (b != 0) {
        const u64 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

std::optional<u64> modinv(u64 a, u64 m) {
    // Extended Euclid over signed 128-bit accumulators.
    __extension__ typedef __int128 i128;
    i128 old_r = a % m, r = m;
    i128 old_s = 1, s = 0;
    while (r != 0) {
        const i128 q = old_r / r;
        const i128 tmp_r = old_r - q * r;
        old_r = r;
        r = tmp_r;
        const i128 tmp_s = old_s - q * s;
        old_s = s;
        s = tmp_s;
    }
    if (old_r != 1) return std::nullopt;
    i128 inv = old_s % static_cast<i128>(m);
    if (inv < 0) inv += m;
    return static_cast<u64>(inv);
}

bool is_prime(u64 n) {
    if (n < 2) return false;
    for (const u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
                        31ULL, 37ULL}) {
        if (n % p == 0) return n == p;
    }
    u64 d = n - 1;
    unsigned r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // These witnesses are exact for every n < 2^64 (Sinclair/Jaeschke).
    for (const u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL,
                        31ULL, 37ULL}) {
        u64 x = powmod(a % n, d, n);
        if (x == 1 || x == n - 1) continue;
        bool witness = true;
        for (unsigned i = 1; i < r; ++i) {
            x = mulmod(x, x, n);
            if (x == n - 1) {
                witness = false;
                break;
            }
        }
        if (witness) return false;
    }
    return true;
}

u64 random_prime(Rng& rng, unsigned bits) {
    if (bits < 8 || bits > 62) throw ConfigError("random_prime bits out of [8,62]");
    const u64 lo = 1ULL << (bits - 1);
    const u64 span = 1ULL << (bits - 1);
    for (int attempt = 0; attempt < 100000; ++attempt) {
        u64 candidate = lo + rng.uniform_below(span);
        candidate |= 1;  // odd
        if (is_prime(candidate)) return candidate;
    }
    throw SimError("random_prime failed to find a prime");
}

}  // namespace pv::crypto
