#include "workload/crypto/rsa_crt.hpp"

#include "util/error.hpp"

namespace pv::crypto {

RsaKey rsa_generate(Rng& rng, unsigned prime_bits) {
    RsaKey key;
    key.e = 65537;
    for (int attempt = 0; attempt < 1000; ++attempt) {
        key.p = random_prime(rng, prime_bits);
        do {
            key.q = random_prime(rng, prime_bits);
        } while (key.q == key.p);
        if (key.p < key.q) std::swap(key.p, key.q);  // convention: p > q
        const u64 phi = (key.p - 1) * (key.q - 1);
        if (gcd(key.e, phi) != 1) continue;
        key.n = key.p * key.q;
        key.d = *modinv(key.e, phi);
        key.dp = key.d % (key.p - 1);
        key.dq = key.d % (key.q - 1);
        key.qinv = *modinv(key.q % key.p, key.p);
        return key;
    }
    throw SimError("rsa_generate failed");
}

u64 rsa_sign_reference(const RsaKey& key, u64 message) {
    const u64 m = message % key.n;
    const u64 sp = powmod(m % key.p, key.dp, key.p);
    const u64 sq = powmod(m % key.q, key.dq, key.q);
    // Garner recombination: s = sq + q * (qinv * (sp - sq) mod p).
    const u64 h = mulmod(key.qinv, (sp + key.p - sq % key.p) % key.p, key.p);
    return sq + key.q * h;
}

bool rsa_verify(const RsaKey& key, u64 message, u64 signature) {
    return powmod(signature % key.n, key.e, key.n) == message % key.n;
}

FaultableRsaSigner::FaultableRsaSigner(sim::Machine& machine, unsigned core, RsaKey key)
    : machine_(machine), core_(core), key_(key) {
    if (key_.n == 0) throw ConfigError("signer needs a generated key");
}

u64 FaultableRsaSigner::mulmod_hw(u64 a, u64 b, u64 m) {
    ++muls_;
    u128 product = static_cast<u128>(a) * b;
    // One retired imul per wide multiply; a timing fault corrupts the
    // product (low partial-product columns carry into everything, so
    // corrupting the low half before reduction is faithful enough).
    if (machine_.execute_op(core_, sim::InstrClass::Imul)) {
        const u64 low = static_cast<u64>(product);
        product = (product >> 64 << 64) | machine_.corrupt_value(low);
    }
    return static_cast<u64>(product % m);
}

u64 FaultableRsaSigner::powmod_hw(u64 base, u64 exp, u64 m) {
    u64 result = 1 % m;
    base %= m;
    while (exp != 0) {
        if (exp & 1) result = mulmod_hw(result, base, m);
        base = mulmod_hw(base, base, m);
        exp >>= 1;
    }
    return result;
}

u64 FaultableRsaSigner::sign(u64 message) {
    const u64 m = message % key_.n;
    const u64 sp = powmod_hw(m % key_.p, key_.dp, key_.p);
    const u64 sq = powmod_hw(m % key_.q, key_.dq, key_.q);
    const u64 h = mulmod_hw(key_.qinv, (sp + key_.p - sq % key_.p) % key_.p, key_.p);
    return sq + key_.q * h;
}

u64 FaultableRsaSigner::sign_verified(u64 message, unsigned max_retries) {
    for (unsigned attempt = 0; attempt < max_retries; ++attempt) {
        const u64 s = sign(message);
        // The verification itself runs on the (possibly still unsafe)
        // machine too — route it through the hardware multiplier.
        if (powmod_hw(s % key_.n, key_.e, key_.n) == message % key_.n) return s;
        ++suppressed_;
    }
    throw SimError("sign_verified: persistent faults, refusing to release a signature");
}

std::optional<u64> bellcore_factor(u64 n, u64 e, u64 message, u64 signature) {
    if (n == 0) return std::nullopt;
    const u64 m = message % n;
    const u64 se = powmod(signature % n, e, n);
    const u64 diff = (se + n - m) % n;
    if (diff == 0) return std::nullopt;  // signature was correct
    const u64 g = gcd(diff, n);
    if (g > 1 && g < n) return g;
    return std::nullopt;
}

}  // namespace pv::crypto
