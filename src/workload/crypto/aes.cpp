#include "workload/crypto/aes.hpp"

#include "util/error.hpp"

namespace pv::crypto {
namespace {

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
    std::uint8_t r = 0;
    while (b) {
        if (b & 1) r ^= a;
        const bool hi = a & 0x80;
        a = static_cast<std::uint8_t>(a << 1);
        if (hi) a ^= 0x1B;
        b >>= 1;
    }
    return r;
}

std::uint8_t gf_inv(std::uint8_t a) {
    if (a == 0) return 0;
    // a^254 in GF(2^8) by square-and-multiply.
    std::uint8_t result = 1;
    std::uint8_t base = a;
    unsigned exp = 254;
    while (exp) {
        if (exp & 1) result = gf_mul(result, base);
        base = gf_mul(base, base);
        exp >>= 1;
    }
    return result;
}

struct SboxTable {
    std::array<std::uint8_t, 256> t{};
    SboxTable() {
        for (unsigned i = 0; i < 256; ++i) {
            const std::uint8_t x = gf_inv(static_cast<std::uint8_t>(i));
            std::uint8_t y = x;
            y = static_cast<std::uint8_t>(y ^ static_cast<std::uint8_t>((x << 1) | (x >> 7)));
            y = static_cast<std::uint8_t>(y ^ static_cast<std::uint8_t>((x << 2) | (x >> 6)));
            y = static_cast<std::uint8_t>(y ^ static_cast<std::uint8_t>((x << 3) | (x >> 5)));
            y = static_cast<std::uint8_t>(y ^ static_cast<std::uint8_t>((x << 4) | (x >> 4)));
            t[i] = static_cast<std::uint8_t>(y ^ 0x63);
        }
    }
};

const SboxTable g_sbox;

using RoundKeys = std::array<std::array<std::uint8_t, 16>, 11>;

RoundKeys expand_key(const AesKey& key) {
    RoundKeys rk{};
    rk[0] = key;
    std::uint8_t rcon = 1;
    for (unsigned round = 1; round <= 10; ++round) {
        std::array<std::uint8_t, 4> temp{rk[round - 1][12], rk[round - 1][13],
                                         rk[round - 1][14], rk[round - 1][15]};
        // RotWord + SubWord + Rcon.
        const std::uint8_t t0 = temp[0];
        temp[0] = static_cast<std::uint8_t>(g_sbox.t[temp[1]] ^ rcon);
        temp[1] = g_sbox.t[temp[2]];
        temp[2] = g_sbox.t[temp[3]];
        temp[3] = g_sbox.t[t0];
        rcon = gf_mul(rcon, 2);
        for (unsigned i = 0; i < 4; ++i)
            rk[round][i] = static_cast<std::uint8_t>(rk[round - 1][i] ^ temp[i]);
        for (unsigned i = 4; i < 16; ++i)
            rk[round][i] = static_cast<std::uint8_t>(rk[round - 1][i] ^ rk[round][i - 4]);
    }
    return rk;
}

void sub_bytes(AesBlock& s) {
    for (auto& b : s) b = g_sbox.t[b];
}

void shift_rows(AesBlock& s) {
    // Column-major state: byte index = 4*col + row.
    AesBlock t = s;
    for (unsigned row = 1; row < 4; ++row)
        for (unsigned col = 0; col < 4; ++col)
            s[4 * col + row] = t[4 * ((col + row) % 4) + row];
}

void mix_columns(AesBlock& s) {
    for (unsigned col = 0; col < 4; ++col) {
        std::uint8_t* c = &s[4 * col];
        const std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
        c[0] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
        c[1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
        c[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
        c[3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
    }
}

void add_round_key(AesBlock& s, const std::array<std::uint8_t, 16>& rk) {
    for (unsigned i = 0; i < 16; ++i) s[i] = static_cast<std::uint8_t>(s[i] ^ rk[i]);
}

}  // namespace

std::uint8_t aes_sbox(std::uint8_t x) { return g_sbox.t[x]; }

std::uint8_t aes_gf_mul(std::uint8_t a, std::uint8_t b) { return gf_mul(a, b); }

std::array<std::uint8_t, 16> aes_last_round_key(const AesKey& key) {
    return expand_key(key)[10];
}

AesBlock aes128_encrypt_with_fault(const AesKey& key, const AesBlock& plaintext,
                                   unsigned fault_round, unsigned pos, std::uint8_t diff) {
    if (fault_round > 10 || pos >= 16) throw ConfigError("fault location out of range");
    const RoundKeys rk = expand_key(key);
    AesBlock s = plaintext;
    add_round_key(s, rk[0]);
    if (fault_round == 0) s[pos] = static_cast<std::uint8_t>(s[pos] ^ diff);
    for (unsigned round = 1; round <= 9; ++round) {
        sub_bytes(s);
        shift_rows(s);
        mix_columns(s);
        add_round_key(s, rk[round]);
        if (round == fault_round) s[pos] = static_cast<std::uint8_t>(s[pos] ^ diff);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, rk[10]);
    if (fault_round == 10) s[pos] = static_cast<std::uint8_t>(s[pos] ^ diff);
    return s;
}

AesBlock aes128_encrypt(const AesKey& key, const AesBlock& plaintext) {
    const RoundKeys rk = expand_key(key);
    AesBlock s = plaintext;
    add_round_key(s, rk[0]);
    for (unsigned round = 1; round <= 9; ++round) {
        sub_bytes(s);
        shift_rows(s);
        mix_columns(s);
        add_round_key(s, rk[round]);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, rk[10]);
    return s;
}

FaultableAes::FaultableAes(sim::Machine& machine, unsigned core, AesKey key,
                           std::uint64_t lane_seed)
    : machine_(machine), core_(core), key_(key), lane_rng_(lane_seed) {}

FaultableAes::Result FaultableAes::encrypt(const AesBlock& plaintext) {
    const RoundKeys rk = expand_key(key_);
    Result result;
    AesBlock s = plaintext;
    add_round_key(s, rk[0]);
    for (unsigned round = 1; round <= 10; ++round) {
        // One AES round instruction retires per round; its 16 parallel
        // S-box lanes each see the per-op timing-fault probability.
        bool faulted = machine_.execute_op(core_, sim::InstrClass::FpMul);
        if (!faulted) {
            const double p = machine_.fault_probability(core_, sim::InstrClass::FpMul);
            if (p > 0.0) faulted = lane_rng_.binomial(15, p) > 0;
        }
        if (round <= 9) {
            sub_bytes(s);
            shift_rows(s);
            mix_columns(s);
            add_round_key(s, rk[round]);
        } else {
            sub_bytes(s);
            shift_rows(s);
            add_round_key(s, rk[10]);
        }
        if (faulted) {
            // A timing fault in the round datapath: XOR a nonzero
            // difference into one uniformly-chosen state byte (the
            // single-byte DFA fault model — any lane can miss timing).
            const auto pos = static_cast<unsigned>(lane_rng_.uniform_below(16));
            const auto diff = static_cast<std::uint8_t>(1 + lane_rng_.uniform_below(255));
            s[pos] = static_cast<std::uint8_t>(s[pos] ^ diff);
            result.faulted = true;
            if (result.faulted_round < 0) result.faulted_round = static_cast<int>(round);
        }
    }
    result.ciphertext = s;
    return result;
}

}  // namespace pv::crypto
