// PlugVolt — differential fault analysis on AES-128 (Piret–Quisquater).
//
// Plundervolt's second weaponization: a single-byte fault injected into
// the state entering round 9 (i.e. after round 8) spreads through one
// MixColumns column and surfaces as exactly four corrupted ciphertext
// bytes.  For each possible pre-MixColumns difference delta, the four
// output differences must match the column pattern (2d, d, d, 3d) pushed
// through the final SubBytes — which couples four bytes of the last
// round key.  Intersecting the surviving candidates across a handful of
// faulty ciphertexts pins the whole round-10 key; inverting the key
// schedule recovers the master key.
//
// This is the classic Piret–Quisquater 2003 attack, implemented against
// the byte-XOR fault shape produced by FaultableAes under undervolting.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "workload/crypto/aes.hpp"

namespace pv::crypto {

/// One faulty observation: correct and faulty ciphertext of the SAME
/// plaintext under the SAME key.
struct DfaPair {
    AesBlock correct{};
    AesBlock faulty{};
};

/// Invert the AES-128 key schedule: reconstruct the master key from the
/// last (round 10) round key.
[[nodiscard]] AesKey invert_key_schedule(const std::array<std::uint8_t, 16>& round10_key);

/// The AES inverse S-box value for `x`.
[[nodiscard]] std::uint8_t aes_inv_sbox(std::uint8_t x);

/// Identify which diagonal (0-3) of the round-9 input state was faulted,
/// from the positions of the corrupted ciphertext bytes; nullopt if the
/// difference does not look like a single-byte round-8 fault (e.g. the
/// fault hit another round).
[[nodiscard]] std::optional<unsigned> dfa_diagonal(const DfaPair& pair);

/// Incremental Piret-Quisquater key recovery.
class AesDfa {
public:
    /// Feed one observation; pairs whose difference shape does not match
    /// a round-8 single-byte fault are rejected (returns false).
    bool add_pair(const DfaPair& pair);

    /// Pairs accepted so far, per diagonal.
    [[nodiscard]] const std::array<std::vector<DfaPair>, 4>& pairs() const { return pairs_; }

    /// True once every diagonal has at least `needed` usable pairs.
    [[nodiscard]] bool ready(std::size_t needed = 2) const;

    /// Attempt full key recovery; nullopt if some diagonal's candidates
    /// have not collapsed to a singleton yet (feed more pairs).
    [[nodiscard]] std::optional<AesKey> recover_key() const;

    /// Candidate count remaining for one diagonal's 4 key bytes (for
    /// progress reporting); SIZE_MAX before any pair arrived.
    [[nodiscard]] std::size_t candidates_for(unsigned diagonal) const;

private:
    std::array<std::vector<DfaPair>, 4> pairs_{};
};

}  // namespace pv::crypto
