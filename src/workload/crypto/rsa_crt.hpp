// PlugVolt — RSA-CRT victim and the Bellcore fault attack.
//
// The canonical weaponization of a DVFS fault (Plundervolt Sec. 5): a
// single fault in one CRT half of an RSA signature lets the attacker
// factor the modulus with one gcd.  The FaultableRsaSigner routes every
// modular multiplication through the simulated multiplier, so signatures
// computed during an undervolt excursion come out wrong exactly when the
// physics says they should.
#pragma once

#include "sim/machine.hpp"
#include "workload/crypto/bignum.hpp"

namespace pv::crypto {

/// A full RSA key with CRT parameters (toy sizes: ~32-bit primes).
struct RsaKey {
    u64 p = 0, q = 0;   ///< primes
    u64 n = 0;          ///< modulus p*q
    u64 e = 0;          ///< public exponent
    u64 d = 0;          ///< private exponent
    u64 dp = 0, dq = 0; ///< d mod (p-1), d mod (q-1)
    u64 qinv = 0;       ///< q^{-1} mod p
};

/// Deterministic key generation from `rng`; `prime_bits` per prime.
[[nodiscard]] RsaKey rsa_generate(Rng& rng, unsigned prime_bits = 30);

/// Fault-free CRT signature (reference implementation, no machine).
[[nodiscard]] u64 rsa_sign_reference(const RsaKey& key, u64 message);

/// Verify s^e == m (mod n).
[[nodiscard]] bool rsa_verify(const RsaKey& key, u64 message, u64 signature);

/// CRT signer whose multiplies run on (and can be faulted by) a Machine.
class FaultableRsaSigner {
public:
    FaultableRsaSigner(sim::Machine& machine, unsigned core, RsaKey key);

    /// Sign `message`; the result is wrong iff a multiplier fault hit.
    [[nodiscard]] u64 sign(u64 message);

    /// Shamir/Bellcore application-level mitigation: verify the
    /// signature with the public exponent before releasing it; a faulty
    /// result is recomputed instead of leaked.  Orthogonal to PlugVolt
    /// (it protects this one computation, not the platform) and costly
    /// (one extra public-exponent exponentiation per signature).
    [[nodiscard]] u64 sign_verified(u64 message, unsigned max_retries = 8);

    /// Faulty signatures suppressed by sign_verified so far.
    [[nodiscard]] std::uint64_t suppressed_faults() const { return suppressed_; }

    [[nodiscard]] const RsaKey& key() const { return key_; }
    /// Multiplies executed so far (for attack statistics).
    [[nodiscard]] std::uint64_t mul_count() const { return muls_; }

private:
    [[nodiscard]] u64 mulmod_hw(u64 a, u64 b, u64 m);
    [[nodiscard]] u64 powmod_hw(u64 base, u64 exp, u64 m);

    sim::Machine& machine_;
    unsigned core_;
    RsaKey key_;
    std::uint64_t muls_ = 0;
    std::uint64_t suppressed_ = 0;
};

/// Bellcore: given message and a (possibly faulty) signature under the
/// public key (n, e), return a nontrivial factor of n if one falls out.
[[nodiscard]] std::optional<u64> bellcore_factor(u64 n, u64 e, u64 message, u64 signature);

}  // namespace pv::crypto
