#include "workload/crypto/aes_dfa.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace pv::crypto {
namespace {

// Inverse S-box, derived from the forward box at first use.
struct InvSbox {
    std::array<std::uint8_t, 256> t{};
    InvSbox() {
        for (unsigned i = 0; i < 256; ++i) t[aes_sbox(static_cast<std::uint8_t>(i))] =
            static_cast<std::uint8_t>(i);
    }
};
const InvSbox g_inv_sbox;

// MixColumns row multipliers seen by a single-byte difference entering at
// row r of a column: column pattern (by output row i) is kMcCol[r][i].
constexpr std::uint8_t kMcCol[4][4] = {
    {2, 1, 1, 3},  // fault in row 0
    {3, 2, 1, 1},  // row 1
    {1, 3, 2, 1},  // row 2
    {1, 1, 3, 2},  // row 3
};

// Ciphertext byte positions touched by a fault whose post-ShiftRows
// column (in round 9) is c1: row i lands at column (c1 - i) mod 4 after
// round 10's ShiftRows.  State layout: index = 4*col + row.
std::array<unsigned, 4> touched_positions(unsigned c1) {
    std::array<unsigned, 4> q{};
    for (unsigned i = 0; i < 4; ++i) q[i] = 4 * ((c1 + 4 - i) % 4) + i;
    return q;
}

// Round constants of the AES-128 key schedule, rounds 1..10.
constexpr std::uint8_t kRcon[11] = {0,    0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

using KeyTuple = std::uint32_t;  // 4 packed candidate key bytes

KeyTuple pack(const std::array<std::uint8_t, 4>& k) {
    return static_cast<KeyTuple>(k[0]) | (static_cast<KeyTuple>(k[1]) << 8) |
           (static_cast<KeyTuple>(k[2]) << 16) | (static_cast<KeyTuple>(k[3]) << 24);
}

std::array<std::uint8_t, 4> unpack(KeyTuple t) {
    return {static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(t >> 8),
            static_cast<std::uint8_t>(t >> 16), static_cast<std::uint8_t>(t >> 24)};
}

// All round-10 key 4-byte tuples consistent with one faulty pair on one
// diagonal (the Piret-Quisquater filtering step).
std::set<KeyTuple> candidate_tuples(const DfaPair& pair, unsigned c1) {
    const auto q = touched_positions(c1);
    std::set<KeyTuple> tuples;
    // The fault's original row r (hence the multiplier pattern) and the
    // pre-MixColumns difference delta are both unknown: try all.
    for (unsigned r = 0; r < 4; ++r) {
        for (unsigned delta = 1; delta < 256; ++delta) {
            std::array<std::vector<std::uint8_t>, 4> per_byte;
            bool viable = true;
            for (unsigned i = 0; i < 4 && viable; ++i) {
                const std::uint8_t target =
                    aes_gf_mul(kMcCol[r][i], static_cast<std::uint8_t>(delta));
                const std::uint8_t c = pair.correct[q[i]];
                const std::uint8_t f = pair.faulty[q[i]];
                for (unsigned k = 0; k < 256; ++k) {
                    const auto kk = static_cast<std::uint8_t>(k);
                    if ((g_inv_sbox.t[c ^ kk] ^ g_inv_sbox.t[f ^ kk]) == target)
                        per_byte[i].push_back(kk);
                }
                viable = !per_byte[i].empty();
            }
            if (!viable) continue;
            for (const std::uint8_t k0 : per_byte[0])
                for (const std::uint8_t k1 : per_byte[1])
                    for (const std::uint8_t k2 : per_byte[2])
                        for (const std::uint8_t k3 : per_byte[3])
                            tuples.insert(pack({k0, k1, k2, k3}));
        }
    }
    return tuples;
}

std::set<KeyTuple> surviving_tuples(const std::vector<DfaPair>& pairs, unsigned c1) {
    std::set<KeyTuple> survivors;
    bool first = true;
    for (const DfaPair& pair : pairs) {
        const std::set<KeyTuple> cand = candidate_tuples(pair, c1);
        if (first) {
            survivors = cand;
            first = false;
        } else {
            std::set<KeyTuple> kept;
            std::set_intersection(survivors.begin(), survivors.end(), cand.begin(),
                                  cand.end(), std::inserter(kept, kept.begin()));
            survivors = std::move(kept);
        }
        if (survivors.size() <= 1) break;
    }
    return survivors;
}

}  // namespace

std::uint8_t aes_inv_sbox(std::uint8_t x) { return g_inv_sbox.t[x]; }

AesKey invert_key_schedule(const std::array<std::uint8_t, 16>& round10_key) {
    std::array<std::uint8_t, 16> rk = round10_key;
    for (int round = 10; round >= 1; --round) {
        std::array<std::uint8_t, 16> prev{};
        for (int i = 15; i >= 4; --i)
            prev[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(rk[static_cast<std::size_t>(i)] ^
                                          rk[static_cast<std::size_t>(i - 4)]);
        // temp = RotWord+SubWord of prev[12..15] plus the round constant.
        const std::uint8_t t0 = prev[12];
        std::array<std::uint8_t, 4> temp = {
            static_cast<std::uint8_t>(aes_sbox(prev[13]) ^
                                      kRcon[static_cast<std::size_t>(round)]),
            aes_sbox(prev[14]), aes_sbox(prev[15]), aes_sbox(t0)};
        for (unsigned i = 0; i < 4; ++i)
            prev[i] = static_cast<std::uint8_t>(rk[i] ^ temp[i]);
        rk = prev;
    }
    return rk;
}

std::optional<unsigned> dfa_diagonal(const DfaPair& pair) {
    std::array<bool, 16> diff{};
    unsigned count = 0;
    for (unsigned i = 0; i < 16; ++i) {
        diff[i] = pair.correct[i] != pair.faulty[i];
        count += diff[i];
    }
    if (count != 4) return std::nullopt;
    for (unsigned c1 = 0; c1 < 4; ++c1) {
        const auto q = touched_positions(c1);
        if (std::all_of(q.begin(), q.end(), [&](unsigned p) { return diff[p]; }))
            return c1;
    }
    return std::nullopt;
}

bool AesDfa::add_pair(const DfaPair& pair) {
    const auto diag = dfa_diagonal(pair);
    if (!diag) return false;
    pairs_[*diag].push_back(pair);
    return true;
}

bool AesDfa::ready(std::size_t needed) const {
    return std::all_of(pairs_.begin(), pairs_.end(),
                       [&](const auto& v) { return v.size() >= needed; });
}

std::size_t AesDfa::candidates_for(unsigned diagonal) const {
    if (diagonal >= 4) throw ConfigError("diagonal out of range");
    if (pairs_[diagonal].empty()) return SIZE_MAX;
    return surviving_tuples(pairs_[diagonal], diagonal).size();
}

std::optional<AesKey> AesDfa::recover_key() const {
    std::array<std::uint8_t, 16> k10{};
    for (unsigned c1 = 0; c1 < 4; ++c1) {
        if (pairs_[c1].empty()) return std::nullopt;
        const std::set<KeyTuple> survivors = surviving_tuples(pairs_[c1], c1);
        if (survivors.size() != 1) return std::nullopt;
        const auto bytes = unpack(*survivors.begin());
        const auto q = touched_positions(c1);
        for (unsigned i = 0; i < 4; ++i) k10[q[i]] = bytes[i];
    }
    return invert_key_schedule(k10);
}

}  // namespace pv::crypto
