// PlugVolt — AES-128 victim.
//
// Plundervolt's second weaponization target: faulting an AES-NI round
// yields faulty ciphertexts usable for differential fault analysis.  We
// implement a bit-exact AES-128 (validated against FIPS-197 vectors) and
// a machine-bound variant whose per-round computation can be faulted,
// producing corrupted ciphertexts during undervolt excursions.
#pragma once

#include <array>
#include <cstdint>

#include "sim/machine.hpp"
#include "util/rng.hpp"

namespace pv::crypto {

using AesBlock = std::array<std::uint8_t, 16>;
using AesKey = std::array<std::uint8_t, 16>;

/// Reference AES-128 single-block encryption (FIPS-197).
[[nodiscard]] AesBlock aes128_encrypt(const AesKey& key, const AesBlock& plaintext);

/// The AES S-box value for `x` (computed, not tabulated by hand).
[[nodiscard]] std::uint8_t aes_sbox(std::uint8_t x);

/// GF(2^8) multiplication with the AES polynomial (x^8+x^4+x^3+x+1).
[[nodiscard]] std::uint8_t aes_gf_mul(std::uint8_t a, std::uint8_t b);

/// The last (round 10) round key expanded from `key` — what differential
/// fault analysis recovers first.
[[nodiscard]] std::array<std::uint8_t, 16> aes_last_round_key(const AesKey& key);

/// Reference encryption with a controlled fault: XOR `diff` into state
/// byte `pos` after round `fault_round` completes (0 = after the initial
/// AddRoundKey).  The DFA literature's laboratory fault injector.
[[nodiscard]] AesBlock aes128_encrypt_with_fault(const AesKey& key, const AesBlock& plaintext,
                                                 unsigned fault_round, unsigned pos,
                                                 std::uint8_t diff);

/// Machine-bound encryptor: each round retires one FpMul-class round
/// instruction (AES-NI shares the FPU/SIMD path) whose 16 parallel
/// S-box lanes each sample the timing-fault probability; a fault XORs a
/// random byte-difference into the round state, which is exactly the
/// single-byte fault shape differential fault analysis expects.
class FaultableAes {
public:
    FaultableAes(sim::Machine& machine, unsigned core, AesKey key,
                 std::uint64_t lane_seed = 0xAE5);

    struct Result {
        AesBlock ciphertext{};
        bool faulted = false;
        int faulted_round = -1;  ///< first faulted round, -1 if clean
    };

    [[nodiscard]] Result encrypt(const AesBlock& plaintext);

private:
    sim::Machine& machine_;
    unsigned core_;
    AesKey key_;
    Rng lane_rng_;
};

}  // namespace pv::crypto
