// PlugVolt — modular arithmetic for the crypto victims.
//
// Plundervolt's flagship exploit faults one half of an RSA-CRT signature
// and factors the modulus with the Bellcore attack.  These helpers give
// us a small but real RSA (64-bit modulus from two ~32-bit primes) whose
// every multiplication can be routed through the simulated multiplier.
#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.hpp"

namespace pv::crypto {

using u64 = std::uint64_t;
__extension__ typedef unsigned __int128 u128;  // GCC/Clang builtin, pedantic-safe

/// (a * b) mod m via 128-bit intermediate; m must be nonzero.
[[nodiscard]] u64 mulmod(u64 a, u64 b, u64 m);

/// (base ^ exp) mod m by square-and-multiply; m must be nonzero.
[[nodiscard]] u64 powmod(u64 base, u64 exp, u64 m);

/// Greatest common divisor.
[[nodiscard]] u64 gcd(u64 a, u64 b);

/// Modular inverse of a mod m (extended Euclid); nullopt if not coprime.
[[nodiscard]] std::optional<u64> modinv(u64 a, u64 m);

/// Deterministic Miller-Rabin, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime(u64 n);

/// Uniform random prime with exactly `bits` bits (8 <= bits <= 62).
[[nodiscard]] u64 random_prime(Rng& rng, unsigned bits);

}  // namespace pv::crypto
