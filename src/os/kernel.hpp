// PlugVolt — kernel context: kthreads and loadable modules.
//
// The paper's countermeasure ships as a kernel module hosting a polling
// kthread; its threat model explicitly discusses module unloading (the
// load state is proposed for the SGX attestation report).  This model
// provides exactly those observables: a module registry ("lsmod"), and
// periodic kthreads whose wakeups steal real (simulated) cycles from the
// core they run on — the source of the Table 2 overhead.
//
// Kthreads survive machine reboots: the kernel re-arms every running
// kthread from Machine's on-reset hook, like services started from the
// initramfs on a real crash-reboot cycle.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "os/cpufreq.hpp"
#include "os/msr_driver.hpp"
#include "sim/machine.hpp"
#include "util/flat_map.hpp"

namespace pv::os {

class Kernel;

/// A loadable kernel module: init on load, exit on unload.
class KernelModule {
public:
    virtual ~KernelModule() = default;
    [[nodiscard]] virtual std::string_view name() const = 0;
    virtual void init(Kernel& kernel) = 0;
    virtual void exit(Kernel& kernel) = 0;
};

/// Handle identifying a started kthread.
using KthreadId = int;

/// The OS kernel running on a Machine.
class Kernel {
public:
    explicit Kernel(sim::Machine& machine);

    [[nodiscard]] sim::Machine& machine() { return machine_; }
    [[nodiscard]] MsrDriver& msr() { return msr_; }
    [[nodiscard]] Cpufreq& cpufreq() { return cpufreq_; }

    // --- kthreads ---------------------------------------------------------
    struct KthreadOptions {
        std::string name;
        unsigned cpu = 0;          ///< core the thread is pinned to
        Picoseconds period{};      ///< wakeup interval; must be positive
    };
    using KthreadBody = std::function<void(Kernel&)>;

    /// Start a periodic kthread.  Each wakeup charges the profile's
    /// kthread_wake_cycles to the pinned core, then runs `body` (whose
    /// MSR accesses charge further cycles through MsrDriver).
    KthreadId start_kthread(KthreadOptions options, KthreadBody body);

    /// Stop a kthread; idempotent.  Safe to call from the kthread's own
    /// body: the entry is marked stopped immediately (kthread_running()
    /// turns false) and reclaimed after the body returns, so the
    /// executing closure is never destroyed out from under itself.
    void stop_kthread(KthreadId id);

    [[nodiscard]] bool kthread_running(KthreadId id) const;

    // --- modules -----------------------------------------------------------
    /// insmod: returns false if a module of the same name is loaded.
    bool load_module(std::shared_ptr<KernelModule> module);

    /// rmmod: returns false if no such module is loaded.  NOTE: the
    /// paper's threat model *allows* the adversary to do this — which is
    /// why the module's load state must be attested (Sec. 4.1).
    bool unload_module(std::string_view name);

    [[nodiscard]] bool module_loaded(std::string_view name) const;

    /// Names of loaded modules, in load order (lsmod).
    [[nodiscard]] std::vector<std::string> lsmod() const;

    /// Build a self-contained Machine+Kernel pair for this kernel's
    /// profile (see make_worker_context).
    [[nodiscard]] struct WorkerContext fork_context(std::uint64_t seed) const;

private:
    struct Kthread {
        KthreadOptions options;
        KthreadBody body;
        bool running = true;
    };

    void arm(KthreadId id, Picoseconds first_wake);
    void on_machine_reset();

    sim::Machine& machine_;
    MsrDriver msr_;
    Cpufreq cpufreq_;
    // Flat table of heap-pinned kthreads: the indirection matters — a
    // body that starts another kthread grows the table, and the entry of
    // the body CURRENTLY EXECUTING must not move while it runs.
    FlatMap<KthreadId, std::unique_ptr<Kthread>> kthreads_;
    KthreadId next_id_ = 1;
    std::vector<std::shared_ptr<KernelModule>> modules_;
};

/// A self-contained simulated machine with its OS, for drivers that run
/// many independent simulator instances (one per characterization
/// worker).  Machine is pinned in memory (scheduled events capture its
/// address), hence the unique_ptrs; the context as a whole is movable.
struct WorkerContext {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<Kernel> kernel;
};

/// Factory for worker contexts: a fresh Machine(profile, seed) hosting a
/// fresh Kernel.  Every worker of a parallel sweep gets its own context,
/// so no simulator state is ever shared across threads.
[[nodiscard]] WorkerContext make_worker_context(const sim::CpuProfile& profile,
                                                std::uint64_t seed);

}  // namespace pv::os
