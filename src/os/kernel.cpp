#include "os/kernel.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pv::os {

Kernel::Kernel(sim::Machine& machine)
    : machine_(machine), msr_(machine), cpufreq_(machine) {
    machine_.on_reset([this] { on_machine_reset(); });
}

KthreadId Kernel::start_kthread(KthreadOptions options, KthreadBody body) {
    if (options.period <= Picoseconds{0})
        throw ConfigError("kthread period must be positive");
    if (options.cpu >= machine_.core_count())
        throw ConfigError("kthread pinned to nonexistent cpu");
    const KthreadId id = next_id_++;
    const Picoseconds first_wake = machine_.now() + options.period;
    kthreads_.emplace(id, std::make_unique<Kthread>(
                              Kthread{std::move(options), std::move(body), true}));
    arm(id, first_wake);
    return id;
}

void Kernel::arm(KthreadId id, Picoseconds first_wake) {
    machine_.events().schedule(first_wake, [this, id] {
        const auto it = kthreads_.find(id);
        if (it == kthreads_.end() || !it->second->running) return;
        // Heap-pinned: stays valid even if the body grows the table.
        const Kthread& kt = *it->second;
        // A timer firing on an idle core wakes it first (exit latency is
        // charged inside wake_core).
        if (machine_.core(kt.options.cpu).cstate() != sim::CState::C0)
            machine_.wake_core(kt.options.cpu);
        machine_.add_steal(kt.options.cpu,
                           Cycles{machine_.profile().costs.kthread_wake_cycles});
        kt.body(*this);
        // The body may have stopped this kthread (or the machine may
        // have crashed; the event queue is cleared on reboot anyway).
        const auto again = kthreads_.find(id);
        if (again == kthreads_.end()) return;
        if (again->second->running)
            arm(id, machine_.now() + again->second->options.period);
        else
            kthreads_.erase(id);  // deferred reclaim of a self-stop
    });
}

void Kernel::stop_kthread(KthreadId id) {
    // Mark only: the entry may belong to the body currently executing
    // (a kthread stopping itself), and erasing here would destroy that
    // closure mid-call.  arm()'s wrapper or on_machine_reset() reclaims.
    const auto it = kthreads_.find(id);
    if (it != kthreads_.end()) it->second->running = false;
}

bool Kernel::kthread_running(KthreadId id) const {
    const auto it = kthreads_.find(id);
    return it != kthreads_.end() && it->second->running;
}

void Kernel::on_machine_reset() {
    // Reboot cleared the event queue: reclaim stopped entries (their
    // pending wrapper events are gone), then re-arm every running one.
    for (auto it = kthreads_.begin(); it != kthreads_.end();) {
        if (!(*it->second).running) {
            const KthreadId dead = it->first;
            kthreads_.erase(dead);
            it = kthreads_.begin();  // erase invalidates flat iterators
        } else {
            ++it;
        }
    }
    for (const auto& [id, kt] : kthreads_) {
        arm(id, machine_.now() + kt->options.period);
    }
}

bool Kernel::load_module(std::shared_ptr<KernelModule> module) {
    if (!module) throw ConfigError("load_module(nullptr)");
    if (module_loaded(module->name())) return false;
    modules_.push_back(module);
    module->init(*this);
    return true;
}

bool Kernel::unload_module(std::string_view name) {
    const auto it = std::find_if(modules_.begin(), modules_.end(),
                                 [&](const auto& m) { return m->name() == name; });
    if (it == modules_.end()) return false;
    (*it)->exit(*this);
    modules_.erase(it);
    return true;
}

bool Kernel::module_loaded(std::string_view name) const {
    return std::any_of(modules_.begin(), modules_.end(),
                       [&](const auto& m) { return m->name() == name; });
}

std::vector<std::string> Kernel::lsmod() const {
    std::vector<std::string> names;
    names.reserve(modules_.size());
    for (const auto& m : modules_) names.emplace_back(m->name());
    return names;
}

WorkerContext Kernel::fork_context(std::uint64_t seed) const {
    return make_worker_context(machine_.profile(), seed);
}

WorkerContext make_worker_context(const sim::CpuProfile& profile, std::uint64_t seed) {
    WorkerContext ctx;
    ctx.machine = std::make_unique<sim::Machine>(profile, seed);
    ctx.kernel = std::make_unique<Kernel>(*ctx.machine);
    return ctx;
}

}  // namespace pv::os
