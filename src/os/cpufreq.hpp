// PlugVolt — cpufreq subsystem (Linux "CPU performance scaling").
//
// Models the scaling-driver/governor split the paper's background
// section describes: governors pick a target frequency inside per-policy
// [min, max] limits; the driver writes IA32_PERF_CTL.  Note what the
// subsystem deliberately does NOT expose — operating voltage.  Voltage
// moves only through the OCM (MSR 0x150), which is the causal
// independence the paper's root-cause analysis hinges on.
#pragma once

#include <string_view>
#include <vector>

#include "sim/machine.hpp"
#include "util/units.hpp"

namespace pv::os {

/// The standard governor set (schedutil folded into Ondemand here: both
/// are load-followers, and the distinction is irrelevant to DVFS faults).
enum class Governor { Performance, Powersave, Userspace, Ondemand };

[[nodiscard]] std::string_view to_string(Governor g);

/// Per-CPU frequency scaling policies on top of a Machine.
class Cpufreq {
public:
    explicit Cpufreq(sim::Machine& machine);

    /// The scaling_available_frequencies table.
    [[nodiscard]] std::vector<Megahertz> available_frequencies() const;

    void set_governor(unsigned cpu, Governor g);
    [[nodiscard]] Governor governor(unsigned cpu) const;

    /// Tighten or widen a policy's [min, max]; clamped to hardware range.
    void set_policy_limits(unsigned cpu, Megahertz lo, Megahertz hi);
    [[nodiscard]] Megahertz policy_min(unsigned cpu) const;
    [[nodiscard]] Megahertz policy_max(unsigned cpu) const;

    /// scaling_setspeed: only honoured under the Userspace governor
    /// (throws ConfigError otherwise, like the sysfs file returns EINVAL).
    void set_userspace_frequency(unsigned cpu, Megahertz f);

    /// Feed a utilization sample in [0,1] to a load-following governor;
    /// Ondemand jumps to max above 80% load and scales down proportionally
    /// below, mirroring the upstream governor's up-threshold behaviour.
    void report_load(unsigned cpu, double utilization);

    [[nodiscard]] Megahertz current(unsigned cpu) const;

private:
    struct Policy {
        Governor gov = Governor::Ondemand;
        Megahertz min{};
        Megahertz max{};
    };

    void apply(unsigned cpu, Megahertz target);
    [[nodiscard]] const Policy& policy(unsigned cpu) const;

    sim::Machine& machine_;
    std::vector<Policy> policies_;
};

}  // namespace pv::os
