#include "os/cpupower.hpp"

#include "util/error.hpp"

namespace pv::os {

Cpupower::Cpupower(Cpufreq& cpufreq, unsigned cpu_count)
    : cpufreq_(cpufreq), cpu_count_(cpu_count) {
    if (cpu_count_ == 0) throw ConfigError("cpupower: zero cpus");
}

void Cpupower::frequency_set(Megahertz f) {
    for (unsigned cpu = 0; cpu < cpu_count_; ++cpu) frequency_set(cpu, f);
}

void Cpupower::frequency_set(unsigned cpu, Megahertz f) {
    cpufreq_.set_governor(cpu, Governor::Userspace);
    cpufreq_.set_userspace_frequency(cpu, f);
}

Cpupower::Info Cpupower::frequency_info(unsigned cpu) const {
    return Info{
        .governor = cpufreq_.governor(cpu),
        .current = cpufreq_.current(cpu),
        .hw_min = cpufreq_.policy_min(cpu),
        .hw_max = cpufreq_.policy_max(cpu),
    };
}

}  // namespace pv::os
