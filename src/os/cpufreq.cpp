#include "os/cpufreq.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pv::os {

std::string_view to_string(Governor g) {
    switch (g) {
        case Governor::Performance: return "performance";
        case Governor::Powersave: return "powersave";
        case Governor::Userspace: return "userspace";
        case Governor::Ondemand: return "ondemand";
    }
    return "?";
}

Cpufreq::Cpufreq(sim::Machine& machine) : machine_(machine) {
    const auto& p = machine_.profile();
    policies_.resize(machine_.core_count(), Policy{Governor::Ondemand, p.freq_min, p.freq_max});
}

const Cpufreq::Policy& Cpufreq::policy(unsigned cpu) const {
    if (cpu >= policies_.size()) throw ConfigError("cpufreq: cpu out of range");
    return policies_[cpu];
}

std::vector<Megahertz> Cpufreq::available_frequencies() const {
    return machine_.profile().frequency_table();
}

void Cpufreq::set_governor(unsigned cpu, Governor g) {
    if (cpu >= policies_.size()) throw ConfigError("cpufreq: cpu out of range");
    policies_[cpu].gov = g;
    switch (g) {
        case Governor::Performance: apply(cpu, policies_[cpu].max); break;
        case Governor::Powersave: apply(cpu, policies_[cpu].min); break;
        case Governor::Userspace:
        case Governor::Ondemand: break;  // keep current until told otherwise
    }
}

Governor Cpufreq::governor(unsigned cpu) const { return policy(cpu).gov; }

void Cpufreq::set_policy_limits(unsigned cpu, Megahertz lo, Megahertz hi) {
    if (cpu >= policies_.size()) throw ConfigError("cpufreq: cpu out of range");
    if (lo > hi) throw ConfigError("cpufreq: policy min above max");
    const auto& p = machine_.profile();
    policies_[cpu].min = std::max(lo, p.freq_min);
    policies_[cpu].max = std::min(hi, p.freq_max);
    // Re-clamp the running frequency into the new window.
    const Megahertz cur = machine_.core(cpu).frequency();
    apply(cpu, std::clamp(cur, policies_[cpu].min, policies_[cpu].max));
}

Megahertz Cpufreq::policy_min(unsigned cpu) const { return policy(cpu).min; }
Megahertz Cpufreq::policy_max(unsigned cpu) const { return policy(cpu).max; }

void Cpufreq::set_userspace_frequency(unsigned cpu, Megahertz f) {
    if (policy(cpu).gov != Governor::Userspace)
        throw ConfigError("scaling_setspeed requires the userspace governor");
    apply(cpu, f);
}

void Cpufreq::report_load(unsigned cpu, double utilization) {
    if (utilization < 0.0 || utilization > 1.0)
        throw ConfigError("utilization must be in [0,1]");
    const Policy& pol = policy(cpu);
    if (pol.gov != Governor::Ondemand) return;  // other governors ignore load
    Megahertz target = pol.max;
    if (utilization < 0.8) {
        const double span = pol.max.value() - pol.min.value();
        target = Megahertz{pol.min.value() + span * (utilization / 0.8)};
    }
    apply(cpu, target);
}

Megahertz Cpufreq::current(unsigned cpu) const { return machine_.core(cpu).frequency(); }

void Cpufreq::apply(unsigned cpu, Megahertz target) {
    const Policy& pol = policy(cpu);
    target = std::clamp(target, pol.min, pol.max);
    // The scaling driver programs IA32_PERF_CTL with the ratio.
    const auto ratio = static_cast<std::uint64_t>(target.value() / 100.0 + 0.5) & 0xFF;
    machine_.write_msr(cpu, sim::kMsrPerfCtl, ratio << 8);
}

}  // namespace pv::os
