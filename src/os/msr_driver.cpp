#include "os/msr_driver.hpp"

#include <utility>

#include "trace/trace.hpp"

namespace pv::os {

MsrDriver::MsrDriver(sim::Machine& machine) : machine_(machine) {}

MsrObserver* MsrDriver::set_observer(MsrObserver* observer) {
    return std::exchange(observer_, observer);
}

void MsrDriver::charge(unsigned cpu, std::uint64_t cycles) {
    total_cycles_ += cycles;
    machine_.add_steal(cpu, Cycles{cycles});
}

Cycles MsrDriver::read_cost(bool remote) const {
    const auto& c = machine_.profile().costs;
    return Cycles{c.rdmsr_cycles + (remote ? c.ipi_cycles : 0)};
}

Cycles MsrDriver::write_cost(bool remote) const {
    const auto& c = machine_.profile().costs;
    return Cycles{c.wrmsr_cycles + (remote ? c.ipi_cycles : 0)};
}

std::uint64_t MsrDriver::rdmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr) {
    charge(caller_cpu, read_cost(caller_cpu != target_cpu).value());
    const std::uint64_t value = machine_.read_msr(target_cpu, addr);
    PV_TRACE_EVENT_FINE(trace::EventKind::MsrRead, "rdmsr", machine_.now().value(), addr,
                        value);
    if (observer_ != nullptr) observer_->on_rdmsr(caller_cpu, target_cpu, addr, value);
    return value;
}

bool MsrDriver::wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                      std::uint64_t value) {
    charge(caller_cpu, write_cost(caller_cpu != target_cpu).value());
    PV_TRACE_EVENT_FINE(trace::EventKind::MsrWrite, "wrmsr", machine_.now().value(), addr,
                        value);
    // Observed BEFORE the machine applies it, so an auditor's machine-
    // level hook can tell driver traffic from out-of-band injection.
    if (observer_ != nullptr) observer_->on_wrmsr(caller_cpu, target_cpu, addr, value);
    return machine_.write_msr(target_cpu, addr, value);
}

std::uint64_t MsrDriver::ioctl_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                     std::uint32_t addr) {
    charge(caller_cpu, machine_.profile().costs.ioctl_overhead_cycles);
    return rdmsr(caller_cpu, target_cpu, addr);
}

bool MsrDriver::ioctl_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                            std::uint64_t value) {
    charge(caller_cpu, machine_.profile().costs.ioctl_overhead_cycles);
    return wrmsr(caller_cpu, target_cpu, addr, value);
}

}  // namespace pv::os
