#include "os/msr_driver.hpp"

#include <cstdio>
#include <utility>

#include "sim/ocm.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace pv::os {
namespace {

/// An IPI that times out burns its wait budget before failing — the
/// caller stalls far longer than a clean access (the PMFault "wedged
/// mailbox" shape).  Charged as a multiple of the clean access cost.
constexpr std::uint64_t kTimeoutStallMultiplier = 50;

std::string describe(const char* op, std::uint32_t addr, MsrStatus status) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s 0x%x: %s", op, addr, to_string(status));
    return buf;
}

}  // namespace

const char* to_string(MsrStatus status) {
    switch (status) {
        case MsrStatus::Ok: return "ok";
        case MsrStatus::IoError: return "io-error";
        case MsrStatus::Busy: return "busy";
        case MsrStatus::Timeout: return "timeout";
    }
    return "?";
}

MsrDriver::MsrDriver(sim::Machine& machine) : machine_(machine) {}

MsrObserver* MsrDriver::set_observer(MsrObserver* observer) {
    return std::exchange(observer_, observer);
}

resilience::FaultInjector* MsrDriver::set_fault_injector(
    resilience::FaultInjector* injector) {
    return std::exchange(injector_, injector);
}

void MsrDriver::charge(unsigned cpu, std::uint64_t cycles) {
    total_cycles_ += cycles;
    machine_.add_steal(cpu, Cycles{cycles});
}

Cycles MsrDriver::read_cost(bool remote) const {
    const auto& c = machine_.profile().costs;
    return Cycles{c.rdmsr_cycles + (remote ? c.ipi_cycles : 0)};
}

Cycles MsrDriver::write_cost(bool remote) const {
    const auto& c = machine_.profile().costs;
    return Cycles{c.wrmsr_cycles + (remote ? c.ipi_cycles : 0)};
}

MsrReadResult MsrDriver::try_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                   std::uint32_t addr) {
    const std::uint64_t cost = read_cost(caller_cpu != target_cpu).value();
    charge(caller_cpu, cost);
    if (injector_ != nullptr) {
        using resilience::FaultKind;
        if (injector_->should_inject(FaultKind::RdmsrTimeout)) {
            charge(caller_cpu, cost * kTimeoutStallMultiplier);
            ++faults_.read_timeouts;
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "rdmsr-timeout",
                           machine_.now().value(), addr, target_cpu);
            return {MsrStatus::Timeout, 0, false};
        }
        if (injector_->should_inject(FaultKind::RdmsrError)) {
            ++faults_.read_errors;
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "rdmsr-error",
                           machine_.now().value(), addr, target_cpu);
            return {MsrStatus::IoError, 0, false};
        }
    }
    const std::uint64_t value = machine_.read_msr(target_cpu, addr);
    std::uint64_t served = value;
    bool stale = false;
    if (injector_ != nullptr) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(target_cpu) << 32) | addr;
        if (injector_->should_inject(resilience::FaultKind::StaleRead)) {
            // A torn read races the PCU's update and sees the previous
            // value of this MSR; with no previous value on record the
            // read is trivially coherent.
            const auto it = last_value_.find(key);
            if (it != last_value_.end()) {
                served = it->second;
                stale = true;
                ++faults_.stale_reads;
                PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "stale-read",
                               machine_.now().value(), addr, served);
            }
        }
        last_value_[key] = value;
    }
    PV_TRACE_EVENT_FINE(trace::EventKind::MsrRead, "rdmsr", machine_.now().value(), addr,
                        served);
    if (observer_ != nullptr) observer_->on_rdmsr(caller_cpu, target_cpu, addr, served);
    return {MsrStatus::Ok, served, stale};
}

MsrWriteResult MsrDriver::try_wrmsr(unsigned caller_cpu, unsigned target_cpu,
                                    std::uint32_t addr, std::uint64_t value) {
    const std::uint64_t cost = write_cost(caller_cpu != target_cpu).value();
    charge(caller_cpu, cost);
    if (injector_ != nullptr) {
        using resilience::FaultKind;
        if (addr == sim::kMsrOcMailbox &&
            injector_->should_inject(FaultKind::MailboxBusy)) {
            ++faults_.mailbox_busy;
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "mailbox-busy",
                           machine_.now().value(), addr, target_cpu);
            return {MsrStatus::Busy, false};
        }
        if (injector_->should_inject(FaultKind::WrmsrTimeout)) {
            charge(caller_cpu, cost * kTimeoutStallMultiplier);
            ++faults_.write_timeouts;
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "wrmsr-timeout",
                           machine_.now().value(), addr, target_cpu);
            return {MsrStatus::Timeout, false};
        }
        if (injector_->should_inject(FaultKind::WrmsrError)) {
            ++faults_.write_errors;
            PV_TRACE_EVENT(trace::EventKind::EnvFaultInjected, "wrmsr-error",
                           machine_.now().value(), addr, target_cpu);
            return {MsrStatus::IoError, false};
        }
    }
    PV_TRACE_EVENT_FINE(trace::EventKind::MsrWrite, "wrmsr", machine_.now().value(), addr,
                        value);
    // Observed BEFORE the machine applies it, so an auditor's machine-
    // level hook can tell driver traffic from out-of-band injection.
    if (observer_ != nullptr) observer_->on_wrmsr(caller_cpu, target_cpu, addr, value);
    // The stale-read cache is deliberately NOT updated here: it tracks
    // last READ values, so a torn read after a write serves the pre-write
    // value — exactly the poll-races-the-PCU shape being modelled.
    return {MsrStatus::Ok, machine_.write_msr(target_cpu, addr, value)};
}

MsrReadResult MsrDriver::try_ioctl_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                         std::uint32_t addr) {
    charge(caller_cpu, machine_.profile().costs.ioctl_overhead_cycles);
    return try_rdmsr(caller_cpu, target_cpu, addr);
}

MsrWriteResult MsrDriver::try_ioctl_wrmsr(unsigned caller_cpu, unsigned target_cpu,
                                          std::uint32_t addr, std::uint64_t value) {
    charge(caller_cpu, machine_.profile().costs.ioctl_overhead_cycles);
    return try_wrmsr(caller_cpu, target_cpu, addr, value);
}

std::uint64_t MsrDriver::rdmsr(unsigned caller_cpu, unsigned target_cpu,
                               std::uint32_t addr) {
    const MsrReadResult r = try_rdmsr(caller_cpu, target_cpu, addr);
    if (r.status != MsrStatus::Ok) throw DriverError(describe("rdmsr", addr, r.status));
    return r.value;
}

bool MsrDriver::wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                      std::uint64_t value) {
    const MsrWriteResult r = try_wrmsr(caller_cpu, target_cpu, addr, value);
    if (r.status != MsrStatus::Ok) throw DriverError(describe("wrmsr", addr, r.status));
    return r.applied;
}

std::uint64_t MsrDriver::ioctl_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                     std::uint32_t addr) {
    const MsrReadResult r = try_ioctl_rdmsr(caller_cpu, target_cpu, addr);
    if (r.status != MsrStatus::Ok)
        throw DriverError(describe("ioctl rdmsr", addr, r.status));
    return r.value;
}

bool MsrDriver::ioctl_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                            std::uint64_t value) {
    const MsrWriteResult r = try_ioctl_wrmsr(caller_cpu, target_cpu, addr, value);
    if (r.status != MsrStatus::Ok)
        throw DriverError(describe("ioctl wrmsr", addr, r.status));
    return r.applied;
}

}  // namespace pv::os
