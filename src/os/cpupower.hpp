// PlugVolt — the `cpupower` utility facade.
//
// The paper's Algorithm 2 sets test frequencies with the cpupower Linux
// utility; this facade reproduces its observable behaviour: `cpupower
// frequency-set -f X` pins every CPU to X by switching the policy to the
// userspace governor.
#pragma once

#include "os/cpufreq.hpp"

namespace pv::os {

/// Minimal model of `cpupower frequency-set` / `frequency-info`.
class Cpupower {
public:
    explicit Cpupower(Cpufreq& cpufreq, unsigned cpu_count);

    /// `cpupower frequency-set -f <f>`: all CPUs, userspace governor.
    void frequency_set(Megahertz f);

    /// `cpupower -c <cpu> frequency-set -f <f>`.
    void frequency_set(unsigned cpu, Megahertz f);

    /// `cpupower frequency-info` essentials for one CPU.
    struct Info {
        Governor governor;
        Megahertz current;
        Megahertz hw_min;
        Megahertz hw_max;
    };
    [[nodiscard]] Info frequency_info(unsigned cpu) const;

private:
    Cpufreq& cpufreq_;
    unsigned cpu_count_;
};

}  // namespace pv::os
