// PlugVolt — kernel MSR driver (the /dev/cpu/*/msr path).
//
// Every MSR access in the real countermeasure costs time: the rdmsr/
// wrmsr instruction itself, a cross-core IPI when the target MSR lives
// on another CPU, and (from userspace) the ioctl transition.  Those
// prices are the first of the paper's two turnaround-time contributors
// (Sec. 5), and they are also what the Table 2 overhead is made of —
// so the driver charges them to the calling core as stolen cycles.
//
// The driver is also where the ENVIRONMENT fails: EIO from the msr
// device, IPI timeouts, stale status reads, a busy OCM mailbox.  The
// try_* API surfaces those as MsrStatus values (domain outcomes are
// values, never exceptions) and a resilience::FaultInjector can be
// attached to produce them deterministically; the legacy throwing API
// wraps try_* and raises DriverError.  With no injector attached every
// access is bit-for-bit the pre-injection fast path.
#pragma once

#include <cstdint>

#include "resilience/fault_injection.hpp"
#include "sim/cpu_profile.hpp"
#include "sim/machine.hpp"
#include "util/flat_map.hpp"

namespace pv::os {

/// Outcome of one driver-level MSR access.
enum class MsrStatus : std::uint8_t {
    Ok,       ///< access completed (value served / write delivered)
    IoError,  ///< the device returned EIO; nothing happened
    Busy,     ///< OC mailbox busy bit stuck; write bounced
    Timeout,  ///< cross-core IPI stalled out; extra cycles were burned
};

[[nodiscard]] const char* to_string(MsrStatus status);

struct MsrReadResult {
    MsrStatus status = MsrStatus::Ok;
    std::uint64_t value = 0;
    /// True when an injected torn read served the MSR's PREVIOUS value.
    bool stale = false;
};

struct MsrWriteResult {
    MsrStatus status = MsrStatus::Ok;
    /// Machine-level write hook outcome (false if a hook ignored it);
    /// only meaningful when status == Ok.
    bool applied = false;
};

/// Per-driver environment-fault counters (what the injector produced).
struct MsrFaultCounters {
    std::uint64_t read_errors = 0;
    std::uint64_t write_errors = 0;
    std::uint64_t read_timeouts = 0;
    std::uint64_t write_timeouts = 0;
    std::uint64_t stale_reads = 0;
    std::uint64_t mailbox_busy = 0;
};

/// Passive tap on driver-level MSR traffic.  Observers see every access
/// that goes through this driver (the legitimate software path); traffic
/// that reaches the Machine without passing here is, by definition,
/// out-of-band — which is exactly what check::MsrAuditor cross-checks.
class MsrObserver {
public:
    virtual ~MsrObserver() = default;
    /// Called before the write reaches the machine.
    virtual void on_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                          std::uint64_t value) = 0;
    /// Called after the read, with the value returned to the caller.
    virtual void on_rdmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                          std::uint64_t value) = 0;
};

/// Kernel- and user-context MSR access with cycle accounting.
class MsrDriver {
public:
    explicit MsrDriver(sim::Machine& machine);

    /// Attach/detach a traffic observer (non-owning; at most one).
    /// Returns the previously attached observer, if any.
    MsrObserver* set_observer(MsrObserver* observer);
    [[nodiscard]] MsrObserver* observer() const { return observer_; }

    /// Attach/detach the environment fault source (non-owning; at most
    /// one).  Returns the previously attached injector, if any.
    resilience::FaultInjector* set_fault_injector(resilience::FaultInjector* injector);
    [[nodiscard]] resilience::FaultInjector* fault_injector() const { return injector_; }

    /// Kernel-context rdmsr of `target_cpu`'s MSR from `caller_cpu`.
    /// Remote targets pay the IPI price (smp_call_function_single).
    /// Never throws on environment faults: the status says what happened.
    [[nodiscard]] MsrReadResult try_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                          std::uint32_t addr);

    /// Kernel-context wrmsr; environment faults surface in the status.
    MsrWriteResult try_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                             std::uint64_t value);

    /// Userspace path (open /dev/cpu/N/msr + ioctl): same access plus the
    /// user->kernel transition overhead.  This is what the published
    /// attack PoCs use.
    [[nodiscard]] MsrReadResult try_ioctl_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                                std::uint32_t addr);
    MsrWriteResult try_ioctl_wrmsr(unsigned caller_cpu, unsigned target_cpu,
                                   std::uint32_t addr, std::uint64_t value);

    /// Legacy throwing API: same accesses, but a non-Ok status raises
    /// DriverError.  Unchanged behaviour when no injector is attached.
    [[nodiscard]] std::uint64_t rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                      std::uint32_t addr);
    bool wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
               std::uint64_t value);
    [[nodiscard]] std::uint64_t ioctl_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                            std::uint32_t addr);
    bool ioctl_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                     std::uint64_t value);

    /// Cycle cost of a single kernel-context read/write for planning
    /// (e.g. the turnaround decomposition bench).
    [[nodiscard]] Cycles read_cost(bool remote) const;
    [[nodiscard]] Cycles write_cost(bool remote) const;

    /// Total cycles this driver has charged since construction.
    [[nodiscard]] std::uint64_t total_cost_cycles() const { return total_cycles_; }

    /// Environment faults this driver surfaced (all injector-produced).
    [[nodiscard]] const MsrFaultCounters& fault_counters() const { return faults_; }

    /// Forget the stale-read history.  Call at experiment boundaries
    /// (e.g. between sweep cells) so a torn read can never serve a value
    /// recorded by a previous, unrelated experiment — that would make
    /// outcomes depend on probe order and worker assignment.
    void clear_stale_cache() { last_value_.clear(); }

private:
    void charge(unsigned cpu, std::uint64_t cycles);

    sim::Machine& machine_;
    MsrObserver* observer_ = nullptr;
    resilience::FaultInjector* injector_ = nullptr;
    /// Last true value per (target_cpu, addr), tracked only while an
    /// injector is attached — the value a StaleRead serves.  Flat map:
    /// clear_stale_cache() at every cell boundary keeps the capacity.
    FlatMap<std::uint64_t, std::uint64_t> last_value_;
    MsrFaultCounters faults_;
    std::uint64_t total_cycles_ = 0;
};

}  // namespace pv::os
