// PlugVolt — kernel MSR driver (the /dev/cpu/*/msr path).
//
// Every MSR access in the real countermeasure costs time: the rdmsr/
// wrmsr instruction itself, a cross-core IPI when the target MSR lives
// on another CPU, and (from userspace) the ioctl transition.  Those
// prices are the first of the paper's two turnaround-time contributors
// (Sec. 5), and they are also what the Table 2 overhead is made of —
// so the driver charges them to the calling core as stolen cycles.
#pragma once

#include <cstdint>

#include "sim/cpu_profile.hpp"
#include "sim/machine.hpp"

namespace pv::os {

/// Passive tap on driver-level MSR traffic.  Observers see every access
/// that goes through this driver (the legitimate software path); traffic
/// that reaches the Machine without passing here is, by definition,
/// out-of-band — which is exactly what check::MsrAuditor cross-checks.
class MsrObserver {
public:
    virtual ~MsrObserver() = default;
    /// Called before the write reaches the machine.
    virtual void on_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                          std::uint64_t value) = 0;
    /// Called after the read, with the value returned to the caller.
    virtual void on_rdmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                          std::uint64_t value) = 0;
};

/// Kernel- and user-context MSR access with cycle accounting.
class MsrDriver {
public:
    explicit MsrDriver(sim::Machine& machine);

    /// Attach/detach a traffic observer (non-owning; at most one).
    /// Returns the previously attached observer, if any.
    MsrObserver* set_observer(MsrObserver* observer);
    [[nodiscard]] MsrObserver* observer() const { return observer_; }

    /// Kernel-context rdmsr of `target_cpu`'s MSR from `caller_cpu`.
    /// Remote targets pay the IPI price (smp_call_function_single).
    [[nodiscard]] std::uint64_t rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                      std::uint32_t addr);

    /// Kernel-context wrmsr; returns false if a write hook ignored it.
    bool wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
               std::uint64_t value);

    /// Userspace path (open /dev/cpu/N/msr + ioctl): same access plus the
    /// user->kernel transition overhead.  This is what the published
    /// attack PoCs use.
    [[nodiscard]] std::uint64_t ioctl_rdmsr(unsigned caller_cpu, unsigned target_cpu,
                                            std::uint32_t addr);
    bool ioctl_wrmsr(unsigned caller_cpu, unsigned target_cpu, std::uint32_t addr,
                     std::uint64_t value);

    /// Cycle cost of a single kernel-context read/write for planning
    /// (e.g. the turnaround decomposition bench).
    [[nodiscard]] Cycles read_cost(bool remote) const;
    [[nodiscard]] Cycles write_cost(bool remote) const;

    /// Total cycles this driver has charged since construction.
    [[nodiscard]] std::uint64_t total_cost_cycles() const { return total_cycles_; }

private:
    void charge(unsigned cpu, std::uint64_t cycles);

    sim::Machine& machine_;
    MsrObserver* observer_ = nullptr;
    std::uint64_t total_cycles_ = 0;
};

}  // namespace pv::os
