// PlugVolt — central MSR register registry.
//
// THE single home for raw MSR register numbers.  pv-lint rule
// msr-constant bans these hex values everywhere else under src/, so
// every register the tree touches is enumerable here — the property the
// wrmsr-filtering deployments (and the PMFault/V0LTpwn threat analysis)
// depend on: you cannot audit "every MSR write goes through the driver"
// if you cannot list the MSRs.
//
// Layering: this header is its own rank-0 leaf in the pv-lint subsystem
// DAG (like util), includable from anywhere, and may itself include
// nothing but the standard library.  Subsystem-facing aliases (e.g.
// sim::kMsrOcMailbox) forward here so existing call sites keep their
// names.
//
// pv-lint parses the `= 0x...;` initializers below to learn which hex
// values to guard — adding a register here automatically bans its raw
// form tree-wide.
#pragma once

#include <cstdint>

namespace pv::msr {

/// Overclocking mailbox (Plundervolt's undervolt interface; Table 1).
inline constexpr std::uint32_t kOcMailbox = 0x150;
/// IA32_PERF_STATUS: frequency ratio + measured core voltage.
inline constexpr std::uint32_t kPerfStatus = 0x198;
/// IA32_PERF_CTL: requested performance state.
inline constexpr std::uint32_t kPerfCtl = 0x199;
/// IA32_THERM_STATUS: digital readout = Tjmax - T.
inline constexpr std::uint32_t kThermStatus = 0x19C;
/// IA32_TEMPERATURE_TARGET: Tjmax.
inline constexpr std::uint32_t kTemperatureTarget = 0x1A2;
/// Hypothetical MSR_VOLTAGE_OFFSET_LIMIT proposed in Sec. 5.2 of the
/// paper (analogous to DRAM_MIN_PWR in MSR_DRAM_POWER_INFO).  The index
/// is outside Intel's allocated ranges on purpose.
inline constexpr std::uint32_t kVoltageOffsetLimit = 0x1F0;
/// MSR_RAPL_POWER_UNIT: energy/power/time unit exponents.
inline constexpr std::uint32_t kRaplPowerUnit = 0x606;
/// MSR_PKG_ENERGY_STATUS: accumulated package energy.
inline constexpr std::uint32_t kPkgEnergyStatus = 0x611;

}  // namespace pv::msr
