// infer — discrete posterior over one boundary step of a frequency row.
//
// The adaptive sweep models each boundary (crash, fault onset) of each
// frequency column as an unknown 1-based offset step b in {1 .. n}, with
// n = sweep_steps() + 1 so the "boundary outside the sweep" verdict
// (no-crash / fault-free column) is a first-class support point.  Two
// observation channels update it:
//
//   - hard restrictions, from deterministic evidence: a crashed cell at
//     step s proves b <= s, a surviving cell proves b >= s + 1 (the
//     crash predicate is a deterministic monotone threshold — the same
//     physics the bisection mode exploits).  These zero out support
//     permanently and can only SHRINK the certified bracket
//     [hard_lo, hard_hi]; the PROP tests pin that monotonicity.
//
//   - noisy-threshold likelihoods, for the stochastic fault-onset
//     channel: a cell observed CLEAN at step s may still sit below the
//     true onset (fault observation is a per-cell Bernoulli draw), so it
//     only down-weights "b <= s" geometrically in the depth below s —
//     the discrete analogue of a logistic observation model.  Soft
//     evidence never zeroes support and never moves the certified
//     bracket.
//
// Determinism: weights are plain doubles updated in call order; there is
// no clock and no entropy source anywhere — sampling (used by the
// acquisition tie-break) draws from the caller's seeded util::Rng.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pv::infer {

class BoundaryPosterior {
public:
    /// Uniform prior over support {1 .. support_max}.  Throws ConfigError
    /// when the support is empty.
    explicit BoundaryPosterior(std::uint64_t support_max);

    /// Re-shape the (soft) prior around `center`: weight
    /// floor + decay^|b - center| per step, renormalized.  Used for
    /// lot-neighbour warm starts and anchor-interpolation predictions;
    /// the floor keeps every still-possible step reachable, so a wrong
    /// prior costs probes, never correctness.  Hard-excluded steps stay
    /// excluded.
    void recenter(std::uint64_t center, double decay, double floor);

    /// Hard evidence: the boundary is at or above step... precisely,
    /// b <= s (e.g. step s crashed / faulted).  No-op beyond the current
    /// bracket; tightens hard_hi otherwise.
    void restrict_leq(std::uint64_t s);

    /// Hard evidence: b >= s (e.g. step s - 1 survived clean).
    void restrict_geq(std::uint64_t s);

    /// Noisy-threshold evidence: step s ran the full cell protocol and
    /// observed zero faults.  Scales w[b] by exp(-(s - b + 1) / tau) for
    /// b <= s (the deeper below s the onset would be, the less likely a
    /// clean read), leaves b > s untouched.
    void observe_clean_noisy(std::uint64_t s, double tau);

    /// P(b <= s) under the current posterior.
    [[nodiscard]] double p_leq(std::uint64_t s) const;

    /// Shannon entropy (nats) of the posterior.
    [[nodiscard]] double entropy() const;

    /// Posterior mode; the lowest step on ties.
    [[nodiscard]] std::uint64_t map_estimate() const;

    /// Inverse-CDF draw from the posterior (Thompson-style candidate
    /// generation); deterministic given the Rng state.
    [[nodiscard]] std::uint64_t sample(Rng& rng) const;

    /// Certified bracket: every step outside [hard_lo, hard_hi] has been
    /// EXCLUDED by hard evidence.  Monotone non-widening by construction.
    [[nodiscard]] std::uint64_t hard_lo() const { return hard_lo_; }
    [[nodiscard]] std::uint64_t hard_hi() const { return hard_hi_; }
    [[nodiscard]] std::uint64_t width() const { return hard_hi_ - hard_lo_; }

    /// The stopping rule: the bracket has collapsed to one step, which
    /// is exactly the bisection bracket invariant (!pred(b - 1) &&
    /// pred(b)) — a 0-cell certificate, stronger than the 1-cell target.
    [[nodiscard]] bool certified() const { return hard_lo_ == hard_hi_; }

private:
    void renormalize();
    [[nodiscard]] double weight_sum() const;

    std::vector<double> w_;  // w_[i] is the weight of step i + 1
    std::uint64_t hard_lo_;
    std::uint64_t hard_hi_;
};

}  // namespace pv::infer
