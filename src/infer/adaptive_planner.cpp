#include "infer/adaptive_planner.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "check/assert.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pv::infer {
namespace {

/// Salt for the planner's own RNG stream (acquisition tie-breaks); each
/// row forks its own child stream so the draws a row consumes are
/// independent of how many probes earlier rows needed — including the
/// zero probes an adopted (resumed) anchor needs.
constexpr std::uint64_t kPlannerSeedTag = 0xADA'B0DE;

using plugvolt::AdaptiveContext;
using plugvolt::CellProbeFn;
using plugvolt::CellResult;
using plugvolt::PlannedRow;

/// Effective step encodings for interpolation: both boundaries live on
/// {1 .. steps + 1} with "outside the sweep" mapped to steps + 1, and an
/// unset onset mapped to the crash step (the engine emits onset == crash
/// for such rows) — monotone non-increasing along the row axis, which is
/// what the interpolation certificate rests on.
[[nodiscard]] std::uint64_t eff_crash(const PlannedRow& row) { return row.crash_step; }

[[nodiscard]] std::uint64_t eff_onset(const PlannedRow& row, std::uint64_t steps) {
    if (row.onset_step != 0) return row.onset_step;
    return row.crash_step <= steps ? row.crash_step : steps + 1;
}

[[nodiscard]] std::uint64_t gap(std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : b - a;
}

/// Interpolated value for row r between anchors (lo, va) and (hi, vb)
/// with gap(va, vb) <= 2.  For a gap of exactly 2 every intermediate row
/// takes the middle value: any monotone truth between the anchors is
/// then within 1 step, which a rounded linear blend does NOT guarantee
/// near the endpoints.  Smaller gaps interpolate linearly (clamped), and
/// the certificate is immediate.
[[nodiscard]] std::uint64_t interpolate(std::uint64_t va, std::uint64_t vb,
                                        std::size_t lo, std::size_t hi, std::size_t r) {
    const std::uint64_t vmin = std::min(va, vb);
    const std::uint64_t vmax = std::max(va, vb);
    if (vmax - vmin == 2) return vmin + 1;
    const double t = static_cast<double>(r - lo) / static_cast<double>(hi - lo);
    const auto blended = static_cast<std::uint64_t>(std::llround(
        static_cast<double>(va) + (static_cast<double>(vb) - static_cast<double>(va)) * t));
    return std::clamp(blended, vmin, vmax);
}

/// One plan invocation's worth of state.
class Planner {
public:
    Planner(const AdaptiveContext& ctx, const CellProbeFn& probe,
            const AcquisitionConfig& acq)
        : ctx_(ctx), probe_(probe), acq_(acq), rows_(ctx.rows) {}

    [[nodiscard]] std::vector<PlannedRow> run() {
        PV_ASSERT(ctx_.rows > 0 && ctx_.steps >= 1,
                  "adaptive planning needs rows and at least one offset step");
        PV_ASSERT(ctx_.adopted.size() == ctx_.rows,
                  "adopted-row vector does not match the table");
        anchor(0);
        if (ctx_.rows > 1) {
            anchor(ctx_.rows - 1);
            refine(0, ctx_.rows - 1);
        }
        std::vector<PlannedRow> out(ctx_.rows);
        for (std::size_t r = 0; r < ctx_.rows; ++r) {
            PV_ASSERT(rows_[r].has_value(), "planner left row " << r << " unplanned");
            out[r] = *rows_[r];
        }
        return out;
    }

private:
    /// Certify row r as an anchor: adopt a resumed anchor's values, or
    /// solve both boundaries by direct probing.
    void anchor(std::size_t r) {
        if (rows_[r].has_value() && rows_[r]->anchored) return;
        if (ctx_.adopted[r].has_value() && ctx_.adopted[r]->anchored) {
            rows_[r] = *ctx_.adopted[r];
            return;
        }
        rows_[r] = solve(r);
    }

    [[nodiscard]] PlannedRow solve(std::size_t r) {
        const std::uint64_t steps = ctx_.steps;
        Rng rng(mix_seed(mix_seed(ctx_.seed, kPlannerSeedTag), r));
        std::optional<plugvolt::RowWarmStart> hint;
        if (ctx_.warm_start) hint = ctx_.warm_start(r);

        // --- crash boundary: EIG-per-cost loop to a 0-cell bracket ----
        BoundaryPosterior crash(steps + 1);
        const std::uint64_t crash_hint =
            hint.has_value() && hint->crash_step >= 1
                ? std::min(hint->crash_step, steps + 1)
                : 0;
        if (crash_hint != 0) {
            crash.recenter(crash_hint, acq_.prior_decay, acq_.prior_floor);
        } else if (const auto pred = predict(r, Axis::Crash)) {
            crash.recenter(*pred, acq_.prior_decay, acq_.prior_floor);
        }
        while (!crash.certified()) {
            const std::uint64_t s = select_crash_probe(crash, acq_, steps, rng);
            const CellResult cell = probe_(r, s);
            if (cell.crashed) {
                crash.restrict_leq(s);
            } else {
                crash.restrict_geq(s + 1);
            }
            note_update(r, crash);
        }
        const std::uint64_t crash_step = crash.hard_lo();

        // --- fault onset: guided descent + the certification walk -----
        // The gate probe at the deepest surviving cell decides fault-free
        // columns exactly like the bisection mode (and is usually free:
        // the crash bracket already probed that cell).  From a faulting
        // gate, posterior-guided jumps try to land near the predicted
        // onset, then the refine-window walk — verbatim the bisection's
        // — certifies the shallowest faulting cell; from ANY faulting
        // start the walk descends to the same bottom (DESIGN §5h), so
        // priors move probes, never the verdict.
        std::uint64_t onset_step = 0;
        const std::uint64_t limit = crash_step <= steps ? crash_step - 1 : steps;
        if (limit >= 1 && probe_(r, limit).faults > 0) {
            BoundaryPosterior onset(limit);
            const std::uint64_t onset_hint =
                hint.has_value() && hint->onset_step >= 1
                    ? std::min(hint->onset_step, limit)
                    : 0;
            if (onset_hint != 0) {
                onset.recenter(onset_hint, acq_.prior_decay, acq_.prior_floor);
            } else if (const auto pred = predict(r, Axis::Onset)) {
                onset.recenter(std::min(*pred, limit), acq_.prior_decay, acq_.prior_floor);
            }
            std::uint64_t s = limit;
            for (int jumps = 0; jumps < 2 && s > 1; ++jumps) {
                const std::uint64_t cand = onset.map_estimate();
                if (cand >= s || s - cand <= ctx_.refine_window) break;
                const CellResult cell = probe_(r, cand);
                if (cell.faults > 0) {
                    s = cand;
                    onset.restrict_leq(cand);
                    note_update(r, onset);
                } else {
                    onset.observe_clean_noisy(cand, acq_.onset_tau);
                    note_update(r, onset);
                    break;
                }
            }
            while (s > 1) {
                const std::uint64_t stop =
                    s > ctx_.refine_window ? s - ctx_.refine_window : 1;
                std::uint64_t found = 0;
                for (std::uint64_t t = s - 1; t >= stop; --t) {
                    const CellResult cell = probe_(r, t);
                    if (cell.faults > 0) {
                        found = t;
                        onset.restrict_leq(t);
                        break;
                    }
                    onset.observe_clean_noisy(t, acq_.onset_tau);
                    if (t == stop) break;
                }
                note_update(r, onset);
                if (found == 0) break;
                s = found;
            }
            onset_step = s;
        }
        return PlannedRow{crash_step, onset_step, /*anchored=*/true};
    }

    /// Recursive row-axis subdivision: compatible anchor pairs enclose
    /// their span at zero probes, incompatible pairs anchor the midpoint.
    /// Depends only on row indices and certified anchor VALUES — the
    /// resume bit-identity contract.
    void refine(std::size_t lo, std::size_t hi) {
        if (hi - lo <= 1) return;
        const PlannedRow a = *rows_[lo];
        const PlannedRow b = *rows_[hi];
        const std::uint64_t steps = ctx_.steps;
        if (gap(eff_crash(a), eff_crash(b)) <= 2 &&
            gap(eff_onset(a, steps), eff_onset(b, steps)) <= 2) {
            for (std::size_t r = lo + 1; r < hi; ++r) {
                const std::uint64_t c =
                    interpolate(eff_crash(a), eff_crash(b), lo, hi, r);
                std::uint64_t o =
                    interpolate(eff_onset(a, steps), eff_onset(b, steps), lo, hi, r);
                if (o > c) o = c;
                PlannedRow row;
                row.crash_step = c;
                row.onset_step = o >= steps + 1 ? 0 : o;
                row.anchored = false;
                rows_[r] = row;
            }
            return;
        }
        const std::size_t mid = lo + (hi - lo) / 2;
        anchor(mid);
        refine(lo, mid);
        refine(mid, hi);
    }

    enum class Axis { Crash, Onset };

    /// Boundary prediction for row r from its nearest certified anchors
    /// (linear in the row index) — the cold-start prior between anchors.
    [[nodiscard]] std::optional<std::uint64_t> predict(std::size_t r, Axis axis) const {
        const auto value = [this, axis](std::size_t i) {
            return axis == Axis::Crash ? eff_crash(*rows_[i])
                                       : eff_onset(*rows_[i], ctx_.steps);
        };
        std::optional<std::size_t> below;
        for (std::size_t i = r; i-- > 0;) {
            if (rows_[i].has_value() && rows_[i]->anchored) {
                below = i;
                break;
            }
        }
        std::optional<std::size_t> above;
        for (std::size_t i = r + 1; i < ctx_.rows; ++i) {
            if (rows_[i].has_value() && rows_[i]->anchored) {
                above = i;
                break;
            }
        }
        if (below.has_value() && above.has_value())
            return interpolate(value(*below), value(*above), *below, *above, r);
        if (below.has_value()) return value(*below);
        if (above.has_value()) return value(*above);
        return std::nullopt;
    }

    void note_update(std::size_t row, const BoundaryPosterior& posterior) {
        ++updates_;
        // Stamped with the update ordinal (the planner runs outside any
        // machine clock); b packs the certified bracket.
        PV_TRACE_EVENT(trace::EventKind::PosteriorUpdate, "boundary-posterior",
                       static_cast<std::int64_t>(updates_), row,
                       (posterior.hard_hi() << 20) | posterior.hard_lo());
    }

    const AdaptiveContext& ctx_;
    const CellProbeFn& probe_;
    const AcquisitionConfig& acq_;
    std::vector<std::optional<PlannedRow>> rows_;
    std::uint64_t updates_ = 0;
};

}  // namespace

plugvolt::AdaptivePlannerFn adaptive_planner(AcquisitionConfig config) {
    if (config.reboot_cost < 0.0)
        throw ConfigError("reboot_cost must be non-negative");
    if (config.onset_tau <= 0.0) throw ConfigError("onset_tau must be positive");
    if (config.prior_decay <= 0.0 || config.prior_decay >= 1.0)
        throw ConfigError("prior_decay must lie in (0, 1)");
    if (config.prior_floor <= 0.0) throw ConfigError("prior_floor must be positive");
    return [config](const AdaptiveContext& ctx, const CellProbeFn& probe) {
        return Planner(ctx, probe, config).run();
    };
}

}  // namespace pv::infer
