#include "infer/acquisition.hpp"

#include <cmath>
#include <vector>

#include "check/assert.hpp"

namespace pv::infer {

namespace {

[[nodiscard]] double binary_entropy(double p) {
    if (p <= 0.0 || p >= 1.0) return 0.0;
    return -(p * std::log(p) + (1.0 - p) * std::log(1.0 - p));
}

}  // namespace

double crash_probe_score(const BoundaryPosterior& posterior, std::uint64_t s,
                         double reboot_cost) {
    const double p = posterior.p_leq(s);
    return binary_entropy(p) / (1.0 + reboot_cost * p);
}

std::uint64_t select_crash_probe(const BoundaryPosterior& posterior,
                                 const AcquisitionConfig& config,
                                 std::uint64_t max_step, Rng& rng) {
    PV_ASSERT(!posterior.certified(), "acquisition asked for a probe of a certified boundary");
    const std::uint64_t lo = posterior.hard_lo();
    const std::uint64_t hi =
        posterior.hard_hi() - 1 < max_step ? posterior.hard_hi() - 1 : max_step;
    PV_ASSERT(lo <= hi, "no informative probe in bracket [" << lo << ", "
                                                            << posterior.hard_hi() << "]");
    // One pass for the argmax, collecting the tie plateau as it moves.
    constexpr double kTieTolerance = 1e-12;
    double best = -1.0;
    std::vector<std::uint64_t> plateau;
    for (std::uint64_t s = lo; s <= hi; ++s) {
        const double score = crash_probe_score(posterior, s, config.reboot_cost);
        if (score > best + kTieTolerance) {
            best = score;
            plateau.clear();
            plateau.push_back(s);
        } else if (score >= best - kTieTolerance) {
            plateau.push_back(s);
        }
    }
    // Seeded deterministic sampling across the plateau; a singleton
    // plateau (the generic case) still burns one draw so the stream
    // position is independent of score-landscape accidents.
    return plateau[rng.uniform_below(plateau.size())];
}

}  // namespace pv::infer
