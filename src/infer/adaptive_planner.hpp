// infer — the adaptive sweep planner (SweepMode::Adaptive's strategy).
//
// Replaces the per-row sweeps with posterior-driven probing under a
// plan-level 1-cell accuracy certificate:
//
//   1. ANCHOR rows are solved exactly: the crash boundary by a
//      cost-aware expected-information-gain loop over a
//      BoundaryPosterior (stopping only when the hard bracket collapses
//      to one step — the bisection bracket invariant), the fault onset
//      by a posterior-guided descent ending in the same
//      refine-window-certified walk the bisection mode uses.  Anchor
//      verdicts are therefore bit-identical to what Bisection/Exhaustive
//      report for those rows.
//
//   2. The row axis is subdivided recursively: when two neighbouring
//      anchors agree to within 2 steps on BOTH boundaries, every row
//      between them is INTERPOLATED at zero probe cost — with the
//      midpoint value when the anchors differ by exactly 2, which bounds
//      the error at 1 step for ANY monotone truth between them; anchors
//      that disagree by more spawn a new anchor at the midpoint row.
//      Boundaries move monotonically along the frequency axis (the same
//      physics that makes each column monotone in offset); the
//      differential tests hold the certificate against the exhaustive
//      maps on all six golden profile x resolution cases.
//
// Warm starts (fleet lot-neighbour aggregates) and anchor-interpolation
// predictions enter ONLY as soft posterior priors — they move probes,
// never verdicts — which is what lets the fleet replace its gallop-only
// hint path while keeping per-unit maps bit-identical to cold solo runs.
// Resume: adopted anchored rows contribute their certified values
// without probes, and the subdivision recursion depends only on row
// indices and certified values, so a killed-and-resumed plan reproduces
// the uninterrupted plan row-for-row.
#pragma once

#include "infer/acquisition.hpp"
#include "plugvolt/parallel_characterizer.hpp"

namespace pv::infer {

/// Build the planner ParallelCharacterizerConfig::planner expects.  The
/// returned function is stateless between invocations (all planning
/// state lives per call), so one instance may be shared across the fleet
/// orchestrator's concurrent per-unit sweeps.
[[nodiscard]] plugvolt::AdaptivePlannerFn adaptive_planner(
    AcquisitionConfig config = {});

}  // namespace pv::infer
