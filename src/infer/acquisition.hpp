// infer — cost-aware acquisition for adaptive boundary probing.
//
// Each candidate probe step s is scored by the expected information gain
// of its outcome divided by its expected cost.  For the crash boundary
// the outcome is a deterministic Bernoulli split of the posterior —
// crashed(s) <=> boundary <= s — so the expected posterior-entropy drop
// of probing s is exactly the binary entropy H2(p) of p = P(b <= s);
// with a uniform posterior the argmax is the median and the acquisition
// degenerates to bisection, which is the sanity anchor for the whole
// scheme.  The reboot term models the real-hardware asymmetry the paper
// leans on: a crashed probe costs a reboot, a surviving probe does not,
// so the expected cost of probing s is 1 + reboot_cost * p and the
// optimizer drifts shallow of the median exactly when reboots are
// expensive.
//
// Ties (plateaus of the score function) are resolved by seeded sampling
// from the caller's Rng — deterministic for a fixed sweep seed, which
// the acquisition-determinism PROP test asserts probe-for-probe.
#pragma once

#include <cstdint>

#include "infer/boundary_posterior.hpp"
#include "util/rng.hpp"

namespace pv::infer {

struct AcquisitionConfig {
    /// Relative cost of a crash-reboot on top of the probe itself (the
    /// paper's motivation for probe-thrifty characterization).  0 makes
    /// the acquisition pure information gain.
    double reboot_cost = 4.0;
    /// Decay depth (in steps) of the noisy-threshold clean-cell
    /// likelihood for the fault-onset channel.
    double onset_tau = 1.25;
    /// Geometric concentration of warm-start / interpolation priors.
    double prior_decay = 0.45;
    /// Floor mass every still-possible step keeps under any prior, so a
    /// wrong hint costs probes, never correctness.
    double prior_floor = 1e-9;
};

/// Expected-information-gain-per-cost score of probing step `s` for a
/// crash boundary: H2(P(b <= s)) / (1 + reboot_cost * P(b <= s)).
[[nodiscard]] double crash_probe_score(const BoundaryPosterior& posterior,
                                       std::uint64_t s, double reboot_cost);

/// The next crash probe: argmax of crash_probe_score over the
/// informative candidates [hard_lo, min(hard_hi - 1, max_step)].
/// Requires an uncertified posterior with hard_lo <= max_step.
[[nodiscard]] std::uint64_t select_crash_probe(const BoundaryPosterior& posterior,
                                               const AcquisitionConfig& config,
                                               std::uint64_t max_step, Rng& rng);

}  // namespace pv::infer
