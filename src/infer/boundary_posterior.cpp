#include "infer/boundary_posterior.hpp"

#include <cmath>

#include "check/assert.hpp"
#include "util/error.hpp"

namespace pv::infer {

BoundaryPosterior::BoundaryPosterior(std::uint64_t support_max)
    : hard_lo_(1), hard_hi_(support_max) {
    if (support_max == 0)
        throw ConfigError("a boundary posterior needs a non-empty support");
    w_.assign(support_max, 1.0 / static_cast<double>(support_max));
}

void BoundaryPosterior::recenter(std::uint64_t center, double decay, double floor) {
    if (decay <= 0.0 || decay >= 1.0)
        throw ConfigError("prior decay must lie in (0, 1)");
    if (floor <= 0.0) throw ConfigError("prior floor must be positive");
    for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b) {
        const double dist =
            b > center ? static_cast<double>(b - center) : static_cast<double>(center - b);
        w_[b - 1] = floor + std::pow(decay, dist);
    }
    renormalize();
}

void BoundaryPosterior::restrict_leq(std::uint64_t s) {
    if (s >= hard_hi_) return;
    PV_ASSERT(s >= hard_lo_, "contradictory hard evidence: boundary <= "
                                 << s << " but bracket is [" << hard_lo_ << ", "
                                 << hard_hi_ << "]");
    for (std::uint64_t b = s + 1; b <= hard_hi_; ++b) w_[b - 1] = 0.0;
    hard_hi_ = s;
    renormalize();
}

void BoundaryPosterior::restrict_geq(std::uint64_t s) {
    if (s <= hard_lo_) return;
    PV_ASSERT(s <= hard_hi_, "contradictory hard evidence: boundary >= "
                                 << s << " but bracket is [" << hard_lo_ << ", "
                                 << hard_hi_ << "]");
    for (std::uint64_t b = hard_lo_; b < s; ++b) w_[b - 1] = 0.0;
    hard_lo_ = s;
    renormalize();
}

void BoundaryPosterior::observe_clean_noisy(std::uint64_t s, double tau) {
    if (tau <= 0.0) throw ConfigError("noisy-threshold tau must be positive");
    for (std::uint64_t b = hard_lo_; b <= hard_hi_ && b <= s; ++b)
        w_[b - 1] *= std::exp(-static_cast<double>(s - b + 1) / tau);
    renormalize();
}

double BoundaryPosterior::p_leq(std::uint64_t s) const {
    if (s < hard_lo_) return 0.0;
    if (s >= hard_hi_) return 1.0;
    double p = 0.0;
    for (std::uint64_t b = hard_lo_; b <= s; ++b) p += w_[b - 1];
    return p;
}

double BoundaryPosterior::entropy() const {
    double h = 0.0;
    for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b) {
        const double p = w_[b - 1];
        if (p > 0.0) h -= p * std::log(p);
    }
    return h;
}

std::uint64_t BoundaryPosterior::map_estimate() const {
    std::uint64_t best = hard_lo_;
    for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b)
        if (w_[b - 1] > w_[best - 1]) best = b;
    return best;
}

std::uint64_t BoundaryPosterior::sample(Rng& rng) const {
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b) {
        acc += w_[b - 1];
        if (u < acc) return b;
    }
    return hard_hi_;  // u landed in the rounding tail
}

double BoundaryPosterior::weight_sum() const {
    double total = 0.0;
    for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b) total += w_[b - 1];
    return total;
}

void BoundaryPosterior::renormalize() {
    const double total = weight_sum();
    if (total > 0.0) {
        for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b) w_[b - 1] /= total;
        return;
    }
    // Soft evidence underflowed every surviving weight: fall back to
    // uniform over the still-possible bracket.  Hard exclusions are
    // bracket moves, so this cannot resurrect excluded steps.
    const double uniform = 1.0 / static_cast<double>(hard_hi_ - hard_lo_ + 1);
    for (std::uint64_t b = hard_lo_; b <= hard_hi_; ++b) w_[b - 1] = uniform;
}

}  // namespace pv::infer
