// PlugVolt — sequential-circuit timing model (paper Sec. 3, Eq. 1–3).
//
// The paper's safe-state definition is the classic setup constraint
//
//     T_src + T_prop <= T_clk - T_setup - T_eps            (Eq. 1)
//
// where the left side grows as voltage drops (slower transistor
// switching) and the right side is set purely by core frequency.  We
// model the combinational delay with the alpha-power law
//
//     D(V) = C * V / (V - Vth)^alpha
//
// which captures both effects the paper cites: decreased voltage swings
// and slower switching near threshold.  T_src is the clock->Q delay of
// the launching flop and T_prop the combinational settle time; both
// scale with D(V) (15% / 85% split, exposed for the Fig. 1 bench).
#pragma once

#include "sim/cpu_profile.hpp"
#include "sim/instr.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Breakdown of Eq. 1 terms at a given operating point, in picoseconds.
struct TimingBreakdown {
    double t_src;      ///< clock->Q of the launching flop F1
    double t_prop;     ///< combinational settle time into D2
    double t_clk;      ///< clock period 1/f
    double t_setup;    ///< setup time of the capturing flop F2
    double t_eps;      ///< worst-case clock uncertainty
    /// Eq. 1 margin: (t_clk - t_setup - t_eps) - (t_src + t_prop).
    /// Negative means the deterministic constraint is already violated.
    [[nodiscard]] double margin() const {
        return (t_clk - t_setup - t_eps) - (t_src + t_prop);
    }
};

/// Deterministic timing physics for one CPU profile.
class TimingModel {
public:
    /// Validates the parameters (positive constants, alpha >= 1).
    explicit TimingModel(TimingParams params);

    /// Worst-case (imul-path) combinational delay at supply voltage `v`,
    /// in picoseconds.  Returns +infinity at or below threshold — the
    /// circuit cannot evaluate at all.
    [[nodiscard]] double path_delay_ps(Millivolts v) const;

    /// Path delay for an instruction class (path_factor * imul delay).
    [[nodiscard]] double path_delay_ps(Millivolts v, InstrClass c) const;

    /// Available slack budget at frequency `f`: T_clk - T_setup - T_eps.
    [[nodiscard]] double slack_ps(Megahertz f) const;

    /// Eq. 1 margin for (f, v) on class `c`; negative = timing violation
    /// (the paper's Eq. 3 / unsafe state).
    [[nodiscard]] double margin_ps(Megahertz f, Millivolts v, InstrClass c) const;

    /// Full Eq. 1 term breakdown (for the Fig. 1 reproduction).
    [[nodiscard]] TimingBreakdown breakdown(Megahertz f, Millivolts v, InstrClass c) const;

    /// The lowest supply voltage at which class `c` still meets timing at
    /// `f` (deterministic part only); found by bisection to < 0.01 mV.
    [[nodiscard]] Millivolts critical_voltage(Megahertz f, InstrClass c) const;

    [[nodiscard]] const TimingParams& params() const { return params_; }

private:
    TimingParams params_;
};

}  // namespace pv::sim
