#include "sim/ocm.hpp"

#include <cmath>

namespace pv::sim {
namespace {

constexpr std::uint64_t kOffsetMask = 0xFFE00000ULL;           // bits 21-31
constexpr std::uint64_t kWriteEnableBit = 1ULL << 32;
constexpr std::uint64_t kMailboxFixedBits = 0x8000001100000000ULL;  // bits 63, 36, 32
constexpr std::uint64_t kCommandBit = 1ULL << 63;

}  // namespace

std::uint64_t encode_offset(Millivolts offset, VoltagePlane plane) {
    // 1/1024 V steps with truncation toward zero — this matches the
    // integer arithmetic of the paper's Algorithm 1 (and Plundervolt's
    // published PoC), which is what the cross-validation tests rely on.
    double steps_f = std::trunc(offset.value() * 1024.0 / 1000.0);
    if (steps_f < -1024.0) steps_f = -1024.0;
    if (steps_f > 1023.0) steps_f = 1023.0;
    const auto steps = static_cast<std::int64_t>(steps_f);
    const std::uint64_t field = static_cast<std::uint64_t>(steps) & 0x7FFULL;
    return (field << 21) | kMailboxFixedBits |
           (static_cast<std::uint64_t>(plane) << 40);
}

std::uint64_t algo1_offset_voltage(int offset_mv, unsigned plane) {
    // Literal transcription of Algorithm 1.
    std::int64_t val = static_cast<std::int64_t>(offset_mv) * 1024 / 1000;
    std::uint64_t uval = kOffsetMask & ((static_cast<std::uint64_t>(val) & 0xFFFULL) << 21);
    uval = uval | kMailboxFixedBits;
    uval = uval | (static_cast<std::uint64_t>(plane) << 40);
    return uval;
}

std::optional<OcmRequest> decode_offset(std::uint64_t raw) {
    const std::uint64_t plane_field = (raw >> 40) & 0x7ULL;
    if (plane_field > 4) return std::nullopt;

    std::int64_t steps = static_cast<std::int64_t>((raw >> 21) & 0x7FFULL);
    if (steps & 0x400) steps -= 0x800;  // sign-extend 11 bits

    OcmRequest req;
    req.plane = static_cast<VoltagePlane>(plane_field);
    req.offset = Millivolts{static_cast<double>(steps) * 1000.0 / 1024.0};
    req.write_enable = (raw & kWriteEnableBit) != 0;
    req.command = (raw & kCommandBit) != 0;
    return req;
}

}  // namespace pv::sim
