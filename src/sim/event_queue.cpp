#include "sim/event_queue.hpp"

#include "util/error.hpp"

namespace pv::sim {

void EventQueue::schedule(Picoseconds when, Callback fn) {
    if (when < last_) throw SimError("event scheduled into the past");
    queue_.push(Entry{when, next_seq_++, std::move(fn)});
}

Picoseconds EventQueue::next_time() const {
    if (queue_.empty()) throw SimError("next_time on empty queue");
    return queue_.top().when;
}

std::size_t EventQueue::run_until(Picoseconds until) {
    std::size_t count = 0;
    while (!queue_.empty() && queue_.top().when <= until) {
        // Copy out before pop so a callback can schedule new events.
        Entry entry{queue_.top().when, queue_.top().seq, std::move(const_cast<Entry&>(queue_.top()).fn)};
        queue_.pop();
        last_ = entry.when;
        entry.fn();
        ++count;
    }
    if (last_ < until) last_ = until;
    return count;
}

void EventQueue::clear() {
    while (!queue_.empty()) queue_.pop();
}

}  // namespace pv::sim
