#include "sim/event_queue.hpp"

#include <utility>

#include "util/error.hpp"

namespace pv::sim {

bool EventQueue::before(std::size_t a, std::size_t b) const {
    if (when_[a] != when_[b]) return when_[a] < when_[b];
    return seq_[a] < seq_[b];
}

void EventQueue::swap_entries(std::size_t a, std::size_t b) {
    std::swap(when_[a], when_[b]);
    std::swap(seq_[a], seq_[b]);
    std::swap(slot_[a], slot_[b]);
}

void EventQueue::sift_up(std::size_t i) {
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(i, parent)) return;
        swap_entries(i, parent);
        i = parent;
    }
}

void EventQueue::sift_down(std::size_t i) {
    const std::size_t n = when_.size();
    for (;;) {
        std::size_t smallest = i;
        const std::size_t left = 2 * i + 1;
        const std::size_t right = 2 * i + 2;
        if (left < n && before(left, smallest)) smallest = left;
        if (right < n && before(right, smallest)) smallest = right;
        if (smallest == i) return;
        swap_entries(i, smallest);
        i = smallest;
    }
}

std::uint32_t EventQueue::acquire_slot(Callback&& fn) {
    if (!free_.empty()) {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        arena_[slot] = std::move(fn);
        return slot;
    }
    arena_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(arena_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
    arena_[slot] = nullptr;  // drop captured state eagerly
    free_.push_back(slot);
}

void EventQueue::schedule(Picoseconds when, Callback fn) {
    if (when < last_) throw SimError("event scheduled into the past");
    const std::uint32_t slot = acquire_slot(std::move(fn));
    when_.push_back(when.value());
    seq_.push_back(next_seq_++);
    slot_.push_back(slot);
    sift_up(when_.size() - 1);
    ++stats_.scheduled;
    if (when_.size() > stats_.heap_peak) stats_.heap_peak = when_.size();
}

Picoseconds EventQueue::next_time() const {
    if (when_.empty()) throw SimError("next_time on empty queue");
    return Picoseconds{when_[0]};
}

std::size_t EventQueue::run_until(Picoseconds until) {
    std::size_t count = 0;
    while (!when_.empty() && when_[0] <= until.value()) {
        // Pop via move: detach the root's callback and free its slot,
        // then remove the heap entry, all BEFORE invoking — this is what
        // lets the callback schedule() freely (see header contract).
        const Picoseconds when{when_[0]};
        const std::uint32_t slot = slot_[0];
        Callback fn = std::move(arena_[slot]);
        release_slot(slot);
        swap_entries(0, when_.size() - 1);
        when_.pop_back();
        seq_.pop_back();
        slot_.pop_back();
        if (!when_.empty()) sift_down(0);
        last_ = when;
        fn();
        ++count;
        ++stats_.dispatched;
    }
    if (last_ < until) last_ = until;
    return count;
}

void EventQueue::clear() {
    for (const std::uint32_t slot : slot_) release_slot(slot);
    when_.clear();
    seq_.clear();
    slot_.clear();
}

void EventQueue::rewind() {
    clear();
    last_ = Picoseconds{};
}

}  // namespace pv::sim
