// PlugVolt — die thermal model.
//
// Timing faults are temperature-sensitive: hot transistors switch
// slower, so the same (frequency, offset) pair that is safe on a cold
// die can fault on a hot one.  The die follows a first-order RC model
//
//     T(t) -> T_ambient + P * R_th      with time constant tau
//
// driven by the package power the PowerModel accumulates.  The
// TimingModel consumes the result as a delay scale factor
// (1 + k_T * (T - 25C)).  Exposed through the architectural MSRs
// IA32_THERM_STATUS (0x19C, digital readout = Tjmax - T) and
// IA32_TEMPERATURE_TARGET (0x1A2, Tjmax).
#pragma once

#include <cstdint>

#include "os/msr_regs.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Per-profile thermal constants.
struct ThermalParams {
    double ambient_c = 25.0;        ///< case/ambient temperature
    double r_th_c_per_w = 5.0;      ///< junction-to-ambient thermal resistance
    double tau_ms = 20.0;           ///< die thermal time constant
    double tjmax_c = 100.0;         ///< throttle/shutdown threshold
    /// Delay sensitivity: fractional critical-path slowdown per Kelvin
    /// above 25 C (positive: hotter = slower; 0.05%/K is typical for
    /// logic dominated by gate delay at nominal voltages).
    double delay_per_c = 0.0005;
};

/// MSR indices of the modeled thermal interface (registry aliases).
inline constexpr std::uint32_t kMsrThermStatus = msr::kThermStatus;
inline constexpr std::uint32_t kMsrTemperatureTarget = msr::kTemperatureTarget;

/// Lazily-evaluated die temperature.
class ThermalModel {
public:
    explicit ThermalModel(ThermalParams params);

    /// Advance the state to time `t`, given the average package power
    /// dissipated since the last update.
    void update(Picoseconds t, double avg_power_w);

    /// Die temperature at the last update, in Celsius.
    [[nodiscard]] double temperature_c() const { return temp_c_; }

    /// Critical-path delay scale factor at the current temperature.
    [[nodiscard]] double delay_scale() const;

    /// True once the die reached Tjmax (PROCHOT would assert).
    [[nodiscard]] bool at_tjmax() const { return temp_c_ >= params_.tjmax_c; }

    /// IA32_THERM_STATUS digital readout field (bits 22:16): degrees
    /// below Tjmax, clamped at 0.
    [[nodiscard]] std::uint64_t therm_status_msr() const;

    /// IA32_TEMPERATURE_TARGET with Tjmax in bits 23:16.
    [[nodiscard]] std::uint64_t temperature_target_msr() const;

    /// Pin the die to a temperature (test/bench hook — models a
    /// preheated or chilled part).
    void force_temperature(double celsius);

    /// Back to ambient (machine reboot happens after a long power-off in
    /// this model).  Keeps the update timestamp: the clock is monotone
    /// across reboots.
    void reset();

    /// Back to ambient AND rewind the update timestamp to zero — for
    /// Machine::reset, which restarts the simulated clock itself.
    void rewind();

    [[nodiscard]] const ThermalParams& params() const { return params_; }

private:
    ThermalParams params_;
    double temp_c_;
    Picoseconds last_update_{};
};

}  // namespace pv::sim
