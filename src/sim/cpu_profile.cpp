#include "sim/cpu_profile.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pv::sim {
namespace {

AccessCosts default_costs() {
    // Calibration: the polling countermeasure's per-wakeup cost is
    // kthread_wake + 2*rdmsr (~350 cycles).  At the default 50 us poll
    // interval this prices to ~0.2-0.4% of a core depending on its
    // frequency — the Table 2 regime (0.28% average).
    return AccessCosts{
        .rdmsr_cycles = 130,
        .wrmsr_cycles = 150,
        .ioctl_overhead_cycles = 1500,
        .ipi_cycles = 3000,
        .kthread_wake_cycles = 260,
    };
}

RegulatorParams default_regulator() {
    // Plundervolt reports a perceptible delay between the 0x150 write and
    // the regulator settling; we model a fixed command latency plus a
    // linear slew.  Jointly with the 50 us poll interval this gives the
    // prevention guarantee: worst-case rail excursion before the module's
    // restore command takes hold is slew * interval = 50 mV, shallower
    // than every profile's shallowest fault onset (~100 mV).
    return RegulatorParams{
        .write_latency = microseconds(150.0),
        .slew_mv_per_us = 1.0,
    };
}

}  // namespace

std::vector<Megahertz> CpuProfile::frequency_table() const {
    if (freq_step.value() <= 0.0) throw ConfigError("freq_step must be positive");
    std::vector<Megahertz> table;
    for (double f = freq_min.value(); f <= freq_max.value() + 1e-9; f += freq_step.value())
        table.push_back(Megahertz{f});
    return table;
}

CpuProfile skylake_i5_6500() {
    CpuProfile p;
    p.name = "Intel(R) Core(TM) i5-6500 CPU @ 3.20GHz";
    p.codename = "Sky Lake";
    p.microcode = "0xf0";
    p.core_count = 4;
    p.freq_min = from_ghz(0.8);
    p.freq_max = from_ghz(3.6);
    p.freq_base = from_ghz(3.2);
    p.freq_step = Megahertz{100.0};
    p.vf_points = {
        {from_ghz(0.8), Millivolts{700.0}},
        {from_ghz(3.6), Millivolts{980.0}},
    };
    p.timing = TimingParams{
        .threshold_voltage = Millivolts{350.0},
        .alpha = 1.3,
        .path_constant_ps = 120.0,
        .setup_time_ps = 20.0,
        .clock_uncertainty_ps = 10.0,
        .sigma_fraction = 0.006,
        .crash_path_factor = 0.995,
    };
    p.costs = default_costs();
    p.regulator = default_regulator();
    return p;
}

CpuProfile kabylake_r_i5_8250u() {
    CpuProfile p;
    p.name = "Intel(R) Core(TM) i5-8250U CPU @ 1.60GHz";
    p.codename = "Kaby Lake R";
    p.microcode = "0xf4";
    p.core_count = 4;
    p.freq_min = from_ghz(0.4);
    p.freq_max = from_ghz(3.4);
    p.freq_base = from_ghz(1.6);
    p.freq_step = Megahertz{100.0};
    p.vf_points = {
        {from_ghz(0.4), Millivolts{660.0}},
        {from_ghz(3.4), Millivolts{960.0}},
    };
    p.timing = TimingParams{
        .threshold_voltage = Millivolts{350.0},
        .alpha = 1.3,
        .path_constant_ps = 120.0,
        .setup_time_ps = 22.0,
        .clock_uncertainty_ps = 10.0,
        .sigma_fraction = 0.006,
        .crash_path_factor = 0.995,
    };
    p.costs = default_costs();
    p.regulator = default_regulator();
    return p;
}

CpuProfile cometlake_i7_10510u() {
    CpuProfile p;
    p.name = "Intel(R) Core(TM) i7-10510U CPU @ 1.80GHz";
    p.codename = "Comet Lake";
    p.microcode = "0xf4";
    p.core_count = 4;
    p.freq_min = from_ghz(0.4);
    p.freq_max = from_ghz(4.9);
    p.freq_base = from_ghz(1.8);
    p.freq_step = Megahertz{100.0};
    // A single shallow segment: the nominal slope (85 mV/GHz) stays just
    // below the critical-voltage slope everywhere on this faster
    // process, which keeps the emergent onset curve monotone.
    p.vf_points = {
        {from_ghz(0.4), Millivolts{680.0}},
        {from_ghz(4.9), Millivolts{1062.0}},
    };
    p.timing = TimingParams{
        .threshold_voltage = Millivolts{330.0},
        .alpha = 1.3,
        .path_constant_ps = 100.0,
        .setup_time_ps = 18.0,
        .clock_uncertainty_ps = 8.0,
        .sigma_fraction = 0.006,
        .crash_path_factor = 0.995,
    };
    p.costs = default_costs();
    p.regulator = default_regulator();
    return p;
}

std::vector<CpuProfile> paper_profiles() {
    return {skylake_i5_6500(), kabylake_r_i5_8250u(), cometlake_i7_10510u()};
}

}  // namespace pv::sim
