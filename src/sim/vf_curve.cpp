#include "sim/vf_curve.hpp"

#include "util/error.hpp"

namespace pv::sim {

VfCurve::VfCurve(std::vector<Point> points) : points_(std::move(points)) {
    if (points_.size() < 2) throw ConfigError("VF curve needs at least two points");
    for (std::size_t i = 1; i < points_.size(); ++i)
        if (points_[i].freq <= points_[i - 1].freq)
            throw ConfigError("VF curve points must be strictly increasing in frequency");
}

Millivolts VfCurve::nominal(Megahertz f) const {
    if (f <= points_.front().freq) return points_.front().voltage;
    if (f >= points_.back().freq) return points_.back().voltage;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (f <= points_[i].freq) {
            const auto& lo = points_[i - 1];
            const auto& hi = points_[i];
            const double t = (f.value() - lo.freq.value()) / (hi.freq.value() - lo.freq.value());
            return lo.voltage + (hi.voltage - lo.voltage) * t;
        }
    }
    return points_.back().voltage;  // unreachable
}

Megahertz VfCurve::max_supported(Millivolts v) const {
    if (v >= points_.back().voltage) return points_.back().freq;
    if (v <= points_.front().voltage) return points_.front().freq;
    for (std::size_t i = points_.size() - 1; i > 0; --i) {
        const auto& lo = points_[i - 1];
        const auto& hi = points_[i];
        if (v < lo.voltage) continue;
        // Invert the linear segment.
        const double t = (v.value() - lo.voltage.value()) /
                         (hi.voltage.value() - lo.voltage.value());
        return Megahertz{lo.freq.value() + t * (hi.freq.value() - lo.freq.value())};
    }
    return points_.front().freq;
}

}  // namespace pv::sim
