// PlugVolt — probabilistic fault model on top of the timing physics.
//
// Deterministic timing says *when* the constraint is violated; real
// silicon faults stochastically around that boundary because of
// cycle-to-cycle delay noise.  We model the per-operation fault
// probability as
//
//     p(f, V, class) = Phi( (D_class(V) - slack(f)) / (sigma_frac * D(V)) )
//
// and declare a machine crash as soon as even slightly-shorter control
// paths (crash_path_factor * D) violate timing deterministically — at
// that point kernel/control state corrupts within microseconds, which is
// the "system crash" the paper's characterization sweeps into.
//
// Three consequences match the published attack literature and the
// paper's figures: (1) imul faults first (longest path); (2) a band of
// tens of mV separates first observable faults from crash at high
// frequency, narrowing at low frequency where delay-vs-voltage is a
// cliff; (3) fault-onset offsets shrink in magnitude as frequency grows.
#pragma once

#include <cstdint>

#include "sim/timing_model.hpp"
#include "sim/vf_curve.hpp"
#include "util/rng.hpp"

namespace pv::sim {

/// Stochastic fault behaviour for one CPU profile.
class FaultModel {
public:
    FaultModel(TimingModel timing, VfCurve vf);

    /// Per-operation fault probability at operating point (f, v).
    /// `delay_scale` models environmental slowdown of the critical path
    /// (thermal: hot silicon switches slower; 1.0 = the 25 C reference).
    [[nodiscard]] double fault_probability(Megahertz f, Millivolts v, InstrClass c,
                                           double delay_scale = 1.0) const;

    /// True once control-path timing is deterministically violated —
    /// the machine crashes rather than computing wrong values.
    [[nodiscard]] bool would_crash(Megahertz f, Millivolts v,
                                   double delay_scale = 1.0) const;

    /// Nominal (fused VF curve) voltage at `f`.
    [[nodiscard]] Millivolts nominal_voltage(Megahertz f) const { return vf_.nominal(f); }

    /// The undervolt offset at which faults become *observable* in a run
    /// of `n_ops` operations of class `c` at frequency `f` (expected
    /// fault count reaches ~3).  Negative.  Found by bisection.
    [[nodiscard]] Millivolts onset_offset(Megahertz f, InstrClass c,
                                          std::uint64_t n_ops = 1'000'000,
                                          double delay_scale = 1.0) const;

    /// The undervolt offset at which the machine crashes at `f`.
    /// Strictly deeper (more negative) than onset at every frequency.
    [[nodiscard]] Millivolts crash_offset(Megahertz f, double delay_scale = 1.0) const;

    /// Sample how many of `n_ops` operations fault at probability `p`.
    [[nodiscard]] std::uint64_t sample_fault_count(Rng& rng, std::uint64_t n_ops, double p) const;

    /// Corrupt a correct 64-bit result the way an undervolt fault does:
    /// one or two flipped bits, biased toward the multiplier's upper
    /// partial-product columns (bits 16..63).
    [[nodiscard]] std::uint64_t corrupt_value(Rng& rng, std::uint64_t correct) const;

    [[nodiscard]] const TimingModel& timing() const { return timing_; }
    [[nodiscard]] const VfCurve& vf() const { return vf_; }

private:
    /// Smallest probability considered "observable" for n_ops.
    [[nodiscard]] static double observable_probability(std::uint64_t n_ops);

    TimingModel timing_;
    VfCurve vf_;
};

}  // namespace pv::sim
