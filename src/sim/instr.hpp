// PlugVolt — instruction classes used by the timing/fault model.
//
// DVFS faults are path-length dependent: the 64x64 multiplier has the
// longest combinational path in the integer core, which is why every
// published attack (Plundervolt, V0LTpwn, VoltPillager) targets `imul`
// and why the paper's EXECUTE thread runs imul loops.  Each class here
// carries a relative critical-path factor applied to the worst-case
// delay computed by the TimingModel.
#pragma once

#include <array>
#include <string_view>

namespace pv::sim {

/// Coarse instruction classes with distinct critical-path lengths.
enum class InstrClass {
    Imul,     ///< 64-bit integer multiply — the longest path (factor 1.0).
    FpMul,    ///< floating multiply/FMA — slightly shorter.
    Load,     ///< L1 load hit path.
    Alu,      ///< simple integer ALU op.
    Branch,   ///< branch resolution path.
};

inline constexpr std::array<InstrClass, 5> kAllInstrClasses = {
    InstrClass::Imul, InstrClass::FpMul, InstrClass::Load,
    InstrClass::Alu, InstrClass::Branch};

/// Relative critical-path length of `c` versus the imul path.
[[nodiscard]] constexpr double path_factor(InstrClass c) {
    switch (c) {
        case InstrClass::Imul: return 1.00;
        case InstrClass::FpMul: return 0.97;
        case InstrClass::Load: return 0.93;
        case InstrClass::Alu: return 0.90;
        case InstrClass::Branch: return 0.88;
    }
    return 1.0;
}

[[nodiscard]] constexpr std::string_view to_string(InstrClass c) {
    switch (c) {
        case InstrClass::Imul: return "imul";
        case InstrClass::FpMul: return "fpmul";
        case InstrClass::Load: return "load";
        case InstrClass::Alu: return "alu";
        case InstrClass::Branch: return "branch";
    }
    return "?";
}

}  // namespace pv::sim
