// PlugVolt — per-core state.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pv::sim {

/// Idle/non-idle state of a core (paper Sec. 1: C-states vs P-states).
enum class PowerState {
    Active,  ///< executing (a P-state)
    Idle,    ///< clock/power-gated (a C-state)
};

/// Concrete idle levels (a representative subset of the ACPI ladder).
enum class CState {
    C0,  ///< executing
    C1,  ///< clock-gated halt: fast exit, still leaking
    C6,  ///< power-gated: slow exit, core leakage off, rail unconstrained
};

/// One physical core: its current P-state frequency, idleness, retired
/// work counters and the time stolen from it by kernel threads.
class Core {
public:
    explicit Core(unsigned id, Megahertz freq) : id_(id), freq_(freq) {}

    [[nodiscard]] unsigned id() const { return id_; }
    [[nodiscard]] Megahertz frequency() const { return freq_; }
    void set_frequency(Megahertz f) { freq_ = f; }

    [[nodiscard]] PowerState power_state() const {
        return cstate_ == CState::C0 ? PowerState::Active : PowerState::Idle;
    }
    void set_power_state(PowerState s) {
        cstate_ = s == PowerState::Active ? CState::C0 : CState::C1;
    }

    [[nodiscard]] CState cstate() const { return cstate_; }
    void set_cstate(CState s) { cstate_ = s; }

    /// Instructions retired by workload execution on this core.
    [[nodiscard]] std::uint64_t instructions_retired() const { return instructions_; }
    void retire(std::uint64_t n) { instructions_ += n; }

    /// Time consumed by kernel threads that has not yet been charged to
    /// a workload window on this core.
    [[nodiscard]] Picoseconds pending_steal() const { return pending_steal_; }
    void add_steal(Picoseconds t) { pending_steal_ += t; total_steal_ += t; }
    /// Drain up to `budget` of pending steal; returns the amount drained.
    Picoseconds drain_steal(Picoseconds budget);

    /// Cumulative stolen time since construction/reset.
    [[nodiscard]] Picoseconds total_steal() const { return total_steal_; }

    /// Restore boot state, keeping the identity.
    void reset(Megahertz boot_freq);

private:
    unsigned id_;
    Megahertz freq_;
    CState cstate_ = CState::C0;
    std::uint64_t instructions_ = 0;
    Picoseconds pending_steal_{};
    Picoseconds total_steal_{};
};

}  // namespace pv::sim
