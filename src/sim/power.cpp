#include "sim/power.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pv::sim {

PowerModel::PowerModel(PowerParams params) : params_(params) {
    if (params_.epi_nj_per_v2 < 0.0 || params_.leak_mw_per_v2 < 0.0)
        throw ConfigError("power coefficients must be non-negative");
}

void PowerModel::on_retire(std::uint64_t n, Millivolts v) {
    const double volts = v.volts();
    dynamic_j_ += static_cast<double>(n) * params_.epi_nj_per_v2 * 1e-9 * volts * volts;
}

void PowerModel::integrate_leakage(Picoseconds from, Picoseconds to, Millivolts v_from,
                                   Millivolts v_to, double scale) {
    if (to < from) throw SimError("leakage integration backwards in time");
    if (scale < 0.0 || scale > 1.0) throw SimError("leakage scale out of [0,1]");
    const double dt_s = (to - from).seconds();
    const double v0 = v_from.volts();
    const double v1 = v_to.volts();
    // Integral of (v0 + (v1-v0)t)^2 over t in [0,1] = (v0^2+v0*v1+v1^2)/3.
    const double mean_v2 = (v0 * v0 + v0 * v1 + v1 * v1) / 3.0;
    leakage_j_ += scale * params_.leak_mw_per_v2 * 1e-3 * mean_v2 * dt_s;
}

std::uint32_t PowerModel::rapl_energy_status() const {
    const double units = total_joules() * 16384.0;  // 2^14 units per joule
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(units) & 0xFFFFFFFFULL);
}

std::uint64_t PowerModel::rapl_power_unit() {
    // Bits 12:8 = energy status units = 14 -> 1/2^14 J (Intel SDM layout).
    return 14ULL << 8;
}

void PowerModel::reset() {
    dynamic_j_ = 0.0;
    leakage_j_ = 0.0;
}

}  // namespace pv::sim
