#include "sim/fault_model.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace pv::sim {

FaultModel::FaultModel(TimingModel timing, VfCurve vf)
    : timing_(std::move(timing)), vf_(std::move(vf)) {}

double FaultModel::fault_probability(Megahertz f, Millivolts v, InstrClass c,
                                     double delay_scale) const {
    const double d = delay_scale * timing_.path_delay_ps(v, c);
    if (!std::isfinite(d)) return 1.0;
    const double sigma =
        timing_.params().sigma_fraction * delay_scale * timing_.path_delay_ps(v);
    const double z = (d - timing_.slack_ps(f)) / sigma;
    return normal_cdf(z);
}

bool FaultModel::would_crash(Megahertz f, Millivolts v, double delay_scale) const {
    const double d = delay_scale * timing_.path_delay_ps(v);
    if (!std::isfinite(d)) return true;
    return timing_.params().crash_path_factor * d > timing_.slack_ps(f);
}

double FaultModel::observable_probability(std::uint64_t n_ops) {
    if (n_ops == 0) throw ConfigError("onset_offset with zero operations");
    // Expected-count-of-3 criterion: a sweep cell reliably *observes*
    // faults once E[faults] ~ 3.
    return 3.0 / static_cast<double>(n_ops);
}

Millivolts FaultModel::onset_offset(Megahertz f, InstrClass c, std::uint64_t n_ops,
                                    double delay_scale) const {
    const double p_obs = observable_probability(n_ops);
    const Millivolts vnom = vf_.nominal(f);
    // fault_probability is monotone non-increasing in voltage, so the
    // onset offset is the unique sign change of p - p_obs.
    double lo = -vnom.value() + 1.0;  // just above 0 V supply
    double hi = 0.0;
    if (fault_probability(f, vnom, c, delay_scale) >= p_obs)
        return Millivolts{0.0};  // faults already at nominal: no headroom
    for (int i = 0; i < 80 && (hi - lo) > 0.005; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (fault_probability(f, vnom + Millivolts{mid}, c, delay_scale) >= p_obs)
            lo = mid;
        else
            hi = mid;
    }
    return Millivolts{hi};
}

Millivolts FaultModel::crash_offset(Megahertz f, double delay_scale) const {
    const Millivolts vnom = vf_.nominal(f);
    double lo = -vnom.value() + 1.0;
    double hi = 0.0;
    if (would_crash(f, vnom, delay_scale)) return Millivolts{0.0};
    for (int i = 0; i < 80 && (hi - lo) > 0.005; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (would_crash(f, vnom + Millivolts{mid}, delay_scale))
            lo = mid;
        else
            hi = mid;
    }
    return Millivolts{lo};
}

std::uint64_t FaultModel::sample_fault_count(Rng& rng, std::uint64_t n_ops, double p) const {
    return rng.binomial(n_ops, p);
}

std::uint64_t FaultModel::corrupt_value(Rng& rng, std::uint64_t correct) const {
    // Plundervolt-style multiplier corruption: usually a single flipped
    // bit in the upper partial-product columns, occasionally two.
    const unsigned flips = (rng.uniform() < 0.8) ? 1u : 2u;
    std::uint64_t value = correct;
    for (unsigned i = 0; i < flips; ++i) {
        const auto bit = 16 + rng.uniform_below(48);
        value ^= (1ULL << bit);
    }
    // Guarantee the result actually differs even if two flips collided.
    if (value == correct) value ^= (1ULL << 32);
    return value;
}

}  // namespace pv::sim
