// PlugVolt — nominal voltage/frequency curve.
//
// Each CPU generation ships a factory-fused mapping from frequency to
// nominal core voltage (the "VF curve").  The OCM offset in MSR 0x150 is
// applied *relative* to this curve — which is exactly the causal
// independence the paper root-causes: software can move frequency along
// the curve and voltage off the curve, independently.
#pragma once

#include <vector>

#include "util/units.hpp"

namespace pv::sim {

/// Piecewise-linear nominal voltage as a function of core frequency.
class VfCurve {
public:
    struct Point {
        Megahertz freq;
        Millivolts voltage;
    };

    /// Points must be strictly increasing in frequency; at least two are
    /// required.  Throws ConfigError otherwise.
    explicit VfCurve(std::vector<Point> points);

    /// Nominal voltage at `f`; clamped extrapolation outside the table
    /// (the regulator never commands below the first or above the last
    /// fused point).
    [[nodiscard]] Millivolts nominal(Megahertz f) const;

    [[nodiscard]] Megahertz min_freq() const { return points_.front().freq; }
    [[nodiscard]] Megahertz max_freq() const { return points_.back().freq; }

    /// Largest frequency whose nominal voltage does not exceed `v`
    /// (the P-state a core waking onto a partially-sagged rail can run
    /// at immediately); the table minimum if even that needs more.
    [[nodiscard]] Megahertz max_supported(Millivolts v) const;

private:
    std::vector<Point> points_;
};

}  // namespace pv::sim
