// PlugVolt — per-generation CPU profiles.
//
// The paper characterizes three Intel parts: i5-6500 (Sky Lake, ucode
// 0xf0), i5-8250U (Kaby Lake R, ucode 0xf4) and i7-10510U (Comet Lake,
// ucode 0xf4).  A profile bundles everything generation-specific: the
// frequency table, the fused VF curve, the timing-model constants the
// fault physics run on, and the latency prices for MSR access and the
// voltage regulator.
//
// Calibration note: the timing constants are chosen so that (a) nominal
// operation is safe with margin at every table frequency, and (b) the
// emergent fault-onset curve is monotone — deeper undervolt headroom at
// low frequency — matching the published undervolt-attack literature.
// Both properties are enforced by tests, not assumed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/power.hpp"
#include "sim/thermal.hpp"
#include "sim/vf_curve.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Constants of the alpha-power-law timing model (see TimingModel).
struct TimingParams {
    Millivolts threshold_voltage;   ///< effective transistor threshold
    double alpha;                   ///< velocity-saturation exponent
    double path_constant_ps;        ///< critical-path delay scale factor
    double setup_time_ps;           ///< T_setup of the capturing flop
    double clock_uncertainty_ps;    ///< T_eps — worst-case skew/jitter mean
    double sigma_fraction;          ///< cycle-to-cycle delay noise, fraction of path delay
    double crash_path_factor;       ///< control-path length whose violation crashes the machine
};

/// Cycle prices for MSR access paths and kernel-thread machinery.
struct AccessCosts {
    std::uint64_t rdmsr_cycles;         ///< local rdmsr
    std::uint64_t wrmsr_cycles;         ///< local wrmsr
    std::uint64_t ioctl_overhead_cycles;///< user->kernel transition of /dev/cpu/N/msr
    std::uint64_t ipi_cycles;           ///< cross-core smp_call for a remote MSR
    std::uint64_t kthread_wake_cycles;  ///< periodic kthread wakeup + context switch
};

/// Idle-state (C-state) behaviour.
struct CstateParams {
    Picoseconds c1_exit_latency = microseconds(1.0);
    Picoseconds c6_exit_latency = microseconds(50.0);
    /// Share of package leakage attributable to the cores (gated off in
    /// C6); the rest is uncore and always leaks.
    double core_leak_share = 0.6;
};

/// Voltage-regulator behaviour for OCM writes.
struct RegulatorParams {
    Picoseconds write_latency;   ///< delay before the ramp starts
    double slew_mv_per_us;       ///< ramp rate toward the target offset
};

/// Everything generation-specific the simulator needs.
struct CpuProfile {
    std::string name;            ///< marketing name, e.g. "Intel Core i5-6500"
    std::string codename;        ///< e.g. "Sky Lake"
    std::string microcode;       ///< e.g. "0xf0"
    unsigned core_count;
    Megahertz freq_min;
    Megahertz freq_max;
    Megahertz freq_base;
    Megahertz freq_step;         ///< frequency table resolution (100 MHz)
    std::vector<VfCurve::Point> vf_points;
    TimingParams timing;
    AccessCosts costs;
    RegulatorParams regulator;
    PowerParams power;
    ThermalParams thermal;
    CstateParams cstates;

    /// The discrete frequency table (min..max at `freq_step` resolution),
    /// i.e. the set the paper's Algorithm 2 sweeps with 0.1 GHz steps.
    [[nodiscard]] std::vector<Megahertz> frequency_table() const;

    /// VF curve built from `vf_points`.
    [[nodiscard]] VfCurve vf_curve() const { return VfCurve{vf_points}; }
};

/// Intel Core i5-6500 (Sky Lake, microcode 0xf0): 4C/4T, 0.8–3.6 GHz.
[[nodiscard]] CpuProfile skylake_i5_6500();

/// Intel Core i5-8250U (Kaby Lake R, microcode 0xf4): 4C/8T, 0.4–3.4 GHz.
[[nodiscard]] CpuProfile kabylake_r_i5_8250u();

/// Intel Core i7-10510U (Comet Lake, microcode 0xf4): 4C/8T, 0.4–4.9 GHz.
[[nodiscard]] CpuProfile cometlake_i7_10510u();

/// All three paper profiles, in paper order.
[[nodiscard]] std::vector<CpuProfile> paper_profiles();

}  // namespace pv::sim
