#include "sim/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace pv::sim {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(params), temp_c_(params.ambient_c) {
    if (params_.r_th_c_per_w <= 0.0 || params_.tau_ms <= 0.0)
        throw ConfigError("thermal constants must be positive");
    if (params_.tjmax_c <= params_.ambient_c)
        throw ConfigError("Tjmax must be above ambient");
    if (params_.delay_per_c < 0.0) throw ConfigError("delay sensitivity must be >= 0");
}

void ThermalModel::update(Picoseconds t, double avg_power_w) {
    if (t < last_update_) throw SimError("thermal update backwards in time");
    const double dt_ms = (t - last_update_).milliseconds();
    last_update_ = t;
    if (dt_ms <= 0.0) return;
    const double steady = params_.ambient_c + avg_power_w * params_.r_th_c_per_w;
    const double decay = std::exp(-dt_ms / params_.tau_ms);
    temp_c_ = steady + (temp_c_ - steady) * decay;
}

double ThermalModel::delay_scale() const {
    return 1.0 + params_.delay_per_c * std::max(0.0, temp_c_ - 25.0);
}

std::uint64_t ThermalModel::therm_status_msr() const {
    const double below = std::max(0.0, params_.tjmax_c - temp_c_);
    const auto readout = static_cast<std::uint64_t>(std::llround(below)) & 0x7F;
    const std::uint64_t valid = 1ULL << 31;
    return (readout << 16) | valid;
}

std::uint64_t ThermalModel::temperature_target_msr() const {
    const auto tjmax = static_cast<std::uint64_t>(std::llround(params_.tjmax_c)) & 0xFF;
    return tjmax << 16;
}

void ThermalModel::force_temperature(double celsius) { temp_c_ = celsius; }

void ThermalModel::reset() {
    temp_c_ = params_.ambient_c;
    // last_update_ intentionally kept: the clock is monotone across boots.
}

void ThermalModel::rewind() {
    temp_c_ = params_.ambient_c;
    last_update_ = Picoseconds{};
}

}  // namespace pv::sim
