#include "sim/core.hpp"

namespace pv::sim {

Picoseconds Core::drain_steal(Picoseconds budget) {
    const Picoseconds drained = pending_steal_ < budget ? pending_steal_ : budget;
    pending_steal_ -= drained;
    return drained;
}

void Core::reset(Megahertz boot_freq) {
    freq_ = boot_freq;
    cstate_ = CState::C0;
    instructions_ = 0;
    pending_steal_ = Picoseconds{};
    total_steal_ = Picoseconds{};
}

}  // namespace pv::sim
