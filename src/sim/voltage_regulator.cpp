#include "sim/voltage_regulator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pv::sim {

VoltageRegulator::VoltageRegulator(RegulatorParams params) : params_(params) {
    if (params_.slew_mv_per_us <= 0.0) throw ConfigError("regulator slew must be positive");
    if (params_.write_latency < Picoseconds{0}) throw ConfigError("regulator latency negative");
}

Millivolts VoltageRegulator::eval(const Ramp& r, Picoseconds t) {
    if (t <= r.ramp_begin) return r.start;
    if (t >= r.ramp_end) return r.target_mv;
    const double span_us = (r.ramp_end - r.ramp_begin).microseconds();
    const double done_us = (t - r.ramp_begin).microseconds();
    const double frac = span_us <= 0.0 ? 1.0 : done_us / span_us;
    return r.start + (r.target_mv - r.start) * frac;
}

void VoltageRegulator::write(VoltagePlane plane, Millivolts target, Picoseconds now) {
    Ramp& r = planes_[static_cast<std::size_t>(plane)];
    const Millivolts current = eval(r, now);
    r.start = current;
    r.target_mv = target;
    r.ramp_begin = now + params_.write_latency;
    const double delta_mv = std::abs((target - current).value());
    const double ramp_us = delta_mv / params_.slew_mv_per_us;
    r.ramp_end = r.ramp_begin + microseconds(ramp_us);
}

Millivolts VoltageRegulator::offset_at(VoltagePlane plane, Picoseconds t) const {
    return eval(planes_[static_cast<std::size_t>(plane)], t);
}

Millivolts VoltageRegulator::target(VoltagePlane plane) const {
    return planes_[static_cast<std::size_t>(plane)].target_mv;
}

Picoseconds VoltageRegulator::settle_time(VoltagePlane plane) const {
    return planes_[static_cast<std::size_t>(plane)].ramp_end;
}

void VoltageRegulator::force(VoltagePlane plane, Millivolts value) {
    Ramp& r = planes_[static_cast<std::size_t>(plane)];
    r.start = value;
    r.target_mv = value;
    r.ramp_begin = Picoseconds{0};
    r.ramp_end = Picoseconds{0};
}

void VoltageRegulator::reset() { planes_ = {}; }

}  // namespace pv::sim
