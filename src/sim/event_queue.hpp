// PlugVolt — discrete-event scheduling core.
//
// The whole machine model is a single-threaded discrete-event simulation:
// voltage ramps are evaluated lazily, but kernel-thread wakeups, regulator
// completion callbacks and watchdog timers are events.  Determinism is a
// hard requirement (ties broken by insertion order).
//
// Layout: a struct-of-arrays binary min-heap over (when, seq), with the
// callbacks parked in a slot arena beside it.  Sift operations move three
// POD words per swap instead of a std::function; dispatched and cleared
// slots go onto a free list, so clear() + steady-state scheduling never
// allocates — Machine::reset() recycles the whole structure (arena slots
// and heap arrays keep their capacity) across thousands of sweep cells.
//
// Reentrancy contract
// -------------------
// A callback MAY call schedule() on the queue dispatching it (periodic
// kthreads re-arm themselves this way).  run_until() MOVES the callback
// out of its arena slot and removes the heap entry BEFORE invoking it,
// so the dispatching entry is never touched again — even if the new
// event reuses the just-freed slot or grows the arena.  A callback MUST
// NOT call run_until() or clear() reentrantly on the same queue.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/units.hpp"

namespace pv::sim {

/// Time-ordered callback queue.  Events scheduled for the same timestamp
/// fire in insertion order.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Dispatch counters (NOT part of any state fingerprint: they count
    /// traversal work, not architectural history).
    struct Stats {
        std::uint64_t scheduled = 0;   ///< schedule() calls since reset_stats()
        std::uint64_t dispatched = 0;  ///< callbacks run since reset_stats()
        std::uint64_t heap_peak = 0;   ///< pending-event high-water mark
    };

    /// Schedule `fn` to run at absolute time `when`; `when` must not be
    /// before the last popped time (no scheduling into the past).
    void schedule(Picoseconds when, Callback fn);

    /// True if no events remain.
    [[nodiscard]] bool empty() const { return when_.empty(); }

    /// Timestamp of the next event; only valid when !empty().
    [[nodiscard]] Picoseconds next_time() const;

    /// Pop and run every event with timestamp <= `until`, advancing the
    /// internal clock.  Events scheduled by callbacks are honoured if
    /// they also fall within `until`.  Returns the number of events run.
    std::size_t run_until(Picoseconds until);

    /// The timestamp of the most recently executed event (or zero).
    [[nodiscard]] Picoseconds last_dispatched() const { return last_; }

    /// Drop all pending events (machine reboot after a crash).  Keeps
    /// every allocation: the heap arrays and the callback arena retain
    /// their capacity for the next boot cycle.
    void clear();

    /// clear(), plus rewind the scheduling-into-the-past watermark to
    /// zero.  For Machine::reset(), which rewinds the virtual clock —
    /// reboot() keeps the clock monotonic and uses clear().
    void rewind();

    [[nodiscard]] const Stats& stats() const { return stats_; }
    void reset_stats() { stats_ = Stats{}; }

private:
    [[nodiscard]] bool before(std::size_t a, std::size_t b) const;
    void swap_entries(std::size_t a, std::size_t b);
    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    [[nodiscard]] std::uint32_t acquire_slot(Callback&& fn);
    void release_slot(std::uint32_t slot);

    // Struct-of-arrays heap: entry i is (when_[i], seq_[i]) with its
    // callback in arena_[slot_[i]].
    std::vector<std::int64_t> when_;
    std::vector<std::uint64_t> seq_;
    std::vector<std::uint32_t> slot_;
    std::vector<Callback> arena_;
    std::vector<std::uint32_t> free_;  // recycled arena slot indices
    std::uint64_t next_seq_ = 0;
    Picoseconds last_{};
    Stats stats_{};
};

}  // namespace pv::sim
