// PlugVolt — discrete-event scheduling core.
//
// The whole machine model is a single-threaded discrete-event simulation:
// voltage ramps are evaluated lazily, but kernel-thread wakeups, regulator
// completion callbacks and watchdog timers are events.  Determinism is a
// hard requirement (ties broken by insertion order).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace pv::sim {

/// Time-ordered callback queue.  Events scheduled for the same timestamp
/// fire in insertion order.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedule `fn` to run at absolute time `when`; `when` must not be
    /// before the last popped time (no scheduling into the past).
    void schedule(Picoseconds when, Callback fn);

    /// True if no events remain.
    [[nodiscard]] bool empty() const { return queue_.empty(); }

    /// Timestamp of the next event; only valid when !empty().
    [[nodiscard]] Picoseconds next_time() const;

    /// Pop and run every event with timestamp <= `until`, advancing the
    /// internal clock.  Events scheduled by callbacks are honoured if
    /// they also fall within `until`.  Returns the number of events run.
    std::size_t run_until(Picoseconds until);

    /// The timestamp of the most recently executed event (or zero).
    [[nodiscard]] Picoseconds last_dispatched() const { return last_; }

    /// Drop all pending events (used on machine reset after a crash).
    void clear();

private:
    struct Entry {
        Picoseconds when;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    std::uint64_t next_seq_ = 0;
    Picoseconds last_{};
};

}  // namespace pv::sim
