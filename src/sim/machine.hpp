// PlugVolt — the simulated package.
//
// Machine is the substrate every other layer runs on: it owns the cores,
// the package voltage regulator, the MSR surface (0x150 overclocking
// mailbox, 0x198 IA32_PERF_STATUS, 0x199 IA32_PERF_CTL, the hypothetical
// MSR_VOLTAGE_OFFSET_LIMIT), the discrete-event queue and the fault
// physics.  It is single-threaded and deterministic for a given seed.
//
// Faithfulness notes mirrored from real Intel behaviour:
//  - MSR 0x150 is *package* scope; the undervolt offset applies to every
//    core.  Frequency (0x199) is per-core.
//  - The package rail follows the fastest active core's VF point; the
//    OCM offset is added on top.  This is why attacks pin all cores to
//    the target frequency before undervolting.
//  - P-state transitions are sequenced by the (modeled) PCU the way real
//    hardware does it: on a frequency RAISE the rail ramps up to the new
//    P-state's nominal voltage first and the frequency switches only
//    when the rail is ready; a frequency LOWER takes effect immediately
//    (safe direction) and the rail sags afterwards.  This sequencing is
//    load-bearing for the defense analysis: it is the physical delay a
//    polling countermeasure races against on VoltJockey-style attacks.
//  - wrmsr can be interposed: write hooks model microcode assists and
//    hardware clamps (the paper's Sec. 5 deployments) as well as Intel's
//    SA-00289 access-control patch.
//  - A deep enough undervolt does not compute wrong values politely —
//    it crashes the machine.  Machine exposes reboot() and an on-reset
//    callback list so persistent services (the polling module) can
//    re-arm, exactly like a module loaded at boot.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/invariant_registry.hpp"
#include "sim/core.hpp"
#include "sim/cpu_profile.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_model.hpp"
#include "sim/instr.hpp"
#include "sim/ocm.hpp"
#include "sim/power.hpp"
#include "sim/thermal.hpp"
#include "sim/voltage_regulator.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Verdict of a wrmsr write hook.
enum class MsrWriteAction {
    Allow,   ///< proceed (the hook may have mutated the value — a clamp)
    Ignore,  ///< drop the write silently (microcode write-ignore)
};

/// Result of running a batch of identical operations on one core.
struct BatchResult {
    std::uint64_t ops_done = 0;
    std::uint64_t faults = 0;
    bool crashed = false;
    Picoseconds started{};
    Picoseconds finished{};
};

/// Result of one faultable 64x64 multiply.
struct ImulResult {
    std::uint64_t value = 0;
    bool faulted = false;
};

/// How run_batch() traverses a settled execution window.  Both modes
/// perform IDENTICAL physics and RNG operations — machine histories are
/// bit-identical by construction.  Sliced additionally walks every
/// window at the legacy 50 us granularity re-validating the
/// window-anchor assumptions (no due event, no rail movement, no fault-
/// probability drift inside the window) with read-only queries; it is
/// the reference the perfpath differential tests run whole sweeps and
/// campaign cubes under.  See DESIGN 5f for the soundness argument.
enum class SteppingMode {
    Batched,  ///< one closed-form step per settled window (production)
    Sliced,   ///< fine-grained re-validating traversal (verification)
};

/// The simulated package (cores + regulator + MSRs + physics + clock).
class Machine {
public:
    using WriteHook =
        std::function<MsrWriteAction(unsigned core_id, std::uint32_t addr, std::uint64_t& value)>;
    using ResetCallback = std::function<void()>;

    /// Traversal-work counters (NOT part of state_hash(): they measure
    /// how the simulator walked the history, not the history itself —
    /// but they ARE deterministic per cell, so campaign fingerprints may
    /// include them).  Zeroed by reset(seed).
    struct Stats {
        std::uint64_t events_dispatched = 0;  ///< event-loop callbacks run
        std::uint64_t batched_iterations = 0; ///< ops retired via settled windows
        std::uint64_t batch_windows = 0;      ///< closed-form windows taken
        std::uint64_t heap_peak = 0;          ///< event-heap high-water mark
    };

    Machine(CpuProfile profile, std::uint64_t seed);

    // --- identity & time -------------------------------------------------
    [[nodiscard]] const CpuProfile& profile() const { return profile_; }
    [[nodiscard]] Picoseconds now() const { return clock_; }
    [[nodiscard]] EventQueue& events() { return events_; }

    /// Advance the clock to absolute time `t`, dispatching due events and
    /// checking for undervolt crashes at every event boundary.  Stops
    /// early (clock frozen at crash time) if the machine crashes.
    void advance_to(Picoseconds t);
    void advance(Picoseconds dt) { advance_to(clock_ + dt); }

    // --- cores & frequency -----------------------------------------------
    [[nodiscard]] unsigned core_count() const { return static_cast<unsigned>(cores_.size()); }
    [[nodiscard]] Core& core(unsigned id);
    [[nodiscard]] const Core& core(unsigned id) const;

    /// Request a core's P-state frequency, snapped to the 100 MHz table
    /// and clamped to the profile's range.  Lowering takes effect
    /// immediately; raising is voltage-first: the effective frequency
    /// switches only once the rail has ramped to the new nominal.
    void set_core_frequency(unsigned id, Megahertz f);

    /// Request every core's frequency (what `cpupower` does by default).
    void set_all_frequencies(Megahertz f);

    /// The last requested (PERF_CTL) frequency for a core; may be above
    /// the effective frequency while a raise is pending on the rail.
    [[nodiscard]] Megahertz requested_frequency(unsigned id) const;

    /// Fastest effective frequency among active cores.
    [[nodiscard]] Megahertz max_active_frequency() const;

    // --- idle states ---------------------------------------------------
    /// Put a core into an idle state.  C6 power-gates it: its leakage
    /// stops and it no longer constrains the package rail.  Entering C0
    /// is equivalent to wake_core().
    void enter_cstate(unsigned id, CState state);

    /// Wake a core to C0.  Exit latency is charged as stolen time, and a
    /// core waking onto a sagged rail comes up at the highest P-state
    /// the rail supports right now (its request re-arms the PCU raise).
    void wake_core(unsigned id);

    /// Time when both rails (base P-state rail and OCM offset) settle
    /// and any pending frequency raise has switched.
    [[nodiscard]] Picoseconds rail_settle_time() const;

    // --- voltage -----------------------------------------------------------
    /// Package core-plane voltage right now: the base P-state rail plus
    /// the applied OCM offset.
    [[nodiscard]] Millivolts package_voltage() const;

    /// Voltage of a specific plane (base rail + that plane's offset).
    /// Only the Core and Cache planes feed modeled fault paths: loads
    /// traverse the cache SRAM, everything else the core logic.
    [[nodiscard]] Millivolts plane_voltage(VoltagePlane plane) const;

    /// Currently applied (post-ramp) offset on a plane.
    [[nodiscard]] Millivolts applied_offset(VoltagePlane plane) const;

    [[nodiscard]] VoltageRegulator& regulator() { return regulator_; }
    [[nodiscard]] const VoltageRegulator& regulator() const { return regulator_; }

    // --- MSR surface --------------------------------------------------------
    /// Architectural rdmsr.  0x198 is synthesized from live state; 0x150
    /// reads back the current core-plane target offset.
    [[nodiscard]] std::uint64_t read_msr(unsigned core_id, std::uint32_t addr) const;

    /// Architectural wrmsr.  Returns true if the write took effect;
    /// false if an installed hook (microcode/hardware countermeasure,
    /// access-control patch) ignored it.
    bool write_msr(unsigned core_id, std::uint32_t addr, std::uint64_t value);

    /// Interpose on wrmsr (hooks run in registration order).  Returns a
    /// token for removal.
    std::size_t add_write_hook(WriteHook hook);
    void remove_write_hook(std::size_t token);

    // --- execution -----------------------------------------------------------
    /// Run `n_ops` operations of class `c` back-to-back on a core,
    /// advancing simulated time (slice-wise, so concurrent events — e.g.
    /// a polling kthread — interleave correctly and voltage ramps are
    /// sampled finely).  `cpi` is cycles per operation.
    BatchResult run_batch(unsigned core_id, InstrClass c, std::uint64_t n_ops, double cpi = 1.0);

    /// Execute one operation; returns whether it faulted.
    bool execute_op(unsigned core_id, InstrClass c, double cpi = 1.0);

    /// One faultable 64x64->64 multiply on a core (wrapping semantics);
    /// faults corrupt the product the way undervolted multipliers do.
    ImulResult faulty_imul(unsigned core_id, std::uint64_t a, std::uint64_t b);

    /// Charge kernel work to a core; concurrently running workload
    /// windows observe it as stolen time.
    void add_steal(unsigned core_id, Cycles cycles);

    // --- physics ----------------------------------------------------------------
    [[nodiscard]] const FaultModel& fault_model() const { return fault_model_; }

    /// Package energy accounting (also exposed via the RAPL MSRs 0x606
    /// and 0x611): dynamic energy per retired instruction at the live
    /// rail voltage plus continuously integrated leakage.
    [[nodiscard]] const PowerModel& power() const { return power_; }

    /// Die thermal state (exposed via IA32_THERM_STATUS 0x19C and
    /// IA32_TEMPERATURE_TARGET 0x1A2).  Hot silicon is slower: the
    /// fault physics consume thermal().delay_scale().
    [[nodiscard]] const ThermalModel& thermal() const { return thermal_; }

    /// Pin the die temperature (test/bench hook for preheated parts).
    void set_die_temperature(double celsius) { thermal_.force_temperature(celsius); }

    /// Instantaneous per-op fault probability on a core.
    [[nodiscard]] double fault_probability(unsigned core_id, InstrClass c) const;

    /// Corrupt a value the way an undervolt fault would (drawing from
    /// this machine's deterministic fault-sampling stream).
    [[nodiscard]] std::uint64_t corrupt_value(std::uint64_t correct);

    /// Virtual time of the last mailbox write that actually commanded
    /// the regulator (zero until one happens).  Observability only — the
    /// polling module uses it to histogram how long an unsafe offset
    /// dwelt before its rewrite.  Deliberately NOT part of state_hash():
    /// it duplicates information already hashed via the regulator.
    [[nodiscard]] Picoseconds last_ocm_write_time() const { return last_ocm_write_; }

    // --- crash / reboot ------------------------------------------------------------
    [[nodiscard]] bool crashed() const { return crashed_; }
    [[nodiscard]] const std::string& crash_reason() const { return crash_reason_; }
    [[nodiscard]] Picoseconds crash_time() const { return crash_time_; }

    /// Record a crash (undervolt past the control-path boundary, triple
    /// fault, ...).  Freezes execution until reboot().
    void crash(std::string reason);

    /// Reboot after a crash (or at will): restores boot defaults, clears
    /// the event queue, advances the clock by the boot delay and fires
    /// on-reset callbacks so persistent services re-arm.
    void reboot();

    /// Cheap full reset for reusable worker instances (the sharded
    /// characterization engine probes thousands of cells per machine):
    /// restores boot defaults like reboot(), but rewinds the clock to
    /// zero, reseeds the RNG and charges no boot delay — the machine is
    /// indistinguishable from a freshly constructed Machine(profile,
    /// seed) without re-running the constructor's profile validation.
    /// boot_count() restarts at 1; on-reset callbacks still fire so a
    /// hosted Kernel re-arms its services.
    void reset(std::uint64_t seed);

    /// Number of completed boots (starts at 1).
    [[nodiscard]] unsigned boot_count() const { return boot_count_; }

    // --- snapshot / restore -----------------------------------------------
    /// Opaque copy of the machine's complete dynamic state — everything
    /// reset() rebuilds, plus the live event queue — EXCEPT the RNG.
    /// Lets a driver replay a seed-independent prologue (e.g. the sweep
    /// engine's boot -> row-frequency pin, which draws no random numbers)
    /// without re-simulating it for every cell.  Snapshots are only
    /// valid on the machine that captured them: scheduled callbacks
    /// capture `this`.
    struct Snapshot {
        const Machine* owner = nullptr;
        Picoseconds clock;
        bool crashed = false;
        std::string crash_reason;
        Picoseconds crash_time;
        unsigned boot_count = 1;
        std::vector<Core> cores;
        std::vector<Megahertz> requested_freq;
        VoltageRegulator regulator;
        VoltageRegulator base_rail;
        PowerModel power;
        ThermalModel thermal;
        double energy_at_thermal_update = 0.0;
        EventQueue events;
        FlatMap<std::uint64_t, std::uint64_t> msr_storage;
        std::array<Millivolts, 5> mailbox_target{};
        Picoseconds last_ocm_write;
        std::uint64_t batched_iterations = 0;
        std::uint64_t batch_windows = 0;
    };

    /// Capture the dynamic state (the RNG is deliberately excluded).
    [[nodiscard]] Snapshot capture_snapshot() const;

    /// Restore a snapshot captured on THIS machine and reseed the RNG —
    /// bit-identical to re-running the captured history from reset(seed)
    /// provided that history drew no random numbers and that externally
    /// owned state (kernel threads, write hooks, invariants) has not
    /// changed since capture.  Does NOT fire on-reset callbacks: the
    /// restored event queue already carries any re-armed services.
    void restore_snapshot(const Snapshot& snap, std::uint64_t seed);

    /// Register a callback fired at the end of every reboot().
    void on_reset(ResetCallback cb) { reset_callbacks_.push_back(std::move(cb)); }

    /// Simulated boot duration charged by reboot().
    [[nodiscard]] Picoseconds reboot_delay() const { return reboot_delay_; }
    void set_reboot_delay(Picoseconds d) { reboot_delay_ = d; }

    // --- checking layer ------------------------------------------------------
    /// Runtime invariant registry.  The machine registers its own
    /// physical-plausibility invariants at construction and ticks the
    /// registry from the event loop; components and tests may register
    /// more.  Cadence defaults to every 64th tick at PV_CHECK_LEVEL >= 2
    /// and to disabled otherwise; registrations survive reboot()/reset().
    [[nodiscard]] check::InvariantRegistry& invariants() { return invariants_; }
    [[nodiscard]] const check::InvariantRegistry& invariants() const { return invariants_; }

    /// 64-bit fingerprint of the complete architectural + physical state
    /// (clock, cores, rails, MSRs, energy, thermal).  Two machines with
    /// equal hashes went through bit-identical histories — the
    /// determinism contract the parallel sweep engine is tested against.
    [[nodiscard]] std::uint64_t state_hash() const;

    // --- stepping & stats ----------------------------------------------------
    /// Per-instance traversal mode (defaults to default_stepping_mode()
    /// at construction).
    void set_stepping_mode(SteppingMode m) { stepping_mode_ = m; }
    [[nodiscard]] SteppingMode stepping_mode() const { return stepping_mode_; }

    /// Process-wide default for newly constructed Machines.  The
    /// differential tests flip this to run whole engines (which build
    /// their Machines internally) under Sliced validation.  Thread-safe;
    /// set it between runs, not while machines are stepping.
    static void set_default_stepping_mode(SteppingMode m);
    [[nodiscard]] static SteppingMode default_stepping_mode();

    [[nodiscard]] Stats stats() const;

private:
    // Direct-mapped cache for the pure fault-physics functions.  The
    // characterization engine replays the identical boot -> row-frequency
    // ramp for every cell, re-evaluating fault_probability/would_crash at
    // the same handful of (f, v, scale) points thousands of times; a
    // 1024-slot bit-pattern-keyed memo makes those re-evaluations a load.
    // Determinism-neutral (the functions are pure), so it survives
    // reset(seed) untouched.  Slots with key 0 are empty; computed keys
    // set bit 0 so a genuine zero key cannot alias the empty marker.
    class PhysicsMemo {
    public:
        template <typename Compute>
        double get(std::uint64_t key, Compute&& compute) {
            Entry& e = slots_[key & (kSlots - 1)];
            if (e.key == key) return e.value;
            const double v = compute();
            e.key = key;
            e.value = v;
            return v;
        }

    private:
        static constexpr std::size_t kSlots = 1024;
        struct Entry {
            std::uint64_t key = 0;
            double value = 0.0;
        };
        std::array<Entry, kSlots> slots_{};
    };

    void restore_boot_state();
    void register_builtin_invariants();
    void maybe_crash();
    [[nodiscard]] double leakage_scale() const;
    [[nodiscard]] Megahertz snap_to_table(Megahertz f) const;
    void apply_msr_semantics(unsigned core_id, std::uint32_t addr, std::uint64_t value);
    void update_rail_target();
    void apply_pending_raises();
    [[nodiscard]] Millivolts voltage_at(Picoseconds t) const;
    void integrate_power_to(Picoseconds t);

    // Memoized fault physics (pure-function lookups; see PhysicsMemo).
    [[nodiscard]] double cached_fault_probability(Megahertz f, Millivolts v, InstrClass c,
                                                  double scale) const;
    [[nodiscard]] bool cached_would_crash(Megahertz f, Millivolts v, double scale) const;

    // run_batch helpers: retire one settled window (single probability
    // eval, single binomial draw, single power/retire update), and the
    // Sliced-mode read-only re-validation of the window-anchor
    // assumptions at the legacy 50 us granularity.
    void retire_window(Core& cr, InstrClass c, std::uint64_t ops, Millivolts v, BatchResult& r);
    void validate_window(const Core& cr, InstrClass c, VoltagePlane plane, Millivolts v_anchor,
                         Picoseconds window) const;

    CpuProfile profile_;
    VfCurve vf_;
    FaultModel fault_model_;
    VoltageRegulator regulator_;   // OCM offset planes (with write latency)
    VoltageRegulator base_rail_;   // absolute P-state rail (PCU-sequenced)
    PowerModel power_;
    ThermalModel thermal_;
    double energy_at_thermal_update_ = 0.0;
    std::vector<Core> cores_;
    std::vector<Megahertz> requested_freq_;
    EventQueue events_;
    Rng rng_;
    Picoseconds clock_{};

    FlatMap<std::uint64_t, std::uint64_t> msr_storage_;  // key: core<<32 | addr
    // What the MAILBOX was commanded per plane.  Normally equals the
    // regulator target; diverges under hardware (SVID bus) injection,
    // which is exactly what mailbox readback cannot see.
    std::array<Millivolts, 5> mailbox_target_{};
    Picoseconds last_ocm_write_{};
    std::vector<std::pair<std::size_t, WriteHook>> write_hooks_;
    std::size_t next_hook_token_ = 0;

    bool crashed_ = false;
    std::string crash_reason_;
    Picoseconds crash_time_{};
    unsigned boot_count_ = 1;
    Picoseconds reboot_delay_ = milliseconds(100.0);
    std::vector<ResetCallback> reset_callbacks_;
    check::InvariantRegistry invariants_;

    SteppingMode stepping_mode_ = default_stepping_mode();
    mutable PhysicsMemo memo_;
    std::uint64_t batched_iterations_ = 0;
    std::uint64_t batch_windows_ = 0;
};

}  // namespace pv::sim
