// PlugVolt — package voltage regulator.
//
// OCM writes do not change voltage instantaneously: the SVID command
// takes effect after a fixed latency and the rail then slews linearly
// toward the target.  The paper calls this out as one of the two
// turnaround-time contributors of the kernel-module deployment (Sec. 5),
// so the model must expose both the latency and the ramp.  Offsets are
// evaluated lazily — closed-form in time — so no events are needed.
#pragma once

#include <array>

#include "sim/cpu_profile.hpp"
#include "sim/ocm.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Per-plane offset regulator with command latency and linear slew.
class VoltageRegulator {
public:
    explicit VoltageRegulator(RegulatorParams params);

    /// Issue a new target offset for `plane` at time `now`.  The ramp
    /// starts at now + write_latency from whatever the rail measured at
    /// that moment and slews toward `target`.
    void write(VoltagePlane plane, Millivolts target, Picoseconds now);

    /// Offset actually applied on `plane` at time `t`.
    [[nodiscard]] Millivolts offset_at(VoltagePlane plane, Picoseconds t) const;

    /// The most recently commanded target for `plane`.
    [[nodiscard]] Millivolts target(VoltagePlane plane) const;

    /// Time at which the rail reaches the commanded target (>= the write
    /// time); equals the write time when already settled.
    [[nodiscard]] Picoseconds settle_time(VoltagePlane plane) const;

    /// Immediately pin a plane to `value` with no ramp (boot/reset state,
    /// or initializing a rail that models an absolute voltage).
    void force(VoltagePlane plane, Millivolts value);

    /// Reset all planes to zero offset immediately (machine reboot).
    void reset();

    [[nodiscard]] const RegulatorParams& params() const { return params_; }

private:
    struct Ramp {
        Millivolts start{};       // offset when the ramp begins
        Millivolts target_mv{};
        Picoseconds ramp_begin{}; // write time + latency
        Picoseconds ramp_end{};
    };

    [[nodiscard]] static Millivolts eval(const Ramp& r, Picoseconds t);

    RegulatorParams params_;
    std::array<Ramp, 5> planes_{};
};

}  // namespace pv::sim
