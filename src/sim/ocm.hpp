// PlugVolt — overclocking mailbox (MSR 0x150) encoding.
//
// Implements the bit layout reverse-engineered by Plundervolt and
// reproduced in Table 1 of the paper:
//
//   bits  0-20  reserved
//   bits 21-31  voltage offset, 11-bit two's complement, units of 1/1024 V
//   bit     32  write-enable
//   bits 33-39  reserved
//   bits 40-42  plane select (0 core, 1 GPU, 2 cache, 3 uncore, 4 AIO)
//   bits 43-62  reserved
//   bit     63  mailbox busy/command bit — must be set for a write
//
// Two encoders are provided: `encode_offset` (the library API) and
// `algo1_offset_voltage` (a literal transcription of the paper's
// Algorithm 1, kept for cross-validation in tests and the Table 1 bench).
#pragma once

#include <cstdint>
#include <optional>

#include "os/msr_regs.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Voltage planes addressable through the mailbox.
enum class VoltagePlane : std::uint8_t {
    Core = 0,
    Gpu = 1,
    Cache = 2,
    Uncore = 3,
    AnalogIo = 4,
};

/// Decoded contents of an MSR 0x150 write.
struct OcmRequest {
    VoltagePlane plane = VoltagePlane::Core;
    /// Requested offset relative to the base voltage (negative = undervolt).
    Millivolts offset{};
    /// Whether the write-enable bit (32) was set.
    bool write_enable = false;
    /// Whether the command bit (63) was set.
    bool command = false;
};

/// MSR index of the overclocking mailbox (see os/msr_regs.hpp, the
/// central registry every raw register number lives in).
inline constexpr std::uint32_t kMsrOcMailbox = msr::kOcMailbox;
/// MSR index of IA32_PERF_STATUS (frequency ratio + measured voltage).
inline constexpr std::uint32_t kMsrPerfStatus = msr::kPerfStatus;
/// MSR index of IA32_PERF_CTL (requested performance state).
inline constexpr std::uint32_t kMsrPerfCtl = msr::kPerfCtl;
/// Hypothetical MSR_VOLTAGE_OFFSET_LIMIT proposed in Sec. 5.2 of the
/// paper (analogous to DRAM_MIN_PWR in MSR_DRAM_POWER_INFO).  The index
/// is outside Intel's allocated ranges on purpose.
inline constexpr std::uint32_t kMsrVoltageOffsetLimit = msr::kVoltageOffsetLimit;

/// Encode a mailbox write for `offset` on `plane` with write-enable and
/// command bits set.  Offsets are clamped to the representable 11-bit
/// two's-complement range (−1024..+1023 in 1/1024 V steps).
[[nodiscard]] std::uint64_t encode_offset(Millivolts offset, VoltagePlane plane);

/// Literal transcription of the paper's Algorithm 1 (offset in integer
/// millivolts, plane as raw index).  Produces bit-identical values to
/// `encode_offset` for the offsets the paper sweeps (0..−300 mV).
[[nodiscard]] std::uint64_t algo1_offset_voltage(int offset_mv, unsigned plane);

/// Decode a raw 0x150 value.  Returns std::nullopt if the plane field
/// holds an unassigned index (5-7).
[[nodiscard]] std::optional<OcmRequest> decode_offset(std::uint64_t raw);

}  // namespace pv::sim
