#include "sim/timing_model.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace pv::sim {
namespace {
// Share of the worst-case path delay attributed to the launching flop's
// clock->Q (T_src) versus the combinational network (T_prop).
constexpr double kSrcShare = 0.15;
}  // namespace

TimingModel::TimingModel(TimingParams params) : params_(params) {
    if (params_.threshold_voltage <= Millivolts{0.0})
        throw ConfigError("threshold voltage must be positive");
    if (params_.alpha < 1.0) throw ConfigError("alpha must be >= 1");
    if (params_.path_constant_ps <= 0.0) throw ConfigError("path constant must be positive");
    if (params_.setup_time_ps < 0.0 || params_.clock_uncertainty_ps < 0.0)
        throw ConfigError("setup/uncertainty must be non-negative");
    if (params_.sigma_fraction <= 0.0) throw ConfigError("sigma fraction must be positive");
    if (params_.crash_path_factor <= 0.0 || params_.crash_path_factor > 1.0)
        throw ConfigError("crash path factor must be in (0,1]");
}

double TimingModel::path_delay_ps(Millivolts v) const {
    const double vv = v.volts();
    const double vth = params_.threshold_voltage.volts();
    if (vv <= vth) return std::numeric_limits<double>::infinity();
    return params_.path_constant_ps * vv / std::pow(vv - vth, params_.alpha);
}

double TimingModel::path_delay_ps(Millivolts v, InstrClass c) const {
    return path_factor(c) * path_delay_ps(v);
}

double TimingModel::slack_ps(Megahertz f) const {
    return f.period_ps() - params_.setup_time_ps - params_.clock_uncertainty_ps;
}

double TimingModel::margin_ps(Megahertz f, Millivolts v, InstrClass c) const {
    return slack_ps(f) - path_delay_ps(v, c);
}

TimingBreakdown TimingModel::breakdown(Megahertz f, Millivolts v, InstrClass c) const {
    const double d = path_delay_ps(v, c);
    return TimingBreakdown{
        .t_src = kSrcShare * d,
        .t_prop = (1.0 - kSrcShare) * d,
        .t_clk = f.period_ps(),
        .t_setup = params_.setup_time_ps,
        .t_eps = params_.clock_uncertainty_ps,
    };
}

Millivolts TimingModel::critical_voltage(Megahertz f, InstrClass c) const {
    const double slack = slack_ps(f);
    if (slack <= 0.0)
        throw ConfigError("frequency too high: no positive slack at any voltage");
    // path_delay is strictly decreasing in V above threshold, so the
    // critical voltage is the unique root of delay(V) == slack.
    double lo = params_.threshold_voltage.value() + 1e-6;
    double hi = 3000.0;  // 3 V — far above any operating point
    if (path_delay_ps(Millivolts{hi}, c) > slack)
        throw ConfigError("slack unreachable even at maximum model voltage");
    for (int i = 0; i < 100 && (hi - lo) > 0.01; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (path_delay_ps(Millivolts{mid}, c) > slack)
            lo = mid;
        else
            hi = mid;
    }
    return Millivolts{hi};
}

}  // namespace pv::sim
