#include "sim/machine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>

#include "check/assert.hpp"
#include "check/state_hasher.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace pv::sim {
namespace {

std::uint64_t storage_key(unsigned core_id, std::uint32_t addr) {
    return (static_cast<std::uint64_t>(core_id) << 32) | addr;
}

std::atomic<SteppingMode> g_default_stepping{SteppingMode::Batched};

// splitmix64 finalizer over the exact bit patterns of the arguments, so
// the memo key distinguishes every representable (f, v, scale) point.
std::uint64_t mix_bits(std::uint64_t h, std::uint64_t x) {
    h ^= x + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

std::uint64_t physics_key(std::uint64_t tag, double f, double v, double scale) {
    std::uint64_t h = mix_bits(tag, std::bit_cast<std::uint64_t>(f));
    h = mix_bits(h, std::bit_cast<std::uint64_t>(v));
    h = mix_bits(h, std::bit_cast<std::uint64_t>(scale));
    return h | 1;  // bit 0 set: cannot alias the empty-slot marker
}

}  // namespace

void Machine::set_default_stepping_mode(SteppingMode m) {
    g_default_stepping.store(m, std::memory_order_relaxed);
}

SteppingMode Machine::default_stepping_mode() {
    return g_default_stepping.load(std::memory_order_relaxed);
}

namespace {
// The base rail is PCU-driven: short command latency, same slew class as
// the offset path.
RegulatorParams base_rail_params(const RegulatorParams& ocm) {
    return RegulatorParams{.write_latency = microseconds(5.0),
                           .slew_mv_per_us = ocm.slew_mv_per_us};
}
}  // namespace

Machine::Machine(CpuProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      vf_(profile_.vf_curve()),
      fault_model_(TimingModel{profile_.timing}, profile_.vf_curve()),
      regulator_(profile_.regulator),
      base_rail_(base_rail_params(profile_.regulator)),
      power_(profile_.power),
      thermal_(profile_.thermal),
      rng_(seed) {
    if (profile_.core_count == 0) throw ConfigError("profile has zero cores");
    cores_.reserve(profile_.core_count);
    for (unsigned i = 0; i < profile_.core_count; ++i)
        cores_.emplace_back(i, profile_.freq_base);
    requested_freq_.assign(profile_.core_count, profile_.freq_base);
    base_rail_.force(VoltagePlane::Core, vf_.nominal(profile_.freq_base));
    // Sanity: the machine must boot into a safe state at every table
    // frequency, or the profile is miscalibrated.
    for (const Megahertz f : profile_.frequency_table()) {
        if (fault_model_.would_crash(f, vf_.nominal(f)))
            throw ConfigError("profile crashes at nominal voltage, f=" +
                              std::to_string(f.value()) + " MHz");
    }
    register_builtin_invariants();
}

void Machine::register_builtin_invariants() {
#if PV_CHECK_LEVEL >= 2
    invariants_.set_cadence(64);
#endif
    invariants_.add("core-frequency-in-range", [this](std::string& why) {
        for (const Core& c : cores_) {
            if (c.frequency() < profile_.freq_min || c.frequency() > profile_.freq_max) {
                why = "core " + std::to_string(c.id()) + " at " +
                      std::to_string(c.frequency().value()) + " MHz, table is [" +
                      std::to_string(profile_.freq_min.value()) + ", " +
                      std::to_string(profile_.freq_max.value()) + "]";
                return false;
            }
        }
        return true;
    });
    invariants_.add("requested-frequency-in-range", [this](std::string& why) {
        for (unsigned i = 0; i < requested_freq_.size(); ++i) {
            if (requested_freq_[i] < profile_.freq_min || requested_freq_[i] > profile_.freq_max) {
                why = "core " + std::to_string(i) + " requested " +
                      std::to_string(requested_freq_[i].value()) + " MHz outside the table";
                return false;
            }
        }
        return true;
    });
    invariants_.add("rail-physically-plausible", [this](std::string& why) {
        const double v = package_voltage().value();
        // The rail can sag deep under attack, but a value outside this
        // envelope (or NaN) is silent state corruption, not physics.
        if (!std::isfinite(v) || v < -1500.0 || v > 3000.0) {
            why = "package rail at " + std::to_string(v) + " mV";
            return false;
        }
        return true;
    });
    invariants_.add("mailbox-target-representable", [this](std::string& why) {
        // 11-bit two's complement in 1/1024 V units: about [-1000, +999] mV.
        for (std::size_t p = 0; p < mailbox_target_.size(); ++p) {
            const double mv = mailbox_target_[p].value();
            if (!std::isfinite(mv) || mv < -1000.5 || mv > 999.5) {
                why = "plane " + std::to_string(p) + " commanded " + std::to_string(mv) + " mV";
                return false;
            }
        }
        return true;
    });
}

Core& Machine::core(unsigned id) {
    if (id >= cores_.size()) throw ConfigError("core id out of range");
    return cores_[id];
}

const Core& Machine::core(unsigned id) const {
    if (id >= cores_.size()) throw ConfigError("core id out of range");
    return cores_[id];
}

Megahertz Machine::snap_to_table(Megahertz f) const {
    const double step = profile_.freq_step.value();
    double snapped = std::round(f.value() / step) * step;
    snapped = std::clamp(snapped, profile_.freq_min.value(), profile_.freq_max.value());
    return Megahertz{snapped};
}

void Machine::set_core_frequency(unsigned id, Megahertz f) {
    Core& c = core(id);  // bounds check before touching requested_freq_
    f = snap_to_table(f);
    requested_freq_[id] = f;
    // Lowering (or equal) is the safe direction: switch immediately, the
    // rail sags afterwards.  Raises wait for the rail (voltage-first).
    if (f <= c.frequency()) c.set_frequency(f);
    update_rail_target();
    maybe_crash();
}

void Machine::set_all_frequencies(Megahertz f) {
    f = snap_to_table(f);
    for (auto& c : cores_) {
        requested_freq_[c.id()] = f;
        if (f <= c.frequency()) c.set_frequency(f);
    }
    update_rail_target();
    maybe_crash();
}

Megahertz Machine::requested_frequency(unsigned id) const {
    if (id >= requested_freq_.size()) throw ConfigError("core id out of range");
    return requested_freq_[id];
}

void Machine::update_rail_target() {
    // C6 cores are power-gated and do not constrain the rail; C0 and C1
    // (merely clock-gated) do.
    Megahertz want = profile_.freq_min;
    for (const auto& c : cores_)
        if (c.cstate() != CState::C6)
            want = std::max(want, requested_freq_[c.id()]);
    const Millivolts target = vf_.nominal(want);
    if (base_rail_.target(VoltagePlane::Core) != target)
        base_rail_.write(VoltagePlane::Core, target, clock_);

    bool pending = false;
    for (const auto& c : cores_)
        if (requested_freq_[c.id()] > c.frequency()) pending = true;
    if (!pending) return;
    const Picoseconds ready = base_rail_.settle_time(VoltagePlane::Core);
    if (ready <= clock_) {
        apply_pending_raises();
    } else {
        events_.schedule(ready, [this] { apply_pending_raises(); });
    }
}

void Machine::apply_pending_raises() {
    Megahertz want = profile_.freq_min;
    for (const auto& c : cores_)
        if (c.cstate() != CState::C6)
            want = std::max(want, requested_freq_[c.id()]);
    // The switch is gated on the TOTAL rail (base + OCM offset) reaching
    // the commanded operating voltage for the new P-state.  Gating on the
    // base alone would raise frequency while a deep offset is still
    // ramping out — a transition window real FIVR sequencing does not
    // have.  A stale completion event (target moved) just re-arms itself.
    const Millivolts target_total =
        vf_.nominal(want) + regulator_.target(VoltagePlane::Core);
    if (package_voltage() + Millivolts{0.01} < target_total) {
        const Picoseconds ready = rail_settle_time();
        if (ready > clock_) events_.schedule(ready, [this] { apply_pending_raises(); });
        return;
    }
    for (auto& c : cores_)
        if (c.cstate() != CState::C6 && requested_freq_[c.id()] > c.frequency())
            c.set_frequency(requested_freq_[c.id()]);
    maybe_crash();
}

void Machine::enter_cstate(unsigned id, CState state) {
    Core& c = core(id);
    if (state == CState::C0) {
        wake_core(id);
        return;
    }
    c.set_cstate(state);
    // Dropping a constraint may let the rail sag (power saving).
    update_rail_target();
}

void Machine::wake_core(unsigned id) {
    Core& c = core(id);
    if (c.cstate() == CState::C0) return;
    const Picoseconds latency = c.cstate() == CState::C6
                                    ? profile_.cstates.c6_exit_latency
                                    : profile_.cstates.c1_exit_latency;
    c.add_steal(latency);
    c.set_cstate(CState::C0);
    // The rail may have sagged while this core slept: come up at the
    // fastest P-state the rail supports right now; the original request
    // re-arms a voltage-first raise for the rest.
    const Megahertz supported = vf_.max_supported(
        base_rail_.offset_at(VoltagePlane::Core, clock_));
    c.set_frequency(snap_to_table(std::min(requested_freq_[id], supported)));
    update_rail_target();
    maybe_crash();
}

Picoseconds Machine::rail_settle_time() const {
    // Pending frequency raises switch exactly when the base rail settles,
    // so the max over the base rail and every fault-relevant offset
    // plane covers them.
    return std::max({base_rail_.settle_time(VoltagePlane::Core),
                     regulator_.settle_time(VoltagePlane::Core),
                     regulator_.settle_time(VoltagePlane::Cache)});
}

Megahertz Machine::max_active_frequency() const {
    Megahertz best = profile_.freq_min;
    bool any_active = false;
    for (const auto& c : cores_) {
        if (c.power_state() != PowerState::Active) continue;
        any_active = true;
        best = std::max(best, c.frequency());
    }
    return any_active ? best : profile_.freq_min;
}

Millivolts Machine::package_voltage() const { return voltage_at(clock_); }

Millivolts Machine::plane_voltage(VoltagePlane plane) const {
    return base_rail_.offset_at(VoltagePlane::Core, clock_) +
           regulator_.offset_at(plane, clock_);
}

Millivolts Machine::voltage_at(Picoseconds t) const {
    return base_rail_.offset_at(VoltagePlane::Core, t) +
           regulator_.offset_at(VoltagePlane::Core, t);
}

double Machine::leakage_scale() const {
    unsigned leaking = 0;
    for (const auto& c : cores_)
        if (c.cstate() != CState::C6) ++leaking;
    const double core_share = profile_.cstates.core_leak_share;
    return (1.0 - core_share) +
           core_share * static_cast<double>(leaking) / static_cast<double>(cores_.size());
}

void Machine::integrate_power_to(Picoseconds t) {
    // Linear interpolation between the endpoint voltages; ramp kinks
    // inside the window introduce a negligible quadratic-term error.
    power_.integrate_leakage(clock_, t, voltage_at(clock_), voltage_at(t), leakage_scale());
    // Feed the thermal RC model with the window's average power (dynamic
    // energy from retires since the last update is included).
    const double dt_s = (t - clock_).seconds();
    if (dt_s > 0.0) {
        const double avg_w = (power_.total_joules() - energy_at_thermal_update_) / dt_s;
        thermal_.update(t, avg_w);
        energy_at_thermal_update_ = power_.total_joules();
    }
}

Millivolts Machine::applied_offset(VoltagePlane plane) const {
    return regulator_.offset_at(plane, clock_);
}

double Machine::cached_fault_probability(Megahertz f, Millivolts v, InstrClass c,
                                         double scale) const {
    const std::uint64_t key =
        physics_key(0xFA01 + static_cast<std::uint64_t>(c), f.value(), v.value(), scale);
    return memo_.get(key, [&] { return fault_model_.fault_probability(f, v, c, scale); });
}

bool Machine::cached_would_crash(Megahertz f, Millivolts v, double scale) const {
    const std::uint64_t key = physics_key(0xC4A5, f.value(), v.value(), scale);
    return memo_.get(key, [&] { return fault_model_.would_crash(f, v, scale) ? 1.0 : 0.0; }) !=
           0.0;
}

void Machine::maybe_crash() {
    if (crashed_) return;
    const Megahertz f = max_active_frequency();
    const double scale = thermal_.delay_scale();
    const Millivolts v_core = plane_voltage(VoltagePlane::Core);
    if (cached_would_crash(f, v_core, scale)) {
        crash("undervolt crash: control-path timing violated at " +
              std::to_string(f.value()) + " MHz / " + std::to_string(v_core.value()) +
              " mV (core plane)");
        return;
    }
    // The cache plane feeds the (shorter) load path; kernel data accesses
    // corrupt and panic once it deterministically violates timing.
    const Millivolts v_cache = plane_voltage(VoltagePlane::Cache);
    if (cached_would_crash(f, v_cache, scale * path_factor(InstrClass::Load))) {
        crash("undervolt crash: cache-path timing violated at " +
              std::to_string(f.value()) + " MHz / " + std::to_string(v_cache.value()) +
              " mV (cache plane)");
    }
}

void Machine::advance_to(Picoseconds t) {
    if (t < clock_) throw SimError("advance_to into the past");
    if (crashed_) return;
    while (!events_.empty() && events_.next_time() <= t) {
        const Picoseconds et = events_.next_time();
        integrate_power_to(et);
        clock_ = et;
        // The rail ramps monotonically between events, so its extreme
        // value inside (prev, et] is reached at et: check before and
        // after dispatching the events at et.
        maybe_crash();
        if (crashed_) return;
        events_.run_until(et);
        maybe_crash();
        if (crashed_) return;
        invariants_.tick();
    }
    integrate_power_to(t);
    clock_ = t;
    maybe_crash();
    invariants_.tick();
}

std::uint64_t Machine::read_msr(unsigned core_id, std::uint32_t addr) const {
    const Core& c = core(core_id);
    switch (addr) {
        case kMsrPerfStatus: {
            const auto ratio =
                static_cast<std::uint64_t>(std::llround(c.frequency().value() / 100.0)) & 0xFF;
            const double volts = package_voltage().volts();
            const auto vid =
                static_cast<std::uint64_t>(std::llround(volts * 8192.0)) & 0xFFFF;
            return (vid << 32) | (ratio << 8);
        }
        case kMsrOcMailbox: {
            // Read-back reports the DEEPEST MAILBOX-commanded offset
            // across the fault-relevant planes with its plane id (the
            // OCM per-plane read loop collapsed to its observable
            // effect).  Deliberately NOT the live regulator target: a
            // hardware SVID interposer (VoltPillager) moves the rail
            // without leaving any mailbox trace.
            const Millivolts core_t =
                mailbox_target_[static_cast<std::size_t>(VoltagePlane::Core)];
            const Millivolts cache_t =
                mailbox_target_[static_cast<std::size_t>(VoltagePlane::Cache)];
            return cache_t < core_t ? encode_offset(cache_t, VoltagePlane::Cache)
                                    : encode_offset(core_t, VoltagePlane::Core);
        }
        case kMsrPerfCtl: {
            const auto ratio =
                static_cast<std::uint64_t>(std::llround(requested_freq_[core_id].value() / 100.0)) &
                0xFF;
            return ratio << 8;
        }
        case kMsrVoltageOffsetLimit: {
            const auto it = msr_storage_.find(storage_key(0, addr));  // package scope
            return it == msr_storage_.end() ? 0 : it->second;
        }
        case kMsrRaplPowerUnit:
            return PowerModel::rapl_power_unit();
        case kMsrPkgEnergyStatus:
            return power_.rapl_energy_status();
        case kMsrThermStatus:
            return thermal_.therm_status_msr();
        case kMsrTemperatureTarget:
            return thermal_.temperature_target_msr();
        default: {
            const auto it = msr_storage_.find(storage_key(core_id, addr));
            return it == msr_storage_.end() ? 0 : it->second;
        }
    }
}

bool Machine::write_msr(unsigned core_id, std::uint32_t addr, std::uint64_t value) {
    if (crashed_) return false;
    (void)core(core_id);  // bounds check
    for (auto& [token, hook] : write_hooks_) {
        (void)token;
        if (hook(core_id, addr, value) == MsrWriteAction::Ignore) return false;
    }
    apply_msr_semantics(core_id, addr, value);
    return true;
}

void Machine::apply_msr_semantics(unsigned core_id, std::uint32_t addr, std::uint64_t value) {
    switch (addr) {
        case kMsrOcMailbox: {
            const auto req = decode_offset(value);
            if (req && req->command && req->write_enable) {
                regulator_.write(req->plane, req->offset, clock_);
                mailbox_target_[static_cast<std::size_t>(req->plane)] = req->offset;
                last_ocm_write_ = clock_;
                PV_TRACE_EVENT(trace::EventKind::OcmTransaction, "ocm-write",
                               clock_.value(), value,
                               static_cast<std::uint64_t>(req->plane));
            }
            break;
        }
        case kMsrPerfCtl: {
            const auto ratio = (value >> 8) & 0xFF;
            set_core_frequency(core_id, Megahertz{static_cast<double>(ratio) * 100.0});
            break;
        }
        case kMsrVoltageOffsetLimit:
            msr_storage_[storage_key(0, addr)] = value;  // package scope
            break;
        default:
            msr_storage_[storage_key(core_id, addr)] = value;
            break;
    }
}

std::size_t Machine::add_write_hook(WriteHook hook) {
    const std::size_t token = next_hook_token_++;
    write_hooks_.emplace_back(token, std::move(hook));
    return token;
}

void Machine::remove_write_hook(std::size_t token) {
    std::erase_if(write_hooks_, [token](const auto& p) { return p.first == token; });
}

double Machine::fault_probability(unsigned core_id, InstrClass c) const {
    // Loads traverse the cache SRAM: they fault with the CACHE plane's
    // rail; every other class with the core plane's.
    const VoltagePlane plane =
        c == InstrClass::Load ? VoltagePlane::Cache : VoltagePlane::Core;
    return cached_fault_probability(core(core_id).frequency(), plane_voltage(plane), c,
                                    thermal_.delay_scale());
}

void Machine::retire_window(Core& cr, InstrClass c, std::uint64_t ops, Millivolts v,
                            BatchResult& r) {
    const double p = cached_fault_probability(cr.frequency(), v, c, thermal_.delay_scale());
    const std::uint64_t faults = fault_model_.sample_fault_count(rng_, ops, p);
    if (faults > 0)
        PV_TRACE_EVENT(trace::EventKind::FaultInjected, "batch-fault", clock_.value(),
                       faults, static_cast<std::uint64_t>(c));
    r.faults += faults;
    power_.on_retire(ops, v);
    cr.retire(ops);
    r.ops_done += ops;
}

void Machine::validate_window(const Core& cr, InstrClass c, VoltagePlane plane,
                              Millivolts v_anchor, Picoseconds window) const {
    // Sliced-mode soundness check: walk the window at the legacy 50 us
    // granularity with READ-ONLY queries (the clock does not move) and
    // require every assumption the closed-form step rests on.  All three
    // checks are exact, not tolerance-based: settled rails return their
    // target bit-identically, and the probability check doubles as a
    // PhysicsMemo oracle (memoized anchor vs. direct evaluation).
    if (!events_.empty() && events_.next_time() < clock_ + window)
        throw SimError("batched window crosses an event boundary");
    const double scale = thermal_.delay_scale();
    const double p_anchor = cached_fault_probability(cr.frequency(), v_anchor, c, scale);
    const Picoseconds step = microseconds(50.0);
    for (Picoseconds t = clock_ + step; t < clock_ + window; t = t + step) {
        const Millivolts v_t = base_rail_.offset_at(VoltagePlane::Core, t) +
                               regulator_.offset_at(plane, t);
        if (v_t.value() != v_anchor.value())
            throw SimError("batched window rail voltage drifted from its anchor");
        const double p_t = fault_model_.fault_probability(cr.frequency(), v_t, c, scale);
        if (p_t != p_anchor)
            throw SimError("batched window fault probability drifted from its anchor");
    }
}

BatchResult Machine::run_batch(unsigned core_id, InstrClass c, std::uint64_t n_ops, double cpi) {
    if (cpi <= 0.0) throw ConfigError("cpi must be positive");
    Core& cr = core(core_id);
    BatchResult r;
    r.started = clock_;
    if (crashed_) {
        r.crashed = true;
        r.finished = clock_;
        return r;
    }
    if (cr.cstate() != CState::C0) wake_core(core_id);

    const VoltagePlane plane =
        c == InstrClass::Load ? VoltagePlane::Cache : VoltagePlane::Core;
    std::uint64_t remaining = n_ops;
    while (remaining > 0 && !crashed_) {
        // Kernel threads that fired during previous windows stole time.
        const Picoseconds steal = cr.drain_steal(Picoseconds{INT64_MAX});
        if (steal > Picoseconds{0}) {
            advance(steal);
            continue;
        }
        if (!events_.empty() && events_.next_time() <= clock_) {
            advance_to(events_.next_time());  // fire due events first
            continue;
        }

        const double op_ps = cpi * cr.frequency().period_ps();
        const auto need = Picoseconds{
            static_cast<std::int64_t>(std::ceil(static_cast<double>(remaining) * op_ps))};

        if (clock_ < rail_settle_time()) {
            // A rail is ramping: sample it finely, exactly as before the
            // batched rebuild — 1 us slices, midpoint-evaluated voltage.
            Picoseconds slice = std::min(microseconds(1.0), need);
            if (!events_.empty()) slice = std::min(slice, events_.next_time() - clock_);
            auto ops = static_cast<std::uint64_t>(static_cast<double>(slice.value()) / op_ps);
            ops = std::min(ops, remaining);
            if (ops == 0) {
                ops = 1;
                slice = Picoseconds{static_cast<std::int64_t>(std::ceil(op_ps))};
            }
            const Picoseconds mid = clock_ + Picoseconds{slice.value() / 2};
            const Millivolts v_mid = base_rail_.offset_at(VoltagePlane::Core, mid) +
                                     regulator_.offset_at(plane, mid);
            retire_window(cr, c, ops, v_mid, r);
            remaining -= ops;
            advance(slice);
            continue;
        }

        // Rails settled, no due event: the rail is constant until the
        // next event boundary, so the whole stretch collapses into ONE
        // closed-form window — one probability evaluation, one binomial
        // draw, one power/thermal update, one clock advance.
        Picoseconds window = need;
        if (!events_.empty()) window = std::min(window, events_.next_time() - clock_);
        auto ops = static_cast<std::uint64_t>(static_cast<double>(window.value()) / op_ps);
        ops = std::min(ops, remaining);
        bool straddle = false;
        if (ops == 0) {
            // One op straddles the event boundary: it retires whole and
            // overshoots the boundary by less than one op period.
            ops = 1;
            window = Picoseconds{static_cast<std::int64_t>(std::ceil(op_ps))};
            straddle = true;
        }
        const Millivolts v = base_rail_.offset_at(VoltagePlane::Core, clock_) +
                             regulator_.offset_at(plane, clock_);
        if (stepping_mode_ == SteppingMode::Sliced && !straddle)
            validate_window(cr, c, plane, v, window);
        retire_window(cr, c, ops, v, r);
        remaining -= ops;
        batched_iterations_ += ops;
        ++batch_windows_;
        advance(window);
    }
    r.crashed = crashed_;
    r.finished = clock_;
    return r;
}

bool Machine::execute_op(unsigned core_id, InstrClass c, double cpi) {
    if (crashed_) return false;
    Core& cr = core(core_id);
    if (cr.cstate() != CState::C0) wake_core(core_id);
    const Picoseconds steal = cr.drain_steal(Picoseconds{INT64_MAX});
    if (steal > Picoseconds{0}) advance(steal);
    if (crashed_) return false;
    const double p = fault_probability(core_id, c);
    const bool faulted = rng_.uniform() < p;
    if (faulted)
        PV_TRACE_EVENT(trace::EventKind::FaultInjected, "op-fault", clock_.value(), 1,
                       static_cast<std::uint64_t>(c));
    const double op_ps = cpi * cr.frequency().period_ps();
    power_.on_retire(1, package_voltage());
    advance(Picoseconds{static_cast<std::int64_t>(std::ceil(op_ps))});
    cr.retire(1);
    return faulted && !crashed_;
}

ImulResult Machine::faulty_imul(unsigned core_id, std::uint64_t a, std::uint64_t b) {
    ImulResult r;
    r.value = a * b;  // wrapping 64-bit product, as the x86 imul r64 low half
    r.faulted = execute_op(core_id, InstrClass::Imul, /*cpi=*/1.0);
    if (r.faulted) r.value = fault_model_.corrupt_value(rng_, r.value);
    return r;
}

std::uint64_t Machine::corrupt_value(std::uint64_t correct) {
    return fault_model_.corrupt_value(rng_, correct);
}

void Machine::add_steal(unsigned core_id, Cycles cycles) {
    Core& cr = core(core_id);
    cr.add_steal(cycles.at(cr.frequency()));
}

void Machine::crash(std::string reason) {
    if (crashed_) return;
    crashed_ = true;
    crash_reason_ = std::move(reason);
    crash_time_ = clock_;
    PV_TRACE_EVENT(trace::EventKind::Instant, "crash", clock_.value(),
                   static_cast<std::uint64_t>(boot_count_), 0);
}

void Machine::restore_boot_state() {
    crashed_ = false;
    crash_reason_.clear();
    events_.clear();
    regulator_.reset();
    base_rail_.reset();
    base_rail_.force(VoltagePlane::Core, vf_.nominal(profile_.freq_base));
    msr_storage_.clear();
    mailbox_target_ = {};
    last_ocm_write_ = Picoseconds{};
    requested_freq_.assign(profile_.core_count, profile_.freq_base);
    for (auto& c : cores_) c.reset(profile_.freq_base);
    power_.reset();  // RAPL counters clear at boot
    thermal_.reset();
    energy_at_thermal_update_ = 0.0;
}

void Machine::reboot() {
    restore_boot_state();
    clock_ += reboot_delay_;
    ++boot_count_;
    PV_TRACE_EVENT(trace::EventKind::Instant, "reboot", clock_.value(),
                   static_cast<std::uint64_t>(boot_count_), 0);
    for (const auto& cb : reset_callbacks_) cb();
}

std::uint64_t Machine::state_hash() const {
    check::StateHasher h;
    h.mix(profile_.name);
    h.mix(clock_.value());
    h.mix(static_cast<std::uint64_t>(boot_count_));
    h.mix(crashed_);
    h.mix(crash_time_.value());
    h.mix(crash_reason_);
    for (const Core& c : cores_) {
        h.mix(c.frequency().value());
        h.mix(static_cast<std::uint64_t>(c.cstate()));
        h.mix(c.instructions_retired());
        h.mix(c.pending_steal().value());
        h.mix(c.total_steal().value());
    }
    for (const Megahertz f : requested_freq_) h.mix(f.value());
    for (std::size_t p = 0; p < mailbox_target_.size(); ++p) {
        const auto plane = static_cast<VoltagePlane>(p);
        h.mix(mailbox_target_[p].value());
        h.mix(regulator_.target(plane).value());
        h.mix(regulator_.offset_at(plane, clock_).value());
    }
    h.mix(base_rail_.offset_at(VoltagePlane::Core, clock_).value());
    // FlatMap iterates in key order: already canonical, no sort needed.
    h.mix(static_cast<std::uint64_t>(msr_storage_.size()));
    for (const auto& [key, value] : msr_storage_) {
        h.mix(key);
        h.mix(value);
    }
    h.mix(power_.dynamic_joules());
    h.mix(power_.leakage_joules());
    h.mix(thermal_.temperature_c());
    h.mix(rng_.state_fingerprint());
    return h.digest();
}

void Machine::reset(std::uint64_t seed) {
    restore_boot_state();
    events_.rewind();   // the clock restarts from zero below
    events_.reset_stats();
    batched_iterations_ = 0;
    batch_windows_ = 0;
    thermal_.rewind();
    clock_ = Picoseconds{};
    crash_time_ = Picoseconds{};
    boot_count_ = 1;
    rng_ = Rng(seed);
    for (const auto& cb : reset_callbacks_) cb();
}

Machine::Snapshot Machine::capture_snapshot() const {
    return Snapshot{
        .owner = this,
        .clock = clock_,
        .crashed = crashed_,
        .crash_reason = crash_reason_,
        .crash_time = crash_time_,
        .boot_count = boot_count_,
        .cores = cores_,
        .requested_freq = requested_freq_,
        .regulator = regulator_,
        .base_rail = base_rail_,
        .power = power_,
        .thermal = thermal_,
        .energy_at_thermal_update = energy_at_thermal_update_,
        .events = events_,
        .msr_storage = msr_storage_,
        .mailbox_target = mailbox_target_,
        .last_ocm_write = last_ocm_write_,
        .batched_iterations = batched_iterations_,
        .batch_windows = batch_windows_,
    };
}

void Machine::restore_snapshot(const Snapshot& snap, std::uint64_t seed) {
    if (snap.owner != this)
        throw SimError("snapshot restored onto a different machine");
    clock_ = snap.clock;
    crashed_ = snap.crashed;
    crash_reason_ = snap.crash_reason;
    crash_time_ = snap.crash_time;
    boot_count_ = snap.boot_count;
    cores_ = snap.cores;
    requested_freq_ = snap.requested_freq;
    regulator_ = snap.regulator;
    base_rail_ = snap.base_rail;
    power_ = snap.power;
    thermal_ = snap.thermal;
    energy_at_thermal_update_ = snap.energy_at_thermal_update;
    events_ = snap.events;
    msr_storage_ = snap.msr_storage;
    mailbox_target_ = snap.mailbox_target;
    last_ocm_write_ = snap.last_ocm_write;
    batched_iterations_ = snap.batched_iterations;
    batch_windows_ = snap.batch_windows;
    rng_ = Rng(seed);
}

Machine::Stats Machine::stats() const {
    const EventQueue::Stats& es = events_.stats();
    return Stats{.events_dispatched = es.dispatched,
                 .batched_iterations = batched_iterations_,
                 .batch_windows = batch_windows_,
                 .heap_peak = es.heap_peak};
}

}  // namespace pv::sim
