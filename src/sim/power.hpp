// PlugVolt — package power/energy model with RAPL reporting.
//
// Undervolting exists because dynamic energy scales with V^2: every
// retired instruction costs  E_dyn = EPI * V^2  and the package leaks
// P_leak = L * V^2  continuously.  This model accumulates both — retire
// events at the instantaneous rail voltage, leakage integrated exactly
// over the regulator's linear ramps — and exposes the total through the
// RAPL MSR surface (MSR_RAPL_POWER_UNIT 0x606 / MSR_PKG_ENERGY_STATUS
// 0x611), so "how much battery does PlugVolt's clamp cost me?" is a
// measurable question (see bench_energy).
#pragma once

#include <cstdint>

#include "os/msr_regs.hpp"
#include "util/units.hpp"

namespace pv::sim {

/// Per-profile energy coefficients.
struct PowerParams {
    /// Dynamic energy per retired instruction at 1 V, in nanojoules.
    double epi_nj_per_v2 = 0.35;
    /// Package leakage power at 1 V, in milliwatts.
    double leak_mw_per_v2 = 900.0;
};

/// MSR indices of the modeled RAPL interface (registry aliases).
inline constexpr std::uint32_t kMsrRaplPowerUnit = msr::kRaplPowerUnit;
inline constexpr std::uint32_t kMsrPkgEnergyStatus = msr::kPkgEnergyStatus;

/// Accumulates package energy.
class PowerModel {
public:
    explicit PowerModel(PowerParams params);

    /// Charge dynamic energy for `n` instructions retired at rail
    /// voltage `v`.
    void on_retire(std::uint64_t n, Millivolts v);

    /// Integrate leakage over [from, to] with the rail moving linearly
    /// from `v_from` to `v_to` (exact for the quadratic integrand).
    /// `scale` discounts power-gated cores (C6): 1.0 = whole package.
    void integrate_leakage(Picoseconds from, Picoseconds to, Millivolts v_from,
                           Millivolts v_to, double scale = 1.0);

    /// Total accumulated energy in joules.
    [[nodiscard]] double total_joules() const { return dynamic_j_ + leakage_j_; }
    [[nodiscard]] double dynamic_joules() const { return dynamic_j_; }
    [[nodiscard]] double leakage_joules() const { return leakage_j_; }

    /// MSR_PKG_ENERGY_STATUS: 32-bit counter in units of 2^-14 J,
    /// wrapping like the real register.
    [[nodiscard]] std::uint32_t rapl_energy_status() const;

    /// MSR_RAPL_POWER_UNIT with the energy-status unit field (bits 12:8)
    /// encoding 2^-14 J.
    [[nodiscard]] static std::uint64_t rapl_power_unit();

    /// Zero the accumulators (machine reboot).
    void reset();

    [[nodiscard]] const PowerParams& params() const { return params_; }

private:
    PowerParams params_;
    double dynamic_j_ = 0.0;
    double leakage_j_ = 0.0;
};

}  // namespace pv::sim
