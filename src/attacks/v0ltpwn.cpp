#include "attacks/v0ltpwn.hpp"

#include "os/cpupower.hpp"
#include "sgx/program.hpp"
#include "sim/ocm.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace pv::attack {

V0ltpwn::V0ltpwn(sgx::SgxRuntime& runtime, V0ltpwnConfig config)
    : runtime_(runtime), config_(std::move(config)) {
    if (config_.victim_program.empty())
        throw ConfigError("v0ltpwn needs a victim program");
    if (config_.suppress_after_index >= config_.victim_program.size())
        throw ConfigError("suppress index beyond program end");
}

AttackResult V0ltpwn::run(os::Kernel& kernel) {
    sim::Machine& m = kernel.machine();
    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());

    AttackResult result;
    result.attack_name = std::string(name());
    result.started = m.now();
    trap_detections_ = 0;

    const Megahertz pin = config_.pin_freq.value() > 0.0 ? config_.pin_freq
                                                         : m.profile().freq_max;
    cpupower.frequency_set(pin);

    // Fault-free value of the targeted register right after the targeted
    // multiply (the stepper freezes the enclave there).
    const auto reference = sgx::reference_run_prefix(config_.victim_program,
                                                     config_.suppress_after_index + 1);
    const std::uint64_t expected = reference[config_.target_reg];

    auto enclave = runtime_.create_enclave("v0ltpwn-victim", config_.victim_core);
    sgx::SgxStep stepper(sgx::StepperCapabilities{.single_step = true, .zero_step = true});
    const std::size_t suppress_after = config_.suppress_after_index;
    stepper.set_on_step([suppress_after](std::size_t idx) {
        return idx >= suppress_after ? sgx::StepAction::SuppressProgress
                                     : sgx::StepAction::Continue;
    });
    if (config_.use_sgx_step) enclave->attach_stepper(&stepper);

    for (Millivolts offset = config_.scan_start;
         offset >= config_.scan_floor && !result.weaponized; offset -= config_.scan_step) {
        ++result.writes_attempted;
        if (kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                     sim::kMsrOcMailbox,
                                     sim::encode_offset(offset, sim::VoltagePlane::Core)))
            ++result.writes_effective;
        const Picoseconds settle = m.rail_settle_time() + microseconds(20.0);
        if (settle > m.now()) m.advance_to(settle);
        if (m.crashed()) {
            ++result.crashes;
            m.reboot();
            cpupower.frequency_set(pin);
            if (result.crashes >= config_.max_crashes) {
                result.notes = "gave up: crash budget exhausted";
                break;
            }
            continue;
        }

        for (unsigned attempt = 0; attempt < config_.runs_per_offset; ++attempt) {
            const sgx::EnclaveRunResult er = enclave->run(config_.victim_program);
            if (er.machine_crashed) break;
            if (er.trap_detected) {
                ++trap_detections_;  // deflection fired; nothing usable leaked
                continue;
            }
            if (er.regs[config_.target_reg] != expected) {
                ++result.faults_observed;
                result.weaponized = true;
                result.weaponization =
                    "exfiltrated faulty product 0x" +
                    std::to_string(er.regs[config_.target_reg]) + " (expected " +
                    std::to_string(expected) + ")" +
                    (er.suppressed ? " via zero-step suppression" : "");
                break;
            }
        }

        if (m.crashed()) {
            ++result.crashes;
            m.reboot();
            cpupower.frequency_set(pin);
            if (result.crashes >= config_.max_crashes) {
                result.notes = "gave up: crash budget exhausted";
                break;
            }
            continue;
        }
        // Restore between offsets.
        kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                 sim::kMsrOcMailbox,
                                 sim::encode_offset(Millivolts{0.0}, sim::VoltagePlane::Core));
        const Picoseconds restore = m.rail_settle_time();
        if (restore > m.now()) m.advance_to(restore);
    }

    if (!m.crashed())
        kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                 sim::kMsrOcMailbox,
                                 sim::encode_offset(Millivolts{0.0}, sim::VoltagePlane::Core));
    if (trap_detections_ > 0 && !result.weaponized)
        result.notes = "deflected: " + std::to_string(trap_detections_) + " trap detections";
    result.finished = m.now();
    return result;
}

}  // namespace pv::attack
