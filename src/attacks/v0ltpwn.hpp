// PlugVolt — V0LTpwn-style enclave-targeted attack (Kenjar et al.,
// USENIX Security 2020), with SGX-Step instruction isolation.
//
// The attack undervolts while a victim *enclave* computes, and uses
// single-stepping to isolate the faultable instruction.  With
// zero-stepping the adversary suppresses everything after the faulted
// multiply — including any Minefield trap the compiler placed behind it —
// and exfiltrates the corrupted state.  This is exactly the scenario the
// paper uses to argue trap-deflection defenses are not self-sufficient
// (Sec. 4.1) while the PlugVolt countermeasure, acting on the platform
// state rather than the enclave, does not care about stepping at all.
#pragma once

#include "attacks/attack.hpp"
#include "sgx/runtime.hpp"
#include "sgx/sgx_step.hpp"

namespace pv::attack {

/// Campaign parameters.
struct V0ltpwnConfig {
    Megahertz pin_freq{0.0};  ///< 0 = profile maximum
    Millivolts scan_start{-100.0};
    Millivolts scan_step{2.0};
    Millivolts scan_floor{-300.0};
    unsigned attacker_core = 0;
    unsigned victim_core = 1;
    unsigned max_crashes = 2;
    /// Enclave entries attempted per offset.
    unsigned runs_per_offset = 40;
    /// Attach an SGX-Step adversary (single-step + zero-step).
    bool use_sgx_step = true;
    /// Victim program (typically a mul chain, possibly Minefield-
    /// instrumented by an active defense); must not be empty.
    sgx::Program victim_program;
    /// Instruction index after which the stepper suppresses progress
    /// (set to the last multiply so traps behind it never execute).
    std::size_t suppress_after_index = 0;
    /// Register holding the targeted product.
    unsigned target_reg = 2;
};

/// The V0LTpwn campaign.
class V0ltpwn final : public Attack {
public:
    V0ltpwn(sgx::SgxRuntime& runtime, V0ltpwnConfig config);

    [[nodiscard]] std::string_view name() const override { return "v0ltpwn"; }
    [[nodiscard]] AttackResult run(os::Kernel& kernel) override;

    /// Trap detections the victim's instrumentation scored against us.
    [[nodiscard]] std::uint64_t trap_detections() const { return trap_detections_; }

private:
    sgx::SgxRuntime& runtime_;
    V0ltpwnConfig config_;
    std::uint64_t trap_detections_ = 0;
};

}  // namespace pv::attack
