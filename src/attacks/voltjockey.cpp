#include "attacks/voltjockey.hpp"

#include <algorithm>
#include <cmath>

#include "os/cpupower.hpp"
#include "sim/ocm.hpp"
#include "util/log.hpp"

namespace pv::attack {

VoltJockey::VoltJockey(VoltJockeyConfig config,
                       std::optional<plugvolt::SafeStateMap> attacker_map)
    : config_(config), attacker_map_(std::move(attacker_map)) {}

std::uint64_t VoltJockey::attempt(os::Kernel& kernel, Megahertz f_lo, Megahertz f_hi,
                                  Millivolts offset, AttackResult& result) {
    sim::Machine& m = kernel.machine();
    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());

    // Park at the low frequency and settle the (locally safe) offset.
    cpupower.frequency_set(f_lo);
    ++result.writes_attempted;
    if (kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                 sim::kMsrOcMailbox,
                                 sim::encode_offset(offset, sim::VoltagePlane::Core)))
        ++result.writes_effective;
    const Picoseconds settle = m.rail_settle_time() + microseconds(20.0);
    if (settle > m.now()) m.advance_to(settle);
    if (m.crashed()) return 0;

    // Spring the trap: request the high P-state.  The PCU ramps the rail
    // up first (voltage-first sequencing) and only then switches the
    // frequency, so the victim must be hammered from the switch onward —
    // size the probe to span the ramp plus a detection-window's worth of
    // execution at the high frequency.
    cpupower.frequency_set(f_hi);
    const double ramp_us = (m.rail_settle_time() - m.now()).microseconds();
    const auto ramp_ops = static_cast<std::uint64_t>(
        ramp_us * config_.low_freq.value());  // ops burned at f_lo during the ramp
    const sim::BatchResult batch = m.run_batch(
        config_.victim_core, sim::InstrClass::Imul, ramp_ops + config_.probe_ops);

    if (!m.crashed()) {
        cpupower.frequency_set(f_lo);
        ++result.writes_attempted;
        if (kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                     sim::kMsrOcMailbox,
                                     sim::encode_offset(Millivolts{0.0},
                                                        sim::VoltagePlane::Core)))
            ++result.writes_effective;
        const Picoseconds restore = m.rail_settle_time();
        if (restore > m.now()) m.advance_to(restore);
    }
    return batch.faults;
}

AttackResult VoltJockey::run(os::Kernel& kernel) {
    sim::Machine& m = kernel.machine();
    AttackResult result;
    result.attack_name = std::string(name());
    result.started = m.now();

    const Megahertz f_hi = config_.high_freq.value() > 0.0 ? config_.high_freq
                                                           : m.profile().freq_max;

    if (config_.descending_rail) {
        run_descending_rail(kernel, result);
        result.finished = m.now();
        return result;
    }

    if (!config_.precise_step) {
        // Big-jump variant: deepen the parked offset until the raise
        // produces faults (or crashes, or the defense wins).
        for (Millivolts offset = config_.scan_start; offset >= config_.scan_floor;
             offset -= config_.scan_step) {
            const std::uint64_t faults =
                attempt(kernel, config_.low_freq, f_hi, offset, result);
            if (m.crashed()) {
                ++result.crashes;
                m.reboot();
                if (result.crashes >= config_.max_crashes) {
                    result.notes = "gave up: crash budget exhausted";
                    break;
                }
                continue;
            }
            if (faults > 0) {
                result.faults_observed += faults;
                result.weaponized = true;
                result.weaponization = "captured " + std::to_string(faults) +
                                       " faulty products via frequency raise to " +
                                       std::to_string(f_hi.value()) + " MHz";
                break;
            }
        }
        result.finished = m.now();
        return result;
    }

    // Precise-step variant: use the attacker's own characterization to
    // park inside a nearby bin's unsafe band while looking safe (even
    // through the defender's guard band) at the parked frequency.
    if (!attacker_map_ || attacker_map_->rows().size() < 2) {
        result.notes = "precise-step variant needs an attacker characterization map";
        result.finished = m.now();
        return result;
    }
    const auto& rows = attacker_map_->rows();
    unsigned tried = 0;
    for (std::size_t i = rows.size() - 1; i > 0 && tried < 6; --i) {
      for (unsigned hop = 1; hop <= config_.max_hop_bins && hop <= i && tried < 6; ++hop) {
        const auto& lo = rows[i - hop];
        const auto& hi = rows[i];
        if (lo.fault_free || hi.fault_free) continue;
        // Window: (a) still classified safe at lo.freq through the
        // defender's guard, (b) unsafe-but-not-crash at hi.freq.
        const Millivolts floor =
            std::max(lo.onset + config_.assumed_defender_guard, hi.crash) + Millivolts{1.0};
        const Millivolts ceiling = hi.onset;
        if (floor > ceiling) continue;
        const Millivolts park = Millivolts{0.5 * (floor.value() + ceiling.value())};
        ++tried;
        for (unsigned rep = 0; rep < 3; ++rep) {
            const std::uint64_t faults = attempt(kernel, lo.freq, hi.freq, park, result);
            if (m.crashed()) {
                ++result.crashes;
                m.reboot();
                if (result.crashes >= config_.max_crashes) {
                    result.notes = "gave up: crash budget exhausted";
                    result.finished = m.now();
                    return result;
                }
                continue;
            }
            if (faults > 0) {
                result.faults_observed += faults;
                result.weaponized = true;
                result.weaponization =
                    "precise raise " + std::to_string(lo.freq.value()) + "->" +
                    std::to_string(hi.freq.value()) + " MHz at " +
                    std::to_string(park.value()) + " mV captured " +
                    std::to_string(faults) + " faulty products";
                result.finished = m.now();
                return result;
            }
        }
      }
    }
    if (result.notes.empty() && !result.weaponized)
        result.notes = "no precise-hop window produced faults";
    result.finished = m.now();
    return result;
}

void VoltJockey::run_descending_rail(os::Kernel& kernel, AttackResult& result) {
    sim::Machine& m = kernel.machine();
    if (!attacker_map_ || attacker_map_->rows().empty()) {
        result.notes = "descending-rail variant needs an attacker characterization map";
        return;
    }
    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());
    const Megahertz f_hi = config_.high_freq.value() > 0.0 ? config_.high_freq
                                                           : m.profile().freq_max;
    // The unsafe band at the target frequency, from the attacker's map.
    const auto& rows = attacker_map_->rows();
    const plugvolt::FreqCharacterization* row = &rows.front();
    for (const auto& r : rows)
        if (std::abs(r.freq.value() - f_hi.value()) <
            std::abs(row->freq.value() - f_hi.value()))
            row = &r;
    if (row->fault_free) {
        result.notes = "target frequency has no characterized unsafe band";
        return;
    }
    // Park inside the band, above the crash boundary.
    const Millivolts park{row->onset.value() -
                          0.35 * (row->onset.value() - row->crash.value())};
    const Megahertz f_lo{f_hi.value() - 300.0};

    auto ocm_write = [&](Millivolts offset) {
        ++result.writes_attempted;
        if (kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                     sim::kMsrOcMailbox,
                                     sim::encode_offset(offset, sim::VoltagePlane::Core)))
            ++result.writes_effective;
    };

    // Scan the re-raise delay: the attacker wants the rail to be just
    // above vf(f_hi)+park when the raise request arrives, so the PCU
    // switches instantly and the still-sagging rail carries the high
    // frequency straight into the unsafe band.
    for (double delay_us = 150.0; delay_us <= 420.0 && !result.weaponized;
         delay_us += 10.0) {
        // Settle clean and fast.
        ocm_write(Millivolts{0.0});
        cpupower.frequency_set(f_hi);
        Picoseconds settle = m.rail_settle_time() + microseconds(20.0);
        if (settle > m.now()) m.advance_to(settle);
        if (m.crashed()) break;

        // The racing triple: drop, park, re-raise after the tuned delay.
        cpupower.frequency_set(f_lo);
        ocm_write(park);
        m.advance(microseconds(delay_us));
        if (!m.crashed()) {
            cpupower.frequency_set(f_hi);
            const sim::BatchResult batch =
                m.run_batch(config_.victim_core, sim::InstrClass::Imul, 300'000);
            if (batch.faults > 0) {
                result.faults_observed += batch.faults;
                result.weaponized = true;
                result.weaponization =
                    "descending-rail switch to " + std::to_string(f_hi.value()) +
                    " MHz at " + std::to_string(park.value()) + " mV captured " +
                    std::to_string(batch.faults) + " faulty products (delay " +
                    std::to_string(delay_us) + " us)";
            }
        }
        if (m.crashed()) {
            ++result.crashes;
            m.reboot();
            if (result.crashes >= config_.max_crashes) {
                result.notes = "gave up: crash budget exhausted";
                return;
            }
            continue;
        }
        ocm_write(Millivolts{0.0});
        settle = m.rail_settle_time();
        if (settle > m.now()) m.advance_to(settle);
    }
    if (!result.weaponized && result.notes.empty())
        result.notes = "no re-raise delay landed in the band";
}

}  // namespace pv::attack
