// PlugVolt — VoltPillager (Chen et al., USENIX Security 2021).
//
// The hardware escalation of Plundervolt: a microcontroller soldered to
// the SVID bus injects voltage commands directly into the regulator,
// bypassing MSR 0x150 entirely.  Software that watches only the
// *commanded* offset is structurally blind — the mailbox reads back a
// clean 0 mV while the rail physically sags.  The paper cites this
// attack [6] and scopes its countermeasure to software adversaries; we
// implement it to map that boundary precisely, and to evaluate the one
// lever software still has: the measured-voltage watchdog (0x198's
// voltage field) combined with the instant frequency drop.
#pragma once

#include "attacks/attack.hpp"

namespace pv::attack {

/// Campaign parameters.
struct VoltPillagerConfig {
    Megahertz pin_freq{0.0};             ///< 0 = profile maximum
    Millivolts scan_start{-60.0};
    Millivolts scan_step{4.0};
    Millivolts scan_floor{-300.0};
    std::uint64_t probe_ops = 100'000;
    unsigned victim_core = 1;
    unsigned max_crashes = 3;
};

/// The hardware injection campaign.  Unlike every other attack here it
/// does not go through the MSR surface at all: it drives the regulator
/// the way a bus interposer does.
class VoltPillager final : public Attack {
public:
    explicit VoltPillager(VoltPillagerConfig config = {});

    [[nodiscard]] std::string_view name() const override { return "voltpillager"; }
    [[nodiscard]] AttackResult run(os::Kernel& kernel) override;

private:
    VoltPillagerConfig config_;
};

}  // namespace pv::attack
