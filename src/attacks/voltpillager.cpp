#include "attacks/voltpillager.hpp"

#include "os/cpupower.hpp"
#include "sim/ocm.hpp"

namespace pv::attack {

VoltPillager::VoltPillager(VoltPillagerConfig config) : config_(config) {}

AttackResult VoltPillager::run(os::Kernel& kernel) {
    sim::Machine& m = kernel.machine();
    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());

    AttackResult result;
    result.attack_name = std::string(name());
    result.started = m.now();

    const Megahertz pin = config_.pin_freq.value() > 0.0 ? config_.pin_freq
                                                         : m.profile().freq_max;
    cpupower.frequency_set(pin);
    m.advance_to(m.rail_settle_time());

    for (Millivolts offset = config_.scan_start; offset >= config_.scan_floor;
         offset -= config_.scan_step) {
        // The SVID interposer drives the regulator directly: no wrmsr,
        // no write hooks, no mailbox trace.  (writes_attempted counts
        // bus injections for the statistics.)
        ++result.writes_attempted;
        ++result.writes_effective;  // nothing in software can refuse it
        m.regulator().write(sim::VoltagePlane::Core, offset, m.now());
        const Picoseconds settle = m.rail_settle_time() + microseconds(20.0);
        if (settle > m.now()) m.advance_to(settle);
        if (m.crashed()) {
            ++result.crashes;
            m.reboot();
            cpupower.frequency_set(pin);
            m.advance_to(m.rail_settle_time());
            if (result.crashes >= config_.max_crashes) {
                result.notes = "gave up: crash budget exhausted";
                break;
            }
            continue;
        }

        const sim::BatchResult batch =
            m.run_batch(config_.victim_core, sim::InstrClass::Imul, config_.probe_ops);
        if (m.crashed()) {
            ++result.crashes;
            m.reboot();
            cpupower.frequency_set(pin);
            m.advance_to(m.rail_settle_time());
            if (result.crashes >= config_.max_crashes) {
                result.notes = "gave up: crash budget exhausted";
                break;
            }
            continue;
        }
        if (batch.faults > 0) {
            result.faults_observed += batch.faults;
            result.weaponized = true;
            result.weaponization =
                "SVID injection at " + std::to_string(offset.value()) +
                " mV captured " + std::to_string(batch.faults) +
                " faulty products, invisible to MSR 0x150";
            break;
        }

        // Withdraw the injection between probes.
        m.regulator().write(sim::VoltagePlane::Core, Millivolts{0.0}, m.now());
        const Picoseconds restore = m.rail_settle_time();
        if (restore > m.now()) m.advance_to(restore);
    }

    if (!m.crashed())
        m.regulator().write(sim::VoltagePlane::Core, Millivolts{0.0}, m.now());
    if (!result.weaponized && result.notes.empty())
        result.notes = "scan exhausted without usable faults (rail watchdog active?)";
    result.finished = m.now();
    return result;
}

}  // namespace pv::attack
