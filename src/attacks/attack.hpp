// PlugVolt — attack framework.
//
// Every published DVFS fault attack follows the same skeleton the paper
// root-causes in Sec. 3: drive the (frequency, voltage) pair into an
// unsafe state, catch a wrong result in a victim computation, weaponize
// it.  The Attack interface lets the matrix bench pit each
// implementation against each defense configuration symmetrically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "os/kernel.hpp"
#include "util/units.hpp"

namespace pv::attack {

/// Outcome of one attack campaign.
struct AttackResult {
    std::string attack_name;
    std::uint64_t faults_observed = 0;  ///< wrong results seen by the attacker
    bool weaponized = false;            ///< attacker extracted something useful
    std::string weaponization;          ///< what was extracted (human-readable)
    unsigned crashes = 0;               ///< machine crashes the campaign caused
    std::uint64_t writes_attempted = 0; ///< OCM writes the attacker issued
    std::uint64_t writes_effective = 0; ///< ... that were not blocked/ignored
    Picoseconds started{};
    Picoseconds finished{};
    std::string notes;
};

/// A runnable attack campaign against a live kernel.
class Attack {
public:
    virtual ~Attack() = default;
    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Run the full campaign.  The attack is privileged: it may use the
    /// userspace MSR path, cpufreq, and module loading — everything the
    /// paper's threat model grants (Sec. 4.1).
    [[nodiscard]] virtual AttackResult run(os::Kernel& kernel) = 0;
};

}  // namespace pv::attack
