#include "attacks/plundervolt.hpp"

#include "os/cpupower.hpp"
#include "sim/ocm.hpp"
#include "util/log.hpp"

namespace pv::attack {

Plundervolt::Plundervolt(PlundervoltConfig config) : config_(config) {}

std::uint64_t Plundervolt::probe(os::Kernel& kernel, Millivolts offset,
                                 AttackResult& result) {
    sim::Machine& m = kernel.machine();
    os::MsrDriver& msr = kernel.msr();

    ++result.writes_attempted;
    const bool effective = msr.ioctl_wrmsr(
        config_.attacker_core, config_.attacker_core, sim::kMsrOcMailbox,
        sim::encode_offset(offset, config_.plane));
    if (effective) ++result.writes_effective;

    // The PoC sleeps after the write to let the regulator settle; mirror
    // that with a fixed wait past the worst-case ramp.
    const Picoseconds settle = m.rail_settle_time() + microseconds(20.0);
    if (settle > m.now()) m.advance_to(settle);
    if (m.crashed()) return 0;

    // Loads traverse the cache plane; everything else the core plane.
    const sim::InstrClass probe_class = config_.plane == sim::VoltagePlane::Cache
                                            ? sim::InstrClass::Load
                                            : sim::InstrClass::Imul;
    const sim::BatchResult batch =
        m.run_batch(config_.victim_core, probe_class, config_.probe_ops);

    // Restore nominal voltage between probes (also part of the PoC loop).
    if (!m.crashed()) {
        ++result.writes_attempted;
        if (msr.ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                            sim::kMsrOcMailbox,
                            sim::encode_offset(Millivolts{0.0}, config_.plane)))
            ++result.writes_effective;
        const Picoseconds restore = m.rail_settle_time();
        if (restore > m.now()) m.advance_to(restore);
    }
    return batch.faults;
}

AttackResult Plundervolt::run(os::Kernel& kernel) {
    sim::Machine& m = kernel.machine();
    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());
    Rng rng(config_.rng_seed);

    AttackResult result;
    result.attack_name = std::string(name());
    result.started = m.now();
    found_offset_ = Millivolts{0.0};

    const Megahertz pin = config_.pin_freq.value() > 0.0 ? config_.pin_freq
                                                         : m.profile().freq_max;
    cpupower.frequency_set(pin);

    // Phase 1: walk the offset down until the imul probe faults.
    for (Millivolts offset = config_.scan_start; offset >= config_.scan_floor;
         offset -= config_.scan_step) {
        const std::uint64_t faults = probe(kernel, offset, result);
        if (m.crashed()) {
            ++result.crashes;
            m.reboot();
            cpupower.frequency_set(pin);
            if (result.crashes >= config_.max_crashes) {
                result.notes = "gave up: crash budget exhausted during scan";
                result.finished = m.now();
                return result;
            }
            continue;  // skip this offset, try the next one
        }
        if (faults > 0) {
            result.faults_observed += faults;
            found_offset_ = offset;
            break;
        }
    }

    if (found_offset_ == Millivolts{0.0}) {
        result.notes = "scan found no faultable offset (defense effective or range safe)";
        result.finished = m.now();
        return result;
    }

    if (config_.plane == sim::VoltagePlane::Cache) {
        // Cache-plane weaponization: corrupted loads are directly usable
        // (key-material reads, page-table walks); demonstrating the
        // faults suffices here.
        result.weaponized = true;
        result.weaponization = "cache-plane undervolt corrupts victim loads at " +
                               std::to_string(found_offset_.value()) + " mV";
        result.finished = m.now();
        return result;
    }

    // Phase 2: weaponize against an RSA-CRT signer at the found offset.
    const crypto::RsaKey key = crypto::rsa_generate(rng);
    crypto::FaultableRsaSigner signer(m, config_.victim_core, key);
    const crypto::u64 message = 0x506C756779566F6CULL % key.n;  // "PlugyVol"

    const Millivolts weaponize_offset = found_offset_ - config_.weaponize_extra_depth;
    ++result.writes_attempted;
    if (kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                 sim::kMsrOcMailbox,
                                 sim::encode_offset(weaponize_offset, config_.plane)))
        ++result.writes_effective;
    const Picoseconds settle = m.rail_settle_time() + microseconds(20.0);
    if (settle > m.now()) m.advance_to(settle);

    for (unsigned i = 0; i < config_.max_signatures && !m.crashed(); ++i) {
        const crypto::u64 s = signer.sign(message);
        if (crypto::rsa_verify(key, message, s)) continue;
        ++result.faults_observed;
        const auto factor = crypto::bellcore_factor(key.n, key.e, message, s);
        if (factor) {
            result.weaponized = true;
            result.weaponization =
                "Bellcore factored n=" + std::to_string(key.n) + " -> p=" +
                std::to_string(*factor);
            break;
        }
    }
    if (m.crashed()) {
        ++result.crashes;
        m.reboot();
    } else {
        kernel.msr().ioctl_wrmsr(config_.attacker_core, config_.attacker_core,
                                 sim::kMsrOcMailbox,
                                 sim::encode_offset(Millivolts{0.0}, sim::VoltagePlane::Core));
    }
    result.finished = m.now();
    if (result.weaponized)
        log_info("plundervolt: ", result.weaponization);
    return result;
}

}  // namespace pv::attack
