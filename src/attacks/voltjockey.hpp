// PlugVolt — VoltJockey-style frequency/voltage combination attack
// (Qiu et al., CCS 2019, transplanted to the Intel OCM interface).
//
// Instead of undervolting into the unsafe band directly (which a polling
// defense sees as an unsafe *command*), VoltJockey parks an offset that
// is perfectly safe at a low frequency and then RAISES the frequency so
// the (f, V) pair crosses into the unsafe region.  The race is against
// the PCU's voltage-first P-state sequencing and the defense's poll.
//
// Two variants:
//  - big-jump (default): low P-state -> turbo; the long rail ramp gives a
//    polling defense time to cancel the raise (it loses the race);
//  - precise-step: the attacker uses its own characterization map to park
//    an offset inside the *adjacent* frequency bin's unsafe band and
//    raises by one 100 MHz step; the rail ramp is only a few us, which
//    undercuts any realistic poll interval.  This is the residual race
//    that motivates the paper's maximal-safe-state deployments.
#pragma once

#include <optional>

#include "attacks/attack.hpp"
#include "plugvolt/safe_state.hpp"

namespace pv::attack {

/// Campaign parameters.
struct VoltJockeyConfig {
    Megahertz low_freq = from_ghz(1.2);
    /// Raise target; 0 MHz = the profile's maximum.
    Megahertz high_freq{0.0};
    Millivolts scan_start{-60.0};
    Millivolts scan_step{2.0};
    Millivolts scan_floor{-300.0};
    std::uint64_t probe_ops = 100'000;
    unsigned attacker_core = 0;
    unsigned victim_core = 1;
    unsigned max_crashes = 2;
    /// Precise-step variant driven by the attacker's own map.
    bool precise_step = false;
    /// Descending-rail variant: exploit the PCU's instant switch when a
    /// raise is requested while the rail is still high from a previous
    /// P-state — drop frequency, park a deep offset, and re-raise within
    /// one poll interval.  The rail then sags through the unsafe band at
    /// the high frequency before any software can react.  Needs the
    /// attacker map.  Overrides precise_step.
    bool descending_rail = false;
    /// Guard band the attacker assumes the defender's polling module
    /// uses (public default + hysteresis): parked offsets must look safe
    /// even through that margin, or the module restores them before the
    /// frequency hop.  A 1-bin hop window is usually narrower than the
    /// guard, so the attacker also tries multi-bin hops.
    Millivolts assumed_defender_guard{16.0};
    unsigned max_hop_bins = 5;
};

/// The VoltJockey campaign.  For the precise-step variant the attacker
/// supplies its own safe-state characterization (the paper's point: the
/// search space is open to adversaries too).
class VoltJockey final : public Attack {
public:
    explicit VoltJockey(VoltJockeyConfig config = {},
                        std::optional<plugvolt::SafeStateMap> attacker_map = std::nullopt);

    [[nodiscard]] std::string_view name() const override {
        if (config_.descending_rail) return "voltjockey-descending";
        return config_.precise_step ? "voltjockey-precise" : "voltjockey";
    }
    [[nodiscard]] AttackResult run(os::Kernel& kernel) override;

private:
    [[nodiscard]] std::uint64_t attempt(os::Kernel& kernel, Megahertz f_lo, Megahertz f_hi,
                                        Millivolts offset, AttackResult& result);
    void run_descending_rail(os::Kernel& kernel, AttackResult& result);

    VoltJockeyConfig config_;
    std::optional<plugvolt::SafeStateMap> attacker_map_;
};

}  // namespace pv::attack
