// PlugVolt — Plundervolt (Murdock et al., S&P 2020) reimplementation.
//
// The attack that started the OCM arms race: pin a frequency, walk the
// 0x150 undervolt offset down until multiplications start faulting, then
// point the fault at an RSA-CRT signer and factor the modulus with one
// Bellcore gcd.  This implementation follows the published PoC's phases:
//   1. offset scan with an imul probe loop;
//   2. weaponization against a CRT signer at the faulting offset.
#pragma once

#include "attacks/attack.hpp"
#include "workload/crypto/rsa_crt.hpp"

namespace pv::attack {

/// Campaign parameters (defaults follow the published PoC's shape).
struct PlundervoltConfig {
    /// Frequency pinned during the attack; 0 = the profile's maximum
    /// (where undervolt headroom is smallest and faults come earliest).
    Megahertz pin_freq{0.0};
    Millivolts scan_start{-100.0};       ///< first probed offset
    Millivolts scan_step{2.0};           ///< scan resolution
    Millivolts scan_floor{-300.0};       ///< give up below this
    std::uint64_t probe_ops = 100'000;   ///< imul iterations per probe
    unsigned attacker_core = 0;
    unsigned victim_core = 1;
    unsigned max_crashes = 2;            ///< reboots tolerated before giving up
    unsigned max_signatures = 400;       ///< CRT signatures requested in phase 2
    /// Voltage plane attacked.  Core is the published PoC; Cache faults
    /// the load path instead (VoltPillager's second target) — a defense
    /// that only watches the core plane is blind to it.
    sim::VoltagePlane plane = sim::VoltagePlane::Core;
    /// Extra depth past the first faulting offset used while weaponizing
    /// (the published PoC also dials in a reliable fault rate first).
    Millivolts weaponize_extra_depth{6.0};
    std::uint64_t rng_seed = 0x9e3779b9;
};

/// The Plundervolt campaign.
class Plundervolt final : public Attack {
public:
    explicit Plundervolt(PlundervoltConfig config = {});

    [[nodiscard]] std::string_view name() const override { return "plundervolt"; }
    [[nodiscard]] AttackResult run(os::Kernel& kernel) override;

    /// Offset the scan settled on (0 when no faults were ever observed).
    [[nodiscard]] Millivolts found_offset() const { return found_offset_; }

private:
    /// Probe one offset; returns observed fault count (0 on blocked writes).
    [[nodiscard]] std::uint64_t probe(os::Kernel& kernel, Millivolts offset,
                                      AttackResult& result);

    PlundervoltConfig config_;
    Millivolts found_offset_{};
};

}  // namespace pv::attack
