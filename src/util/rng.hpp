// PlugVolt — deterministic random number generation.
//
// Every stochastic component in the simulator (clock jitter, fault
// sampling, workload noise) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit.  The generator is
// xoshiro256** seeded through splitmix64, following the reference
// implementations by Blackman & Vigna.
#pragma once

#include <cstdint>

namespace pv {

/// splitmix64 finalizer over a (parent, index) pair: derives
/// statistically independent child seeds from one root seed — the
/// construction Rng uses to expand a seed into its state words, shared
/// by every deterministic sharded driver (the parallel characterization
/// sweep's per-row/per-cell seeds, the campaign engine's per-cell and
/// per-attempt seeds).
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t parent, std::uint64_t index) {
    std::uint64_t z = parent + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
public:
    /// Seeds the four words of state from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n).  `n` must be nonzero.
    std::uint64_t uniform_below(std::uint64_t n);

    /// Standard normal deviate (Box–Muller, one value per call).
    double gaussian();

    /// Normal deviate with the given mean and standard deviation.
    double gaussian(double mean, double stddev);

    /// Sample from Binomial(n, p).  Uses exact inversion for small
    /// expected counts and a clamped normal approximation for large ones;
    /// accurate enough for fault-count sampling where n is up to 1e6 and
    /// p spans [1e-9, 1].
    std::uint64_t binomial(std::uint64_t n, double p);

    /// Sample from Poisson(lambda) via inversion (lambda <= ~30 expected).
    std::uint64_t poisson(double lambda);

    /// Derive an independent child generator; used to give each
    /// subsystem its own stream from one experiment seed.
    Rng fork();

    /// Order-sensitive fingerprint of the full generator state (the four
    /// xoshiro words plus the Box–Muller cache).  Two generators with
    /// equal fingerprints produce identical streams forever — what the
    /// determinism checker needs to assert, without exposing the words.
    [[nodiscard]] std::uint64_t state_fingerprint() const;

private:
    std::uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

}  // namespace pv
