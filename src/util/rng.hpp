// PlugVolt — deterministic random number generation.
//
// Every stochastic component in the simulator (clock jitter, fault
// sampling, workload noise) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit.  The generator is
// xoshiro256** seeded through splitmix64, following the reference
// implementations by Blackman & Vigna.
#pragma once

#include <cstdint>

namespace pv {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
public:
    /// Seeds the four words of state from `seed` via splitmix64.
    explicit Rng(std::uint64_t seed);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [0, n).  `n` must be nonzero.
    std::uint64_t uniform_below(std::uint64_t n);

    /// Standard normal deviate (Box–Muller, one value per call).
    double gaussian();

    /// Normal deviate with the given mean and standard deviation.
    double gaussian(double mean, double stddev);

    /// Sample from Binomial(n, p).  Uses exact inversion for small
    /// expected counts and a clamped normal approximation for large ones;
    /// accurate enough for fault-count sampling where n is up to 1e6 and
    /// p spans [1e-9, 1].
    std::uint64_t binomial(std::uint64_t n, double p);

    /// Sample from Poisson(lambda) via inversion (lambda <= ~30 expected).
    std::uint64_t poisson(double lambda);

    /// Derive an independent child generator; used to give each
    /// subsystem its own stream from one experiment seed.
    Rng fork();

    /// Order-sensitive fingerprint of the full generator state (the four
    /// xoshiro words plus the Box–Muller cache).  Two generators with
    /// equal fingerprints produce identical streams forever — what the
    /// determinism checker needs to assert, without exposing the words.
    [[nodiscard]] std::uint64_t state_fingerprint() const;

private:
    std::uint64_t s_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

}  // namespace pv
