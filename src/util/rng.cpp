#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace pv {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce
    // four zero words from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_below(std::uint64_t n) {
    if (n == 0) throw SimError("uniform_below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
    std::uint64_t x = next_u64();
    while (x >= limit) x = next_u64();
    return x % n;
}

double Rng::gaussian() {
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

std::uint64_t Rng::poisson(double lambda) {
    if (lambda < 0.0) throw SimError("poisson with negative lambda");
    if (lambda == 0.0) return 0;
    // Inversion by sequential search; fine for lambda up to ~50.
    const double l = std::exp(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
        ++k;
        p *= uniform();
    } while (p > l);
    return k - 1;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
    if (p <= 0.0 || n == 0) return 0;
    if (p >= 1.0) return n;
    const double mean = static_cast<double>(n) * p;
    if (mean < 30.0) {
        // Poisson approximation dominates in the fault-onset regime
        // (n ~ 1e6, p ~ 1e-6); relative error is O(p), negligible here.
        const std::uint64_t k = poisson(mean);
        return k > n ? n : k;
    }
    // Normal approximation with continuity clamp for the bulk regime.
    const double sd = std::sqrt(mean * (1.0 - p));
    const double draw = std::round(gaussian(mean, sd));
    if (draw <= 0.0) return 0;
    if (draw >= static_cast<double>(n)) return n;
    return static_cast<std::uint64_t>(draw);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::state_fingerprint() const {
    // FNV-1a over the state words; kept dependency-free so util stays
    // below the check layer.
    std::uint64_t h = 0xCBF29CE484222325ULL;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xFF;
            h *= 0x100000001B3ULL;
        }
    };
    for (const std::uint64_t word : s_) mix(word);
    mix(have_cached_gaussian_ ? 1 : 0);
    mix(std::bit_cast<std::uint64_t>(cached_gaussian_));
    return h;
}

}  // namespace pv
