// PlugVolt — streaming statistics helpers used by the bench harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace pv {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class OnlineStats {
public:
    /// Add one observation.
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const;
    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Geometric mean of a set of positive values; throws ConfigError on an
/// empty set or any non-positive value.
[[nodiscard]] double geomean(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) by linear interpolation on a copy of
/// the data; throws ConfigError on an empty set.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Standard normal cumulative distribution function.
[[nodiscard]] double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation);
/// argument must lie strictly inside (0, 1).
[[nodiscard]] double normal_quantile(double p);

}  // namespace pv
