// PlugVolt — ASCII table rendering for the bench harnesses.
//
// The reproduction benches print paper-shaped tables (e.g. Table 2 rows);
// this tiny formatter keeps that output aligned and consistent.
#pragma once

#include <string>
#include <vector>

namespace pv {

/// Column-aligned ASCII table builder.
class Table {
public:
    /// Create a table with the given column headers.
    explicit Table(std::vector<std::string> headers);

    /// Append a row; must have exactly as many cells as headers.
    void add_row(std::vector<std::string> cells);

    /// Format a double with fixed precision; helper for building cells.
    [[nodiscard]] static std::string num(double v, int precision = 2);

    /// Format a percentage ("-0.43%") with fixed precision.
    [[nodiscard]] static std::string pct(double fraction, int precision = 2);

    /// Render with column separators and a header underline.
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace pv
