#include "util/thread_pool.hpp"

#include <atomic>
#include <stdexcept>

namespace pv {
namespace {

thread_local int t_worker_index = -1;

std::atomic<ThreadPool::DispatchTap> g_dispatch_tap{nullptr};

}  // namespace

ThreadPool::DispatchTap ThreadPool::set_dispatch_tap(DispatchTap tap) noexcept {
    return g_dispatch_tap.exchange(tap, std::memory_order_acq_rel);
}

void ThreadPool::notify_dispatch(std::uint64_t submitted, std::size_t queue_depth) {
    if (DispatchTap tap = g_dispatch_tap.load(std::memory_order_acquire))
        tap(submitted, queue_depth);
}

ThreadPool::ThreadPool(unsigned workers) {
    if (workers == 0) throw std::invalid_argument("ThreadPool needs at least one worker");
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::worker_main(unsigned index) {
    t_worker_index = static_cast<int>(index);
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && queue_.empty()) wake_.wait(mutex_);
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
            ++active_;
        }
        task();  // packaged_task: exceptions land in the future
        {
            MutexLock lock(mutex_);
            --active_;
            ++stats_.completed;
        }
        idle_.notify_all();
    }
}

void ThreadPool::wait_idle() {
    MutexLock lock(mutex_);
    while (!queue_.empty() || active_ != 0) idle_.wait(mutex_);
}

ThreadPool::Stats ThreadPool::stats() const {
    MutexLock lock(mutex_);
    return stats_;
}

int ThreadPool::current_worker_index() { return t_worker_index; }

unsigned ThreadPool::default_worker_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4u : hw;
}

}  // namespace pv
