// PlugVolt — small file-system I/O helpers with crash-safe writes.
//
// Everything this repo persists (characterization maps, campaign
// reports, traces, the sweep journal) is expensive to recompute; a crash
// mid-write must never leave a torn file where a good one used to be.
// atomic_write_file gives every writer the same discipline: write the
// full body to a temporary sibling, flush, then rename over the target —
// rename(2) is atomic within a filesystem, so readers observe either the
// old complete file or the new complete file, never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace pv {

/// Read a whole file as bytes.  Throws IoError when the file cannot be
/// opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

/// True when `path` names an existing, readable file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Crash-safe whole-file write: body -> `path + ".tmp"` -> rename to
/// `path`.  Throws IoError on any failure (the temporary is removed on
/// a failed rename).
void atomic_write_file(const std::string& path, std::string_view body);

}  // namespace pv
