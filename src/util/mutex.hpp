// PlugVolt — annotated mutex primitives.
//
// std::mutex carries no thread-safety attributes, so Clang's capability
// analysis cannot reason about it.  These thin wrappers add the
// annotations (and nothing else): Mutex is a std::mutex declared as a
// capability, MutexLock is the annotated scoped lock, and CondVar is a
// condition variable that waits on a Mutex directly (it is a
// std::condition_variable_any, so no std::unique_lock is needed — the
// analysis sees the mutex stay held across the wait).  Use these for any
// state shared between threads; single-threaded code needs none of it.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace pv {

/// A std::mutex the thread-safety analysis can see.
class PV_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() PV_ACQUIRE() { m_.lock(); }
    void unlock() PV_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() PV_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    // pv-lint: allow(concurrency-primitive) this IS the annotated wrapper
    std::mutex m_;
};

/// Scoped lock over Mutex (std::lock_guard with annotations).
class PV_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& m) PV_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() PV_RELEASE() { m_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& m_;
};

/// Condition variable waiting directly on a Mutex.  The caller must hold
/// the mutex; wait() releases it while sleeping and reacquires it before
/// returning, exactly like std::condition_variable — the annotation
/// REQUIRES(m) expresses the held-before/held-after contract.
class CondVar {
public:
    void wait(Mutex& m) PV_REQUIRES(m) { cv_.wait(m); }
    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    // pv-lint: allow(concurrency-primitive) this IS the annotated wrapper
    std::condition_variable_any cv_;
};

}  // namespace pv
