#include "util/units.hpp"

#include <ostream>

namespace pv {

std::ostream& operator<<(std::ostream& os, Millivolts v) { return os << v.value() << " mV"; }
std::ostream& operator<<(std::ostream& os, Megahertz f) { return os << f.value() << " MHz"; }
std::ostream& operator<<(std::ostream& os, Picoseconds t) { return os << t.value() << " ps"; }
std::ostream& operator<<(std::ostream& os, Cycles c) { return os << c.value() << " cyc"; }

}  // namespace pv
