// PlugVolt — Clang thread-safety annotation macros.
//
// Wraps Clang's capability analysis attributes (-Wthread-safety) in
// PV_-prefixed macros that compile to nothing on other compilers, so the
// same headers build warning-free under GCC while Clang statically
// proves every access to a PV_GUARDED_BY member happens under its lock.
// The vocabulary follows the Clang documentation; only the subset this
// codebase needs is defined.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PV_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define PV_CAPABILITY(x) PV_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define PV_SCOPED_CAPABILITY PV_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define PV_GUARDED_BY(x) PV_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define PV_PT_GUARDED_BY(x) PV_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that acquires the capability (exclusively).
#define PV_ACQUIRE(...) PV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability.
#define PV_RELEASE(...) PV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability only when returning `b`.
#define PV_TRY_ACQUIRE(b, ...) PV_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must hold the capability to call this function.
#define PV_REQUIRES(...) PV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself).
#define PV_EXCLUDES(...) PV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding the annotated data.
#define PV_RETURN_CAPABILITY(x) PV_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disable the analysis inside one function body.
#define PV_NO_THREAD_SAFETY_ANALYSIS PV_THREAD_ANNOTATION(no_thread_safety_analysis)
