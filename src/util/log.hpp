// PlugVolt — leveled logging.
//
// A single process-wide sink with a runtime level.  Benches set Level::
// Info for progress lines; tests leave the default (Warn) so output stays
// quiet.  Each simulator instance remains single-threaded (that is part
// of its determinism contract), but the sharded characterization engine
// runs many instances at once, so the sink serializes emission; the
// level itself is set once at startup, before any workers exist.
#pragma once

#include <sstream>
#include <string>

namespace pv {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Set the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current process-wide level.
[[nodiscard]] LogLevel log_level();

/// Emit one line at `level` if it passes the filter.
void log_line(LogLevel level, const std::string& message);

/// Observation hook: a tap sees every message that passes the level
/// filter, on the emitting thread, before the sink lock is taken (the
/// tap must do its own synchronization or stay thread-confined — the
/// trace bridge does the latter via thread-local recorders).  Plain
/// function pointer so util keeps zero dependency on the trace layer.
using LogTap = void (*)(LogLevel level, const std::string& message);

/// Install `tap` (nullptr to remove); returns the previous tap.
LogTap set_log_tap(LogTap tap) noexcept;

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    (os << ... << args);
    log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) { detail::log_fmt(LogLevel::Debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { detail::log_fmt(LogLevel::Info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { detail::log_fmt(LogLevel::Warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { detail::log_fmt(LogLevel::Error, args...); }

}  // namespace pv
