// PlugVolt — error types.
//
// Configuration and programming errors throw; domain outcomes (a fault, a
// crash, an attestation failure) are values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace pv {

/// Base class for all PlugVolt errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a component is constructed or used with inconsistent
/// configuration (e.g. a frequency outside the profile's table).
class ConfigError : public Error {
public:
    explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown when a simulation invariant is violated — always a bug in the
/// caller or the simulator, never an expected runtime condition.
class SimError : public Error {
public:
    explicit SimError(const std::string& what) : Error("simulation error: " + what) {}
};

/// Thrown on real file-system failures (open/write/rename) by the fsio
/// helpers and their users.  Domain-level "the environment is flaky"
/// outcomes stay values (os::MsrStatus); this is for the host FS.
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Thrown by the legacy throwing MSR driver API when an (injected)
/// environment fault exhausts the caller's patience — the software
/// analogue of EIO from /dev/cpu/*/msr.  Callers that can retry use the
/// non-throwing try_* API and os::MsrStatus instead.
class DriverError : public Error {
public:
    explicit DriverError(const std::string& what) : Error("driver error: " + what) {}
};

/// Thrown when the write-ahead sweep journal cannot make a record
/// durable (injected file faults beyond the retry budget, or a real
/// write failure), or when a journal file has no valid header.
class JournalError : public Error {
public:
    explicit JournalError(const std::string& what) : Error("journal error: " + what) {}
};

}  // namespace pv
