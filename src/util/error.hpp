// PlugVolt — error types.
//
// Configuration and programming errors throw; domain outcomes (a fault, a
// crash, an attestation failure) are values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace pv {

/// Base class for all PlugVolt errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a component is constructed or used with inconsistent
/// configuration (e.g. a frequency outside the profile's table).
class ConfigError : public Error {
public:
    explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Thrown when a simulation invariant is violated — always a bug in the
/// caller or the simulator, never an expected runtime condition.
class SimError : public Error {
public:
    explicit SimError(const std::string& what) : Error("simulation error: " + what) {}
};

}  // namespace pv
