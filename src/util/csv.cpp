#include "util/csv.hpp"

#include <sstream>

#include "util/error.hpp"

namespace pv {
namespace {

void emit_row(const std::vector<std::string>& row, std::ostringstream& os) {
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].find_first_of(",\n\"") != std::string::npos)
            throw ConfigError("csv cell contains a delimiter: " + row[i]);
        if (i) os << ',';
        os << row[i];
    }
    os << '\n';
}

std::vector<std::string> split_row(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    for (char ch : line) {
        if (ch == ',') {
            cells.push_back(cell);
            cell.clear();
        } else {
            cell.push_back(ch);
        }
    }
    cells.push_back(cell);
    return cells;
}

}  // namespace

std::string csv_write(const CsvDocument& doc) {
    if (doc.header.empty()) throw ConfigError("csv document needs a header");
    std::ostringstream os;
    emit_row(doc.header, os);
    for (const auto& row : doc.rows) {
        if (row.size() != doc.header.size())
            throw ConfigError("csv row width differs from header");
        emit_row(row, os);
    }
    return os.str();
}

CsvDocument csv_parse(const std::string& text) {
    CsvDocument doc;
    std::istringstream is(text);
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        auto cells = split_row(line);
        if (first) {
            doc.header = std::move(cells);
            first = false;
        } else {
            if (cells.size() != doc.header.size())
                throw ConfigError("csv row width differs from header");
            doc.rows.push_back(std::move(cells));
        }
    }
    if (first) throw ConfigError("csv document is empty");
    return doc;
}

}  // namespace pv
