#include "util/csv.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/fsio.hpp"

namespace pv {
namespace {

// RFC 4180: a cell containing a comma, quote, CR or LF is wrapped in
// double quotes, with embedded quotes doubled.  Clean cells (the vast
// majority: numbers, identifiers) are emitted verbatim.
void emit_cell(const std::string& cell, std::ostringstream& os) {
    if (cell.find_first_of(",\"\r\n") == std::string::npos) {
        os << cell;
        return;
    }
    os << '"';
    for (char ch : cell) {
        if (ch == '"') os << '"';
        os << ch;
    }
    os << '"';
}

void emit_row(const std::vector<std::string>& row, std::ostringstream& os) {
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i) os << ',';
        emit_cell(row[i], os);
    }
    os << '\n';
}

}  // namespace

std::string csv_write(const CsvDocument& doc) {
    if (doc.header.empty()) throw ConfigError("csv document needs a header");
    std::ostringstream os;
    emit_row(doc.header, os);
    for (const auto& row : doc.rows) {
        if (row.size() != doc.header.size())
            throw ConfigError("csv row width differs from header");
        emit_row(row, os);
    }
    return os.str();
}

CsvDocument csv_parse(const std::string& text) {
    // Character-level scan: quoted cells may span commas, doubled
    // quotes and even newlines, so parsing cannot be line-based.
    CsvDocument doc;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;
    bool row_has_data = false;  // distinguishes "" (empty line) from ",\n"
    bool seen_header = false;

    auto end_cell = [&] {
        row.push_back(std::move(cell));
        cell.clear();
    };
    auto end_row = [&] {
        if (!row_has_data && row.empty()) return;  // skip blank lines
        end_cell();
        if (!seen_header) {
            doc.header = std::move(row);
            seen_header = true;
        } else {
            if (row.size() != doc.header.size())
                throw ConfigError("csv row width differs from header");
            doc.rows.push_back(std::move(row));
        }
        row.clear();
        row_has_data = false;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char ch = text[i];
        if (in_quotes) {
            if (ch == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell.push_back('"');  // doubled quote -> literal quote
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push_back(ch);
            }
            continue;
        }
        switch (ch) {
            case '"':
                if (!cell.empty())
                    throw ConfigError("csv quote opened mid-cell");
                in_quotes = true;
                row_has_data = true;
                break;
            case ',':
                end_cell();
                row_has_data = true;
                break;
            case '\r':
                break;  // tolerate CRLF
            case '\n':
                end_row();
                break;
            default:
                cell.push_back(ch);
                row_has_data = true;
        }
    }
    if (in_quotes) throw ConfigError("csv ends inside a quoted cell");
    end_row();  // final row may lack a trailing newline

    if (!seen_header) throw ConfigError("csv document is empty");
    return doc;
}

void csv_write_file(const std::string& path, const CsvDocument& doc) {
    atomic_write_file(path, csv_write(doc));
}

CsvDocument csv_parse_file(const std::string& path) { return csv_parse(read_file(path)); }

}  // namespace pv
