// PlugVolt — sorted flat-vector map (flat_map-style).
//
// The simulator hot path keeps several small key->value tables (the MSR
// register file, the driver's stale-read cache, the kthread table, the
// per-row probe memo) that node-based maps serve badly: every insert is
// an allocation, every reset walks and frees nodes, and unordered
// iteration has to be re-sorted wherever determinism matters.  A sorted
// vector fixes all three at once — one contiguous buffer, binary-search
// lookup, ordered iteration for free, and clear() keeps the capacity so
// Machine::reset() recycles the allocation across thousands of sweep
// cells.  Deliberately minimal: single-threaded use, tens of entries,
// keys with operator< — exactly the regime where flat beats nodes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pv {

template <typename K, typename V>
class FlatMap {
public:
    using value_type = std::pair<K, V>;
    using iterator = typename std::vector<value_type>::iterator;
    using const_iterator = typename std::vector<value_type>::const_iterator;

    [[nodiscard]] iterator begin() { return data_.begin(); }
    [[nodiscard]] iterator end() { return data_.end(); }
    [[nodiscard]] const_iterator begin() const { return data_.begin(); }
    [[nodiscard]] const_iterator end() const { return data_.end(); }

    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] std::size_t size() const { return data_.size(); }

    /// Drops every entry but keeps the buffer (reset-friendly).
    void clear() { data_.clear(); }

    [[nodiscard]] iterator find(const K& key) {
        const iterator it = lower_bound(key);
        return (it != data_.end() && it->first == key) ? it : data_.end();
    }
    [[nodiscard]] const_iterator find(const K& key) const {
        const const_iterator it = lower_bound(key);
        return (it != data_.end() && it->first == key) ? it : data_.end();
    }
    [[nodiscard]] bool contains(const K& key) const { return find(key) != data_.end(); }

    /// Find-or-default-construct, like std::map::operator[].
    V& operator[](const K& key) {
        const iterator it = lower_bound(key);
        if (it != data_.end() && it->first == key) return it->second;
        return data_.insert(it, value_type(key, V{}))->second;
    }

    V& at(const K& key) {
        const iterator it = find(key);
        if (it == data_.end()) throw std::out_of_range("FlatMap::at: no such key");
        return it->second;
    }
    const V& at(const K& key) const {
        const const_iterator it = find(key);
        if (it == data_.end()) throw std::out_of_range("FlatMap::at: no such key");
        return it->second;
    }

    /// Inserts key -> V(args...) unless the key exists (std::map::emplace
    /// semantics: existing entries are left untouched).
    template <typename... Args>
    std::pair<iterator, bool> emplace(const K& key, Args&&... args) {
        const iterator it = lower_bound(key);
        if (it != data_.end() && it->first == key) return {it, false};
        return {data_.insert(it, value_type(key, V(std::forward<Args>(args)...))), true};
    }

    std::size_t erase(const K& key) {
        const iterator it = find(key);
        if (it == data_.end()) return 0;
        data_.erase(it);
        return 1;
    }

private:
    [[nodiscard]] iterator lower_bound(const K& key) {
        return std::lower_bound(data_.begin(), data_.end(), key,
                                [](const value_type& e, const K& k) { return e.first < k; });
    }
    [[nodiscard]] const_iterator lower_bound(const K& key) const {
        return std::lower_bound(data_.begin(), data_.end(), key,
                                [](const value_type& e, const K& k) { return e.first < k; });
    }

    std::vector<value_type> data_;  // sorted by .first, unique keys
};

}  // namespace pv
