// PlugVolt — reusable fixed-size worker pool.
//
// The simulator itself stays single-threaded (that is its determinism
// contract); the pool exists for embarrassingly parallel *drivers* that
// run many independent simulator instances — above all the sharded
// characterization sweep, where every frequency row is an independent
// experiment (on real hardware the machine reboots between rows anyway).
//
// Tasks are queued FIFO and executed by `size()` long-lived threads.
// submit() returns a std::future carrying the task's result; exceptions
// thrown by a task are captured and rethrown from future::get(), never
// swallowed.  Destruction drains the queue: every task submitted before
// the destructor runs is completed, then the threads join.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pv {

class ThreadPool {
public:
    /// Spin up `workers` threads (must be >= 1).
    explicit ThreadPool(unsigned workers);

    /// Completes all queued tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const { return static_cast<unsigned>(threads_.size()); }

    /// Lifetime statistics, sampled under the queue lock.
    struct Stats {
        std::uint64_t submitted = 0;        ///< tasks ever accepted by submit()
        std::uint64_t completed = 0;        ///< tasks that finished executing
        std::size_t max_queue_depth = 0;    ///< high-water mark of waiting tasks
    };

    /// Observation hook fired on the SUBMITTING thread after a task is
    /// queued: (tasks submitted so far, queue depth right after the
    /// enqueue).  Plain function pointer so util stays independent of
    /// the trace layer that typically installs it.
    using DispatchTap = void (*)(std::uint64_t submitted, std::size_t queue_depth);

    /// Install `tap` (nullptr to remove) for ALL pools; returns the
    /// previous tap.
    static DispatchTap set_dispatch_tap(DispatchTap tap) noexcept;

    /// Queue a task; the future resolves with its return value (or
    /// rethrows what it threw).  Throws std::runtime_error if the pool
    /// is shutting down.
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
        using R = std::invoke_result_t<std::decay_t<F>&>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        std::uint64_t submitted;
        std::size_t depth;
        {
            MutexLock lock(mutex_);
            if (stopping_) throw std::runtime_error("submit() on a stopped ThreadPool");
            queue_.emplace([task] { (*task)(); });
            submitted = ++stats_.submitted;
            depth = queue_.size();
            if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;
        }
        wake_.notify_one();
        notify_dispatch(submitted, depth);
        return result;
    }

    /// Snapshot of the pool's lifetime statistics.
    [[nodiscard]] Stats stats() const PV_EXCLUDES(mutex_);

    /// Block until the queue is empty and no task is executing.
    void wait_idle() PV_EXCLUDES(mutex_);

    /// Index of the pool worker the calling thread is (0..size-1), or
    /// -1 when called from a thread that is not a pool worker.  Lets a
    /// task reach per-worker state (e.g. its own simulator instance)
    /// without locking.
    [[nodiscard]] static int current_worker_index();

    /// Sensible default worker count: hardware_concurrency, with a
    /// fallback of 4 when the runtime cannot tell.
    [[nodiscard]] static unsigned default_worker_count();

private:
    void worker_main(unsigned index) PV_EXCLUDES(mutex_);
    static void notify_dispatch(std::uint64_t submitted, std::size_t queue_depth);

    std::vector<std::thread> threads_;
    mutable Mutex mutex_;
    std::queue<std::function<void()>> queue_ PV_GUARDED_BY(mutex_);
    CondVar wake_;
    CondVar idle_;
    unsigned active_ PV_GUARDED_BY(mutex_) = 0;
    bool stopping_ PV_GUARDED_BY(mutex_) = false;
    Stats stats_ PV_GUARDED_BY(mutex_);
};

}  // namespace pv
