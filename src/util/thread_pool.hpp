// PlugVolt — reusable fixed-size worker pool.
//
// The simulator itself stays single-threaded (that is its determinism
// contract); the pool exists for embarrassingly parallel *drivers* that
// run many independent simulator instances — above all the sharded
// characterization sweep, where every frequency row is an independent
// experiment (on real hardware the machine reboots between rows anyway).
//
// Tasks are queued FIFO and executed by `size()` long-lived threads.
// submit() returns a std::future carrying the task's result; exceptions
// thrown by a task are captured and rethrown from future::get(), never
// swallowed.  Destruction drains the queue: every task submitted before
// the destructor runs is completed, then the threads join.
#pragma once

#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace pv {

class ThreadPool {
public:
    /// Spin up `workers` threads (must be >= 1).
    explicit ThreadPool(unsigned workers);

    /// Completes all queued tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] unsigned size() const { return static_cast<unsigned>(threads_.size()); }

    /// Queue a task; the future resolves with its return value (or
    /// rethrows what it threw).  Throws std::runtime_error if the pool
    /// is shutting down.
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
        using R = std::invoke_result_t<std::decay_t<F>&>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            MutexLock lock(mutex_);
            if (stopping_) throw std::runtime_error("submit() on a stopped ThreadPool");
            queue_.emplace([task] { (*task)(); });
        }
        wake_.notify_one();
        return result;
    }

    /// Block until the queue is empty and no task is executing.
    void wait_idle() PV_EXCLUDES(mutex_);

    /// Index of the pool worker the calling thread is (0..size-1), or
    /// -1 when called from a thread that is not a pool worker.  Lets a
    /// task reach per-worker state (e.g. its own simulator instance)
    /// without locking.
    [[nodiscard]] static int current_worker_index();

    /// Sensible default worker count: hardware_concurrency, with a
    /// fallback of 4 when the runtime cannot tell.
    [[nodiscard]] static unsigned default_worker_count();

private:
    void worker_main(unsigned index) PV_EXCLUDES(mutex_);

    std::vector<std::thread> threads_;
    Mutex mutex_;
    std::queue<std::function<void()>> queue_ PV_GUARDED_BY(mutex_);
    CondVar wake_;
    CondVar idle_;
    unsigned active_ PV_GUARDED_BY(mutex_) = 0;
    bool stopping_ PV_GUARDED_BY(mutex_) = false;
};

}  // namespace pv
