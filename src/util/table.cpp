#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace pv {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    if (headers_.empty()) throw ConfigError("table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw ConfigError("table row has wrong number of cells");
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string Table::pct(double fraction, int precision) {
    return num(fraction * 100.0, precision) + "%";
}

std::string Table::render() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& cells, std::ostringstream& os) {
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(headers_, os);
    os << "|";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
    os << '\n';
    for (const auto& row : rows_) emit_row(row, os);
    return os.str();
}

}  // namespace pv
