// PlugVolt — strong unit types.
//
// The simulator mixes quantities that are all "just numbers" at the ABI
// level (millivolts, megahertz, picoseconds, cycles).  Mixing them up is
// exactly the class of bug a DVFS model cannot afford, so each physical
// dimension gets its own vocabulary type.  Conversions are explicit and
// named; arithmetic is restricted to operations that make dimensional
// sense.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace pv {

/// A voltage expressed in millivolts.  Negative values are meaningful
/// (undervolt offsets written to MSR 0x150 are negative).
class Millivolts {
public:
    constexpr Millivolts() = default;
    constexpr explicit Millivolts(double mv) : mv_(mv) {}

    [[nodiscard]] constexpr double value() const { return mv_; }
    /// Same quantity in volts (1 V == 1000 mV).
    [[nodiscard]] constexpr double volts() const { return mv_ / 1000.0; }

    constexpr Millivolts operator-() const { return Millivolts{-mv_}; }
    constexpr Millivolts& operator+=(Millivolts o) { mv_ += o.mv_; return *this; }
    constexpr Millivolts& operator-=(Millivolts o) { mv_ -= o.mv_; return *this; }
    friend constexpr Millivolts operator+(Millivolts a, Millivolts b) { return Millivolts{a.mv_ + b.mv_}; }
    friend constexpr Millivolts operator-(Millivolts a, Millivolts b) { return Millivolts{a.mv_ - b.mv_}; }
    friend constexpr Millivolts operator*(Millivolts a, double k) { return Millivolts{a.mv_ * k}; }
    friend constexpr Millivolts operator*(double k, Millivolts a) { return Millivolts{a.mv_ * k}; }
    friend constexpr double operator/(Millivolts a, Millivolts b) { return a.mv_ / b.mv_; }
    friend constexpr auto operator<=>(Millivolts, Millivolts) = default;

private:
    double mv_ = 0.0;
};

/// Construct a Millivolts from a value in volts.
[[nodiscard]] constexpr Millivolts from_volts(double v) { return Millivolts{v * 1000.0}; }

/// A frequency expressed in megahertz.  Core frequencies in this model
/// range from 400 MHz to 4900 MHz.
class Megahertz {
public:
    constexpr Megahertz() = default;
    constexpr explicit Megahertz(double mhz) : mhz_(mhz) {}

    [[nodiscard]] constexpr double value() const { return mhz_; }
    [[nodiscard]] constexpr double gigahertz() const { return mhz_ / 1000.0; }
    /// Clock period of this frequency in picoseconds (1 GHz -> 1000 ps).
    [[nodiscard]] constexpr double period_ps() const { return 1.0e6 / mhz_; }

    friend constexpr Megahertz operator+(Megahertz a, Megahertz b) { return Megahertz{a.mhz_ + b.mhz_}; }
    friend constexpr Megahertz operator-(Megahertz a, Megahertz b) { return Megahertz{a.mhz_ - b.mhz_}; }
    friend constexpr Megahertz operator*(Megahertz a, double k) { return Megahertz{a.mhz_ * k}; }
    friend constexpr auto operator<=>(Megahertz, Megahertz) = default;

private:
    double mhz_ = 0.0;
};

/// Construct a Megahertz from a value in gigahertz.
[[nodiscard]] constexpr Megahertz from_ghz(double ghz) { return Megahertz{ghz * 1000.0}; }

/// Simulated time, in integer picoseconds.  64 bits of picoseconds cover
/// ~106 days of simulated time, far beyond any experiment here.
class Picoseconds {
public:
    constexpr Picoseconds() = default;
    constexpr explicit Picoseconds(std::int64_t ps) : ps_(ps) {}

    [[nodiscard]] constexpr std::int64_t value() const { return ps_; }
    [[nodiscard]] constexpr double nanoseconds() const { return static_cast<double>(ps_) / 1e3; }
    [[nodiscard]] constexpr double microseconds() const { return static_cast<double>(ps_) / 1e6; }
    [[nodiscard]] constexpr double milliseconds() const { return static_cast<double>(ps_) / 1e9; }
    [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ps_) / 1e12; }

    constexpr Picoseconds& operator+=(Picoseconds o) { ps_ += o.ps_; return *this; }
    constexpr Picoseconds& operator-=(Picoseconds o) { ps_ -= o.ps_; return *this; }
    friend constexpr Picoseconds operator+(Picoseconds a, Picoseconds b) { return Picoseconds{a.ps_ + b.ps_}; }
    friend constexpr Picoseconds operator-(Picoseconds a, Picoseconds b) { return Picoseconds{a.ps_ - b.ps_}; }
    friend constexpr Picoseconds operator*(Picoseconds a, std::int64_t k) { return Picoseconds{a.ps_ * k}; }
    friend constexpr auto operator<=>(Picoseconds, Picoseconds) = default;

private:
    std::int64_t ps_ = 0;
};

[[nodiscard]] constexpr Picoseconds nanoseconds(double ns) {
    return Picoseconds{static_cast<std::int64_t>(ns * 1e3)};
}
[[nodiscard]] constexpr Picoseconds microseconds(double us) {
    return Picoseconds{static_cast<std::int64_t>(us * 1e6)};
}
[[nodiscard]] constexpr Picoseconds milliseconds(double ms) {
    return Picoseconds{static_cast<std::int64_t>(ms * 1e9)};
}

/// A CPU cycle count.  Cycles convert to time only through a frequency.
class Cycles {
public:
    constexpr Cycles() = default;
    constexpr explicit Cycles(std::uint64_t n) : n_(n) {}

    [[nodiscard]] constexpr std::uint64_t value() const { return n_; }

    /// Wall (simulated) duration of this many cycles at frequency `f`.
    [[nodiscard]] constexpr Picoseconds at(Megahertz f) const {
        return Picoseconds{static_cast<std::int64_t>(static_cast<double>(n_) * f.period_ps())};
    }

    constexpr Cycles& operator+=(Cycles o) { n_ += o.n_; return *this; }
    friend constexpr Cycles operator+(Cycles a, Cycles b) { return Cycles{a.n_ + b.n_}; }
    friend constexpr Cycles operator*(Cycles a, std::uint64_t k) { return Cycles{a.n_ * k}; }
    friend constexpr auto operator<=>(Cycles, Cycles) = default;

private:
    std::uint64_t n_ = 0;
};

std::ostream& operator<<(std::ostream& os, Millivolts v);
std::ostream& operator<<(std::ostream& os, Megahertz f);
std::ostream& operator<<(std::ostream& os, Picoseconds t);
std::ostream& operator<<(std::ostream& os, Cycles c);

}  // namespace pv
