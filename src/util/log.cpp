#include "util/log.hpp"

#include <iostream>
#include <mutex>

namespace pv {
namespace {

LogLevel g_level = LogLevel::Warn;
std::mutex g_sink_mutex;  // characterization workers log concurrently

const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF  ";
    }
    return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& message) {
    if (level < g_level) return;
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::cerr << "[pv " << level_tag(level) << "] " << message << '\n';
}

}  // namespace pv
