#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace pv {
namespace {

// The level is read on every log call from every characterization
// worker while tests/benches may set it from the main thread: a plain
// LogLevel here is a data race (caught by TSan).  Relaxed atomics are
// enough — the level is a filter, not a synchronization point.
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<LogTap> g_tap{nullptr};
// pv-lint: allow(concurrency-guard) guards std::cerr, an external stream
// with no annotatable field; MutexLock in log_line is the whole protocol
Mutex g_sink_mutex;  // serializes emission: workers log concurrently

const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO ";
        case LogLevel::Warn: return "WARN ";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF  ";
    }
    return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogTap set_log_tap(LogTap tap) noexcept {
    return g_tap.exchange(tap, std::memory_order_acq_rel);
}

void log_line(LogLevel level, const std::string& message) {
    if (level < log_level()) return;
    if (LogTap tap = g_tap.load(std::memory_order_acquire)) tap(level, message);
    const MutexLock lock(g_sink_mutex);
    std::cerr << "[pv " << level_tag(level) << "] " << message << '\n';
}

}  // namespace pv
