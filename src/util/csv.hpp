// PlugVolt — minimal CSV serialization.
//
// Used to persist safe/unsafe characterization maps so that an expensive
// characterization run can be replayed into a PollingModule without
// re-sweeping the grid (mirrors how the paper's kernel module consumes a
// previously measured table).
#pragma once

#include <string>
#include <vector>

namespace pv {

/// One parsed CSV document: a header row plus data rows of equal width.
struct CsvDocument {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/// Serialize rows with RFC 4180 quoting: cells containing a comma,
/// quote or newline are wrapped in double quotes with embedded quotes
/// doubled; everything else (numbers, identifiers) is emitted verbatim.
[[nodiscard]] std::string csv_write(const CsvDocument& doc);

/// Parse a CSV string produced by csv_write (quoted cells may contain
/// commas, doubled quotes and newlines).  Throws ConfigError on ragged
/// rows, an unterminated quote, or an empty document.
[[nodiscard]] CsvDocument csv_parse(const std::string& text);

/// Serialize to `path` via temp-file + rename (util/fsio): a crash
/// mid-write leaves either the previous file or the new one, never a
/// torn CSV.  Throws IoError on filesystem failure.
void csv_write_file(const std::string& path, const CsvDocument& doc);

/// Read and parse `path`.  Throws IoError when unreadable, ConfigError
/// on malformed CSV.
[[nodiscard]] CsvDocument csv_parse_file(const std::string& path);

}  // namespace pv
