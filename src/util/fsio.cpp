#include "util/fsio.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace pv {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open " + path + " for reading");
    std::ostringstream body;
    body << in.rdbuf();
    if (in.bad()) throw IoError("read failed on " + path);
    return std::move(body).str();
}

bool file_exists(const std::string& path) {
    return std::ifstream(path, std::ios::binary).good();
}

void atomic_write_file(const std::string& path, std::string_view body) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw IoError("cannot open " + tmp + " for writing");
        out.write(body.data(), static_cast<std::streamsize>(body.size()));
        out.flush();
        if (!out) throw IoError("write failed on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw IoError("rename " + tmp + " -> " + path + " failed");
    }
}

}  // namespace pv
