#!/usr/bin/env python3
"""Perf-regression gate: run the named benches, compare against committed baselines.

Runs each bench --runs times (default 3), takes the per-row MINIMUM wall
time, and fails (exit 1) when any gated row is more than --tolerance
(default 10%) slower than its committed baseline in bench/baselines/.
The estimators are deliberately asymmetric: baselines record the
per-row MEDIAN across runs (the typical cost), the current run is
judged by its per-row MIN (its best run).  Contention on a shared
runner only ever ADDS time, so a false alarm needs the box to stay
busy through every run AND the retry, while a real regression shifts
the whole distribution and still trips.  Symmetric min/min was tried
first: one lucky fast window gets baked into the baseline floor and
later runs of a 200 ms process rarely rematch it.

Cross-machine normalization: each bench gets its own machine-speed
factor — the MEDIAN of the now/baseline ratios over that bench's own
rows, which all ran in the same few-second window.  Anything coarser
decouples on a shared box: a global factor mixes google-benchmark
micro rows (per-op minimum over millions of iterations, recovers the
uncontended cost even under load) with whole-process rows that embed
every preemption (observed same-binary: micro median 0.835 vs process
rows at 1.0-1.1 — every process row read as a false regression), and
even a process-family factor decouples because the sweep and campaign
benches run minutes apart while load windows shift faster than that.
Self-normalization absorbs the bench-local common mode; a regression
in a subset of a bench's rows sticks out.  The blind spot — a
perfectly uniform slowdown across ALL of one bench's rows — is covered
by the other benches exercising the same hot paths under their own
factors.

Transient-load defense: when the first pass flags regressions, the
flagged benches are re-measured once (merging samples, min wins) before
the verdict.  A busy window on the runner clears on the retry seconds
later; a real regression reproduces.

Usage:
    scripts/bench_compare.py [--build-dir build] [--runs 3] [--tolerance 0.10]
    scripts/bench_compare.py --rebaseline     # rewrite bench/baselines/ and exit

Baselines are plain BENCH_*.json files ({"bench": ..., "records": [...]})
committed under bench/baselines/.  To accept an intentional perf change,
re-run with --rebaseline on a quiet machine and commit the updated files.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import subprocess
import sys
import tempfile

# (bench key, argv relative to build dir, output JSON the bench writes in
# its CWD or None for google-benchmark stdout JSON, reason the bench is
# info-only or None when its rows are gated).  The recovery bench times
# real filesystem journal I/O, which on shared runners varies by
# multiples rather than percent — report it, never gate on it.
BENCHES = [
    ("micro", ["bench/bench_micro", "--benchmark_format=json"], None, None),
    ("parallel_sweep", ["bench/bench_parallel_sweep"], "BENCH_parallel_sweep.json",
     None),
    ("campaign", ["bench/campaign_demo", "--quick"], "BENCH_campaign.json", None),
    ("recovery", ["bench/bench_recovery"], "BENCH_recovery.json", "I/O-bound"),
    # The fleet bench's wall times scale with thread-pool width, but the
    # per-bench machine factor (median now/baseline ratio over the
    # bench's OWN rows) absorbs exactly that common mode — both variants
    # run in the same window on the same pool — so its rows are gated
    # like everyone else's; the correctness gates (warm/cold probe
    # ratio, map bit-identity) stay in its exit code.
    ("fleet", ["bench/bench_fleet", "--quick"], "BENCH_fleet.json", None),
    ("adaptive", ["bench/bench_adaptive", "--quick"], "BENCH_adaptive.json",
     None),
    # Fresh subsystem: report the daemon rows against their first
    # committed baseline for one PR before gating, so the gate starts
    # from a cross-machine-vetted floor rather than the authoring box.
    ("daemon", ["bench/bench_daemon", "--quick"], "BENCH_daemon.json",
     "new baseline"),
]

# Rows below this baseline wall time are reported but never gated: at
# millisecond scale, scheduler noise dwarfs any real regression.
# google-benchmark rows are exempt — their per-op times come from
# bench_micro's own repetition loop and are stable far below this floor.
GATE_FLOOR_MS = 2.0

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def run_bench(build_dir: str, key: str, argv: list[str], out_json: str | None,
              runs: int) -> dict[str, list[float]]:
    """Run one bench `runs` times; return row name -> list of wall_ms."""
    exe = os.path.join(build_dir, argv[0])
    if not os.path.exists(exe):
        sys.exit(f"bench_compare: missing {exe} (build the repo first)")
    samples: dict[str, list[float]] = {}
    for _ in range(runs):
        with tempfile.TemporaryDirectory(prefix=f"pvbench_{key}_") as cwd:
            proc = subprocess.run(
                [os.path.abspath(exe), *argv[1:]],
                cwd=cwd, capture_output=True, text=True)
            if proc.returncode != 0:
                sys.stderr.write(proc.stdout + proc.stderr)
                sys.exit(f"bench_compare: {argv[0]} exited {proc.returncode}")
            if out_json is None:
                rows = parse_google_benchmark(proc.stdout)
            else:
                with open(os.path.join(cwd, out_json), encoding="utf-8") as f:
                    rows = {r["name"]: float(r["wall_ms"])
                            for r in json.load(f)["records"]}
        for name, wall_ms in rows.items():
            if wall_ms > 0.0:  # 0 = variant skipped this run (e.g. --quick)
                samples.setdefault(name, []).append(wall_ms)
    return samples


def parse_google_benchmark(stdout: str) -> dict[str, float]:
    doc = json.loads(stdout)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows (mean/median/stddev)
        unit = TIME_UNIT_TO_MS.get(b.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"bench_compare: unknown time unit in {b['name']}")
        rows[b["name"]] = float(b["real_time"]) * unit
    return rows


def min_rows(samples: dict[str, list[float]]) -> dict[str, float]:
    return {name: min(vals) for name, vals in samples.items()}


def baseline_path(baseline_dir: str, key: str) -> str:
    return os.path.join(baseline_dir, f"BENCH_{key}.json")


def load_baseline(baseline_dir: str, key: str) -> dict[str, float] | None:
    path = baseline_path(baseline_dir, key)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as f:
        return {r["name"]: float(r["wall_ms"]) for r in json.load(f)["records"]}


def write_baseline(baseline_dir: str, key: str, rows: dict[str, float]) -> str:
    os.makedirs(baseline_dir, exist_ok=True)
    path = baseline_path(baseline_dir, key)
    records = [{"name": n, "wall_ms": w} for n, w in rows.items()]
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"bench": key, "records": records}, f, indent=2)
        f.write("\n")
    return path


def fmt_ms(ms: float) -> str:
    return f"{ms:.4g} ms" if ms >= 0.01 else f"{ms * 1e6:.4g} ns"


def machine_factor(current: dict[str, dict[str, float]],
                   baselines: dict[str, dict[str, float] | None],
                   keys: list[str]) -> tuple[float, int]:
    """Median now/baseline ratio over `keys` (1.0 when too few overlap)."""
    ratios = []
    for key in keys:
        base = baselines.get(key)
        if not base or key not in current:
            continue
        ratios.extend(now_ms / base[name]
                      for name, now_ms in current[key].items()
                      if name in base and base[name] > 0.0)
    factor = statistics.median(ratios) if len(ratios) >= 2 else 1.0
    if not (0.1 <= factor <= 10.0) or not math.isfinite(factor):
        sys.exit(f"bench_compare: implausible machine factor {factor:.3f}; "
                 "rebaseline or check the build")
    return factor, len(ratios)


def evaluate(current: dict[str, dict[str, float]],
             baselines: dict[str, dict[str, float] | None],
             info_only: dict[str, str | None],
             tolerance: float) -> list[tuple[str, float, float, float]]:
    """Print the comparison table; return [(label, scaled, now, delta)]."""
    factors = {}
    for key in current:
        factors[key], n_rows = machine_factor(current, baselines, [key])
        print(f"-- {key} machine factor {factors[key]:.3f} "
              f"(median now/baseline ratio over {n_rows} rows)")
    regressions = []
    header = f"{'bench/row':44s} {'baseline':>12s} {'scaled':>12s} {'now':>12s} {'delta':>8s}  verdict"
    print(header)
    print("-" * len(header))
    for key, rows in current.items():
        base = baselines.get(key)
        if base is None:
            print(f"{key:44s} {'(no baseline — run --rebaseline)':>12s}")
            continue
        for name, now_ms in sorted(rows.items()):
            label = f"{key}/{name}"
            if name not in base:
                print(f"{label:44s} {'new row':>12s} {'':>12s} {fmt_ms(now_ms):>12s}")
                continue
            base_ms = base[name]
            scaled = base_ms * factors[key]
            delta = now_ms / scaled - 1.0
            gated = info_only.get(key) is None and \
                (key == "micro" or base_ms >= GATE_FLOOR_MS)
            if info_only.get(key) is not None:
                verdict = f"info ({info_only[key]})"
            elif not gated:
                verdict = "info (below gate floor)"
            elif delta > tolerance:
                verdict = "REGRESSION"
                regressions.append((label, scaled, now_ms, delta))
            else:
                verdict = "ok"
            print(f"{label:44s} {fmt_ms(base_ms):>12s} {fmt_ms(scaled):>12s} "
                  f"{fmt_ms(now_ms):>12s} {delta:+7.1%}  {verdict}")
    return regressions


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--runs", type=int, default=3)
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative wall-time growth (default 0.10)")
    ap.add_argument("--only", action="append", metavar="BENCH",
                    help="restrict to one bench key (repeatable)")
    ap.add_argument("--rebaseline", action="store_true",
                    help="rewrite the committed baselines from this machine")
    args = ap.parse_args()

    benches = [b for b in BENCHES if not args.only or b[0] in args.only]
    if not benches:
        sys.exit(f"bench_compare: no bench matches --only {args.only}")
    info_only = {key: reason for key, _, _, reason in benches}

    samples: dict[str, dict[str, list[float]]] = {}
    for key, argv, out_json, _ in benches:
        print(f"-- running {key} x{args.runs} ...", flush=True)
        samples[key] = run_bench(args.build_dir, key, argv, out_json, args.runs)
    current = {key: min_rows(s) for key, s in samples.items()}

    if args.rebaseline:
        # Baselines record the per-row MEDIAN across runs — the typical
        # cost — while compare mode judges the per-row MIN.  Recording a
        # min would bake one lucky fast window into the floor, which
        # later runs of a 200 ms process on a shared box rarely rematch.
        for key, s in samples.items():
            rows = {name: statistics.median(vals) for name, vals in s.items()}
            print(f"   wrote {write_baseline(args.baseline_dir, key, rows)}")
        return 0

    baselines = {key: load_baseline(args.baseline_dir, key)
                 for key, _, _, _ in benches}
    regressions = evaluate(current, baselines, info_only, args.tolerance)

    if regressions:
        # Second chance: flagged benches get one re-measure pass (min
        # over ALL samples).  A busy window on the runner clears seconds
        # later; a real regression reproduces.
        retry_keys = sorted({label.split("/")[0]
                             for label, _, _, _ in regressions})
        print(f"\n-- {len(regressions)} row(s) flagged; "
              f"re-measuring {', '.join(retry_keys)} once ...", flush=True)
        for key, argv, out_json, _ in benches:
            if key not in retry_keys:
                continue
            more = run_bench(args.build_dir, key, argv, out_json, args.runs)
            for name, vals in more.items():
                samples[key].setdefault(name, []).extend(vals)
        current = {key: min_rows(s) for key, s in samples.items()}
        regressions = evaluate(current, baselines, info_only, args.tolerance)

    if regressions:
        print(f"\n{len(regressions)} row(s) regressed more than "
              f"{args.tolerance:.0%} vs baseline (reproduced on re-measure):")
        for label, scaled, now_ms, delta in regressions:
            print(f"  {label}: {fmt_ms(scaled)} -> {fmt_ms(now_ms)} ({delta:+.1%})")
        print("If intentional, rerun with --rebaseline and commit "
              "bench/baselines/.")
        return 1
    print("\nall gated rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
