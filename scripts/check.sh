#!/usr/bin/env bash
# One-shot local correctness gate: mirrors what CI enforces.
#
#   scripts/check.sh            # warnings-as-errors build + full ctest
#   scripts/check.sh --asan     # + ASan/UBSan build, ctest -LE soak
#   scripts/check.sh --tsan     # + TSan build, ctest -L "concurrency|resilience|infer|serve"
#   scripts/check.sh --tidy     # + clang-tidy over src/ (needs clang-tidy)
#   scripts/check.sh --lint     # + pv-lint domain-contract analyzer (no clang needed)
#   scripts/check.sh --bench    # + perf gate vs bench/baselines (bench_compare.py)
#   scripts/check.sh --all      # everything above
#
# Build trees land in build-check*/ so they never disturb ./build.
set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=0 run_tsan=0 run_tidy=0 run_lint=0 run_bench=0
for arg in "$@"; do
    case "$arg" in
        --asan) run_asan=1 ;;
        --tsan) run_tsan=1 ;;
        --tidy) run_tidy=1 ;;
        --lint) run_lint=1 ;;
        --bench) run_bench=1 ;;
        --all)  run_asan=1 run_tsan=1 run_tidy=1 run_lint=1 run_bench=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

jobs="$(nproc 2>/dev/null || echo 2)"
launcher=()
if command -v ccache >/dev/null 2>&1; then
    launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

step() { printf '\n== %s ==\n' "$*"; }

step "warnings-as-errors build + full test suite"
cmake -B build-check -S . -DPV_WERROR=ON "${launcher[@]}" >/dev/null
cmake --build build-check -j "$jobs"
ctest --test-dir build-check --output-on-failure -j "$jobs"

if [ "$run_asan" -eq 1 ]; then
    step "ASan + UBSan (ctest -LE soak)"
    cmake -B build-check-asan -S . -DPV_WERROR=ON \
        -DPV_SANITIZE=address,undefined "${launcher[@]}" >/dev/null
    cmake --build build-check-asan -j "$jobs"
    ASAN_OPTIONS=strict_string_checks=1:detect_stack_use_after_return=1 \
    UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
        ctest --test-dir build-check-asan --output-on-failure -j "$jobs" -LE soak
fi

if [ "$run_tsan" -eq 1 ]; then
    step 'TSan (ctest -L "concurrency|resilience|infer|serve")'
    cmake -B build-check-tsan -S . -DPV_WERROR=ON \
        -DPV_SANITIZE=thread "${launcher[@]}" >/dev/null
    cmake --build build-check-tsan -j "$jobs"
    TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
        ctest --test-dir build-check-tsan --output-on-failure -j "$jobs" -L "concurrency|resilience|infer|serve"
fi

if [ "$run_tidy" -eq 1 ]; then
    step "clang-tidy over src/"
    if ! command -v run-clang-tidy >/dev/null 2>&1; then
        echo "run-clang-tidy not found; install clang-tidy" >&2
        exit 1
    fi
    cmake -B build-check-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        "${launcher[@]}" >/dev/null
    run-clang-tidy -p build-check-tidy -quiet "$(pwd)/src/.*\.cpp$"
fi

if [ "$run_lint" -eq 1 ]; then
    step "pv-lint (domain contracts: determinism, layering, MSR safety)"
    # Standalone configure: builds only tools/pvlint, no GTest/benchmark,
    # so this works (fast) even where the full tree's deps are absent.
    cmake -B build-check-lint -S tools/pvlint "${launcher[@]}" >/dev/null
    cmake --build build-check-lint -j "$jobs"
    ./build-check-lint/pvlint --root .
fi

if [ "$run_bench" -eq 1 ]; then
    step "perf gate (bench_compare.py vs bench/baselines)"
    python3 scripts/bench_compare.py --build-dir build-check --runs 3
fi

step "all checks passed"
