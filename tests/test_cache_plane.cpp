// Cache-plane (plane 2) fault surface and its defense coverage.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/plundervolt.hpp"
#include "os/cpupower.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sim/cpu_profile.hpp"
#include "sim/ocm.hpp"
#include "test_helpers.hpp"

namespace pv::sim {
namespace {

// A cache-plane offset deep enough to fault loads at fmax, shallow
// enough not to crash: the load path factor (0.93) scales the core-plane
// band boundaries by design.
Millivolts cache_fault_offset(const Machine& m) {
    const Megahertz f = m.profile().freq_max;
    const Millivolts onset = m.fault_model().onset_offset(f, InstrClass::Load);
    return onset - Millivolts{6.0};
}

TEST(CachePlane, CacheUndervoltFaultsLoadsNotImuls) {
    Machine m(cometlake_i7_10510u(), 301);
    m.set_all_frequencies(m.profile().freq_max);
    m.advance_to(m.rail_settle_time());
    m.write_msr(0, kMsrOcMailbox,
                encode_offset(cache_fault_offset(m), VoltagePlane::Cache));
    m.advance_to(m.rail_settle_time());
    ASSERT_FALSE(m.crashed());

    const BatchResult loads = m.run_batch(1, InstrClass::Load, 1'000'000);
    EXPECT_GT(loads.faults, 0u) << "loads ride the cache rail";
    const BatchResult imuls = m.run_batch(1, InstrClass::Imul, 1'000'000);
    EXPECT_EQ(imuls.faults, 0u) << "the core rail is untouched";
}

TEST(CachePlane, CoreUndervoltDoesNotFaultLoads) {
    Machine m(cometlake_i7_10510u(), 302);
    m.set_all_frequencies(m.profile().freq_max);
    m.advance_to(m.rail_settle_time());
    const Millivolts imul_onset =
        m.fault_model().onset_offset(m.profile().freq_max, InstrClass::Imul);
    m.write_msr(0, kMsrOcMailbox,
                encode_offset(imul_onset - Millivolts{6.0}, VoltagePlane::Core));
    m.advance_to(m.rail_settle_time());
    ASSERT_FALSE(m.crashed());
    EXPECT_EQ(m.run_batch(1, InstrClass::Load, 500'000).faults, 0u);
    EXPECT_GT(m.run_batch(1, InstrClass::Imul, 500'000).faults, 0u);
}

TEST(CachePlane, DeepCacheUndervoltCrashes) {
    Machine m(cometlake_i7_10510u(), 303);
    m.set_all_frequencies(m.profile().freq_max);
    m.advance_to(m.rail_settle_time());
    m.write_msr(0, kMsrOcMailbox, encode_offset(Millivolts{-300.0}, VoltagePlane::Cache));
    m.advance(milliseconds(2.0));
    EXPECT_TRUE(m.crashed());
    EXPECT_NE(m.crash_reason().find("cache"), std::string::npos);
}

TEST(CachePlane, MailboxReadbackReportsDeepestPlane) {
    Machine m(cometlake_i7_10510u(), 304);
    m.write_msr(0, kMsrOcMailbox, encode_offset(Millivolts{-40.0}, VoltagePlane::Core));
    m.write_msr(0, kMsrOcMailbox, encode_offset(Millivolts{-120.0}, VoltagePlane::Cache));
    const auto req = decode_offset(m.read_msr(0, kMsrOcMailbox));
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->plane, VoltagePlane::Cache);
    EXPECT_NEAR(req->offset.value(), -120.0, 1.0);

    m.write_msr(0, kMsrOcMailbox, encode_offset(Millivolts{-200.0}, VoltagePlane::Core));
    const auto req2 = decode_offset(m.read_msr(0, kMsrOcMailbox));
    ASSERT_TRUE(req2.has_value());
    EXPECT_EQ(req2->plane, VoltagePlane::Core);
}

TEST(CachePlane, PlundervoltCacheVariantWeaponizesUnprotected) {
    Machine m(cometlake_i7_10510u(), 305);
    os::Kernel kernel(m);
    attack::PlundervoltConfig config;
    config.plane = VoltagePlane::Cache;
    attack::Plundervolt atk(config);
    const attack::AttackResult r = atk.run(kernel);
    EXPECT_TRUE(r.weaponized);
    EXPECT_NE(r.weaponization.find("cache-plane"), std::string::npos);
}

TEST(CachePlane, PollingModuleRestoresTheOffendingPlane) {
    Machine m(cometlake_i7_10510u(), 306);
    os::Kernel kernel(m);
    plugvolt::Protector protector(kernel, pv::test::comet_map());
    protector.deploy(plugvolt::DeploymentLevel::KernelModule);

    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());
    cpupower.frequency_set(m.profile().freq_max);
    m.advance_to(m.rail_settle_time());
    kernel.msr().ioctl_wrmsr(0, 0, kMsrOcMailbox,
                             encode_offset(Millivolts{-200.0}, VoltagePlane::Cache));
    m.advance(milliseconds(1.0));

    EXPECT_GE(protector.polling_module()->metrics().detections, 1u);
    EXPECT_FALSE(m.crashed());
    EXPECT_GT(m.regulator().target(VoltagePlane::Cache).value(), -100.0)
        << "the CACHE plane command was repaired";
    EXPECT_EQ(m.run_batch(1, InstrClass::Load, 500'000).faults, 0u);
}

TEST(CachePlane, PollingModuleBlocksCacheVariantAttack) {
    Machine m(cometlake_i7_10510u(), 307);
    os::Kernel kernel(m);
    plugvolt::Protector protector(kernel, pv::test::comet_map());
    protector.deploy(plugvolt::DeploymentLevel::KernelModule);
    attack::PlundervoltConfig config;
    config.plane = VoltagePlane::Cache;
    attack::Plundervolt atk(config);
    const attack::AttackResult r = atk.run(kernel);
    EXPECT_FALSE(r.weaponized);
    EXPECT_EQ(r.faults_observed, 0u);
}

TEST(CachePlane, VendorDeploymentsGuardCachePlaneToo) {
    for (const auto level :
         {plugvolt::DeploymentLevel::Microcode, plugvolt::DeploymentLevel::HardwareMsr}) {
        Machine m(cometlake_i7_10510u(), 308);
        os::Kernel kernel(m);
        plugvolt::Protector protector(kernel, pv::test::comet_map());
        protector.deploy(level);
        m.set_all_frequencies(m.profile().freq_max);
        m.advance_to(m.rail_settle_time());
        kernel.msr().ioctl_wrmsr(0, 0, kMsrOcMailbox,
                                 encode_offset(Millivolts{-250.0}, VoltagePlane::Cache));
        m.advance(milliseconds(1.0));
        EXPECT_FALSE(m.crashed()) << plugvolt::to_string(level);
        EXPECT_EQ(m.run_batch(1, InstrClass::Load, 1'000'000).faults, 0u)
            << plugvolt::to_string(level);
    }
}

TEST(CachePlane, GpuPlaneStaysInertAndUnguarded) {
    // Planes without a modeled fault path are left alone (documented
    // limitation matching the paper's plane-0 characterization).
    Machine m(cometlake_i7_10510u(), 309);
    os::Kernel kernel(m);
    plugvolt::Protector protector(kernel, pv::test::comet_map());
    protector.deploy(plugvolt::DeploymentLevel::Microcode);
    EXPECT_TRUE(m.write_msr(0, kMsrOcMailbox,
                            encode_offset(Millivolts{-250.0}, VoltagePlane::Gpu)));
    m.advance(milliseconds(1.0));
    EXPECT_FALSE(m.crashed());
}

}  // namespace
}  // namespace pv::sim
