// The 23 SPEC2017-rate stand-in kernels.
#include "workload/spec.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workload/spec_suite.hpp"

namespace pv::workload {
namespace {

TEST(SpecSuiteFactory, Has23KernelsInTable2Order) {
    const auto suite = spec2017_rate_suite(1);
    ASSERT_EQ(suite.size(), 23u);
    const auto& anchors = table2_anchors();
    ASSERT_EQ(anchors.size(), 23u);
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i]->name(), anchors[i].name) << i;
}

TEST(SpecSuiteFactory, NamesAreUnique) {
    const auto suite = spec2017_rate_suite(1);
    std::set<std::string> names;
    for (const auto& w : suite) names.emplace(w->name());
    EXPECT_EQ(names.size(), suite.size());
}

// Parameterized over all 23 kernels.
class SpecKernel : public ::testing::TestWithParam<int> {
protected:
    [[nodiscard]] std::unique_ptr<Workload> make(std::uint64_t seed) const {
        auto suite = spec2017_rate_suite(seed);
        return std::move(suite[static_cast<std::size_t>(GetParam())]);
    }
};

TEST_P(SpecKernel, DeterministicForSeed) {
    auto a = make(42);
    auto b = make(42);
    EXPECT_EQ(a->run_units(3), b->run_units(3)) << a->name();
}

TEST_P(SpecKernel, ChecksumDependsOnWork) {
    auto a = make(42);
    auto b = make(42);
    EXPECT_NE(a->run_units(2), b->run_units(4)) << a->name();
}

TEST_P(SpecKernel, CostModelIsPlausible) {
    auto w = make(1);
    const CostModel cost = w->cost_model();
    EXPECT_GE(cost.instructions_per_unit, 100'000u) << w->name();
    EXPECT_LE(cost.instructions_per_unit, 10'000'000u) << w->name();
    EXPECT_GE(cost.ipc, 0.5) << w->name();
    EXPECT_LE(cost.ipc, 4.0) << w->name();
}

TEST_P(SpecKernel, ZeroUnitsIsIdentityChecksum) {
    auto w = make(7);
    EXPECT_EQ(w->run_units(0), 0u) << w->name();
}

INSTANTIATE_TEST_SUITE_P(All23, SpecKernel, ::testing::Range(0, 23));

TEST(SpecKernels, DifferentSeedsUsuallyDiffer) {
    const auto a = spec2017_rate_suite(1);
    const auto b = spec2017_rate_suite(2);
    int differing = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        differing += (a[i]->run_units(2) != b[i]->run_units(2));
    EXPECT_GE(differing, 20) << "kernels must actually consume their seed";
}

TEST(SpecKernels, IpcSpreadCoversMemoryAndComputeBound) {
    const auto suite = spec2017_rate_suite(1);
    double lo = 10.0, hi = 0.0;
    for (const auto& w : suite) {
        lo = std::min(lo, w->cost_model().ipc);
        hi = std::max(hi, w->cost_model().ipc);
    }
    EXPECT_LT(lo, 1.0) << "a memory-bound kernel (mcf family) exists";
    EXPECT_GT(hi, 2.0) << "a compute-dense kernel (x264 family) exists";
}

}  // namespace
}  // namespace pv::workload
