// Eq. 1-3 physics tests.
#include "sim/timing_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/cpu_profile.hpp"
#include "util/error.hpp"

namespace pv::sim {
namespace {

TimingParams params() { return skylake_i5_6500().timing; }

TEST(TimingModel, DelayDecreasesWithVoltage) {
    const TimingModel model(params());
    double prev = model.path_delay_ps(Millivolts{400.0});
    for (double mv = 450.0; mv <= 1300.0; mv += 50.0) {
        const double d = model.path_delay_ps(Millivolts{mv});
        EXPECT_LT(d, prev) << "delay must shrink as voltage rises, at " << mv;
        prev = d;
    }
}

TEST(TimingModel, DelayExplodesAtThreshold) {
    const TimingModel model(params());
    EXPECT_TRUE(std::isinf(model.path_delay_ps(params().threshold_voltage)));
    EXPECT_TRUE(std::isinf(model.path_delay_ps(Millivolts{100.0})));
}

TEST(TimingModel, SlackIsPeriodMinusOverheads) {
    const TimingModel model(params());
    const Megahertz f = from_ghz(2.0);
    EXPECT_DOUBLE_EQ(model.slack_ps(f),
                     500.0 - params().setup_time_ps - params().clock_uncertainty_ps);
}

TEST(TimingModel, MarginSignFlipsAtCriticalVoltage) {
    const TimingModel model(params());
    const Megahertz f = from_ghz(3.0);
    const Millivolts vc = model.critical_voltage(f, InstrClass::Imul);
    EXPECT_GT(model.margin_ps(f, vc + Millivolts{5.0}, InstrClass::Imul), 0.0);
    EXPECT_LT(model.margin_ps(f, vc - Millivolts{5.0}, InstrClass::Imul), 0.0);
    EXPECT_NEAR(model.margin_ps(f, vc, InstrClass::Imul), 0.0, 0.5);
}

TEST(TimingModel, CriticalVoltageGrowsWithFrequency) {
    const TimingModel model(params());
    double prev = 0.0;
    for (double ghz = 1.0; ghz <= 3.6; ghz += 0.2) {
        const double vc = model.critical_voltage(from_ghz(ghz), InstrClass::Imul).value();
        EXPECT_GT(vc, prev) << "faster clock needs more voltage, at " << ghz << " GHz";
        prev = vc;
    }
}

TEST(TimingModel, ShorterPathsHaveLowerCriticalVoltage) {
    const TimingModel model(params());
    const Megahertz f = from_ghz(3.0);
    const double imul = model.critical_voltage(f, InstrClass::Imul).value();
    const double fpmul = model.critical_voltage(f, InstrClass::FpMul).value();
    const double alu = model.critical_voltage(f, InstrClass::Alu).value();
    EXPECT_GT(imul, fpmul);
    EXPECT_GT(fpmul, alu);
}

TEST(TimingModel, BreakdownIsConsistent) {
    const TimingModel model(params());
    const Megahertz f = from_ghz(2.4);
    const Millivolts v{900.0};
    const TimingBreakdown b = model.breakdown(f, v, InstrClass::Imul);
    EXPECT_NEAR(b.t_src + b.t_prop, model.path_delay_ps(v, InstrClass::Imul), 1e-9);
    EXPECT_DOUBLE_EQ(b.t_clk, f.period_ps());
    EXPECT_DOUBLE_EQ(b.t_setup, params().setup_time_ps);
    EXPECT_DOUBLE_EQ(b.t_eps, params().clock_uncertainty_ps);
    EXPECT_NEAR(b.margin(), model.margin_ps(f, v, InstrClass::Imul), 1e-9);
    EXPECT_LT(b.t_src, b.t_prop) << "clock->Q is the smaller share";
}

TEST(TimingModel, PathFactorsOrdered) {
    EXPECT_EQ(path_factor(InstrClass::Imul), 1.0);
    double prev = 2.0;
    for (const InstrClass c : kAllInstrClasses) {
        EXPECT_GT(path_factor(c), 0.0);
        EXPECT_LE(path_factor(c), 1.0);
        EXPECT_LT(path_factor(c), prev) << to_string(c);
        prev = path_factor(c);
    }
}

TEST(TimingModel, RejectsBadParams) {
    TimingParams p = params();
    p.alpha = 0.5;
    EXPECT_THROW(TimingModel{p}, ConfigError);
    p = params();
    p.threshold_voltage = Millivolts{-1.0};
    EXPECT_THROW(TimingModel{p}, ConfigError);
    p = params();
    p.path_constant_ps = 0.0;
    EXPECT_THROW(TimingModel{p}, ConfigError);
    p = params();
    p.sigma_fraction = 0.0;
    EXPECT_THROW(TimingModel{p}, ConfigError);
    p = params();
    p.crash_path_factor = 1.5;
    EXPECT_THROW(TimingModel{p}, ConfigError);
}

}  // namespace
}  // namespace pv::sim
