#include <gtest/gtest.h>

#include "os/cpupower.hpp"
#include "os/kernel.hpp"
#include "sim/cpu_profile.hpp"
#include "sim/ocm.hpp"
#include "util/error.hpp"
#include "workload/crypto/aes.hpp"
#include "workload/crypto/bignum.hpp"
#include "workload/crypto/rsa_crt.hpp"

namespace pv::crypto {
namespace {

TEST(Bignum, MulmodMatchesWideArithmetic) {
    EXPECT_EQ(mulmod(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, 1000000007ULL),
              static_cast<u64>((static_cast<u128>(0xFFFFFFFFFFFFFFFFULL) *
                                0xFFFFFFFFFFFFFFFFULL) %
                               1000000007ULL));
    EXPECT_EQ(mulmod(7, 8, 5), 1u);
    EXPECT_THROW((void)mulmod(1, 2, 0), ConfigError);
}

TEST(Bignum, PowmodKnownValues) {
    EXPECT_EQ(powmod(2, 10, 1000), 24u);
    EXPECT_EQ(powmod(3, 0, 7), 1u);
    EXPECT_EQ(powmod(0, 5, 7), 0u);
    // Fermat: a^(p-1) = 1 mod p.
    EXPECT_EQ(powmod(12345, 1000000006ULL, 1000000007ULL), 1u);
}

TEST(Bignum, GcdAndModinv) {
    EXPECT_EQ(gcd(48, 18), 6u);
    EXPECT_EQ(gcd(17, 0), 17u);
    EXPECT_EQ(gcd(0, 17), 17u);
    const auto inv = modinv(3, 11);
    ASSERT_TRUE(inv.has_value());
    EXPECT_EQ(*inv, 4u);
    EXPECT_FALSE(modinv(6, 9).has_value());
    // Property: a * modinv(a, m) == 1 mod m for coprime pairs.
    for (u64 a = 2; a < 50; ++a) {
        const u64 m = 101;
        const auto i = modinv(a, m);
        ASSERT_TRUE(i.has_value());
        EXPECT_EQ(mulmod(a, *i, m), 1u);
    }
}

class PrimalityKnown : public ::testing::TestWithParam<std::pair<u64, bool>> {};

TEST_P(PrimalityKnown, Classifies) {
    const auto [n, prime] = GetParam();
    EXPECT_EQ(is_prime(n), prime) << n;
}

INSTANTIATE_TEST_SUITE_P(
    Values, PrimalityKnown,
    ::testing::Values(std::pair<u64, bool>{0, false}, std::pair<u64, bool>{1, false},
                      std::pair<u64, bool>{2, true}, std::pair<u64, bool>{3, true},
                      std::pair<u64, bool>{4, false}, std::pair<u64, bool>{37, true},
                      std::pair<u64, bool>{561, false},       // Carmichael
                      std::pair<u64, bool>{1105, false},      // Carmichael
                      std::pair<u64, bool>{2147483647, true}, // Mersenne prime 2^31-1
                      std::pair<u64, bool>{1000000007, true},
                      std::pair<u64, bool>{1000000008, false},
                      std::pair<u64, bool>{3215031751ULL, false},  // strong pseudoprime
                      std::pair<u64, bool>{18446744073709551557ULL, true}));

TEST(Bignum, RandomPrimeHasRequestedBits) {
    Rng rng(3);
    for (const unsigned bits : {8u, 16u, 30u, 40u}) {
        const u64 p = random_prime(rng, bits);
        EXPECT_TRUE(is_prime(p));
        EXPECT_GE(p, 1ULL << (bits - 1));
        EXPECT_LT(p, 1ULL << bits);
    }
    EXPECT_THROW((void)random_prime(rng, 7), ConfigError);
    EXPECT_THROW((void)random_prime(rng, 63), ConfigError);
}

TEST(RsaCrt, GeneratedKeyIsConsistent) {
    Rng rng(5);
    const RsaKey key = rsa_generate(rng);
    EXPECT_TRUE(is_prime(key.p));
    EXPECT_TRUE(is_prime(key.q));
    EXPECT_EQ(key.n, key.p * key.q);
    EXPECT_GT(key.p, key.q);
    const u64 phi = (key.p - 1) * (key.q - 1);
    EXPECT_EQ(mulmod(key.e, key.d, phi), 1u);
    EXPECT_EQ(mulmod(key.qinv, key.q % key.p, key.p), 1u);
}

TEST(RsaCrt, SignatureVerifies) {
    Rng rng(7);
    const RsaKey key = rsa_generate(rng);
    for (const u64 m : {u64{1}, u64{42}, u64{0xDEADBEEF}, key.n - 1}) {
        const u64 s = rsa_sign_reference(key, m);
        EXPECT_TRUE(rsa_verify(key, m, s)) << "m=" << m;
    }
}

TEST(RsaCrt, CrtMatchesDirectExponentiation) {
    Rng rng(9);
    const RsaKey key = rsa_generate(rng);
    for (u64 m = 1; m < 50; m += 7)
        EXPECT_EQ(rsa_sign_reference(key, m), powmod(m, key.d, key.n));
}

TEST(RsaCrt, BellcoreFactorsFromSingleHalfFault) {
    Rng rng(11);
    const RsaKey key = rsa_generate(rng);
    const u64 m = 0x1234567;
    // Synthesize a signature whose p-half is faulted: recombine with a
    // corrupted sp.
    const u64 sp_bad = powmod(m % key.p, key.dp, key.p) ^ 0x40;
    const u64 sq = powmod(m % key.q, key.dq, key.q);
    const u64 h = mulmod(key.qinv, (sp_bad % key.p + key.p - sq % key.p) % key.p, key.p);
    const u64 s_bad = sq + key.q * h;
    ASSERT_FALSE(rsa_verify(key, m, s_bad));
    const auto factor = bellcore_factor(key.n, key.e, m, s_bad);
    ASSERT_TRUE(factor.has_value());
    EXPECT_TRUE(*factor == key.p || *factor == key.q);
}

TEST(RsaCrt, BellcoreRejectsCorrectSignature) {
    Rng rng(13);
    const RsaKey key = rsa_generate(rng);
    const u64 s = rsa_sign_reference(key, 99);
    EXPECT_FALSE(bellcore_factor(key.n, key.e, 99, s).has_value());
}

TEST(RsaCrt, FaultableSignerCorrectAtNominal) {
    sim::Machine machine(sim::cometlake_i7_10510u(), 17);
    Rng rng(15);
    const RsaKey key = rsa_generate(rng);
    FaultableRsaSigner signer(machine, 1, key);
    for (const u64 m : {5ULL, 77777ULL, 0xCAFEBABEULL}) {
        EXPECT_EQ(signer.sign(m), rsa_sign_reference(key, m));
    }
    EXPECT_GT(signer.mul_count(), 0u);
}

TEST(RsaCrt, FaultableSignerFaultsUnderUndervolt) {
    sim::Machine machine(sim::cometlake_i7_10510u(), 19);
    os::Kernel kernel(machine);
    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(machine.profile().freq_max);
    machine.advance_to(machine.rail_settle_time());
    const Millivolts onset = machine.fault_model().onset_offset(
        machine.profile().freq_max, sim::InstrClass::Imul);
    machine.write_msr(0, sim::kMsrOcMailbox,
                      sim::encode_offset(onset - Millivolts{12.0}, sim::VoltagePlane::Core));
    machine.advance_to(machine.rail_settle_time());
    ASSERT_FALSE(machine.crashed());

    Rng rng(21);
    const RsaKey key = rsa_generate(rng);
    FaultableRsaSigner signer(machine, 1, key);
    bool faulted = false;
    for (int i = 0; i < 300 && !faulted; ++i)
        faulted = !rsa_verify(key, 1000 + static_cast<u64>(i),
                              signer.sign(1000 + static_cast<u64>(i)));
    EXPECT_TRUE(faulted);
}

TEST(RsaCrt, SignVerifiedSuppressesFaultyReleases) {
    // Shamir-style verify-before-release: under an undervolt that faults
    // plain sign(), the verified path never releases a bad signature.
    sim::Machine machine(sim::cometlake_i7_10510u(), 27);
    os::Kernel kernel(machine);
    os::Cpupower cpupower(kernel.cpufreq(), machine.core_count());
    cpupower.frequency_set(machine.profile().freq_max);
    machine.advance_to(machine.rail_settle_time());
    const Millivolts onset = machine.fault_model().onset_offset(
        machine.profile().freq_max, sim::InstrClass::Imul);
    // Shallow enough that retries succeed, deep enough that faults occur.
    machine.write_msr(0, sim::kMsrOcMailbox,
                      sim::encode_offset(onset - Millivolts{6.0}, sim::VoltagePlane::Core));
    machine.advance_to(machine.rail_settle_time());
    ASSERT_FALSE(machine.crashed());

    Rng rng(29);
    const RsaKey key = rsa_generate(rng);
    FaultableRsaSigner signer(machine, 1, key);
    for (int i = 0; i < 150; ++i) {
        const u64 m = 5000 + static_cast<u64>(i);
        EXPECT_TRUE(rsa_verify(key, m, signer.sign_verified(m)));
    }
    EXPECT_GT(signer.suppressed_faults(), 0u)
        << "faults did occur; they were caught before release";
}

TEST(RsaCrt, SignVerifiedGivesUpUnderPersistentFaults) {
    // Deep in the band nearly every signature faults: the signer must
    // refuse rather than leak.
    sim::Machine machine(sim::cometlake_i7_10510u(), 31);
    machine.set_all_frequencies(machine.profile().freq_max);
    machine.advance_to(machine.rail_settle_time());
    const Millivolts crash = machine.fault_model().crash_offset(machine.profile().freq_max);
    machine.write_msr(0, sim::kMsrOcMailbox,
                      sim::encode_offset(crash + Millivolts{3.0}, sim::VoltagePlane::Core));
    machine.advance_to(machine.rail_settle_time());
    ASSERT_FALSE(machine.crashed());

    Rng rng(33);
    const RsaKey key = rsa_generate(rng);
    FaultableRsaSigner signer(machine, 1, key);
    EXPECT_THROW((void)signer.sign_verified(42, 4), pv::SimError);
}

TEST(Aes, Fips197Vector) {
    const AesKey key = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                        0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
    const AesBlock pt = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                         0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
    const AesBlock expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                               0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
    EXPECT_EQ(aes128_encrypt(key, pt), expected);
}

TEST(Aes, SboxKnownEntries) {
    EXPECT_EQ(aes_sbox(0x00), 0x63);
    EXPECT_EQ(aes_sbox(0x01), 0x7c);
    EXPECT_EQ(aes_sbox(0x53), 0xed);
    EXPECT_EQ(aes_sbox(0xff), 0x16);
}

TEST(Aes, FaultableCleanAtNominal) {
    sim::Machine machine(sim::cometlake_i7_10510u(), 23);
    const AesKey key{};
    FaultableAes aes(machine, 0, key);
    const AesBlock pt{};
    const auto r = aes.encrypt(pt);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.ciphertext, aes128_encrypt(key, pt));
}

TEST(Aes, FaultableCorruptsUnderUndervolt) {
    sim::Machine machine(sim::cometlake_i7_10510u(), 25);
    machine.set_all_frequencies(machine.profile().freq_max);
    machine.advance_to(machine.rail_settle_time());
    // The FpMul path (factor 0.97) only faults within ~2 mV of the crash
    // boundary, so park one millivolt above it and farm a fault.
    const Millivolts crash = machine.fault_model().crash_offset(machine.profile().freq_max);
    machine.write_msr(0, sim::kMsrOcMailbox,
                      sim::encode_offset(crash + Millivolts{1.5}, sim::VoltagePlane::Core));
    machine.advance_to(machine.rail_settle_time());
    ASSERT_FALSE(machine.crashed());

    const AesKey key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    FaultableAes aes(machine, 1, key);
    const AesBlock pt = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
    const AesBlock good = aes128_encrypt(key, pt);
    bool corrupted = false;
    for (int i = 0; i < 60000 && !corrupted; ++i) {
        const auto r = aes.encrypt(pt);
        if (r.faulted) {
            EXPECT_NE(r.ciphertext, good);
            EXPECT_GE(r.faulted_round, 1);
            EXPECT_LE(r.faulted_round, 10);
            corrupted = true;
        }
    }
    EXPECT_TRUE(corrupted);
}

}  // namespace
}  // namespace pv::crypto
