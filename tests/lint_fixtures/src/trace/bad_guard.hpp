// Seeded violation: a second orphaned-Mutex site (concurrency-guard),
// in a different subsystem from bad_mutex.cpp.
#pragma once

class FixtureTraceBuffer {
    mutable Mutex buffer_mutex_;  // line 6: concurrency-guard
};
