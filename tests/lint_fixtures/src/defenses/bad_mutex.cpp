// Seeded violations: concurrency-primitive (raw std primitives invisible
// to the thread-safety analysis) and concurrency-guard (a Mutex that
// guards no annotated field).  Lines pinned by tests/test_pvlint.cpp.
#include <mutex>

struct FixtureShared {
    std::mutex legacy_mutex;            // line 7: concurrency-primitive
    std::condition_variable legacy_cv;  // line 8: concurrency-primitive
    Mutex orphan_mutex_;                // line 9: concurrency-guard
};
