// Seeded violations: error-path-throw — the throwing legacy driver API
// on resilience paths, where environment faults must be domain values.
// Lines pinned by tests/test_pvlint.cpp.
#include <cstdint>

struct FixtureDriver {
    std::uint64_t rdmsr(std::uint32_t reg);
    void ioctl_wrmsr(std::uint32_t reg, std::uint64_t value);
};

std::uint64_t fixture_poll(FixtureDriver& driver, FixtureDriver* raw,
                           std::uint32_t reg) {
    const std::uint64_t status = driver.rdmsr(reg);  // line 13: error-path-throw
    raw->ioctl_wrmsr(reg, status);                   // line 14: error-path-throw
    return status;
}
