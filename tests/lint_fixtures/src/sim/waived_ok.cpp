// A correctly waived violation: the waiver names the rule and carries a
// reason, so pvlint must suppress it (visible only via --show-suppressed).
#include <chrono>

double fixture_sanctioned_timing() {
    // pv-lint: allow(determinism-clock) fixture: demonstrates a valid waiver
    const auto t0 = std::chrono::steady_clock::now();  // line 7: waived
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
