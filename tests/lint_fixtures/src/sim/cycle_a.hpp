// Half of a seeded include cycle (layering-cycle): a -> b -> a.
#pragma once
#include "sim/cycle_b.hpp"  // line 3: one edge of the cycle

inline int fixture_cycle_a() { return 1; }
