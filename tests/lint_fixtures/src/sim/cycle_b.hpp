// Other half of the seeded include cycle (layering-cycle).
#pragma once
#include "sim/cycle_a.hpp"  // line 3: the back edge closing the cycle

inline int fixture_cycle_b() { return 2; }
