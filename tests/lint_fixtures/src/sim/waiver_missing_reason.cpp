// A malformed waiver: no reason after allow(...).  pvlint must emit a
// "waiver" finding for the comment AND leave the original unsuppressed.
#include <chrono>

double fixture_unjustified() {
    // pv-lint: allow(determinism-clock)
    const auto t0 = std::chrono::system_clock::now();  // line 7: still blocking
    return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
