// Seeded violations: determinism-rng and determinism-unordered.
// Line numbers are pinned by tests/test_pvlint.cpp — edit both together.
#include <random>
#include <unordered_map>  // line 4: determinism-unordered

int fixture_entropy() {
    std::random_device rd;  // line 7: determinism-rng
    int x = rand();         // line 8: determinism-rng
    // "rand()" in a comment or string must NOT be flagged: rand() srand()
    const char* s = "calls rand() and uses std::unordered_map";
    (void)s;
    std::unordered_map<int, int> table;  // line 12: determinism-unordered
    table[static_cast<int>(rd())] = x;
    return static_cast<int>(table.size());
}
