// Fixture registry: pvlint parses these initializers to learn which hex
// values rule msr-constant guards — 0x7F7 below proves the parser path
// (it is not in the builtin list, yet bad_msr.cpp's raw 0x7F7 is flagged).
#pragma once

#include <cstdint>

namespace pv::msr {

inline constexpr std::uint32_t kOcMailbox = 0x150;
inline constexpr std::uint32_t kPerfStatus = 0x198;
inline constexpr std::uint32_t kFixtureOnly = 0x7F7;

}  // namespace pv::msr
