// Seeded violation: layering.  plugvolt (rank 4) defines the adaptive
// delegation surface (AdaptivePlannerFn) but must not include its
// implementer infer (rank 5) — callers inject the planner downward.
// Lines pinned by tests/test_pvlint.cpp.
#include "infer/adaptive_planner.hpp"  // line 5: layering (plugvolt -> infer)

int fixture_bad_adaptive() { return 0; }
