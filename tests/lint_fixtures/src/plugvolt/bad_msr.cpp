// Seeded violations: msr-constant (raw register numbers that belong in
// the central registry) and msr-raw-access (machine-level MSR pokes
// outside src/os).  Lines pinned by tests/test_pvlint.cpp.
#include <cstdint>

struct FixtureMachine {
    void write_msr(int cpu, std::uint32_t reg, std::uint64_t value);
    std::uint64_t read_msr(int cpu, std::uint32_t reg);
};

void fixture_poke(FixtureMachine& machine) {
    machine.write_msr(0, 0x150, 0);    // line 12: msr-constant + msr-raw-access
    (void)machine.read_msr(0, 0x7F7);  // line 13: same, 0x7F7 via registry parse
    std::uint64_t not_an_msr = 0xDEAD;  // NOT flagged: not a registry value
    (void)not_an_msr;
}
