// Seeded violations: layering (infer, rank 5, climbing to campaign) and
// determinism-unordered (src/infer carries posterior fingerprints).
// Lines pinned by tests/test_pvlint.cpp.
#include "campaign/bad_clock.hpp"  // line 4: layering (infer -> campaign)
#include <unordered_map>           // line 5: determinism-unordered

int fixture_infer_posterior() {
    std::unordered_map<int, double> weights;  // line 8: determinism-unordered
    weights[1] = 0.5;
    return static_cast<int>(weights.size());
}
