// Exists so bad_layering.cpp's campaign include resolves in the file
// graph; deliberately violation-free.
#pragma once

double fixture_elapsed();
