// Seeded violations: determinism-clock (wall/monotonic time in a
// fingerprint-bearing subsystem; simulated time comes from the event
// queue).  Lines pinned by tests/test_pvlint.cpp.
#include <chrono>

double fixture_elapsed() {
    const auto t0 = std::chrono::steady_clock::now();  // line 7: determinism-clock
    const auto t1 = std::chrono::system_clock::now();  // line 8: determinism-clock
    (void)t1;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)  // line 10
        .count();
}
