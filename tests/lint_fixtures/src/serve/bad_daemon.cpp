// Seeded violations: trace-tap (serve reaching past the sanctioned
// trace headers into recorder internals) and determinism-unordered
// (src/serve computes queue fingerprints).
// Lines pinned by tests/test_pvlint.cpp.
#include "trace/recorder.hpp"  // line 5: trace-tap (recorder is internal)
#include <unordered_map>       // line 6: determinism-unordered

int fixture_serve_daemon() {
    std::unordered_map<int, int> queue;  // line 9: determinism-unordered
    queue[1] = 2;
    return static_cast<int>(queue.size());
}
