// Seeded violations: two determinism-unordered findings — iteration
// order of a hash set would leak into the job WAL replay and the queue
// fingerprint.  Lines pinned by tests/test_pvlint.cpp.
#include <unordered_set>  // line 4: determinism-unordered

int fixture_serve_queue() {
    std::unordered_set<int> pending;  // line 7: determinism-unordered
    pending.insert(42);
    return static_cast<int>(pending.size());
}
