// Seeded violations: layering.  util is rank 0 — the bottom of the
// subsystem DAG — so including sim (rank 2) or campaign (rank 7) climbs
// the graph.  Lines pinned by tests/test_pvlint.cpp.
#include "sim/cycle_a.hpp"          // line 4: layering (util -> sim)
#include "campaign/bad_clock.hpp"   // line 5: layering (util -> campaign)

int fixture_layering() { return 0; }
