// MsrAuditor: the runtime audit of the 0x150/0x198 surface must catch
// forged out-of-band mailbox writes, unsafe writes that bypass the
// polling guard, out-of-range offsets, malformed encodings, and stale
// 0x198 reads — and stay silent on legitimate traffic.
#include "check/msr_auditor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "os/kernel.hpp"
#include "plugvolt/polling_module.hpp"
#include "sim/cpu_profile.hpp"
#include "sim/machine.hpp"
#include "sim/ocm.hpp"
#include "test_helpers.hpp"

namespace pv::check {
namespace {

class MsrAuditorTest : public ::testing::Test {
protected:
    MsrAuditorTest()
        : map_(test::cached_map(sim::skylake_i5_6500())),
          machine_(sim::skylake_i5_6500(), /*seed=*/0x5EED),
          kernel_(machine_) {}

    /// A (frequency, offset) pair that classifies Unsafe in the map but
    /// is shallower than the sweep floor (so only UnsafeWrite fires).
    /// Checked through the encode/decode round trip, since that is the
    /// quantized value the auditor will classify.
    [[nodiscard]] std::pair<Megahertz, Millivolts> unsafe_point() const {
        for (auto it = map_.rows().rbegin(); it != map_.rows().rend(); ++it) {
            if (it->fault_free) continue;
            const Millivolts candidate = it->onset - Millivolts{5.0};
            const auto decoded =
                sim::decode_offset(sim::encode_offset(candidate, sim::VoltagePlane::Core));
            if (decoded && decoded->offset > map_.sweep_floor() &&
                map_.is_unsafe(it->freq, decoded->offset))
                return {it->freq, candidate};
        }
        ADD_FAILURE() << "map has no unsafe cell above the floor";
        return {Megahertz{0.0}, Millivolts{0.0}};
    }

    /// Raises every core to `f` and waits out the rail so the raise
    /// actually applies (frequency raises are deferred until the rail
    /// settles; the auditor classifies at the *active* frequency).
    void raise_all_to(Megahertz f) {
        machine_.set_all_frequencies(f);
        if (machine_.rail_settle_time() > machine_.now())
            machine_.advance(machine_.rail_settle_time() - machine_.now());
        ASSERT_EQ(machine_.max_active_frequency().value(), f.value());
    }

    const plugvolt::SafeStateMap& map_;
    sim::Machine machine_;
    os::Kernel kernel_;
};

TEST_F(MsrAuditorTest, LegitimateSafeTrafficIsClean) {
    MsrAuditor auditor(kernel_, {.map = &map_});
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox,
                        sim::encode_offset(Millivolts{-50.0}, sim::VoltagePlane::Core));
    machine_.advance(machine_.rail_settle_time() - machine_.now());
    (void)kernel_.msr().rdmsr(0, 0, sim::kMsrPerfStatus);
    (void)kernel_.msr().rdmsr(0, 0, sim::kMsrOcMailbox);
    EXPECT_TRUE(auditor.violations().empty());
    EXPECT_GE(auditor.audited_accesses(), 3u);
}

TEST_F(MsrAuditorTest, CatchesForgedOutOfBandMailboxWrite) {
    MsrAuditor auditor(kernel_, {.map = &map_});
    // The forgery: a write that reaches the machine without ever passing
    // the MSR driver — the software analogue of SVID bus injection.
    machine_.write_msr(0, sim::kMsrOcMailbox,
                       sim::encode_offset(Millivolts{-50.0}, sim::VoltagePlane::Core));
    ASSERT_EQ(auditor.violations().size(), 1u);
    EXPECT_EQ(auditor.violations()[0].kind, AuditKind::OutOfBandWrite);
    EXPECT_EQ(auditor.violations()[0].addr, sim::kMsrOcMailbox);
}

TEST_F(MsrAuditorTest, RejectsUnsafeWriteThatBypassesThePollingGuard) {
    MsrAuditor auditor(kernel_, {.map = &map_});
    const auto [freq, offset] = unsafe_point();
    raise_all_to(freq);
    ASSERT_FALSE(kernel_.module_loaded(plugvolt::PollingModule::kModuleName));
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox,
                        sim::encode_offset(offset, sim::VoltagePlane::Core));
    ASSERT_EQ(auditor.violations().size(), 1u);
    EXPECT_EQ(auditor.violations()[0].kind, AuditKind::UnsafeWrite);
}

TEST_F(MsrAuditorTest, SameUnsafeWriteIsGuardedTrafficWithTheModuleLoaded) {
    MsrAuditor auditor(kernel_, {.map = &map_});
    const auto [freq, offset] = unsafe_point();
    raise_all_to(freq);
    plugvolt::PollingConfig config;
    ASSERT_TRUE(kernel_.load_module(std::make_shared<plugvolt::PollingModule>(map_, config)));
    auditor.clear();  // module init traffic is not under test
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox,
                        sim::encode_offset(offset, sim::VoltagePlane::Core));
    for (const AuditViolation& v : auditor.violations())
        EXPECT_NE(v.kind, AuditKind::UnsafeWrite) << v.detail;
}

TEST_F(MsrAuditorTest, FlagsOffsetDeeperThanTheAuditedFloor) {
    MsrAuditor auditor(kernel_, {.map = &map_});  // floor = map sweep floor (-300 mV)
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox,
                        sim::encode_offset(Millivolts{-350.0}, sim::VoltagePlane::Core));
    bool saw_range = false;
    for (const AuditViolation& v : auditor.violations())
        saw_range |= v.kind == AuditKind::OffsetOutOfRange;
    EXPECT_TRUE(saw_range);
}

TEST_F(MsrAuditorTest, FlagsMalformedPlaneEncoding) {
    MsrAuditor auditor(kernel_, {});
    // Plane field (bits 40-42) = 5: unassigned; command + write-enable set.
    const std::uint64_t forged =
        (1ULL << 63) | (5ULL << 40) | (1ULL << 32) | (0x7F0ULL << 21);
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox, forged);
    ASSERT_EQ(auditor.violations().size(), 1u);
    EXPECT_EQ(auditor.violations()[0].kind, AuditKind::MalformedMailbox);
}

TEST_F(MsrAuditorTest, NoEffectWritesAreNotValidated) {
    MsrAuditor auditor(kernel_, {.map = &map_});
    // Write-enable missing: hardware treats it as a no-op, so does the audit.
    const std::uint64_t no_effect = (1ULL << 63) | (0ULL << 40);
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox, no_effect);
    EXPECT_TRUE(auditor.violations().empty());
}

TEST_F(MsrAuditorTest, FlagsStalePerfStatusReadMidTransition) {
    MsrAuditor auditor(kernel_, {.map = &map_});
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox,
                        sim::encode_offset(Millivolts{-80.0}, sim::VoltagePlane::Core));
    ASSERT_LT(machine_.now(), machine_.rail_settle_time());
    (void)kernel_.msr().rdmsr(0, 0, sim::kMsrPerfStatus);  // rail still slewing
    ASSERT_EQ(auditor.violations().size(), 1u);
    EXPECT_EQ(auditor.violations()[0].kind, AuditKind::StaleStatusRead);

    auditor.clear();
    machine_.advance(machine_.rail_settle_time() - machine_.now());
    (void)kernel_.msr().rdmsr(0, 0, sim::kMsrPerfStatus);  // settled: fine
    EXPECT_TRUE(auditor.violations().empty());
}

TEST_F(MsrAuditorTest, DetachesOnDestruction) {
    {
        MsrAuditor auditor(kernel_, {});
        EXPECT_EQ(kernel_.msr().observer(), &auditor);
    }
    EXPECT_EQ(kernel_.msr().observer(), nullptr);
    // No auditor attached: traffic flows unobserved, nothing crashes.
    machine_.write_msr(0, sim::kMsrOcMailbox,
                       sim::encode_offset(Millivolts{-50.0}, sim::VoltagePlane::Core));
    kernel_.msr().wrmsr(0, 0, sim::kMsrOcMailbox,
                        sim::encode_offset(Millivolts{-40.0}, sim::VoltagePlane::Core));
}

#if PV_CHECK_LEVEL >= 1

using MsrAuditorDeathTest = MsrAuditorTest;

TEST_F(MsrAuditorDeathTest, FatalModeAbortsOnForgedWrite) {
    MsrAuditor auditor(kernel_, {.map = &map_, .fatal = true});
    EXPECT_DEATH(machine_.write_msr(0, sim::kMsrOcMailbox,
                                    sim::encode_offset(Millivolts{-50.0},
                                                       sim::VoltagePlane::Core)),
                 "out-of-band-write");
}

#endif

}  // namespace
}  // namespace pv::check
