// Soak: the kill/resume differential at FLEET granularity.
//
// For every seed: run an uninterrupted fleet characterization as the
// reference, then replay the same lot + protocol against a shared fleet
// journal but kill the run (unit progress callback throws) after a
// seed-derived number of delivered units, resume from the journal
// recovered off disk, and assert the resumed PopulationEnvelope is
// state_hash-bit-identical to the uninterrupted one.  Odd seeds run the
// whole differential under an injected-fault environment (busy
// mailboxes, torn reads) — fleet resume must shrug that off exactly
// like the single-unit soak does.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fleet/fleet_orchestrator.hpp"
#include "fleet/silicon_lot.hpp"
#include "resilience/fault_injection.hpp"
#include "resilience/journal.hpp"
#include "sim/cpu_profile.hpp"
#include "util/rng.hpp"

namespace pv::fleet {
namespace {

struct KillSignal {};

TEST(FleetResumeSoak, KillAndResumeIsBitIdenticalAcrossSeeds) {
    const SiliconLot lot(sim::cometlake_i7_10510u(), {});
    constexpr int kSeeds = 25;
    constexpr std::uint64_t kUnits = 6;
    for (int i = 0; i < kSeeds; ++i) {
        const std::uint64_t seed = mix_seed(0xF1EE'2026, static_cast<std::uint64_t>(i));
        SCOPED_TRACE("seed index " + std::to_string(i));

        FleetConfig config;
        config.units = kUnits;
        config.sweep.cell.offset_step = Millivolts{10.0};
        config.sweep.mode = plugvolt::SweepMode::Bisection;
        config.sweep.seed = seed;
        config.workers = 2;
        config.envelope.mad_floor_mv = 10.0;
        if (i % 2 == 1) {
            resilience::FaultPlan plan;
            plan.seed = mix_seed(seed, 0xFA01);
            plan.set_rate(resilience::FaultKind::MailboxBusy, 0.1);
            plan.set_rate(resilience::FaultKind::StaleRead, 0.05);
            config.sweep.cell.retry.max_attempts = 8;
            config.sweep.fault_plan = plan;
        }

        FleetOrchestrator fleet(lot, config);
        const std::uint64_t reference = state_hash(fleet.characterize());

        const std::string path =
            ::testing::TempDir() + "pv_fleet_resume_soak_" + std::to_string(i) + ".pvj";
        // Kill after a seed-derived number of delivered units in
        // [1, kUnits-1]: every delivered unit's rows are already durable.
        const std::uint64_t kill_after = 1 + seed % (kUnits - 1);
        {
            resilience::SweepJournal journal(path, fleet.journal_header(), {});
            std::uint64_t delivered = 0;
            EXPECT_THROW(
                (void)fleet.characterize(
                    journal, [&delivered, kill_after](std::uint64_t,
                                                      const plugvolt::SafeStateMap&) {
                        if (++delivered == kill_after) throw KillSignal{};
                    }),
                KillSignal);
        }
        resilience::SweepJournal recovered = resilience::SweepJournal::resume(path, {});
        // At least the delivered units' rows survived the kill; the
        // whole fleet did not.
        EXPECT_GE(recovered.rows().size(), kill_after * fleet.row_stride());
        EXPECT_LT(recovered.rows().size(), kUnits * fleet.row_stride());

        EXPECT_EQ(state_hash(fleet.resume(recovered)), reference);
        EXPECT_GE(fleet.stats().units_resumed, kill_after);
        EXPECT_EQ(fleet.stats().units, kUnits);
        // The resumed journal now holds the full fleet: a second resume
        // adopts every unit without probing a single cell.
        resilience::SweepJournal complete = resilience::SweepJournal::resume(path, {});
        EXPECT_EQ(complete.rows().size(), kUnits * fleet.row_stride());
        EXPECT_EQ(state_hash(fleet.resume(complete)), reference);
        EXPECT_EQ(fleet.stats().cells_evaluated, 0u);
        EXPECT_EQ(fleet.stats().units_resumed, kUnits);
        std::remove(path.c_str());
    }
}

}  // namespace
}  // namespace pv::fleet
