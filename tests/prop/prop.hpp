// PlugVolt — header-only seeded property-based testing harness.
//
// The simulator's algebraic layers (mailbox encoding, safe-state map
// queries, state hashing) have contracts that hold over whole value
// domains, not just the handful of examples unit tests pin.  This
// harness checks such contracts over seeded random samples and, on
// failure, shrinks the counterexample toward each domain's origin so
// the report names the simplest failing input.
//
// Usage:
//
//   PROP_CHECK(0xSEED, 500,
//              [](std::int64_t bit, Millivolts off) { return ...; },
//              prop::IntDomain{0, 63}, prop::OffsetDomain{-300.0, 0.0});
//
// Everything is deterministic in the seed: case c draws its values from
// Rng(mix_seed(seed, c)), so a falsified property reproduces bit-exactly
// from the seed printed in the failure message.
//
// A domain supplies four things:
//   using value_type = ...;
//   value_type generate(Rng&) const;            // one sample
//   std::vector<value_type> shrinks(v) const;   // simpler candidates, best first
//   std::string show(v) const;                  // for failure messages
//
// Shrinking is greedy and component-wise: each pass tries every
// component's candidates in order and restarts after the first one that
// still falsifies the property, until a fixpoint (or the evaluation
// budget runs out).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace pv::prop {

/// Outcome of a for_all run; PROP_CHECK turns it into a gtest assertion.
struct Result {
    bool ok = true;
    std::string message;
};

namespace detail {

/// Candidate indices moving `k` toward `origin`: the origin itself, the
/// halfway point, and one adjacent step — the classic bisecting shrink.
inline std::vector<std::uint64_t> shrink_index(std::uint64_t k, std::uint64_t origin) {
    std::vector<std::uint64_t> out;
    if (k == origin) return out;
    out.push_back(origin);
    const std::int64_t delta = static_cast<std::int64_t>(k) - static_cast<std::int64_t>(origin);
    const std::uint64_t mid = k - static_cast<std::uint64_t>(delta / 2);
    if (mid != k && mid != origin) out.push_back(mid);
    const std::uint64_t adjacent = delta > 0 ? k - 1 : k + 1;
    if (adjacent != origin && adjacent != mid) out.push_back(adjacent);
    return out;
}

inline std::string format_double(double v, const char* unit) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g %s", v, unit);
    return buf;
}

}  // namespace detail

/// Integers in the inclusive range [lo, hi]; shrinks toward 0 when the
/// range contains it, else toward lo.
struct IntDomain {
    using value_type = std::int64_t;
    std::int64_t lo = 0;
    std::int64_t hi = 100;

    [[nodiscard]] value_type generate(Rng& rng) const {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(rng.uniform_below(span));
    }
    [[nodiscard]] std::vector<value_type> shrinks(value_type v) const {
        const value_type origin = (lo <= 0 && 0 <= hi) ? 0 : lo;
        std::vector<value_type> out;
        for (const std::uint64_t k : detail::shrink_index(
                 static_cast<std::uint64_t>(v - lo), static_cast<std::uint64_t>(origin - lo)))
            out.push_back(lo + static_cast<std::int64_t>(k));
        return out;
    }
    [[nodiscard]] std::string show(value_type v) const { return std::to_string(v); }
};

/// Voltage offsets on the lattice {lo + k*step : 0 <= k <= (hi-lo)/step},
/// in millivolts; shrinks toward the value closest to 0 mV (for an
/// undervolt domain [-300, 0] that is the harmless null offset).
struct OffsetDomain {
    using value_type = Millivolts;
    double lo_mv = -300.0;
    double hi_mv = 0.0;
    double step_mv = 0.5;

    [[nodiscard]] std::uint64_t lattice_size() const {
        return static_cast<std::uint64_t>((hi_mv - lo_mv) / step_mv + 0.5) + 1;
    }
    [[nodiscard]] std::uint64_t origin_index() const {
        const double k = -lo_mv / step_mv;  // index of 0 mV, possibly off-lattice
        if (k <= 0.0) return 0;
        const auto n = lattice_size() - 1;
        const auto rounded = static_cast<std::uint64_t>(k + 0.5);
        return rounded > n ? n : rounded;
    }
    [[nodiscard]] value_type at(std::uint64_t k) const {
        return Millivolts{lo_mv + step_mv * static_cast<double>(k)};
    }
    [[nodiscard]] std::uint64_t index_of(value_type v) const {
        return static_cast<std::uint64_t>((v.value() - lo_mv) / step_mv + 0.5);
    }
    [[nodiscard]] value_type generate(Rng& rng) const {
        return at(rng.uniform_below(lattice_size()));
    }
    [[nodiscard]] std::vector<value_type> shrinks(value_type v) const {
        std::vector<value_type> out;
        for (const std::uint64_t k : detail::shrink_index(index_of(v), origin_index()))
            out.push_back(at(k));
        return out;
    }
    [[nodiscard]] std::string show(value_type v) const {
        return detail::format_double(v.value(), "mV");
    }
};

/// Frequencies on the lattice {lo + k*step : 0 <= k <= (hi-lo)/step}, in
/// megahertz; shrinks toward the lowest frequency (the safe direction).
struct FrequencyDomain {
    using value_type = Megahertz;
    double lo_mhz = 400.0;
    double hi_mhz = 4900.0;
    double step_mhz = 100.0;

    [[nodiscard]] std::uint64_t lattice_size() const {
        return static_cast<std::uint64_t>((hi_mhz - lo_mhz) / step_mhz + 0.5) + 1;
    }
    [[nodiscard]] value_type at(std::uint64_t k) const {
        return Megahertz{lo_mhz + step_mhz * static_cast<double>(k)};
    }
    [[nodiscard]] std::uint64_t index_of(value_type v) const {
        return static_cast<std::uint64_t>((v.value() - lo_mhz) / step_mhz + 0.5);
    }
    [[nodiscard]] value_type generate(Rng& rng) const {
        return at(rng.uniform_below(lattice_size()));
    }
    [[nodiscard]] std::vector<value_type> shrinks(value_type v) const {
        std::vector<value_type> out;
        for (const std::uint64_t k : detail::shrink_index(index_of(v), 0))
            out.push_back(at(k));
        return out;
    }
    [[nodiscard]] std::string show(value_type v) const {
        return detail::format_double(v.value(), "MHz");
    }
};

/// Uniform choice from a fixed list; shrinks toward the first element.
template <typename T>
struct ElementOf {
    using value_type = T;
    std::vector<T> items;
    /// Renders an element for failure messages (index fallback).
    std::string (*show_fn)(const T&) = nullptr;

    [[nodiscard]] value_type generate(Rng& rng) const {
        return items[rng.uniform_below(items.size())];
    }
    [[nodiscard]] std::uint64_t index_of(const T& v) const {
        for (std::size_t i = 0; i < items.size(); ++i)
            if (items[i] == v) return i;
        return 0;
    }
    [[nodiscard]] std::vector<value_type> shrinks(const T& v) const {
        std::vector<value_type> out;
        for (const std::uint64_t k : detail::shrink_index(index_of(v), 0))
            out.push_back(items[k]);
        return out;
    }
    [[nodiscard]] std::string show(const T& v) const {
        if (show_fn) return show_fn(v);
        return "items[" + std::to_string(index_of(v)) + "]";
    }
};

namespace detail {

template <typename Prop, typename ValTuple, std::size_t... Is>
bool invoke(const Prop& prop, const ValTuple& values, std::index_sequence<Is...>) {
    return prop(std::get<Is>(values)...);
}

template <std::size_t I, typename Prop, typename DomTuple, typename ValTuple>
bool shrink_component(const Prop& prop, const DomTuple& doms, ValTuple& values,
                      std::size_t& budget) {
    for (const auto& candidate : std::get<I>(doms).shrinks(std::get<I>(values))) {
        if (budget == 0) return false;
        --budget;
        ValTuple trial = values;
        std::get<I>(trial) = candidate;
        constexpr auto seq = std::make_index_sequence<std::tuple_size_v<ValTuple>>{};
        if (!invoke(prop, trial, seq)) {
            values = trial;  // simpler and still failing: adopt it
            return true;
        }
    }
    return false;
}

template <typename Prop, typename DomTuple, typename ValTuple, std::size_t... Is>
bool shrink_pass(const Prop& prop, const DomTuple& doms, ValTuple& values,
                 std::size_t& budget, std::index_sequence<Is...>) {
    return (shrink_component<Is>(prop, doms, values, budget) || ...);
}

template <typename DomTuple, typename ValTuple, std::size_t... Is>
std::string show_tuple(const DomTuple& doms, const ValTuple& values,
                       std::index_sequence<Is...>) {
    std::string out = "(";
    std::size_t emitted = 0;
    ((out += (emitted++ ? ", " : "") + std::get<Is>(doms).show(std::get<Is>(values))), ...);
    return out + ")";
}

}  // namespace detail

/// Check `prop` over `n_cases` seeded samples of the given domains.
/// Deterministic in `seed`.  On falsification, greedily shrinks the
/// counterexample (bounded by an evaluation budget) and reports both the
/// shrunk and the originally drawn inputs.
template <typename Prop, typename... Domains>
Result for_all(std::uint64_t seed, int n_cases, const Prop& prop, const Domains&... domains) {
    const auto doms = std::make_tuple(domains...);
    constexpr auto seq = std::make_index_sequence<sizeof...(Domains)>{};
    for (int c = 0; c < n_cases; ++c) {
        Rng rng(mix_seed(seed, static_cast<std::uint64_t>(c)));
        // Braced init guarantees left-to-right generation, so the draw
        // order (and thus every value) is compiler-independent.
        std::tuple<typename Domains::value_type...> values{domains.generate(rng)...};
        if (detail::invoke(prop, values, seq)) continue;

        const auto original = values;
        std::size_t budget = 1000;
        std::size_t steps = 0;
        while (budget > 0 && detail::shrink_pass(prop, doms, values, budget, seq)) ++steps;

        char head[128];
        std::snprintf(head, sizeof head,
                      "property falsified at case %d/%d (seed 0x%llx): ", c, n_cases,
                      static_cast<unsigned long long>(seed));
        std::string msg = head + detail::show_tuple(doms, values, seq);
        if (steps > 0)
            msg += " [shrunk " + std::to_string(steps) + " steps from " +
                   detail::show_tuple(doms, original, seq) + "]";
        return Result{false, msg};
    }
    return Result{true, {}};
}

}  // namespace pv::prop

/// gtest glue: non-fatally fail with the harness's message on
/// falsification.  The seed is part of the message, so any failure is
/// reproducible by rerunning the same PROP_CHECK.
// The property and domains travel through __VA_ARGS__ together: lambda
// captures and template arguments contain top-level commas the
// preprocessor would otherwise split across named macro parameters.
#define PROP_CHECK(seed, n_cases, ...)                                             \
    do {                                                                           \
        const ::pv::prop::Result pv_prop_check_result =                            \
            ::pv::prop::for_all((seed), (n_cases), __VA_ARGS__);                   \
        EXPECT_TRUE(pv_prop_check_result.ok) << pv_prop_check_result.message;      \
    } while (0)
