// Package energy model and RAPL surface.
#include "sim/power.hpp"

#include <gtest/gtest.h>

#include "os/cpupower.hpp"
#include "os/kernel.hpp"
#include "sim/cpu_profile.hpp"
#include "sim/machine.hpp"
#include "sim/ocm.hpp"
#include "util/error.hpp"

namespace pv::sim {
namespace {

TEST(PowerModel, DynamicEnergyScalesWithVSquared) {
    PowerModel model({.epi_nj_per_v2 = 1.0, .leak_mw_per_v2 = 0.0});
    model.on_retire(1'000'000, Millivolts{1000.0});
    EXPECT_NEAR(model.dynamic_joules(), 1e-3, 1e-12);  // 1e6 * 1 nJ * 1 V^2
    PowerModel half({.epi_nj_per_v2 = 1.0, .leak_mw_per_v2 = 0.0});
    half.on_retire(1'000'000, Millivolts{500.0});
    EXPECT_NEAR(half.dynamic_joules(), 0.25e-3, 1e-12);  // quadratic
}

TEST(PowerModel, LeakageIntegratesExactlyOverRamps) {
    PowerModel model({.epi_nj_per_v2 = 0.0, .leak_mw_per_v2 = 1000.0});  // 1 W at 1 V
    // Constant 1 V for 1 ms -> 1 mJ.
    model.integrate_leakage(Picoseconds{0}, milliseconds(1.0), Millivolts{1000.0},
                            Millivolts{1000.0});
    EXPECT_NEAR(model.leakage_joules(), 1e-3, 1e-12);
    // Linear ramp 0 -> 1 V over 3 ms: integral of v^2 = 1/3 -> 1 mJ.
    PowerModel ramp({.epi_nj_per_v2 = 0.0, .leak_mw_per_v2 = 1000.0});
    ramp.integrate_leakage(Picoseconds{0}, milliseconds(3.0), Millivolts{0.0},
                           Millivolts{1000.0});
    EXPECT_NEAR(ramp.leakage_joules(), 1e-3, 1e-9);
}

TEST(PowerModel, RejectsBadInput) {
    EXPECT_THROW(PowerModel({.epi_nj_per_v2 = -1.0, .leak_mw_per_v2 = 0.0}), ConfigError);
    PowerModel model({});
    EXPECT_THROW(model.integrate_leakage(Picoseconds{10}, Picoseconds{5}, Millivolts{1.0},
                                         Millivolts{1.0}),
                 SimError);
}

TEST(PowerModel, RaplUnitsAndWraparound) {
    EXPECT_EQ((PowerModel::rapl_power_unit() >> 8) & 0x1F, 14u);
    PowerModel model({.epi_nj_per_v2 = 0.0, .leak_mw_per_v2 = 1000.0});
    model.integrate_leakage(Picoseconds{0}, milliseconds(1.0), Millivolts{1000.0},
                            Millivolts{1000.0});
    // 1 mJ = ~16.384 units of 2^-14 J.
    EXPECT_EQ(model.rapl_energy_status(), 16u);
    model.reset();
    EXPECT_EQ(model.rapl_energy_status(), 0u);
}

TEST(MachinePower, LeakageAccumulatesWithTime) {
    Machine m(cometlake_i7_10510u(), 1);
    const double before = m.power().total_joules();
    m.advance(milliseconds(10.0));
    const double after = m.power().total_joules();
    EXPECT_GT(after, before);
    // Plausibility: a ~0.8 V idle package leaks well under 10 W here.
    EXPECT_LT((after - before) / 10e-3, 10.0);
}

TEST(MachinePower, RetiredWorkCostsDynamicEnergy) {
    Machine m(cometlake_i7_10510u(), 2);
    const double leak_only = [&] {
        Machine idle(cometlake_i7_10510u(), 2);
        idle.advance(milliseconds(1.0));
        return idle.power().total_joules();
    }();
    (void)m.run_batch(0, InstrClass::Alu, 1'800'000);  // ~1 ms at 1.8 GHz
    EXPECT_GT(m.power().dynamic_joules(), 0.0);
    EXPECT_GT(m.power().total_joules(), leak_only);
}

TEST(MachinePower, UndervoltingSavesEnergy) {
    auto energy_for = [](Millivolts offset) {
        Machine m(cometlake_i7_10510u(), 3);
        os::Kernel k(m);
        os::Cpupower cpupower(k.cpufreq(), m.core_count());
        cpupower.frequency_set(from_ghz(1.2));
        m.advance_to(m.rail_settle_time());
        if (offset < Millivolts{0.0}) {
            m.write_msr(0, kMsrOcMailbox, encode_offset(offset, VoltagePlane::Core));
            m.advance_to(m.rail_settle_time());
        }
        const double before = m.power().total_joules();
        (void)m.run_batch(0, InstrClass::Alu, 6'000'000);  // 5 ms of work
        return m.power().total_joules() - before;
    };
    const double nominal = energy_for(Millivolts{0.0});
    const double undervolted = energy_for(Millivolts{-150.0});
    EXPECT_LT(undervolted, nominal);
    // At 741 mV nominal, -150 mV is a ~20% voltage cut -> ~36% energy cut.
    const double savings = (nominal - undervolted) / nominal;
    EXPECT_GT(savings, 0.25);
    EXPECT_LT(savings, 0.45);
}

TEST(MachinePower, RaplMsrsReadable) {
    Machine m(cometlake_i7_10510u(), 4);
    EXPECT_EQ((m.read_msr(0, kMsrRaplPowerUnit) >> 8) & 0x1F, 14u);
    const std::uint64_t e0 = m.read_msr(0, kMsrPkgEnergyStatus);
    m.advance(milliseconds(50.0));
    const std::uint64_t e1 = m.read_msr(0, kMsrPkgEnergyStatus);
    EXPECT_GT(e1, e0) << "the energy counter ticks with leakage alone";
}

TEST(MachinePower, RebootClearsCounter) {
    Machine m(cometlake_i7_10510u(), 5);
    m.advance(milliseconds(50.0));
    ASSERT_GT(m.read_msr(0, kMsrPkgEnergyStatus), 0u);
    m.crash("test");
    m.reboot();
    // Only the boot delay's leakage has accumulated since.
    EXPECT_LT(m.power().total_joules(), 0.2);
}

}  // namespace
}  // namespace pv::sim
