// VoltPillager (hardware SVID injection) and the rail watchdog.
#include "attacks/voltpillager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "os/cpupower.hpp"
#include "util/error.hpp"
#include "plugvolt/plugvolt.hpp"
#include "sim/ocm.hpp"
#include "test_helpers.hpp"

namespace pv::attack {
namespace {

TEST(VoltPillager, InjectionLeavesNoMailboxTrace) {
    sim::Machine m(sim::cometlake_i7_10510u(), 401);
    m.regulator().write(sim::VoltagePlane::Core, Millivolts{-200.0}, m.now());
    m.advance(milliseconds(1.0));
    // The rail is physically deep...
    EXPECT_NEAR(m.applied_offset(sim::VoltagePlane::Core).value(), -200.0, 1.0);
    // ...but the mailbox reads back clean.
    const auto req = sim::decode_offset(m.read_msr(0, sim::kMsrOcMailbox));
    ASSERT_TRUE(req.has_value());
    EXPECT_DOUBLE_EQ(req->offset.value(), 0.0);
}

TEST(VoltPillager, WeaponizesOnUnprotectedMachine) {
    sim::Machine m(sim::cometlake_i7_10510u(), 402);
    os::Kernel kernel(m);
    VoltPillager atk;
    const AttackResult r = atk.run(kernel);
    EXPECT_TRUE(r.weaponized);
    EXPECT_NE(r.weaponization.find("invisible to MSR 0x150"), std::string::npos);
}

TEST(VoltPillager, DefeatsVendorWrmsrDeployments) {
    // The honest boundary: write-ignore microcode and the clamp MSR hook
    // wrmsr — a bus interposer never executes one.  (This mirrors how
    // the real VoltPillager defeated Intel's Plundervolt fixes.)
    for (const auto level :
         {plugvolt::DeploymentLevel::Microcode, plugvolt::DeploymentLevel::HardwareMsr}) {
        sim::Machine m(sim::cometlake_i7_10510u(), 403);
        os::Kernel kernel(m);
        plugvolt::Protector protector(kernel, test::comet_map());
        protector.deploy(level);
        VoltPillager atk;
        const AttackResult r = atk.run(kernel);
        EXPECT_TRUE(r.weaponized) << plugvolt::to_string(level);
    }
}

TEST(VoltPillager, DefeatsPollingWithoutRailWatch) {
    sim::Machine m(sim::cometlake_i7_10510u(), 404);
    os::Kernel kernel(m);
    plugvolt::PollingConfig config;  // watchdog off: the paper's module
    auto module = std::make_shared<plugvolt::PollingModule>(test::comet_map(), config);
    kernel.load_module(module);
    VoltPillager atk;
    const AttackResult r = atk.run(kernel);
    EXPECT_TRUE(r.weaponized) << "commanded-state polling is blind to the bus";
    EXPECT_EQ(module->metrics().detections, 0u);
}

TEST(VoltPillager, RailWatchdogClampsFrequencyAndStopsFaults) {
    sim::Machine m(sim::cometlake_i7_10510u(), 405);
    os::Kernel kernel(m);
    plugvolt::Protector protector(kernel, test::comet_map());
    protector.deploy(plugvolt::DeploymentLevel::KernelModule);  // watchdog on by default
    VoltPillager atk;
    const AttackResult r = atk.run(kernel);
    EXPECT_FALSE(r.weaponized);
    EXPECT_EQ(r.faults_observed, 0u);
    EXPECT_GE(protector.polling_module()->metrics().rail_watch_detections, 1u);
    EXPECT_GE(protector.polling_module()->metrics().freq_drops, 1u);
    // The machine survives in a degraded (frequency-clamped) state.
    EXPECT_FALSE(m.crashed());
}

TEST(VoltPillager, WatchdogDoesNotFireOnBenignCommands) {
    sim::Machine m(sim::cometlake_i7_10510u(), 406);
    os::Kernel kernel(m);
    plugvolt::Protector protector(kernel, test::comet_map());
    protector.deploy(plugvolt::DeploymentLevel::KernelModule);

    os::Cpupower cpupower(kernel.cpufreq(), m.core_count());
    // Benign life: frequency changes and safe undervolts through the
    // mailbox; the residual check must stay silent (blanking covers the
    // legitimate settling transients).
    cpupower.frequency_set(from_ghz(1.2));
    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(Millivolts{-150.0},
                                                sim::VoltagePlane::Core));
    m.advance(milliseconds(3.0));
    kernel.msr().ioctl_wrmsr(0, 0, sim::kMsrOcMailbox,
                             sim::encode_offset(Millivolts{0.0}, sim::VoltagePlane::Core));
    m.advance(milliseconds(3.0));
    cpupower.frequency_set(m.profile().freq_max);
    m.advance(milliseconds(3.0));

    EXPECT_EQ(protector.polling_module()->metrics().rail_watch_detections, 0u);
    EXPECT_DOUBLE_EQ(m.core(0).frequency().value(), m.profile().freq_max.value());
}

TEST(VoltPillager, WatchdogRequiresVfTable) {
    plugvolt::PollingConfig config;
    config.watch_measured_rail = true;  // but no nominal_rail
    EXPECT_THROW(plugvolt::PollingModule(test::comet_map(), config), pv::ConfigError);
}

}  // namespace
}  // namespace pv::attack
