// Sharded sweep engine: determinism across worker counts, bisection vs
// exhaustive map equality, and agreement with the legacy serial driver.
#include "plugvolt/parallel_characterizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_helpers.hpp"
#include "util/error.hpp"

namespace pv::plugvolt {
namespace {

ParallelCharacterizerConfig fast_config(unsigned workers, SweepMode mode,
                                        double step_mv = 5.0) {
    ParallelCharacterizerConfig config;
    config.cell.offset_step = Millivolts{step_mv};
    config.workers = workers;
    config.mode = mode;
    return config;
}

SafeStateMap sweep(const sim::CpuProfile& profile, const ParallelCharacterizerConfig& c) {
    ParallelCharacterizer engine(profile, c);
    return engine.characterize();
}

TEST(ParallelCharacterizer, RejectsBadConfig) {
    ParallelCharacterizerConfig config = fast_config(2, SweepMode::Bisection);
    config.refine_window = 0;
    EXPECT_THROW(ParallelCharacterizer(sim::skylake_i5_6500(), config), ConfigError);

    config = fast_config(2, SweepMode::Bisection);
    config.cell.dvfs_core = config.cell.execute_core = 0;
    EXPECT_THROW(ParallelCharacterizer(sim::skylake_i5_6500(), config), ConfigError);
}

TEST(ParallelCharacterizer, MapIsIndependentOfWorkerCount) {
    const sim::CpuProfile profile = sim::skylake_i5_6500();
    const SafeStateMap one = sweep(profile, fast_config(1, SweepMode::Exhaustive));
    const SafeStateMap four = sweep(profile, fast_config(4, SweepMode::Exhaustive));
    const SafeStateMap eight = sweep(profile, fast_config(8, SweepMode::Exhaustive));
    EXPECT_EQ(one.to_csv(), four.to_csv());
    EXPECT_EQ(one.to_csv(), eight.to_csv());
}

TEST(ParallelCharacterizer, RepeatedSweepsAreBitIdentical) {
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();
    const auto config = fast_config(4, SweepMode::Bisection);
    EXPECT_EQ(sweep(profile, config).to_csv(), sweep(profile, config).to_csv());
}

// The acceptance property: the bisection fast path must reproduce the
// exhaustive reference map cell-for-cell.  Run at the paper's full 1 mV
// resolution — the stochastic observability band near the onset is
// widest there, which is exactly what refine_window has to cover.
class BisectionEquality : public ::testing::TestWithParam<int> {
protected:
    [[nodiscard]] sim::CpuProfile profile() const {
        return GetParam() == 0 ? sim::skylake_i5_6500() : sim::cometlake_i7_10510u();
    }
};

TEST_P(BisectionEquality, MatchesExhaustiveReferenceCellForCell) {
    const sim::CpuProfile prof = profile();
    const SafeStateMap reference =
        sweep(prof, fast_config(4, SweepMode::Exhaustive, /*step_mv=*/1.0));
    const SafeStateMap fast = sweep(prof, fast_config(4, SweepMode::Bisection,
                                                      /*step_mv=*/1.0));
    ASSERT_EQ(reference.rows().size(), fast.rows().size());
    for (std::size_t i = 0; i < reference.rows().size(); ++i) {
        const FreqCharacterization& a = reference.rows()[i];
        const FreqCharacterization& b = fast.rows()[i];
        EXPECT_EQ(a.freq.value(), b.freq.value());
        EXPECT_EQ(a.onset.value(), b.onset.value()) << a.freq.value() << " MHz";
        EXPECT_EQ(a.crash.value(), b.crash.value()) << a.freq.value() << " MHz";
        EXPECT_EQ(a.fault_free, b.fault_free) << a.freq.value() << " MHz";
    }
    EXPECT_EQ(reference.to_csv(), fast.to_csv());
}

INSTANTIATE_TEST_SUITE_P(SkyLakeAndCometLake, BisectionEquality, ::testing::Values(0, 1));

TEST(ParallelCharacterizer, BisectionEvaluatesFarFewerCells) {
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();
    ParallelCharacterizer exhaustive(profile, fast_config(4, SweepMode::Exhaustive));
    ParallelCharacterizer bisect(profile, fast_config(4, SweepMode::Bisection));
    (void)exhaustive.characterize();
    (void)bisect.characterize();
    EXPECT_EQ(exhaustive.stats().rows, profile.frequency_table().size());
    EXPECT_EQ(bisect.stats().rows, profile.frequency_table().size());
    EXPECT_GT(exhaustive.stats().cells_evaluated, 0u);
    // O(log steps + window) vs O(steps): demand at least a 2x cut even
    // at the coarse 5 mV test resolution (at 1 mV it is ~10x).
    EXPECT_LT(bisect.stats().cells_evaluated * 2, exhaustive.stats().cells_evaluated);
    // Bisection spends crash probes on the boundary search; every one of
    // them is a reboot, and there must be at least one per crashing row.
    EXPECT_GT(bisect.stats().crash_probes, 0u);
}

TEST(ParallelCharacterizer, AgreesWithLegacySerialCharacterizer) {
    // The legacy driver carries clock/thermal state across a column's
    // cells, the engine boots every cell fresh; both measure the same
    // physics, so boundaries agree within one step plus thermal drift.
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();
    const SafeStateMap& legacy = test::cached_map(profile);  // 5 mV legacy sweep
    const SafeStateMap engine = sweep(profile, fast_config(4, SweepMode::Bisection));
    ASSERT_EQ(legacy.rows().size(), engine.rows().size());
    for (std::size_t i = 0; i < legacy.rows().size(); ++i) {
        const FreqCharacterization& a = legacy.rows()[i];
        const FreqCharacterization& b = engine.rows()[i];
        if (a.fault_free != b.fault_free) {
            // Whether the very last grid cell above the floor shows a
            // fault is a coin toss between the two drivers' RNG streams;
            // tolerate disagreement only there, at the sweep's edge.
            const FreqCharacterization& seen = a.fault_free ? b : a;
            EXPECT_LT(seen.onset.value(), legacy.sweep_floor().value() + 15.0)
                << a.freq.value() << " MHz";
            continue;
        }
        if (a.fault_free) continue;
        EXPECT_NEAR(a.onset.value(), b.onset.value(), 10.0) << a.freq.value() << " MHz";
        EXPECT_NEAR(a.crash.value(), b.crash.value(), 10.0) << a.freq.value() << " MHz";
    }
    EXPECT_NEAR(legacy.maximal_safe_offset().value(), engine.maximal_safe_offset().value(),
                10.0);
}

TEST(ParallelCharacterizer, ProgressArrivesInFrequencyOrder) {
    const sim::CpuProfile profile = sim::skylake_i5_6500();
    ParallelCharacterizer engine(profile, fast_config(8, SweepMode::Bisection));
    std::vector<double> freqs;
    (void)engine.characterize(
        [&](const FreqCharacterization& row) { freqs.push_back(row.freq.value()); });
    EXPECT_EQ(freqs.size(), profile.frequency_table().size());
    EXPECT_TRUE(std::is_sorted(freqs.begin(), freqs.end()));
}

TEST(ParallelCharacterizer, HonorsDiePreheat) {
    // A hot map's boundaries are shallower — the engine must thread the
    // per-cell preheat through to every worker.
    const sim::CpuProfile profile = sim::cometlake_i7_10510u();
    auto cold_config = fast_config(4, SweepMode::Bisection);
    auto hot_config = cold_config;
    hot_config.cell.die_preheat_c = 85.0;
    const SafeStateMap cold = sweep(profile, cold_config);
    const SafeStateMap hot = sweep(profile, hot_config);
    EXPECT_GT(hot.maximal_safe_offset(), cold.maximal_safe_offset());
}

}  // namespace
}  // namespace pv::plugvolt
